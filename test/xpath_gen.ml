(* Random XPath generator for the oracle-equivalence property tests.

   Paths are generated over the tag alphabet of the random-tree generator so
   that queries actually hit nodes. Value-comparison predicates stay within
   the translator's exactly-equivalent territory (@attr / text()). *)

module A = Ordered_xml.Xpath_ast

let tags = [| "a"; "b"; "c"; "d"; "e"; "item"; "list"; "entry" |]

let gen_test =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> A.Name t) (oneofa tags));
        (2, return A.Any_name);
        (1, return A.Text_test);
        (1, return A.Node_test);
      ])

let gen_axis =
  QCheck.Gen.(
    frequency
      [
        (6, return A.Child);
        (3, return A.Descendant);
        (1, return A.Descendant_or_self);
        (1, return A.Self);
        (1, return A.Parent);
        (2, return A.Attribute);
        (2, return A.Following_sibling);
        (2, return A.Preceding_sibling);
        (1, return A.Following);
        (1, return A.Preceding);
        (1, return A.Ancestor);
        (1, return A.Ancestor_or_self);
      ])

let rec gen_pred depth =
  QCheck.Gen.(
    if depth <= 0 then gen_leaf_pred
    else
      frequency
        [
          (5, gen_leaf_pred);
          (1, map2 (fun a b -> A.P_and (a, b)) (gen_pred (depth - 1)) (gen_pred (depth - 1)));
          (1, map2 (fun a b -> A.P_or (a, b)) (gen_pred (depth - 1)) (gen_pred (depth - 1)));
          (1, map (fun a -> A.P_not a) (gen_pred (depth - 1)));
        ])

and gen_leaf_pred =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> A.P_pos (A.Eq, 1 + k)) (int_bound 3));
        ( 1,
          map2
            (fun op k -> A.P_pos (op, 1 + k))
            (oneofl [ A.Le; A.Ge; A.Lt; A.Gt; A.Ne ])
            (int_bound 3) );
        (1, return A.P_last);
        ( 1,
          map2
            (fun t k ->
              A.P_count
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Child; test = t; preds = [] } ] },
                  A.Ge,
                  k ))
            gen_test (int_bound 3) );
        ( 3,
          map
            (fun t ->
              A.P_exists
                { A.absolute = false; steps = [ { A.axis = A.Child; test = t; preds = [] } ] })
            gen_test );
        ( 2,
          (* compare an attribute against a word from the generator pool *)
          map2
            (fun t lit ->
              A.P_cmp
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Attribute; test = A.Name t; preds = [] } ] },
                  A.Eq,
                  A.L_str lit ))
            (oneofl [ "k0"; "k1"; "k2" ])
            (oneofl [ "auction"; "bid"; "gold"; "market" ]) );
        ( 1,
          (* text comparison *)
          map
            (fun op ->
              A.P_cmp
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Child; test = A.Text_test; preds = [] } ] },
                  op,
                  A.L_str "gold" ))
            (oneofl [ A.Eq; A.Ne ]) );
        ( 2,
          (* numeric comparisons on text and attributes *)
          map3
            (fun axis_attr op k ->
              let step =
                if axis_attr then
                  { A.axis = A.Attribute; test = A.Name "k0"; preds = [] }
                else { A.axis = A.Child; test = A.Text_test; preds = [] }
              in
              A.P_cmp
                ( { A.absolute = false; steps = [ step ] },
                  op,
                  A.L_num (float_of_int k) ))
            bool
            (oneofl [ A.Lt; A.Le; A.Gt; A.Ge; A.Eq ])
            (int_bound 60) );
      ])

let gen_step =
  QCheck.Gen.(
    map3
      (fun axis test preds ->
        (* attribute tests only make sense on the attribute axis; fix up *)
        let test =
          match (axis, test) with
          | A.Attribute, (A.Text_test | A.Node_test) -> A.Any_name
          | _ -> test
        in
        { A.axis; test; preds })
      gen_axis gen_test
      (frequency [ (5, return []); (3, list_size (int_range 1 2) (gen_pred 1)) ]))

let gen_path =
  QCheck.Gen.(
    map
      (fun steps ->
        (* first step from the document root: child or descendant only *)
        let steps =
          match steps with
          | ({ A.axis = A.Child | A.Descendant; _ } as s) :: _ -> s :: List.tl steps
          | s :: rest -> { s with A.axis = A.Descendant } :: rest
          | [] -> [ { A.axis = A.Descendant; test = A.Any_name; preds = [] } ]
        in
        { A.absolute = true; steps })
      (list_size (int_range 1 4) gen_step))

let arb_path = QCheck.make ~print:A.to_string gen_path

(* --- (DTD, document, query) triples for the schema-aware oracle ---------

   Random DTDs over tags d0..d{n-1} arranged as a DAG (element i only
   references elements j > i) so Dtd.sample terminates quickly; d1 always
   carries the attribute pool the predicate generator compares against.
   Queries are drawn over the same alphabet (plus an undeclared "zz" to
   exercise unsatisfiability) so schema analysis has something to say. *)

type schema_case = { dtd_text : string; root : string; ntags : int }

let gen_schema_case =
  QCheck.Gen.(
    let* n = int_range 3 6 in
    let name i = Printf.sprintf "d%d" i in
    let elem i =
      let leaf =
        oneofl
          [
            Printf.sprintf "<!ELEMENT %s (#PCDATA)>" (name i);
            Printf.sprintf "<!ELEMENT %s EMPTY>" (name i);
          ]
      in
      if i = n - 1 then leaf
      else
        let* kind = int_bound 9 in
        if kind <= 1 then leaf
        else if kind = 2 then
          (* mixed content over one later element *)
          let* j = int_range (i + 1) (n - 1) in
          return
            (Printf.sprintf "<!ELEMENT %s (#PCDATA | %s)*>" (name i) (name j))
        else if kind = 3 then
          (* a two-way choice *)
          let* j = int_range (i + 1) (n - 1) in
          let* j' = int_range (i + 1) (n - 1) in
          return
            (Printf.sprintf "<!ELEMENT %s (%s | %s)>" (name i) (name j)
               (name j'))
        else
          (* a sequence of 1-3 particles with random modifiers *)
          let* k = int_range 1 3 in
          let* parts =
            flatten_l
              (List.init k (fun _ ->
                   let* j = int_range (i + 1) (n - 1) in
                   let* m = oneofl [ ""; "?"; "*"; "+" ] in
                   return (name j ^ m)))
          in
          return
            (Printf.sprintf "<!ELEMENT %s (%s)>" (name i)
               (String.concat ", " parts))
    in
    let* decls = flatten_l (List.init n elem) in
    let attlist =
      (* "gold" is in Generator's word pool, so k0/k2 comparisons can hit *)
      {|<!ATTLIST d1 k0 CDATA #REQUIRED k1 CDATA #IMPLIED k2 CDATA "gold">|}
    in
    return
      {
        dtd_text = String.concat "\n" (decls @ [ attlist ]);
        root = "d0";
        ntags = n;
      })

let gen_schema_test ntags =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun i -> A.Name (Printf.sprintf "d%d" i)) (int_bound (ntags - 1)));
        (1, return (A.Name "zz"));
        (2, return A.Any_name);
        (1, return A.Text_test);
      ])

let gen_schema_axis =
  QCheck.Gen.(
    frequency
      [
        (6, return A.Child);
        (4, return A.Descendant);
        (1, return A.Descendant_or_self);
        (1, return A.Self);
        (1, return A.Parent);
        (2, return A.Attribute);
        (2, return A.Following_sibling);
        (1, return A.Preceding_sibling);
        (1, return A.Following);
        (1, return A.Preceding);
        (1, return A.Ancestor);
      ])

let gen_schema_pred ntags =
  QCheck.Gen.(
    let rel steps = { A.absolute = false; steps } in
    frequency
      [
        ( 3,
          map
            (fun t -> A.P_exists (rel [ A.step A.Child t ]))
            (gen_schema_test ntags) );
        (2, map (fun k -> A.P_pos (A.Eq, 1 + k)) (int_bound 2));
        (1, return A.P_last);
        ( 2,
          map2
            (fun t k -> A.P_count (rel [ A.step A.Child t ], A.Ge, k))
            (gen_schema_test ntags) (int_bound 2) );
        ( 2,
          map
            (fun a ->
              A.P_cmp
                (rel [ A.step A.Attribute (A.Name a) ], A.Eq, A.L_str "gold"))
            (oneofl [ "k0"; "k2" ]) );
        ( 1,
          return
            (A.P_cmp (rel [ A.step A.Child A.Text_test ], A.Ne, A.L_str "bid"))
        );
      ])

let gen_schema_step ntags =
  QCheck.Gen.(
    let* axis = gen_schema_axis in
    let* test =
      if axis = A.Attribute then
        oneofl [ A.Name "k0"; A.Name "k1"; A.Name "k2"; A.Any_name ]
      else gen_schema_test ntags
    in
    let* preds =
      frequency
        [ (6, return []); (3, list_size (int_range 1 2) (gen_schema_pred ntags)) ]
    in
    return { A.axis; test; preds })

let gen_schema_path ntags =
  QCheck.Gen.(
    map
      (fun steps ->
        let steps =
          match steps with
          | ({ A.axis = A.Child | A.Descendant; _ } as s) :: tl -> s :: tl
          | s :: rest -> { s with A.axis = A.Descendant } :: rest
          | [] -> [ A.step A.Descendant A.Any_name ]
        in
        { A.absolute = true; steps })
      (list_size (int_range 1 4) (gen_schema_step ntags)))
