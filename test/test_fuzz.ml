(* Robustness fuzzing: every parser must either succeed or raise its own
   documented exception — never crash, loop, or leak an internal error. *)

module O = Ordered_xml

let no_crash name count gen f =
  QCheck.Test.make ~name ~count gen (fun input ->
      match f input with
      | _ -> true
      | exception Xmllib.Parser.Parse_error _
      | exception Xmllib.Lexer.Error _
      | exception Xmllib.Sax.Error _
      | exception O.Xpath_parser.Parse_error _
      | exception O.Flwor.Parse_error _
      | exception Reldb.Db.Sql_error _
      | exception Invalid_argument _ ->
          true)

(* strings biased towards each grammar's own alphabet *)
let biased alphabet =
  QCheck.make ~print:(fun s -> s)
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_bound 30)
           (oneof [ oneofl alphabet; map (String.make 1) printable ])))

let xmlish =
  biased
    [ "<"; ">"; "</"; "/>"; "a"; "b"; "="; "\""; "'"; "&"; "&amp;"; "<!--";
      "-->"; "<?"; "?>"; "<![CDATA["; "]]>"; " "; "x" ]

let xpathish =
  biased
    [ "/"; "//"; "["; "]"; "("; ")"; "@"; "*"; "."; ".."; "::"; "text()";
      "node()"; "and"; "or"; "not"; "position()"; "last()"; "count"; "a";
      "b"; "1"; "'s'"; "="; "<"; ">"; "|"; " " ]

let sqlish =
  biased
    [ "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
      "DELETE"; "CREATE"; "TABLE"; "INDEX"; "GROUP"; "BY"; "ORDER"; "("; ")";
      ","; "*"; "="; "'"; "t"; "a"; "1"; "X'00'"; " "; ";"; "--" ]

let flworish =
  biased
    [ "for"; "let"; "where"; "order"; "by"; "return"; "$x"; "in"; ":=";
      "/a"; "$x/b"; "<r>"; "</r>"; "{"; "}"; "'s'"; ">"; "1"; " " ]

let prop_xml_parser =
  no_crash "xml parser never crashes" 500 xmlish (fun s ->
      ignore (Xmllib.Parser.parse_document s))

let prop_sax =
  no_crash "sax never crashes" 500 xmlish (fun s ->
      ignore (Xmllib.Sax.count_events s))

let prop_xpath_parser =
  no_crash "xpath parser never crashes" 500 xpathish (fun s ->
      ignore (O.Xpath_parser.parse_union s))

let prop_sql =
  let db = Reldb.Db.create () in
  ignore (Reldb.Db.exec db "CREATE TABLE t (a INT, b TEXT)");
  ignore (Reldb.Db.exec db "INSERT INTO t VALUES (1, 'x')");
  no_crash "sql engine never crashes" 500 sqlish (fun s ->
      ignore (Reldb.Db.exec db s))

let prop_flwor_parser =
  no_crash "flwor parser never crashes" 500 flworish (fun s ->
      ignore (O.Flwor.parse s))

let prop_dewey_decode =
  no_crash "dewey decode never crashes" 500
    (QCheck.string_gen QCheck.Gen.char)
    (fun s -> ignore (O.Dewey.decode s))

let prop_entities =
  no_crash "entity decoder never crashes" 300
    (biased [ "&"; ";"; "#"; "x"; "amp"; "lt"; "a"; "1" ])
    (fun s -> ignore (Xmllib.Lexer.decode_entities s))

(* parsed XPath renders back to something the parser accepts, and both parse
   to the same evaluation result *)
let prop_xpath_render_roundtrip =
  QCheck.Test.make ~name:"xpath render/parse roundtrip" ~count:300
    Xpath_gen.arb_path (fun path ->
      let rendered = O.Xpath_ast.to_string path in
      let reparsed = O.Xpath_parser.parse rendered in
      O.Xpath_ast.to_string reparsed = rendered)

(* differential self-check: every generated path inside the single-statement
   fragment must translate to SQL that (a) parses back through the engine's
   own parser and (b) survives the static analyzer with nothing worse than
   an informational note *)
let analysis_db =
  lazy
    (let doc = Xmllib.Generator.random_tree ~seed:7 ~max_depth:4 ~max_fanout:4 () in
     let db = Reldb.Db.create () in
     List.iter
       (fun enc -> ignore (O.Api.Store.create db ~name:"q" enc doc))
       O.Encoding.all;
     db)

let prop_translation_lints_clean =
  QCheck.Test.make
    ~name:"single-statement translations parse back and lint clean" ~count:200
    Xpath_gen.arb_path (fun path ->
      let db = Lazy.force analysis_db in
      let catalog = Reldb.Db.catalog db in
      List.for_all
        (fun enc ->
          (not (O.Translate_sql.eligible enc path))
          ||
          let sql, meta = O.Translate_sql.translate_meta ~doc:"q" enc path in
          match Reldb.Sql_parser.parse sql with
          | exception Reldb.Sql_parser.Parse_error m ->
              QCheck.Test.fail_reportf
                "%s: translation does not parse back (%s):\n%s"
                (O.Encoding.name enc) m sql
          | stmt -> (
              let findings =
                Analysis.Lint.lint_stmt ~catalog stmt
                @ Analysis.Order_check.check_stmt enc ~meta stmt
                @
                match stmt with
                | Reldb.Sql_ast.Select sel ->
                    Analysis.Plan_lint.lint_plan
                      (Reldb.Planner.plan_select catalog sel)
                | _ -> []
              in
              match
                List.filter
                  (fun f ->
                    f.Analysis.Finding.severity <> Analysis.Finding.Info
                    (* a vacuous path (e.g. /descendant::a/self::b) correctly
                       translates to an always-false WHERE; the contradiction
                       warning is the analyzer doing its job, not a bug *)
                    && f.Analysis.Finding.rule <> "contradiction")
                  findings
              with
              | [] -> true
              | bad ->
                  QCheck.Test.fail_reportf "%s: translation not clean:\n%s\n%s"
                    (O.Encoding.name enc)
                    (String.concat "\n"
                       (List.map Analysis.Finding.to_string bad))
                    sql))
        O.Encoding.all)

(* randomized update workloads must leave every encoding's structural
   invariants intact (Integrity.check as a fuzz gate) *)
let frag =
  Xmllib.Types.element "item"
    ~attrs:[ Xmllib.Types.attr "k0" "77" ]
    [ Xmllib.Types.text "fuzzed" ]

let prop_random_updates_keep_integrity =
  let gen =
    QCheck.Gen.(
      pair (int_bound 10_000) (list_size (int_range 1 10) (int_bound 99)))
  in
  let print (seed, ops) =
    Printf.sprintf "seed=%d ops=%s" seed
      (String.concat "," (List.map string_of_int ops))
  in
  QCheck.Test.make ~name:"integrity holds after random update workloads"
    ~count:25 (QCheck.make ~print gen) (fun (seed, ops) ->
      let doc = Xmllib.Generator.flat ~tag:"item" ~count:6 () in
      let db = Reldb.Db.create () in
      let stores =
        List.map
          (fun enc -> (enc, O.Api.Store.create db ~name:"w" enc doc))
          O.Encoding.all
      in
      let rng = Xmllib.Rng.create seed in
      List.iter
        (fun op ->
          let count = O.Api.Store.count (snd (List.hd stores)) "/doc/item" in
          if op mod 3 = 0 && count > 2 then begin
            let k = 1 + Xmllib.Rng.int rng count in
            List.iter
              (fun (_, s) ->
                match
                  O.Api.Store.query_ids s (Printf.sprintf "/doc/item[%d]" k)
                with
                | [ id ] -> ignore (O.Api.Store.delete_subtree s ~id)
                | _ -> ())
              stores
          end
          else if op mod 3 = 1 then begin
            let pos = 1 + Xmllib.Rng.int rng (count + 1) in
            List.iter
              (fun (_, s) ->
                ignore
                  (O.Api.Store.insert_subtree s
                     ~parent:(O.Api.Store.root_id s) ~pos frag))
              stores
          end
          else begin
            let k = 1 + Xmllib.Rng.int rng count in
            let v = string_of_int (Xmllib.Rng.int rng 1000) in
            List.iter
              (fun (_, s) ->
                match
                  O.Api.Store.query_ids s (Printf.sprintf "/doc/item[%d]" k)
                with
                | [ id ] ->
                    ignore (O.Api.Store.set_attribute s ~id ~name:"k1" ~value:v)
                | _ -> ())
              stores
          end)
        ops;
      List.for_all
        (fun (enc, s) ->
          match O.Integrity.check (O.Api.Store.db s) ~doc:"w" enc with
          | Ok () -> true
          | Error msgs ->
              QCheck.Test.fail_reportf "%s integrity violated: %s"
                (O.Encoding.name enc)
                (String.concat "; " msgs))
        stores)

let tests =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_xml_parser;
      QCheck_alcotest.to_alcotest prop_sax;
      QCheck_alcotest.to_alcotest prop_xpath_parser;
      QCheck_alcotest.to_alcotest prop_sql;
      QCheck_alcotest.to_alcotest prop_flwor_parser;
      QCheck_alcotest.to_alcotest prop_dewey_decode;
      QCheck_alcotest.to_alcotest prop_entities;
      QCheck_alcotest.to_alcotest prop_xpath_render_roundtrip;
      QCheck_alcotest.to_alcotest prop_translation_lints_clean;
      QCheck_alcotest.to_alcotest prop_random_updates_keep_integrity;
    ] )
