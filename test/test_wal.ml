(* Durability (ISSUE 4): the write-ahead log must frame records so that any
   crash leaves a valid prefix plus a detectable torn tail, [Db.open_dir]
   must recover exactly the committed prefix from any such file, and the
   commit / checkpoint sequences must be kill-safe at every step boundary.
   The [wal] suite covers framing and the durable engine API; the
   [wal-crash] suite is the fault-injection harness: it truncates the log
   at {e every} byte offset and kills the process (via failpoint hooks) at
   every commit and checkpoint step, asserting recovery always yields a
   prefix-consistent database. *)

module D = Reldb.Db
module W = Reldb.Wal
module V = Reldb.Value

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* --- scratch directories ---------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let tmp_counter = ref 0

let fresh_dir () =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "oxq_wal_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  rm_rf d;
  d

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* --- crash simulation -------------------------------------------------- *)

exception Crash

(* Run [f] with a hook that raises at [point], simulating a kill there. The
   database handle used inside [f] must be abandoned afterwards; only
   [Db.open_dir] on the directory is meaningful, as after a real crash. *)
let crash_at point f =
  W.set_failpoint (Some (fun p -> if p = point then raise Crash));
  Fun.protect
    ~finally:(fun () -> W.set_failpoint None)
    (fun () ->
      match f () with
      | () -> Alcotest.failf "failpoint %s never fired" point
      | exception Crash -> ())

(* ====================================================================== *)
(* wal: framing and the durable engine API                                 *)
(* ====================================================================== *)

let sample_records =
  [
    W.Stmt "INSERT INTO t VALUES (1, 'one')";
    W.Batch [ "UPDATE t SET v = 'x' WHERE id = 1"; "DELETE FROM t WHERE id = 2" ];
    W.Batch [];
    W.Stmt "";
    W.Stmt "INSERT INTO t VALUES (3, 'embedded; -- hostile\n''quote''')";
  ]

let write_sample_wal dir =
  let path = Filename.concat dir "wal.0.log" in
  let w = W.open_writer ~policy:W.Never ~gen:0 path in
  List.iter (W.append w) sample_records;
  W.close w;
  path

let test_crc32 () =
  (* the IEEE 802.3 check value *)
  check int_t "check vector" 0xCBF43926 (W.crc32 "123456789");
  check int_t "empty string" 0 (W.crc32 "");
  check bool_t "sensitive to change" true (W.crc32 "abc" <> W.crc32 "abd")

let test_roundtrip () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = write_sample_wal dir in
  let r = W.read_file path in
  check bool_t "records survive the round trip" true
    (r.W.records = sample_records);
  check int_t "generation" 0 r.W.file_gen;
  check int_t "no torn tail" 0 r.W.torn_bytes;
  check int_t "valid_len is the whole file"
    (String.length (read_bytes path))
    r.W.valid_len

let test_truncate_every_offset () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = write_sample_wal dir in
  let image = read_bytes path in
  let ends = W.frame_ends path in
  check int_t "one frame per record" (List.length sample_records)
    (List.length ends);
  let trunc = Filename.concat dir "trunc.log" in
  for len = 0 to String.length image do
    write_bytes trunc (String.sub image 0 len);
    let r = W.read_file trunc in
    let k = List.length (List.filter (fun e -> e <= len) ends) in
    if List.length r.W.records <> k || r.W.records <> take k sample_records
    then
      Alcotest.failf "truncated at %d: expected the first %d records, got %d"
        len k (List.length r.W.records);
    if len < 15 then begin
      (* header torn: no generation, everything is tail *)
      check int_t "torn header gen" (-1) r.W.file_gen;
      check int_t "torn header tail" len r.W.torn_bytes
    end
    else
      check int_t
        (Printf.sprintf "valid + torn tile the file at %d" len)
        len
        (r.W.valid_len + r.W.torn_bytes)
  done

let test_corrupt_record_ends_prefix () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = write_sample_wal dir in
  let image = read_bytes path in
  let ends = W.frame_ends path in
  (* flip one byte inside the payload of the second record: the first
     record must survive, everything from the flip's frame on is tail *)
  let first_end = List.nth ends 0 in
  let bad = Bytes.of_string image in
  Bytes.set bad (first_end + 12)
    (Char.chr (Char.code (Bytes.get bad (first_end + 12)) lxor 0x40));
  let trunc = Filename.concat dir "flip.log" in
  write_bytes trunc (Bytes.to_string bad);
  let r = W.read_file trunc in
  check int_t "prefix before the flip" 1 (List.length r.W.records);
  check int_t "valid_len stops at the flip" first_end r.W.valid_len

let test_writer_truncates_torn_tail () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = write_sample_wal dir in
  let image = read_bytes path in
  let ends = W.frame_ends path in
  let cut = List.nth ends 1 + 3 in
  (* mid-record *)
  write_bytes path (String.sub image 0 cut);
  let w = W.open_writer ~policy:W.Never ~gen:0 path in
  check int_t "reopened size is the valid prefix" (List.nth ends 1) (W.size w);
  W.append w (W.Stmt "after recovery");
  W.close w;
  let r = W.read_file path in
  check bool_t "append lands after the surviving prefix" true
    (r.W.records = take 2 sample_records @ [ W.Stmt "after recovery" ]);
  check int_t "clean file" 0 r.W.torn_bytes

let test_writer_gen_mismatch () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let path = write_sample_wal dir in
  (match W.open_writer ~policy:W.Never ~gen:7 path with
  | exception W.Corrupt _ -> ()
  | w ->
      W.close w;
      Alcotest.fail "expected Corrupt on generation mismatch");
  (* header-torn files are reinitialized instead *)
  write_bytes path "OXW";
  let w = W.open_writer ~policy:W.Never ~gen:7 path in
  check int_t "reinitialized to the caller's gen" 7 (W.gen w);
  W.close w;
  check int_t "fresh header" 7 (W.read_file path).W.file_gen

let test_fsync_policies () =
  with_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let run policy =
    let path = Filename.concat dir "policy.log" in
    (try Sys.remove path with Sys_error _ -> ());
    let w = W.open_writer ~policy ~gen:0 path in
    let creation_syncs = W.fsyncs w in
    for i = 1 to 10 do
      W.append w (W.Stmt (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
    done;
    let n = W.fsyncs w - creation_syncs in
    W.close w;
    (W.appends w, n)
  in
  check (Alcotest.pair int_t int_t) "Always syncs per append" (10, 10)
    (run W.Always);
  check (Alcotest.pair int_t int_t) "Every 3 syncs on the interval" (10, 3)
    (run (W.Every 3));
  check (Alcotest.pair int_t int_t) "Never leaves syncing to close" (10, 0)
    (run W.Never)

(* --- the durable engine API -------------------------------------------- *)

let seed_stmts =
  [
    "CREATE TABLE t (id INT NOT NULL, v TEXT)";
    "INSERT INTO t VALUES (1, 'one')";
    "INSERT INTO t VALUES (2, 'two'), (3, 'three')";
    "UPDATE t SET v = 'ONE' WHERE id = 1";
    "DELETE FROM t WHERE id = 2";
    "INSERT INTO t VALUES (4, 'four; -- not a comment\n''line''')";
  ]

(* the state after replaying the first [k] seed statements, as a dump *)
let expected_dump k =
  let db = D.create () in
  List.iter (fun s -> ignore (D.exec db s)) (take k seed_stmts);
  D.dump db

let test_open_close_reopen () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Always dir in
  check bool_t "durable" true (D.is_durable db);
  check (Alcotest.option string_t) "db_dir" (Some dir) (D.db_dir db);
  List.iter (fun s -> ignore (D.exec db s)) seed_stmts;
  let live = D.dump db in
  D.close db;
  check bool_t "closed handle is no longer durable" false (D.is_durable db);
  let db2 = D.open_dir dir in
  check string_t "recovered state equals the live state" live (D.dump db2);
  (match D.last_recovery db2 with
  | None -> Alcotest.fail "open_dir must report recovery stats"
  | Some r ->
      check int_t "gen 0" 0 r.D.rec_gen;
      check bool_t "no checkpoint yet" false r.D.rec_checkpoint;
      check int_t "one record per autocommit statement"
        (List.length seed_stmts) r.D.rec_records;
      check int_t "statement count" (List.length seed_stmts) r.D.rec_statements;
      check int_t "clean log" 0 r.D.rec_torn_bytes);
  D.close db2

let test_select_not_logged () =
  with_dir @@ fun dir ->
  let db = D.open_dir dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
  ignore (D.exec db "INSERT INTO t VALUES (1)");
  let size = D.wal_size db in
  ignore (D.query db "SELECT id FROM t");
  ignore (D.query db "SELECT count(*) FROM t WHERE id > 0");
  check int_t "reads do not grow the log" size (D.wal_size db);
  D.close db

let test_txn_batching () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Always dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
  D.with_transaction db (fun () ->
      ignore (D.exec db "INSERT INTO t VALUES (1)");
      ignore (D.exec db "INSERT INTO t VALUES (2)"));
  (* one committed transaction = one Batch record *)
  let wal = Filename.concat dir "wal.0.log" in
  (match (W.read_file wal).W.records with
  | [ W.Stmt _; W.Batch [ _; _ ] ] -> ()
  | rs -> Alcotest.failf "unexpected log shape (%d records)" (List.length rs));
  (* rolled-back work must leave no trace in the log *)
  let size = D.wal_size db in
  (try
     D.with_transaction db (fun () ->
         ignore (D.exec db "INSERT INTO t VALUES (99)");
         failwith "abort")
   with Failure _ -> ());
  check int_t "rollback leaves the log untouched" size (D.wal_size db);
  D.close db;
  let db2 = D.open_dir dir in
  check int_t "recovered rows" 2
    (List.length (D.query db2 "SELECT id FROM t"));
  check int_t "aborted row absent" 0
    (List.length (D.query db2 "SELECT id FROM t WHERE id = 99"));
  D.close db2

let test_prepared_and_bulk_logged () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Always dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL, v TEXT, f FLOAT)");
  let s = D.prepare db "INSERT INTO t VALUES (?, ?, ?)" in
  ignore (D.Stmt.exec s [| V.Int 1; V.Str "it's ; tricky"; V.Float 0.5 |]);
  ignore (D.Stmt.exec s [| V.Int 2; V.Null; V.Float 1e22 |]);
  ignore
    (D.insert_many db "t"
       [
         [| V.Int 3; V.Str "bulk"; V.Float nan |];
         [| V.Int 4; V.Str "rows"; V.Float infinity |];
       ]);
  ignore (D.insert_row db "t" [| V.Int 5; V.Str "single"; V.Null |]);
  let live = D.dump db in
  D.close db;
  let db2 = D.open_dir dir in
  check string_t "prepared + bulk writes all replay" live (D.dump db2);
  check int_t "row count" 5 (List.length (D.query db2 "SELECT id FROM t"));
  (match D.query_one db2 "SELECT v FROM t WHERE id = 1" with
  | Some [| V.Str v |] -> check string_t "quoted param survives" "it's ; tricky" v
  | _ -> Alcotest.fail "row 1 missing");
  D.close db2

let test_checkpoint () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Always dir in
  List.iter (fun s -> ignore (D.exec db s)) seed_stmts;
  D.checkpoint db;
  check bool_t "log reset to header" true (D.wal_size db <= 15);
  let files = Sys.readdir dir in
  Array.sort compare files;
  check
    (Alcotest.list string_t)
    "old generation swept"
    [ "checkpoint.1.sql"; "wal.1.log" ]
    (Array.to_list files);
  ignore (D.exec db "INSERT INTO t VALUES (9, 'post-checkpoint')");
  let live = D.dump db in
  D.close db;
  let db2 = D.open_dir dir in
  check string_t "checkpoint + suffix replay" live (D.dump db2);
  (match D.last_recovery db2 with
  | Some r ->
      check int_t "gen 1" 1 r.D.rec_gen;
      check bool_t "loaded the snapshot" true r.D.rec_checkpoint;
      check int_t "only the suffix replays" 1 r.D.rec_records
  | None -> Alcotest.fail "no recovery stats");
  D.close db2

let test_auto_checkpoint () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~auto_checkpoint:400 dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL, v TEXT)");
  for i = 1 to 40 do
    ignore
      (D.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'row %d')" i i))
  done;
  check bool_t "log stays under the threshold plus one record" true
    (D.wal_size db < 600);
  let live = D.dump db in
  D.close db;
  let db2 = D.open_dir dir in
  check string_t "state survives auto checkpoints" live (D.dump db2);
  check bool_t "several generations elapsed" true
    (match D.last_recovery db2 with Some r -> r.D.rec_gen > 1 | None -> false);
  D.close db2

let test_in_memory_unaffected () =
  let db = D.create () in
  check bool_t "not durable" false (D.is_durable db);
  check (Alcotest.option string_t) "no dir" None (D.db_dir db);
  check int_t "no wal" 0 (D.wal_size db);
  check bool_t "no recovery stats" true (D.last_recovery db = None);
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
  ignore (D.exec db "INSERT INTO t VALUES (1)");
  (match D.checkpoint db with
  | exception D.Sql_error _ -> ()
  | () -> Alcotest.fail "checkpoint must require a durable database");
  D.close db (* a no-op, but must not raise *)

let test_obs_counters () =
  with_dir @@ fun dir ->
  Obs.reset ();
  let db = D.open_dir ~fsync:W.Always dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
  ignore (D.exec db "INSERT INTO t VALUES (1)");
  D.close db;
  let db2 = D.open_dir dir in
  D.close db2;
  check int_t "wal.append" 2 (Obs.counter_value "wal.append");
  check bool_t "wal.fsync counted" true (Obs.counter_value "wal.fsync" >= 2);
  check int_t "wal.replayed" 2 (Obs.counter_value "wal.replayed");
  let report = Obs.Report.to_text () in
  check bool_t "recovery latency recorded" true
    (Astring_contains.contains report "db.recovery");
  Obs.reset ()

(* ====================================================================== *)
(* wal-crash: fault injection                                              *)
(* ====================================================================== *)

(* Build a durable database from [seed_stmts] (one WAL record each), then
   for EVERY byte offset of the log: copy the directory with the log
   truncated at that offset, recover, and demand exactly the state produced
   by the longest record prefix that survives the cut. *)
let test_truncate_wal_every_offset () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Never dir in
  List.iter (fun s -> ignore (D.exec db s)) seed_stmts;
  D.close db;
  let wal = Filename.concat dir "wal.0.log" in
  let image = read_bytes wal in
  let ends = W.frame_ends wal in
  let expected = Array.init (List.length seed_stmts + 1) expected_dump in
  with_dir @@ fun dir2 ->
  Unix.mkdir dir2 0o755;
  let wal2 = Filename.concat dir2 "wal.0.log" in
  for len = 0 to String.length image do
    write_bytes wal2 (String.sub image 0 len);
    let k = List.length (List.filter (fun e -> e <= len) ends) in
    let db = D.open_dir dir2 in
    let dump = D.dump db in
    let stats = D.last_recovery db in
    D.close db;
    if dump <> expected.(k) then
      Alcotest.failf "truncated at %d: state is not the %d-statement prefix"
        len k;
    (match stats with
    | Some r ->
        if r.D.rec_records <> k then
          Alcotest.failf "truncated at %d: replayed %d records, expected %d"
            len r.D.rec_records k
    | None -> Alcotest.fail "no recovery stats");
    (* recovery truncated the tail: a second open replays the same prefix *)
    if len mod 7 = 0 then begin
      let db = D.open_dir dir2 in
      let again = D.dump db in
      D.close db;
      check string_t
        (Printf.sprintf "reopen after recovery at %d is stable" len)
        dump again
    end
  done

(* After recovery from a cut, the database must accept new writes and make
   them durable — the torn tail must not poison subsequent appends. *)
let test_write_after_recovery () =
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Never dir in
  List.iter (fun s -> ignore (D.exec db s)) seed_stmts;
  D.close db;
  let wal = Filename.concat dir "wal.0.log" in
  let image = read_bytes wal in
  let ends = W.frame_ends wal in
  let cut = List.nth ends 2 + 5 in
  (* mid-record: 3 statements survive *)
  write_bytes wal (String.sub image 0 cut);
  let db = D.open_dir ~fsync:W.Always dir in
  ignore (D.exec db "INSERT INTO t VALUES (7, 'fresh')");
  let live = D.dump db in
  D.close db;
  let db2 = D.open_dir dir in
  check string_t "prefix + fresh write" live (D.dump db2);
  check int_t "recovered record count" 4
    (match D.last_recovery db2 with Some r -> r.D.rec_records | None -> -1);
  D.close db2

let test_crash_in_commit () =
  let run point =
    with_dir @@ fun dir ->
    let db = D.open_dir ~fsync:W.Always dir in
    ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
    ignore (D.exec db "INSERT INTO t VALUES (1)");
    crash_at point (fun () ->
        D.with_transaction db (fun () ->
            ignore (D.exec db "INSERT INTO t VALUES (2)");
            ignore (D.exec db "INSERT INTO t VALUES (3)")));
    let db2 = D.open_dir dir in
    let ids =
      List.map
        (function [| V.Int i |] -> i | _ -> -1)
        (D.query db2 "SELECT id FROM t ORDER BY id")
    in
    D.close db2;
    ids
  in
  (* killed before the batch reaches the log: the transaction vanishes
     whole; killed after: it is durable in full — never half of it *)
  check (Alcotest.list int_t) "crash before logging loses the txn whole"
    [ 1 ]
    (run "commit.before_log");
  check (Alcotest.list int_t) "crash after logging keeps the txn whole"
    [ 1; 2; 3 ]
    (run "commit.logged")

let test_crash_in_checkpoint () =
  let points =
    [
      "checkpoint.begin";
      "checkpoint.temp_written";
      "checkpoint.wal_created";
      "checkpoint.renamed";
      "checkpoint.switched";
    ]
  in
  List.iter
    (fun point ->
      with_dir @@ fun dir ->
      let db = D.open_dir ~fsync:W.Always dir in
      List.iter (fun s -> ignore (D.exec db s)) seed_stmts;
      let full = D.dump db in
      crash_at point (fun () -> D.checkpoint db);
      let db2 = D.open_dir dir in
      let dump = D.dump db2 in
      if dump <> full then
        Alcotest.failf "kill at %s lost data during checkpoint" point;
      (* the survivor is fully usable: write, checkpoint, reopen *)
      ignore (D.exec db2 "INSERT INTO t VALUES (8, 'post-crash')");
      D.checkpoint db2;
      let live = D.dump db2 in
      D.close db2;
      let db3 = D.open_dir dir in
      if D.dump db3 <> live then
        Alcotest.failf "state diverged after recovering from %s" point;
      (* exactly one generation remains on disk *)
      let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
      (match files with
      | [ c; w ]
        when Filename.check_suffix c ".sql" && Filename.check_suffix w ".log"
        ->
          ()
      | _ ->
          Alcotest.failf "kill at %s left debris: %s" point
            (String.concat ", " files));
      D.close db3)
    points

let test_stale_tmp_swept () =
  with_dir @@ fun dir ->
  let db = D.open_dir dir in
  ignore (D.exec db "CREATE TABLE t (id INT NOT NULL)");
  D.close db;
  (* debris a crash between checkpoint steps could leave behind *)
  write_bytes (Filename.concat dir "checkpoint.1.sql.tmp") "half a dump";
  write_bytes (Filename.concat dir "wal.7.log") "OXW";
  let db2 = D.open_dir dir in
  check int_t "recovered data intact" 0
    (List.length (D.query db2 "SELECT id FROM t"));
  D.close db2;
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  check (Alcotest.list string_t) "debris swept" [ "wal.0.log" ] files

(* Store-level crash consistency: shred a document into a durable engine,
   run updates each in its own transaction (one Batch record per op), kill
   at random WAL offsets, recover, and demand the store pass its structural
   integrity check and serialize to the exact document some op-prefix
   produced. *)
let test_store_crash_recovery () =
  let module O = Ordered_xml in
  with_dir @@ fun dir ->
  let db = D.open_dir ~fsync:W.Never dir in
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:5 () in
  let store = O.Api.Store.create db ~name:"s" O.Encoding.Dewey_enc doc in
  D.checkpoint db;
  (* from here on: one op = one transaction = one WAL record *)
  let serialize () =
    Xmllib.Printer.document_to_string (O.Api.Store.document store)
  in
  let snaps = ref [ serialize () ] in
  let rng = Xmllib.Rng.create 4242 in
  let frag k =
    Xmllib.Types.element "item"
      ~attrs:[ Xmllib.Types.attr "k0" (string_of_int k) ]
      [ Xmllib.Types.text (Printf.sprintf "op %d" k) ]
  in
  for i = 1 to 12 do
    O.Api.Store.atomically store (fun () ->
        let count = O.Api.Store.count store "/doc/item" in
        match Xmllib.Rng.int rng 3 with
        | 0 when count > 2 ->
            let k = 1 + Xmllib.Rng.int rng count in
            (match
               O.Api.Store.query_ids store (Printf.sprintf "/doc/item[%d]" k)
             with
            | [ id ] -> ignore (O.Api.Store.delete_subtree store ~id)
            | _ -> ())
        | 1 ->
            let pos = 1 + Xmllib.Rng.int rng (count + 1) in
            ignore
              (O.Api.Store.insert_subtree store
                 ~parent:(O.Api.Store.root_id store)
                 ~pos (frag i))
        | _ ->
            let k = 1 + Xmllib.Rng.int rng count in
            (match
               O.Api.Store.query_ids store (Printf.sprintf "/doc/item[%d]" k)
             with
            | [ id ] ->
                ignore
                  (O.Api.Store.set_attribute store ~id ~name:"k1"
                     ~value:(string_of_int i))
            | _ -> ()));
    snaps := serialize () :: !snaps
  done;
  let snaps = Array.of_list (List.rev !snaps) in
  D.close db;
  let gen1 = Filename.concat dir "wal.1.log" in
  let image = read_bytes gen1 in
  let ends = W.frame_ends gen1 in
  check int_t "one record per op" 12 (List.length ends);
  (* every frame boundary, plus cuts landing inside each record *)
  let cuts =
    List.concat_map (fun e -> [ e; e + 4 ]) (15 :: ends)
    |> List.filter (fun c -> c <= String.length image)
    |> List.sort_uniq compare
  in
  with_dir @@ fun dir2 ->
  Unix.mkdir dir2 0o755;
  let ckpt = read_bytes (Filename.concat dir "checkpoint.1.sql") in
  write_bytes (Filename.concat dir2 "checkpoint.1.sql") ckpt;
  List.iter
    (fun cut ->
      write_bytes (Filename.concat dir2 "wal.1.log")
        (String.sub image 0 cut);
      let k = List.length (List.filter (fun e -> e <= cut) ends) in
      let db = D.open_dir dir2 in
      let store = O.Api.Store.open_existing db ~name:"s" O.Encoding.Dewey_enc in
      (match O.Api.Store.check store with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "cut at %d: integrity violated: %s" cut
            (String.concat "; " msgs));
      let got =
        Xmllib.Printer.document_to_string (O.Api.Store.document store)
      in
      D.close db;
      if got <> snaps.(k) then
        Alcotest.failf "cut at %d: document is not the %d-op prefix" cut k)
    cuts

let tests =
  ( "wal",
    [
      Alcotest.test_case "crc32 vectors" `Quick test_crc32;
      Alcotest.test_case "record framing round trip" `Quick test_roundtrip;
      Alcotest.test_case "read_file at every truncation offset" `Quick
        test_truncate_every_offset;
      Alcotest.test_case "bit flip ends the valid prefix" `Quick
        test_corrupt_record_ends_prefix;
      Alcotest.test_case "writer truncates torn tail" `Quick
        test_writer_truncates_torn_tail;
      Alcotest.test_case "writer generation checks" `Quick
        test_writer_gen_mismatch;
      Alcotest.test_case "fsync policies" `Quick test_fsync_policies;
      Alcotest.test_case "open, write, close, reopen" `Quick
        test_open_close_reopen;
      Alcotest.test_case "reads are not logged" `Quick test_select_not_logged;
      Alcotest.test_case "transaction batching and rollback" `Quick
        test_txn_batching;
      Alcotest.test_case "prepared and bulk writes are logged" `Quick
        test_prepared_and_bulk_logged;
      Alcotest.test_case "checkpoint folds the log" `Quick test_checkpoint;
      Alcotest.test_case "auto checkpoint" `Quick test_auto_checkpoint;
      Alcotest.test_case "in-memory databases are unaffected" `Quick
        test_in_memory_unaffected;
      Alcotest.test_case "observability counters" `Quick test_obs_counters;
    ] )

let crash_tests =
  ( "wal-crash",
    [
      Alcotest.test_case "truncate the WAL at every byte offset" `Quick
        test_truncate_wal_every_offset;
      Alcotest.test_case "writes after recovery are durable" `Quick
        test_write_after_recovery;
      Alcotest.test_case "kill inside commit" `Quick test_crash_in_commit;
      Alcotest.test_case "kill at every checkpoint step" `Quick
        test_crash_in_checkpoint;
      Alcotest.test_case "interrupted-checkpoint debris is swept" `Quick
        test_stale_tmp_swept;
      Alcotest.test_case "store-level crash recovery" `Quick
        test_store_crash_recovery;
    ] )
