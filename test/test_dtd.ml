(* DTD-lite: parsing, derivative-based validation, sampling. *)

module D = Xmllib.Dtd
module T = Xmllib.Types

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let catalog_dtd =
  {|
  <!-- a small catalog schema -->
  <!ELEMENT catalog (book+)>
  <!ELEMENT book (title, author*, (price | offer)?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT offer EMPTY>
  <!ATTLIST book isbn CDATA #REQUIRED
                 year CDATA #IMPLIED
                 lang CDATA "en">
  |}

let dtd = lazy (D.parse catalog_dtd)

let doc_of s = Xmllib.Parser.parse_document s

let valid s =
  match D.validate (Lazy.force dtd) (doc_of s) with
  | Ok () -> true
  | Error _ -> false

let errors s =
  match D.validate (Lazy.force dtd) (doc_of s) with
  | Ok () -> []
  | Error msgs -> msgs

let test_parse () =
  let t = Lazy.force dtd in
  check int_t "elements" 6 (List.length (D.element_names t));
  (match D.content_of t "book" with
  | Some (D.C_model _) -> ()
  | _ -> Alcotest.fail "book model");
  (match D.content_of t "offer" with
  | Some D.C_empty -> ()
  | _ -> Alcotest.fail "offer EMPTY");
  check int_t "book attrs" 3 (List.length (D.attributes_of t "book"))

let test_parse_errors () =
  let bad s =
    match D.parse s with
    | exception D.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" s
  in
  bad "";
  bad "<!ELEMENT a >";
  bad "<!ELEMENT a (b,>";
  bad "<!ELEMENT a (#PCDATA|b)>";
  bad "<!ELEMENT a (b)> <!ELEMENT a (c)>";
  bad "<!WRONG a (b)>"

let test_validate_positive () =
  check bool_t "minimal" true
    (valid {|<catalog><book isbn="1"><title>t</title></book></catalog>|});
  check bool_t "full" true
    (valid
       {|<catalog><book isbn="1" year="2000"><title>t</title><author>a</author><author>b</author><price>3</price></book><book isbn="2"><title>u</title><offer/></book></catalog>|})

let test_validate_negative () =
  (* order matters: title must come first *)
  check bool_t "order violation" false
    (valid {|<catalog><book isbn="1"><author>a</author><title>t</title></book></catalog>|});
  (* choice is exclusive *)
  check bool_t "both price and offer" false
    (valid
       {|<catalog><book isbn="1"><title>t</title><price>3</price><offer/></book></catalog>|});
  (* + requires at least one *)
  check bool_t "empty catalog" false (valid {|<catalog/>|});
  (* EMPTY element with content *)
  check bool_t "offer with text" false
    (valid {|<catalog><book isbn="1"><title>t</title><offer>x</offer></book></catalog>|});
  (* attribute checks *)
  check bool_t "missing required" false
    (valid {|<catalog><book><title>t</title></book></catalog>|});
  check bool_t "undeclared attribute" false
    (valid {|<catalog><book isbn="1" bogus="x"><title>t</title></book></catalog>|});
  (* undeclared element *)
  check bool_t "undeclared element" false
    (valid {|<catalog><pamphlet/></catalog>|});
  (* messages mention the culprit *)
  check bool_t "message names element" true
    (List.exists
       (fun m -> Astring_contains.contains m "book")
       (errors {|<catalog><book isbn="1"/></catalog>|}))

let test_mixed_content () =
  let t = D.parse "<!ELEMENT p (#PCDATA | em)*> <!ELEMENT em (#PCDATA)>" in
  let ok s = D.validate t (doc_of s) = Ok () in
  check bool_t "mixed ok" true (ok "<p>one <em>two</em> three</p>");
  check bool_t "mixed bad child" false (ok "<p>one <strong>x</strong></p>")

let test_nested_models () =
  let t =
    D.parse
      "<!ELEMENT s ((a, b)+ | c)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> \
       <!ELEMENT c EMPTY>"
  in
  let ok s = D.validate t (doc_of s) = Ok () in
  check bool_t "(a,b)+" true (ok "<s><a/><b/><a/><b/></s>");
  check bool_t "c alone" true (ok "<s><c/></s>");
  check bool_t "incomplete pair" false (ok "<s><a/><b/><a/></s>");
  check bool_t "mixing branches" false (ok "<s><a/><b/><c/></s>")

(* sampled documents always validate *)
let prop_sample_validates =
  QCheck.Test.make ~name:"sampled documents validate" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let t = Lazy.force dtd in
      let doc = D.sample t ~root:"catalog" (Xmllib.Rng.create seed) in
      D.validate t doc = Ok ())

(* a recursive DTD terminates and validates *)
let prop_recursive_sample =
  let rec_dtd =
    D.parse
      "<!ELEMENT tree (leaf | node)> <!ELEMENT node (tree, tree)> \
       <!ELEMENT leaf EMPTY>"
  in
  QCheck.Test.make ~name:"recursive DTD sampling terminates" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let doc = D.sample rec_dtd ~root:"tree" (Xmllib.Rng.create seed) in
      D.validate rec_dtd doc = Ok ())

(* random DAG-shaped DTDs from the schema-oracle generator: sampling must
   always produce a document the same DTD validates *)
let prop_random_dtd_sample_validates =
  QCheck.Test.make ~name:"random DTDs: sample satisfies validate" ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let case = QCheck.Gen.generate1 ~rand Xpath_gen.gen_schema_case in
      let t = D.parse case.Xpath_gen.dtd_text in
      let doc = D.sample t ~root:case.Xpath_gen.root (Xmllib.Rng.create seed) in
      D.validate t doc = Ok ())

(* mixed content under a recursive schema: sample still terminates and
   validates (depth cut-off picks the lightest branch) *)
let prop_recursive_mixed_sample =
  let t =
    D.parse
      "<!ELEMENT p (#PCDATA | p | em)*> <!ELEMENT em (#PCDATA)>"
  in
  QCheck.Test.make ~name:"recursive mixed DTD sampling validates" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let doc = D.sample t ~root:"p" (Xmllib.Rng.create seed) in
      D.validate t doc = Ok ())

(* content_of / attributes_of on the edges of the declaration space *)
let test_introspection_edges () =
  let t =
    D.parse
      {|<!ELEMENT box ANY> <!ELEMENT hr EMPTY> <!ELEMENT note (#PCDATA)>
        <!ATTLIST hr width CDATA "1" style CDATA #IMPLIED>|}
  in
  (match D.content_of t "box" with
  | Some D.C_any -> ()
  | _ -> Alcotest.fail "box is ANY");
  (match D.content_of t "hr" with
  | Some D.C_empty -> ()
  | _ -> Alcotest.fail "hr is EMPTY");
  check bool_t "undeclared element has no content" true
    (D.content_of t "missing" = None);
  check int_t "hr attrs" 2 (List.length (D.attributes_of t "hr"));
  (match List.assoc_opt "width" (D.attributes_of t "hr") with
  | Some (D.A_default "1") -> ()
  | _ -> Alcotest.fail "width defaults to 1");
  (match List.assoc_opt "style" (D.attributes_of t "hr") with
  | Some D.A_implied -> ()
  | _ -> Alcotest.fail "style implied");
  check bool_t "undeclared element has no attrs" true
    (D.attributes_of t "missing" = []);
  check bool_t "declared element, no ATTLIST" true (D.attributes_of t "box" = []);
  (* ANY accepts declared elements and text, rejects undeclared elements *)
  let ok s = D.validate t (doc_of s) = Ok () in
  check bool_t "ANY accepts mixture" true (ok "<box>free <hr/> text<note>n</note></box>");
  check bool_t "ANY rejects undeclared" false (ok "<box><mystery/></box>");
  (* sampling honours defaulted/implied attributes when they appear *)
  let doc = D.sample t ~root:"hr" (Xmllib.Rng.create 5) in
  check bool_t "sampled hr validates" true (D.validate t doc = Ok ())

(* the XMark-style generator conforms to its own DTD *)
let xmark_dtd = Xmllib.Generator.xmark_dtd

let test_xmark_conforms () =
  let t = D.parse xmark_dtd in
  match D.validate t (Xmllib.Generator.xmark ~seed:11 ~scale:1 ()) with
  | Ok () -> ()
  | Error msgs ->
      Alcotest.failf "generator violates its DTD: %s"
        (String.concat "; " msgs)

let tests =
  ( "dtd",
    [
      Alcotest.test_case "parse" `Quick test_parse;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "validate (positive)" `Quick test_validate_positive;
      Alcotest.test_case "validate (negative)" `Quick test_validate_negative;
      Alcotest.test_case "mixed content" `Quick test_mixed_content;
      Alcotest.test_case "nested models" `Quick test_nested_models;
      Alcotest.test_case "introspection edge cases" `Quick
        test_introspection_edges;
      Alcotest.test_case "xmark generator conforms" `Quick test_xmark_conforms;
      QCheck_alcotest.to_alcotest prop_sample_validates;
      QCheck_alcotest.to_alcotest prop_recursive_sample;
      QCheck_alcotest.to_alcotest prop_random_dtd_sample_validates;
      QCheck_alcotest.to_alcotest prop_recursive_mixed_sample;
    ] )
