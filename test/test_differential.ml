(* Cross-encoding differential oracle (ISSUE 3): random documents x random
   XPath, evaluated through the full SQL path over every order encoding, must
   agree with the direct DOM oracle in document order — both on freshly
   shredded documents and after randomized update workloads that exercise the
   bulk-write and renumbering paths. *)

module O = Ordered_xml

let encodings = O.Encoding.all

(* --- fresh shreds: stores vs Dom_eval --------------------------------- *)

let doc_seeds = 30
let paths_per_doc = 7

let run_fresh_case cases doc_seed =
  let doc =
    Xmllib.Generator.random_tree ~seed:doc_seed ~max_depth:5 ~max_fanout:4 ()
  in
  let idx = O.Doc_index.build doc in
  let db = Reldb.Db.create () in
  let stores =
    List.map (fun enc -> (enc, O.Api.Store.create db ~name:"q" enc doc)) encodings
  in
  let rand = Random.State.make [| doc_seed |] in
  let paths = QCheck.Gen.generate ~rand ~n:paths_per_doc Xpath_gen.gen_path in
  List.iter
    (fun path ->
      incr cases;
      let xpath = O.Xpath_ast.to_string path in
      let expected = O.Dom_eval.eval idx path in
      List.iter
        (fun (enc, store) ->
          let got = O.Api.Store.query_ids store xpath in
          if got <> expected then
            Alcotest.failf "seed %d, %s, %s: oracle [%s], sql [%s]" doc_seed
              (O.Encoding.name enc) xpath
              (String.concat "," (List.map string_of_int expected))
              (String.concat "," (List.map string_of_int got)))
        stores)
    paths

let test_fresh_shreds () =
  let cases = ref 0 in
  for seed = 1 to doc_seeds do
    run_fresh_case cases seed
  done;
  Alcotest.check Alcotest.bool "at least 200 (doc, query) cases" true
    (!cases >= 200)

(* --- after update workloads -------------------------------------------- *)

let frag =
  Xmllib.Types.element "item"
    ~attrs:[ Xmllib.Types.attr "k0" "77" ]
    [ Xmllib.Types.text "mutated" ]

(* probes evaluated after each workload; attribute and text() selections go
   through query_values since attribute nodes cannot be reconstructed *)
let id_probes = [ "/doc/item"; "/doc/item[2]"; "/doc/item[last()]"; "//item" ]
let value_probes = [ "//item/@k0"; "/doc/item/text()"; "/doc/item[1]" ]

let apply_workload stores rng ops =
  for _ = 1 to ops do
    let count = O.Api.Store.count (snd (List.hd stores)) "/doc/item" in
    let op = Xmllib.Rng.int rng 3 in
    if op = 0 && count > 2 then begin
      let k = 1 + Xmllib.Rng.int rng count in
      List.iter
        (fun (_, s) ->
          match O.Api.Store.query_ids s (Printf.sprintf "/doc/item[%d]" k) with
          | [ id ] -> ignore (O.Api.Store.delete_subtree s ~id)
          | _ -> ())
        stores
    end
    else if op = 1 then begin
      let pos = 1 + Xmllib.Rng.int rng (count + 1) in
      List.iter
        (fun (_, s) ->
          ignore
            (O.Api.Store.insert_subtree s ~parent:(O.Api.Store.root_id s) ~pos
               frag))
        stores
    end
    else begin
      let k = 1 + Xmllib.Rng.int rng count in
      let v = string_of_int (Xmllib.Rng.int rng 1000) in
      List.iter
        (fun (_, s) ->
          match O.Api.Store.query_ids s (Printf.sprintf "/doc/item[%d]" k) with
          | [ id ] ->
              ignore (O.Api.Store.set_attribute s ~id ~name:"k1" ~value:v)
          | _ -> ())
        stores
    end
  done

let run_update_case cases seed =
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:6 () in
  let db = Reldb.Db.create () in
  let stores =
    List.map (fun enc -> (enc, O.Api.Store.create db ~name:"w" enc doc)) encodings
  in
  let rng = Xmllib.Rng.create seed in
  apply_workload stores rng 12;
  (* every encoding reconstructs the same document *)
  let rendered =
    List.map
      (fun (enc, s) ->
        (enc, Xmllib.Printer.document_to_string (O.Api.Store.document s)))
      stores
  in
  (match rendered with
  | (enc0, d0) :: rest ->
      List.iter
        (fun (enc, d) ->
          if d <> d0 then
            Alcotest.failf "seed %d: %s and %s reconstruct different documents"
              seed (O.Encoding.name enc0) (O.Encoding.name enc))
        rest
  | [] -> ());
  (* the DOM oracle over the reconstructed document agrees with the SQL path
     on string-values, and the encodings agree pairwise on ids *)
  let idx = O.Doc_index.build (O.Api.Store.document (snd (List.hd stores))) in
  List.iter
    (fun xpath ->
      incr cases;
      let path = O.Xpath_parser.parse xpath in
      let expected =
        List.map (O.Dom_eval.string_value idx) (O.Dom_eval.eval idx path)
      in
      List.iter
        (fun (enc, s) ->
          let got = O.Api.Store.query_values s xpath in
          if got <> expected then
            Alcotest.failf "seed %d, %s, %s: oracle values [%s], sql [%s]" seed
              (O.Encoding.name enc) xpath
              (String.concat ";" expected)
              (String.concat ";" got))
        stores)
    value_probes;
  List.iter
    (fun xpath ->
      incr cases;
      let results =
        List.map (fun (enc, s) -> (enc, O.Api.Store.query_ids s xpath)) stores
      in
      match results with
      | (enc0, ids0) :: rest ->
          List.iter
            (fun (enc, ids) ->
              if ids <> ids0 then
                Alcotest.failf "seed %d, %s: %s=[%s] but %s=[%s]" seed xpath
                  (O.Encoding.name enc0)
                  (String.concat "," (List.map string_of_int ids0))
                  (O.Encoding.name enc)
                  (String.concat "," (List.map string_of_int ids)))
            rest
      | [] -> ())
    id_probes;
  (* structural invariants survive the workload *)
  List.iter
    (fun (enc, s) ->
      match O.Api.Store.check s with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "seed %d: %s integrity violated: %s" seed
            (O.Encoding.name enc)
            (String.concat "; " msgs))
    stores

let test_after_updates () =
  let cases = ref 0 in
  for seed = 101 to 110 do
    run_update_case cases seed
  done;
  Alcotest.check Alcotest.bool "update-phase probes ran" true (!cases >= 50)

(* --- crash, recover, compare (ISSUE 4) --------------------------------- *)

(* A durable store under a random update workload, killed at a random WAL
   offset: the recovered store must agree with the DOM oracle replayed to
   the same committed prefix. Fragment values are chosen to also stress the
   statement quoting the WAL shares with dump/restore. *)

let hostile_texts =
  [| "plain"; "a;b -- c"; "it's"; "line\nbreak"; "tab\there;"; "" |]

let crash_probes = [ "//item/@k0"; "/doc/item/text()"; "/doc/item[1]"; "//item" ]

let run_crash_case seed =
  let enc = List.nth encodings (seed mod List.length encodings) in
  Test_wal.with_dir @@ fun dir ->
  let db = Reldb.Db.open_dir ~fsync:Reldb.Wal.Never dir in
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:4 () in
  let store = O.Api.Store.create db ~name:"c" enc doc in
  Reldb.Db.checkpoint db;
  (* one op per transaction: WAL records and ops correspond 1:1 *)
  let rng = Xmllib.Rng.create seed in
  let snap () = O.Api.Store.document store in
  let snaps = ref [ snap () ] in
  (* log length after each op: maps a cut offset to the op prefix it keeps
     (an op whose transaction wrote nothing appends no record at all) *)
  let marks = ref [ Reldb.Db.wal_size db ] in
  for i = 1 to 10 do
    O.Api.Store.atomically store (fun () ->
        let count = O.Api.Store.count store "/doc/item" in
        let op = Xmllib.Rng.int rng 3 in
        if op = 0 && count > 2 then begin
          match
            O.Api.Store.query_ids store
              (Printf.sprintf "/doc/item[%d]" (1 + Xmllib.Rng.int rng count))
          with
          | [ id ] -> ignore (O.Api.Store.delete_subtree store ~id)
          | _ -> ()
        end
        else if op = 1 then
          let v = hostile_texts.(Xmllib.Rng.int rng (Array.length hostile_texts)) in
          let f =
            Xmllib.Types.element "item"
              ~attrs:[ Xmllib.Types.attr "k0" v ]
              [ Xmllib.Types.text v ]
          in
          ignore
            (O.Api.Store.insert_subtree store
               ~parent:(O.Api.Store.root_id store)
               ~pos:(1 + Xmllib.Rng.int rng (count + 1))
               f)
        else
          match
            O.Api.Store.query_ids store
              (Printf.sprintf "/doc/item[%d]" (1 + Xmllib.Rng.int rng count))
          with
          | [ id ] ->
              ignore
                (O.Api.Store.set_attribute store ~id ~name:"k0"
                   ~value:(Printf.sprintf "op;%d -- '" i))
          | _ -> ());
    snaps := snap () :: !snaps;
    marks := Reldb.Db.wal_size db :: !marks
  done;
  let snaps = Array.of_list (List.rev !snaps) in
  let marks = Array.of_list (List.rev !marks) in
  Reldb.Db.close db;
  let wal = Filename.concat dir "wal.1.log" in
  let image = Test_wal.read_bytes wal in
  (* kill at several random offsets of the op suffix, recover, compare *)
  for _ = 1 to 6 do
    let cut = 15 + Xmllib.Rng.int rng (String.length image - 14) in
    let k = ref 0 in
    Array.iteri (fun i m -> if m <= cut then k := i) marks;
    let k = !k in
    Test_wal.write_bytes wal (String.sub image 0 cut);
    let db = Reldb.Db.open_dir dir in
    let store = O.Api.Store.open_existing db ~name:"c" enc in
    (match O.Api.Store.check store with
    | Ok () -> ()
    | Error msgs ->
        Alcotest.failf "seed %d, cut %d: integrity violated: %s" seed cut
          (String.concat "; " msgs));
    let expected_doc = snaps.(k) in
    let got = Xmllib.Printer.document_to_string (O.Api.Store.document store) in
    if got <> Xmllib.Printer.document_to_string expected_doc then
      Alcotest.failf "seed %d, cut %d: recovered store is not the %d-op prefix"
        seed cut k;
    (* the DOM oracle over the expected prefix agrees with the SQL path *)
    let idx = O.Doc_index.build expected_doc in
    List.iter
      (fun xpath ->
        let path = O.Xpath_parser.parse xpath in
        let oracle =
          List.map (O.Dom_eval.string_value idx) (O.Dom_eval.eval idx path)
        in
        let sql = O.Api.Store.query_values store xpath in
        if sql <> oracle then
          Alcotest.failf "seed %d, cut %d, %s: oracle [%s], sql [%s]" seed cut
            xpath
            (String.concat ";" oracle)
            (String.concat ";" sql))
      crash_probes;
    Reldb.Db.close db
  done

let test_crash_recover_compare () =
  for seed = 201 to 208 do
    run_crash_case seed
  done

let tests =
  ( "differential",
    [
      Alcotest.test_case "fresh shreds agree with DOM oracle (200+ cases)"
        `Quick test_fresh_shreds;
      Alcotest.test_case "encodings agree after random update workloads"
        `Quick test_after_updates;
      Alcotest.test_case "crash-recover agrees with DOM oracle" `Quick
        test_crash_recover_compare;
    ] )
