(* Prepared statements, plan cache and bulk-write path (ISSUE 3): binding
   [?] parameters must behave exactly like inlined literals, the plan cache
   must hit on repeats and never serve stale plans across DDL / restore /
   rollback, and the script and bulk-insert paths must keep their
   transactional guarantees. *)

module D = Reldb.Db
module V = Reldb.Value

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let make_db () =
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE emp (id INT NOT NULL, name TEXT, salary INT)");
  ignore (D.exec db "CREATE UNIQUE INDEX emp_pk ON emp (id)");
  for i = 1 to 20 do
    ignore
      (D.exec db
         (Printf.sprintf "INSERT INTO emp VALUES (%d, 'e%d', %d)" i i (i * 100)))
  done;
  db

(* --- prepare / bind basics ------------------------------------------- *)

let test_prepare_basics () =
  let db = make_db () in
  let s = D.prepare db "SELECT name FROM emp WHERE id = ?" in
  check int_t "param count" 1 (D.Stmt.param_count s);
  (match D.Stmt.query s [| V.Int 3 |] with
  | [ [| V.Str "e3" |] ] -> ()
  | _ -> Alcotest.fail "id=3 should select e3");
  (* same statement, different binding: no cross-talk *)
  (match D.Stmt.query s [| V.Int 7 |] with
  | [ [| V.Str "e7" |] ] -> ()
  | _ -> Alcotest.fail "id=7 should select e7");
  (* parameters anywhere an expression goes *)
  let s2 =
    D.prepare db "SELECT id FROM emp WHERE salary >= ? AND salary <= ? ORDER BY id"
  in
  check int_t "two params" 2 (D.Stmt.param_count s2);
  check int_t "range rows" 3
    (List.length (D.Stmt.query s2 [| V.Int 400; V.Int 600 |]));
  (* DML through a prepared statement *)
  let ins = D.prepare db "INSERT INTO emp VALUES (?, ?, ?)" in
  (match D.Stmt.exec ins [| V.Int 21; V.Str "e21"; V.Int 2100 |] with
  | D.Affected 1 -> ()
  | _ -> Alcotest.fail "prepared INSERT should affect 1 row");
  let upd = D.prepare db "UPDATE emp SET salary = ? WHERE id = ?" in
  (match D.Stmt.exec upd [| V.Int 9999; V.Int 21 |] with
  | D.Affected 1 -> ()
  | _ -> Alcotest.fail "prepared UPDATE should affect 1 row");
  match D.query db "SELECT salary FROM emp WHERE id = 21" with
  | [ [| V.Int 9999 |] ] -> ()
  | _ -> Alcotest.fail "prepared UPDATE should have landed"

let test_prepare_errors () =
  let db = make_db () in
  let s = D.prepare db "SELECT name FROM emp WHERE id = ?" in
  (* arity mismatches *)
  (match D.Stmt.exec s [||] with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "zero params for one slot should fail");
  (match D.Stmt.exec s [| V.Int 1; V.Int 2 |] with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "two params for one slot should fail");
  (* unbound parameters cannot go through plain exec *)
  (match D.exec db "SELECT name FROM emp WHERE id = ?" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "exec of parameterized SQL should fail");
  (* evaluating an unbound Param directly raises *)
  match Reldb.Expr.eval (Reldb.Expr.Param 0) [||] with
  | exception Reldb.Expr.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound Param eval should raise"

(* --- plan cache hit/miss trajectory ----------------------------------- *)

let test_cache_trajectory () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled was) @@ fun () ->
  let db = make_db () in
  let hits0, misses0, _ = D.plan_cache_stats db in
  check int_t "no hits yet" 0 hits0;
  let q = "SELECT name FROM emp WHERE salary > 500" in
  let r1 = D.query db q in
  let hits1, misses1, entries1 = D.plan_cache_stats db in
  check int_t "first run misses" (misses0 + 1) misses1;
  check int_t "first run does not hit" 0 hits1;
  check bool_t "entry stored" true (entries1 >= 1);
  let r2 = D.query db q in
  let r3 = D.query db q in
  let hits3, misses3, _ = D.plan_cache_stats db in
  check int_t "repeats hit" 2 hits3;
  check int_t "repeats do not miss" misses1 misses3;
  check bool_t "cached plan returns identical rows" true (r1 = r2 && r2 = r3);
  (* the Obs counters track the same trajectory *)
  check int_t "obs hit counter" 2 (Obs.counter_value "db.plan_cache.hit");
  check bool_t "obs miss counter" true
    (Obs.counter_value "db.plan_cache.miss" >= 1);
  (* DML is not cacheable and must not count as a miss *)
  let _, misses_before, _ = D.plan_cache_stats db in
  ignore (D.exec db "UPDATE emp SET salary = 1 WHERE id = 1");
  let _, misses_after, _ = D.plan_cache_stats db in
  check int_t "DML does not count as a cache miss" misses_before misses_after

(* --- invalidation ------------------------------------------------------ *)

let test_cache_invalidation_ddl () =
  let db = make_db () in
  let q = "SELECT * FROM emp WHERE id = 1" in
  ignore (D.query db q);
  ignore (D.query db q);
  let hits1, _, _ = D.plan_cache_stats db in
  check int_t "warm" 1 hits1;
  (* unrelated DDL still invalidates (version counter is global) *)
  ignore (D.exec db "CREATE TABLE other (x INT)");
  ignore (D.query db q);
  let hits2, misses2, _ = D.plan_cache_stats db in
  check int_t "no stale hit after CREATE TABLE" hits1 hits2;
  check bool_t "replanned after CREATE TABLE" true (misses2 >= 2);
  (* DROP + CREATE with a different shape: the old plan would be wrong *)
  ignore (D.exec db "DROP TABLE other");
  ignore (D.query db "SELECT * FROM emp"); (* warm a star plan *)
  ignore (D.exec db "DROP TABLE emp");
  ignore (D.exec db "CREATE TABLE emp (only_col TEXT)");
  ignore (D.exec db "INSERT INTO emp VALUES ('fresh')");
  (match D.query db "SELECT * FROM emp" with
  | [ [| V.Str "fresh" |] ] -> ()
  | rows ->
      Alcotest.failf "stale plan after DROP/CREATE: got %d-column rows"
        (match rows with r :: _ -> Array.length r | [] -> 0))

let test_cache_invalidation_index () =
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE t (a INT, b INT)");
  for i = 1 to 10 do
    ignore (D.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done;
  let q = "SELECT b FROM t WHERE a = 5" in
  ignore (D.query db q);
  ignore (D.query db q);  (* cached: seq-scan plan *)
  ignore (D.exec db "CREATE UNIQUE INDEX t_a ON t (a)");
  (* the cached seq-scan plan must not survive the new access path *)
  let explained = D.explain db q in
  check bool_t "explain shows the index after CREATE INDEX" true
    (let lower = String.lowercase_ascii explained in
     let has needle =
       let nl = String.length needle and l = String.length lower in
       let rec go i = i + nl <= l && (String.sub lower i nl = needle || go (i + 1)) in
       go 0
     in
     has "index");
  match D.query db q with
  | [ [| V.Int 5 |] ] -> ()
  | _ -> Alcotest.fail "index-backed replan returns the right row"

let test_cache_restore_and_rollback () =
  let db = make_db () in
  let q = "SELECT COUNT(*) FROM emp" in
  ignore (D.query db q);
  ignore (D.query db q);
  (* restore builds a fresh engine: cold cache, correct answers *)
  let db2 = D.restore (D.dump db) in
  let hits, misses, entries = D.plan_cache_stats db2 in
  check int_t "restored cache is cold (hits)" 0 hits;
  check int_t "restored cache is cold (misses)" 0 misses;
  check int_t "restored cache is cold (entries)" 0 entries;
  (match D.query db2 q with
  | [ [| V.Int 20 |] ] -> ()
  | _ -> Alcotest.fail "restored db answers correctly");
  (* a rollback must not affect plan validity: cached plans carry no data *)
  ignore (D.query db2 q);
  D.begin_txn db2;
  ignore (D.exec db2 "INSERT INTO emp VALUES (999, 'ghost', 1)");
  (match D.query db2 q with
  | [ [| V.Int 21 |] ] -> ()
  | _ -> Alcotest.fail "in-txn count sees the insert");
  D.rollback db2;
  match D.query db2 q with
  | [ [| V.Int 20 |] ] -> ()
  | _ -> Alcotest.fail "post-rollback cached plan returns pre-txn rows"

let test_cache_lru_cap () =
  let db = make_db () in
  for i = 1 to 200 do
    ignore (D.query db (Printf.sprintf "SELECT name FROM emp WHERE id = %d" (i mod 25)))
  done;
  let _, _, entries = D.plan_cache_stats db in
  check bool_t "cache stays within its cap" true (entries <= 128)

(* --- property: prepared == inlined ------------------------------------- *)

let arb_query_shape =
  let gen =
    QCheck.Gen.(
      quad (int_bound 25) (int_bound 2500) (oneofl [ "="; "<"; ">"; "<=" ])
        (oneofl [ "id"; "salary" ]))
  in
  let print (a, b, op, col) = Printf.sprintf "id=%d sal=%d op=%s col=%s" a b op col in
  QCheck.make ~print gen

let prop_db = lazy (make_db ())

let prop_prepared_equals_inlined =
  QCheck.Test.make ~name:"prepared with bound params == inlined literals"
    ~count:100 arb_query_shape (fun (a, b, op, col) ->
      let db = Lazy.force prop_db in
      let mk v1 v2 =
        Printf.sprintf
          "SELECT id, name, salary FROM emp WHERE id >= %s AND %s %s %s ORDER BY id"
          v1 col op v2
      in
      let inlined = mk (string_of_int a) (string_of_int b) in
      let parameterized = mk "?" "?" in
      let expect = D.query db inlined in
      let s = D.prepare db parameterized in
      let got = D.Stmt.query s [| V.Int a; V.Int b |] in
      if got <> expect then
        QCheck.Test.fail_reportf "prepared differs from inlined for %s" inlined
      else begin
        (* the parameterized form lints clean: a bound-at-runtime value must
           not trip constant-analysis rules *)
        let stmt = Reldb.Sql_parser.parse parameterized in
        let findings =
          List.filter
            (fun f -> f.Analysis.Finding.severity <> Analysis.Finding.Info)
            (Analysis.Lint.lint_stmt ~catalog:(D.catalog db) stmt)
        in
        findings = []
      end)

(* --- bulk writes -------------------------------------------------------- *)

let test_insert_many () =
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE t (a INT NOT NULL, b TEXT)");
  ignore (D.exec db "CREATE UNIQUE INDEX t_a ON t (a)");
  let n =
    D.insert_many db "t"
      [ [| V.Int 1; V.Str "x" |]; [| V.Int 2; V.Str "y" |]; [| V.Int 3; V.Null |] ]
  in
  check int_t "rows loaded" 3 n;
  (match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "bulk rows visible to SQL");
  (* atomicity: a duplicate key in the batch undoes the whole batch *)
  (match
     D.insert_many db "t" [ [| V.Int 4; V.Null |]; [| V.Int 1; V.Str "dup" |] ]
   with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate key batch should fail");
  match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "failed batch left no partial rows"

(* --- multi-row INSERT grammar ------------------------------------------ *)

let test_multi_row_insert () =
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE t (a INT, b TEXT)");
  (match D.exec db "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')" with
  | D.Affected 3 -> ()
  | _ -> Alcotest.fail "multi-VALUES INSERT affects 3");
  match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "three rows present"

(* --- exec_script -------------------------------------------------------- *)

let test_exec_script_transactional () =
  let db = D.create () in
  (* DDL + DML mix: DDL closes the implicit bracket, DML groups *)
  D.exec_script db
    [
      "CREATE TABLE t (a INT NOT NULL)";
      "INSERT INTO t VALUES (1)";
      "INSERT INTO t VALUES (2)";
      "CREATE UNIQUE INDEX t_a ON t (a)";
      "INSERT INTO t VALUES (3)";
    ];
  (match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "script loaded all rows");
  (* a failing statement rolls back the whole DML run it belongs to *)
  (match
     D.exec_script db
       [ "INSERT INTO t VALUES (10)"; "INSERT INTO t VALUES (1)" (* dup *) ]
   with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate in script should fail");
  (match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "failed script run left no partial rows");
  check bool_t "no transaction left open" false (D.in_transaction db);
  (* inside a caller transaction the script just joins it *)
  D.begin_txn db;
  D.exec_script db [ "INSERT INTO t VALUES (11)" ];
  check bool_t "caller txn still open" true (D.in_transaction db);
  D.rollback db;
  match D.query db "SELECT COUNT(*) FROM t" with
  | [ [| V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "caller rollback undoes script rows"

let test_dump_restore_roundtrip () =
  let db = make_db () in
  ignore (D.exec db "UPDATE emp SET name = 'renamed' WHERE id = 2");
  let db2 = D.restore (D.dump db) in
  check bool_t "roundtrip preserves rows" true
    (D.query db "SELECT * FROM emp ORDER BY id"
    = D.query db2 "SELECT * FROM emp ORDER BY id")

let tests =
  ( "prepared",
    [
      Alcotest.test_case "prepare and bind" `Quick test_prepare_basics;
      Alcotest.test_case "prepare error cases" `Quick test_prepare_errors;
      Alcotest.test_case "plan cache hit/miss trajectory" `Quick
        test_cache_trajectory;
      Alcotest.test_case "cache invalidation: DDL" `Quick
        test_cache_invalidation_ddl;
      Alcotest.test_case "cache invalidation: CREATE INDEX" `Quick
        test_cache_invalidation_index;
      Alcotest.test_case "cache: restore and rollback" `Quick
        test_cache_restore_and_rollback;
      Alcotest.test_case "cache LRU cap" `Quick test_cache_lru_cap;
      QCheck_alcotest.to_alcotest prop_prepared_equals_inlined;
      Alcotest.test_case "insert_many" `Quick test_insert_many;
      Alcotest.test_case "multi-row INSERT" `Quick test_multi_row_insert;
      Alcotest.test_case "exec_script transactions" `Quick
        test_exec_script_transactional;
      Alcotest.test_case "dump/restore roundtrip" `Quick
        test_dump_restore_roundtrip;
    ] )
