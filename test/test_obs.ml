(* Observability: metric registries, percentile math, span trees, and the
   instrumented executor behind Db.explain_analyze. *)

module D = Reldb.Db

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let float_t = Alcotest.float 1e-9

(* tests share the process-global registries: start each one clean *)
let fresh () =
  Obs.set_enabled true;
  Obs.reset ()

let test_counter () =
  fresh ();
  let c = Obs.Counter.create "c.test" in
  check int_t "initial" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  check int_t "after incr+add" 11 (Obs.Counter.value c);
  (* create finds, it does not reset *)
  let c' = Obs.Counter.create "c.test" in
  check int_t "find-or-create aliases" 11 (Obs.Counter.value c');
  Obs.incr "c.test";
  check int_t "name-based incr" 12 (Obs.Counter.value c);
  check bool_t "find" true (Obs.Counter.find "c.test" <> None);
  check bool_t "find missing" true (Obs.Counter.find "c.absent" = None)

let test_gauge () =
  fresh ();
  let g = Obs.Gauge.create "g.test" in
  Obs.Gauge.set g 2.5;
  Obs.Gauge.add g 1.0;
  check float_t "set+add" 3.5 (Obs.Gauge.value g);
  Obs.set_gauge "g.test" 7.0;
  check float_t "name-based set overwrites" 7.0 (Obs.Gauge.value g)

let test_histogram_percentiles () =
  fresh ();
  let h = Obs.Histogram.create "h.test" in
  (* observe 1..100 shuffled: nearest-rank percentiles are exact *)
  List.iter
    (fun i -> Obs.Histogram.observe h (float_of_int (((i * 37) mod 100) + 1)))
    (List.init 100 Fun.id);
  check int_t "count" 100 (Obs.Histogram.count h);
  check float_t "sum" 5050.0 (Obs.Histogram.sum h);
  check float_t "min" 1.0 (Obs.Histogram.min_value h);
  check float_t "max" 100.0 (Obs.Histogram.max_value h);
  check float_t "mean" 50.5 (Obs.Histogram.mean h);
  check float_t "p50" 50.0 (Obs.Histogram.p50 h);
  check float_t "p95" 95.0 (Obs.Histogram.p95 h);
  check float_t "p99" 99.0 (Obs.Histogram.p99 h);
  check float_t "p100" 100.0 (Obs.Histogram.percentile h 100.0);
  (* a tiny population: nearest rank of p50 over {1,2} is the 1st sample *)
  let h2 = Obs.Histogram.create "h.two" in
  Obs.Histogram.observe h2 1.0;
  Obs.Histogram.observe h2 2.0;
  check float_t "p50 of two" 1.0 (Obs.Histogram.p50 h2);
  let empty = Obs.Histogram.create "h.empty" in
  check float_t "empty percentile" 0.0 (Obs.Histogram.p50 empty)

let test_disabled_is_inert () =
  fresh ();
  Obs.set_enabled false;
  Fun.protect ~finally:(fun () -> Obs.set_enabled true) @@ fun () ->
  Obs.incr "off.counter";
  Obs.observe "off.hist" 1.0;
  let ran = ref false in
  let x, spans =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ "off.span" (fun () ->
            ran := true;
            42))
  in
  check int_t "thunk still runs" 42 x;
  check bool_t "ran" true !ran;
  check int_t "no spans recorded" 0 (List.length spans);
  check bool_t "no counter registered" true (Obs.Counter.find "off.counter" = None);
  check bool_t "no histogram registered" true (Obs.Histogram.find "off.hist" = None)

let test_span_nesting () =
  fresh ();
  let x, spans =
    Obs.Span.collect (fun () ->
        Obs.Span.with_ "outer" ~attrs:[ ("k", "v") ] (fun () ->
            Obs.Span.with_ "in1" (fun () -> ());
            Obs.Span.with_ "in2" (fun () -> ());
            7))
  in
  check int_t "result" 7 x;
  let names = List.map (fun s -> s.Obs.Span.sp_name) spans in
  check (Alcotest.list Alcotest.string) "preorder" [ "outer"; "in1"; "in2" ] names;
  let outer = List.hd spans in
  let in1 = List.nth spans 1 in
  check int_t "outer depth" 0 outer.Obs.Span.sp_depth;
  check int_t "inner depth" 1 in1.Obs.Span.sp_depth;
  check bool_t "attrs kept" true (outer.Obs.Span.sp_attrs = [ ("k", "v") ]);
  check bool_t "outer covers inner" true
    (Obs.Span.elapsed_ms outer >= Obs.Span.elapsed_ms in1);
  (* aggregate folds repeated names *)
  let agg = Obs.Span.aggregate spans in
  (match List.find_opt (fun (n, _, _) -> n = "in1") agg with
  | Some (_, n, _) -> check int_t "in1 count" 1 n
  | None -> Alcotest.fail "in1 missing from aggregate");
  (* rendering indents by depth *)
  let text = Obs.Span.to_string spans in
  check bool_t "render mentions outer" true
    (String.length text > 0 && String.sub text 0 5 = "outer");
  (* spans outside collect are not retained *)
  Obs.Span.with_ "loose" (fun () -> ());
  let _, spans2 = Obs.Span.collect (fun () -> ()) in
  check int_t "collect starts empty" 0 (List.length spans2)

let test_span_exception () =
  fresh ();
  let boom () =
    Obs.Span.with_ "fail" (fun () -> failwith "boom")
  in
  let _, spans =
    Obs.Span.collect (fun () -> try boom () with Failure _ -> ())
  in
  check int_t "failing span still recorded" 1 (List.length spans)

let test_db_exec_metrics () =
  fresh ();
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE t (a INT)");
  ignore (D.exec db "INSERT INTO t VALUES (1), (2), (3)");
  ignore (D.exec db "SELECT * FROM t");
  ignore (D.exec db "SELECT * FROM t");
  (match Obs.Counter.find "db.statements" with
  | Some c -> check int_t "statement counter" 4 (Obs.Counter.value c)
  | None -> Alcotest.fail "db.statements not registered");
  (match Obs.Histogram.find "db.exec.select" with
  | Some h -> check int_t "select histogram" 2 (Obs.Histogram.count h)
  | None -> Alcotest.fail "db.exec.select not registered");
  let report = Obs.Report.to_text () in
  check bool_t "report mentions selects" true
    (Astring_contains.contains report "db.exec.select");
  let json = Obs.Report.to_json () in
  check bool_t "json mentions counters" true (Astring_contains.contains json "\"counters\"")

let test_slow_query_log () =
  fresh ();
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE t (a INT)");
  D.set_slow_query_threshold db (Some 0.0);
  ignore (D.exec db "INSERT INTO t VALUES (1)");
  ignore (D.exec db "SELECT * FROM t");
  (match D.slow_queries db with
  | (_, sql) :: _ -> check bool_t "newest first" true (Astring_contains.contains sql "SELECT")
  | [] -> Alcotest.fail "slow log empty at threshold 0");
  check int_t "both logged" 2 (List.length (D.slow_queries db));
  D.set_slow_query_threshold db None;
  ignore (D.exec db "SELECT * FROM t");
  check int_t "disabled stops logging" 2 (List.length (D.slow_queries db));
  D.clear_slow_queries db;
  check int_t "cleared" 0 (List.length (D.slow_queries db))

let test_explain_analyze () =
  fresh ();
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE emp (id INT, dept INT)");
  for i = 1 to 20 do
    ignore
      (D.exec db (Printf.sprintf "INSERT INTO emp VALUES (%d, %d)" i (i mod 3)))
  done;
  D.reset_counters db;
  let before = D.rows_read db in
  let out = D.explain_analyze db "SELECT * FROM emp WHERE dept = 1" in
  let scanned = D.rows_read db - before in
  check bool_t "names the operator" true (Astring_contains.contains out "SeqScan emp");
  check bool_t "scan produced every row" true
    (Astring_contains.contains out (Printf.sprintf "rows=%d" scanned));
  check bool_t "filter output present" true (Astring_contains.contains out "rows=7");
  check bool_t "total line" true (Astring_contains.contains out "logical rows read");
  (* rejects non-SELECT *)
  (match D.explain_analyze db "INSERT INTO emp VALUES (0, 0)" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "explain_analyze accepted an INSERT");
  (* loop counts: the inner side of a nested-loop join restarts per outer row *)
  let out2 =
    D.explain_analyze db
      "SELECT * FROM emp a, emp b WHERE a.id = 1 AND b.dept = a.dept"
  in
  check bool_t "join plan shown" true
    (Astring_contains.contains out2 "Join" || Astring_contains.contains out2 "loops=")

let tests =
  ( "obs",
    [
      Alcotest.test_case "counters" `Quick test_counter;
      Alcotest.test_case "gauges" `Quick test_gauge;
      Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
      Alcotest.test_case "disabled switch" `Quick test_disabled_is_inert;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span on exception" `Quick test_span_exception;
      Alcotest.test_case "db exec metrics" `Quick test_db_exec_metrics;
      Alcotest.test_case "slow query log" `Quick test_slow_query_log;
      Alcotest.test_case "explain analyze" `Quick test_explain_analyze;
    ] )
