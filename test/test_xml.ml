(* XML substrate: lexer, parser, printer, stats, generators. *)

module T = Xmllib.Types
module P = Xmllib.Parser
module Pr = Xmllib.Printer

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let parse_ok src = P.parse_document src

let parse_fails src =
  match P.parse_document src with
  | exception P.Parse_error _ -> ()
  | _ -> Alcotest.failf "expected a parse error on %S" src

let roundtrip src =
  let doc = parse_ok src in
  Pr.document_to_string doc

(* --- parsing ------------------------------------------------------- *)

let test_simple () =
  let doc = parse_ok "<a><b>hi</b><c/></a>" in
  check string_t "root tag" "a" doc.T.root.T.tag;
  check int_t "children" 2 (List.length doc.T.root.T.children)

let test_attributes () =
  let doc = parse_ok {|<a x="1" y='two &amp; three'/>|} in
  let n = T.Element doc.T.root in
  check (Alcotest.option string_t) "x" (Some "1") (T.attribute_value n "x");
  check (Alcotest.option string_t) "y" (Some "two & three") (T.attribute_value n "y")

let test_entities () =
  let doc = parse_ok "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" in
  check string_t "decoded" "<>&'\"AB" (T.text_content (T.Element doc.T.root))

let test_cdata () =
  let doc = parse_ok "<a><![CDATA[<raw> & text]]></a>" in
  check string_t "cdata" "<raw> & text" (T.text_content (T.Element doc.T.root))

let test_comment_pi () =
  let doc = parse_ok "<a><!-- note --><?target some data?></a>" in
  match doc.T.root.T.children with
  | [ T.Comment c; T.Pi { target; data } ] ->
      check string_t "comment" " note " c;
      check string_t "pi target" "target" target;
      check string_t "pi data" "some data" data
  | _ -> Alcotest.fail "expected comment + pi"

let test_decl_doctype () =
  let doc =
    parse_ok
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>"
  in
  check bool_t "decl" true doc.T.decl;
  check string_t "content" "x" (T.text_content (T.Element doc.T.root))

let test_whitespace_modes () =
  let src = "<a>\n  <b>x</b>\n</a>" in
  let data = parse_ok src in
  check int_t "ws dropped" 1 (List.length data.T.root.T.children);
  let ws = P.parse_document_ws src in
  check int_t "ws kept" 3 (List.length ws.T.root.T.children)

let test_mixed_content_ws () =
  (* whitespace inside mixed content is significant *)
  let doc = parse_ok "<a>one <b>two</b> three</a>" in
  check string_t "mixed" "one two three" (T.text_content (T.Element doc.T.root))

let test_self_closing () =
  let doc = parse_ok "<a><b/><b></b></a>" in
  check int_t "two empty" 2 (List.length doc.T.root.T.children)

let test_nested_deep () =
  let deep = String.concat "" (List.init 200 (fun _ -> "<d>")) ^ "x"
             ^ String.concat "" (List.init 200 (fun _ -> "</d>")) in
  let doc = parse_ok ("<a>" ^ deep ^ "</a>") in
  check int_t "depth" 202 (T.depth (T.Element doc.T.root))

let test_errors () =
  parse_fails "";
  parse_fails "<a>";
  parse_fails "<a></b>";
  parse_fails "<a><b></a></b>";
  parse_fails "<a x=1/>";
  parse_fails "<a x=\"1\" x=\"2\"/>";
  parse_fails "<a>&unknown;</a>";
  parse_fails "<a>&#xZZ;</a>";
  parse_fails "text only";
  parse_fails "<a/><b/>"

let test_fragment () =
  match P.parse_fragment "<a/>text<b>x</b>" with
  | [ T.Element _; T.Text "text"; T.Element _ ] -> ()
  | _ -> Alcotest.fail "fragment shape"

(* --- printing ------------------------------------------------------ *)

let test_print_escapes () =
  let n = T.element "a" ~attrs:[ T.attr "k" "a\"b<c" ] [ T.text "x<y&z" ] in
  check string_t "escaped"
    "<a k=\"a&quot;b&lt;c\">x&lt;y&amp;z</a>"
    (Pr.node_to_string n)

let test_print_parse_roundtrip () =
  let src = "<a k=\"v\"><b>one</b><!--c--><?p d?><c/>tail</a>" in
  check string_t "stable" (roundtrip src) (roundtrip (roundtrip src))

(* Regressions (ISSUE 4): raw tab/LF/CR in attribute values fall to XML 1.0
   §3.3.3 attribute-value normalization, and raw CR in character data to
   §2.11 end-of-line handling — a conforming reparse would fold them away.
   The printer must emit character references instead. *)

let reparse_node n = T.Element (parse_ok (Pr.node_to_string n)).T.root

let test_attr_control_roundtrip () =
  let hostile = "a\nb\tc\rd\"e<f&g" in
  let n = T.element "a" ~attrs:[ T.attr "k" hostile ] [] in
  let printed = Pr.node_to_string n in
  check string_t "control chars become character references"
    "<a k=\"a&#10;b&#9;c&#13;d&quot;e&lt;f&amp;g\"/>" printed;
  check (Alcotest.option string_t) "value survives a reparse" (Some hostile)
    (T.attribute_value (reparse_node n) "k")

let test_text_cr_roundtrip () =
  let n = T.element "a" [ T.text "one\rtwo\r\nthree\nfour" ] in
  let printed = Pr.node_to_string n in
  check string_t "CR becomes a character reference"
    "<a>one&#13;two&#13;\nthree\nfour</a>" printed;
  check string_t "text survives a reparse" "one\rtwo\r\nthree\nfour"
    (T.text_content (reparse_node n))

let test_comment_unserializable () =
  let ok = T.element "a" [ T.Comment "x - y" ] in
  check string_t "lone dashes are fine" "<a><!--x - y--></a>"
    (Pr.node_to_string ok);
  List.iter
    (fun body ->
      match Pr.node_to_string (T.Comment body) with
      | exception Pr.Unserializable _ -> ()
      | s -> Alcotest.failf "comment %S must not serialize (got %S)" body s)
    [ "a--b"; "--"; "ends with -" ]

let test_pi_unserializable () =
  let ok = T.element "a" [ T.Pi { target = "p"; data = "x > y?" } ] in
  check string_t "question marks are fine" "<a><?p x > y??></a>"
    (Pr.node_to_string ok);
  (match Pr.node_to_string (T.Pi { target = "p"; data = "a?>b" }) with
  | exception Pr.Unserializable _ -> ()
  | s -> Alcotest.failf "PI data with \"?>\" must not serialize (got %S)" s)

let test_pretty () =
  let n = T.element "a" [ T.element "b" [ T.text "x" ] ] in
  let s = Pr.pretty n in
  check bool_t "indented" true (String.length s > 10 && String.contains s '\n')

(* --- stats / normalize --------------------------------------------- *)

let test_stats () =
  let doc = parse_ok "<a x=\"1\"><b>t</b><b>u</b><!--c--></a>" in
  let s = Xmllib.Stats.compute doc in
  check int_t "elements" 3 s.Xmllib.Stats.elements;
  check int_t "attrs" 1 s.Xmllib.Stats.attributes;
  check int_t "texts" 2 s.Xmllib.Stats.texts;
  check int_t "others" 1 s.Xmllib.Stats.others;
  check int_t "depth" 3 s.Xmllib.Stats.max_depth;
  check int_t "tags" 2 s.Xmllib.Stats.distinct_tags

let test_tag_histogram () =
  let doc = parse_ok "<a><b/><b/><c/></a>" in
  match Xmllib.Stats.tag_histogram doc with
  | ("b", 2) :: _ -> ()
  | h ->
      Alcotest.failf "histogram head: %s"
        (String.concat "," (List.map (fun (t, c) -> Printf.sprintf "%s=%d" t c) h))

let test_normalize () =
  let n =
    T.element "a" [ T.text "x"; T.text ""; T.text "y"; T.element "b" [] ]
  in
  match T.normalize n with
  | T.Element { children = [ T.Text "xy"; T.Element _ ]; _ } -> ()
  | _ -> Alcotest.fail "normalize merged wrong"

let test_node_count () =
  let doc = parse_ok "<a x=\"1\"><b>t</b></a>" in
  (* a + @x + b + text *)
  check int_t "count" 4 (T.node_count (T.Element doc.T.root))

(* --- generators ----------------------------------------------------- *)

let test_xmark_deterministic () =
  let a = Xmllib.Generator.xmark ~seed:7 ~scale:1 () in
  let b = Xmllib.Generator.xmark ~seed:7 ~scale:1 () in
  check bool_t "same" true (T.equal_document a b);
  let c = Xmllib.Generator.xmark ~seed:8 ~scale:1 () in
  check bool_t "different seed" false (T.equal_document a c)

let test_xmark_shape () =
  let doc = Xmllib.Generator.xmark ~seed:1 ~scale:1 () in
  check string_t "root" "site" doc.T.root.T.tag;
  let tops = List.filter_map T.tag_of doc.T.root.T.children in
  check
    (Alcotest.list string_t)
    "sections"
    [ "regions"; "categories"; "people"; "open_auctions"; "closed_auctions" ]
    tops

let test_xmark_scales () =
  let s1 = Xmllib.Stats.compute (Xmllib.Generator.xmark ~seed:1 ~scale:1 ()) in
  let s4 = Xmllib.Stats.compute (Xmllib.Generator.xmark ~seed:1 ~scale:4 ()) in
  check bool_t "scale grows" true
    (s4.Xmllib.Stats.elements > 3 * s1.Xmllib.Stats.elements)

let test_flat () =
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:10 () in
  check int_t "children" 10 (List.length doc.T.root.T.children)

let test_random_tree_parses () =
  for seed = 1 to 20 do
    let doc = Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 () in
    let doc2 = P.parse_document_ws (Pr.document_to_string doc) in
    if not (T.equal_document (T.doc_of_node (T.normalize (T.Element doc.T.root)))
              (T.doc_of_node (T.normalize (T.Element doc2.T.root))))
    then Alcotest.failf "random tree %d failed print/parse roundtrip" seed
  done

(* qcheck: generator documents always survive print -> parse *)
let gen_doc =
  QCheck.Gen.(
    map
      (fun (seed, depth, fanout) ->
        Xmllib.Generator.random_tree ~seed ~max_depth:(1 + depth)
          ~max_fanout:(1 + fanout) ())
      (triple (int_bound 10_000) (int_bound 5) (int_bound 5)))

let arb_doc = QCheck.make ~print:Pr.document_to_string gen_doc

let prop_print_parse =
  QCheck.Test.make ~name:"print/parse identity" ~count:100 arb_doc (fun doc ->
      let doc2 = P.parse_document_ws (Pr.document_to_string doc) in
      T.equal_node
        (T.normalize (T.Element doc.T.root))
        (T.normalize (T.Element doc2.T.root)))

let prop_decode_entities =
  QCheck.Test.make ~name:"escape/decode identity" ~count:200
    QCheck.(string_gen QCheck.Gen.printable)
    (fun s -> Xmllib.Lexer.decode_entities (Pr.escape_text s) = s)

let test_sax_events () =
  let src = "<a x=\"1\"><b>t</b><!--c--><?p d?></a>" in
  let events = ref [] in
  Xmllib.Sax.iter src (fun ev -> events := ev :: !events);
  match List.rev !events with
  | [
   Xmllib.Sax.Start_element { tag = "a"; attrs = [ ("x", "1") ] };
   Xmllib.Sax.Start_element { tag = "b"; attrs = [] };
   Xmllib.Sax.Text "t";
   Xmllib.Sax.End_element "b";
   Xmllib.Sax.Comment "c";
   Xmllib.Sax.Pi { target = "p"; data = "d" };
   Xmllib.Sax.End_element "a";
  ] ->
      ()
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_sax_wellformedness () =
  let bad src =
    match Xmllib.Sax.count_events src with
    | exception Xmllib.Sax.Error _ -> ()
    | _ -> Alcotest.failf "expected SAX error on %S" src
  in
  bad "<a>";
  bad "<a></b>";
  bad "<a/><b/>";
  bad "text";
  bad ""

let test_sax_counts_match_dom () =
  let doc = Xmllib.Generator.xmark ~seed:2 ~scale:1 () in
  let src = Pr.document_to_string doc in
  (* events = non-attr records * 2-for-elements... simpler: compare texts *)
  let texts = ref 0 in
  Xmllib.Sax.iter src (fun ev ->
      match ev with Xmllib.Sax.Text _ -> incr texts | _ -> ());
  let s = Xmllib.Stats.compute doc in
  check int_t "text events" s.Xmllib.Stats.texts !texts

let tests =
  ( "xml",
    [
      Alcotest.test_case "simple" `Quick test_simple;
      Alcotest.test_case "attributes" `Quick test_attributes;
      Alcotest.test_case "entities" `Quick test_entities;
      Alcotest.test_case "cdata" `Quick test_cdata;
      Alcotest.test_case "comment+pi" `Quick test_comment_pi;
      Alcotest.test_case "decl+doctype" `Quick test_decl_doctype;
      Alcotest.test_case "whitespace modes" `Quick test_whitespace_modes;
      Alcotest.test_case "mixed content ws" `Quick test_mixed_content_ws;
      Alcotest.test_case "self-closing" `Quick test_self_closing;
      Alcotest.test_case "deep nesting" `Quick test_nested_deep;
      Alcotest.test_case "malformed inputs" `Quick test_errors;
      Alcotest.test_case "fragments" `Quick test_fragment;
      Alcotest.test_case "print escapes" `Quick test_print_escapes;
      Alcotest.test_case "print/parse stable" `Quick test_print_parse_roundtrip;
      Alcotest.test_case "attr control chars roundtrip" `Quick
        test_attr_control_roundtrip;
      Alcotest.test_case "text CR roundtrip" `Quick test_text_cr_roundtrip;
      Alcotest.test_case "unserializable comments" `Quick
        test_comment_unserializable;
      Alcotest.test_case "unserializable PIs" `Quick test_pi_unserializable;
      Alcotest.test_case "pretty printer" `Quick test_pretty;
      Alcotest.test_case "stats" `Quick test_stats;
      Alcotest.test_case "tag histogram" `Quick test_tag_histogram;
      Alcotest.test_case "normalize" `Quick test_normalize;
      Alcotest.test_case "node count" `Quick test_node_count;
      Alcotest.test_case "xmark deterministic" `Quick test_xmark_deterministic;
      Alcotest.test_case "xmark shape" `Quick test_xmark_shape;
      Alcotest.test_case "xmark scales" `Quick test_xmark_scales;
      Alcotest.test_case "flat generator" `Quick test_flat;
      Alcotest.test_case "random trees parse" `Quick test_random_tree_parses;
      Alcotest.test_case "sax events" `Quick test_sax_events;
      Alcotest.test_case "sax well-formedness" `Quick test_sax_wellformedness;
      Alcotest.test_case "sax matches dom" `Quick test_sax_counts_match_dom;
      QCheck_alcotest.to_alcotest prop_print_parse;
      QCheck_alcotest.to_alcotest prop_decode_entities;
    ] )
