(* Static analyzer: the planner-feeding simplifier, the SQL lint rules,
   the order-correctness contract and the plan inspector. *)

module O = Ordered_xml
module S = Reldb.Sql_ast
module E = Reldb.Expr
module V = Reldb.Value
module P = Reldb.Plan
module Simplify = Reldb.Simplify
module F = Analysis.Finding

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

(* ---------------- simplifier (constant folding + intervals) --------- *)

let col i = E.Col i
let iconst n = E.Const (V.Int n)
let cmp op a b = E.Cmp (op, a, b)

let is_contradiction cs =
  match Simplify.simplify_conjuncts cs with
  | Simplify.Contradiction -> true
  | Simplify.Conjuncts _ -> false

let kept cs =
  match Simplify.simplify_conjuncts cs with
  | Simplify.Contradiction -> Alcotest.fail "unexpected contradiction"
  | Simplify.Conjuncts l -> l

let test_simplify_contradictions () =
  check bool_t "x > 5 AND x < 3" true
    (is_contradiction
       [ cmp E.Gt (col 0) (iconst 5); cmp E.Lt (col 0) (iconst 3) ]);
  check bool_t "x = 1 AND x = 2" true
    (is_contradiction
       [ cmp E.Eq (col 0) (iconst 1); cmp E.Eq (col 0) (iconst 2) ]);
  check bool_t "x >= 5 AND x <= 3" true
    (is_contradiction
       [ cmp E.Ge (col 0) (iconst 5); cmp E.Le (col 0) (iconst 3) ]);
  check bool_t "constant 5 < 3" true
    (is_contradiction [ cmp E.Lt (iconst 5) (iconst 3) ]);
  (* flipped orientation: constant on the left still normalizes *)
  check bool_t "5 < x AND x < 4" true
    (is_contradiction
       [ cmp E.Lt (iconst 5) (col 0); cmp E.Lt (col 0) (iconst 4) ]);
  check bool_t "x > 3 AND x < 5 is satisfiable" false
    (is_contradiction
       [ cmp E.Gt (col 0) (iconst 3); cmp E.Lt (col 0) (iconst 5) ]);
  check bool_t "bounds on different columns do not interact" false
    (is_contradiction
       [ cmp E.Gt (col 0) (iconst 5); cmp E.Lt (col 1) (iconst 3) ])

let test_simplify_subsumption () =
  check int_t "x > 3 subsumed by x > 5" 1
    (List.length
       (kept [ cmp E.Gt (col 0) (iconst 3); cmp E.Gt (col 0) (iconst 5) ]));
  check int_t "x >= 1 absorbed by x = 2" 1
    (List.length
       (kept [ cmp E.Ge (col 0) (iconst 1); cmp E.Eq (col 0) (iconst 2) ]));
  check int_t "constant-true conjunct dropped" 1
    (List.length
       (kept [ cmp E.Eq (iconst 1) (iconst 1); cmp E.Gt (col 0) (iconst 0) ]));
  check int_t "independent bounds both kept" 2
    (List.length
       (kept [ cmp E.Gt (col 0) (iconst 3); cmp E.Lt (col 0) (iconst 5) ]))

let test_fold () =
  check bool_t "arithmetic folds" true
    (Simplify.fold (E.Arith (E.Add, iconst 1, iconst 2)) = iconst 3);
  check bool_t "FALSE AND col short-circuits" true
    (Simplify.truth_of (Simplify.fold (E.And (iconst 0, cmp E.Eq (col 0) (iconst 1))))
    = Simplify.False);
  check bool_t "TRUE OR col short-circuits" true
    (Simplify.truth_of (Simplify.fold (E.Or (iconst 1, cmp E.Eq (col 0) (iconst 1))))
    = Simplify.True);
  (* a folding error (division by zero) must be left for execution time *)
  check bool_t "div by zero not folded" true
    (match Simplify.fold (E.Arith (E.Div, iconst 1, iconst 0)) with
    | E.Arith (E.Div, _, _) -> true
    | _ -> false)

(* ---------------- planner short-circuit ------------------------------ *)

let make_emp_db () =
  let db = Reldb.Db.create () in
  ignore (Reldb.Db.exec db "CREATE TABLE emp (id INT, name TEXT, salary INT)");
  ignore (Reldb.Db.exec db "CREATE UNIQUE INDEX emp_pk ON emp (id)");
  for i = 1 to 50 do
    ignore
      (Reldb.Db.exec db
         (Printf.sprintf "INSERT INTO emp VALUES (%d, 'e%d', %d)" i i (i * 100)))
  done;
  db

let test_contradiction_short_circuits () =
  let db = make_emp_db () in
  Reldb.Db.reset_counters db;
  let rows =
    Reldb.Db.query db "SELECT * FROM emp WHERE salary > 5 AND salary < 3"
  in
  check int_t "no rows returned" 0 (List.length rows);
  check int_t "no rows read" 0 (Reldb.Db.rows_read db);
  (* aggregates over an empty input still produce their one row *)
  (match Reldb.Db.query db "SELECT COUNT(*) FROM emp WHERE 1 = 0" with
  | [ [| V.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "COUNT over contradictory WHERE should be a single 0");
  (* with the rewrite disabled the same query scans the table *)
  Simplify.enabled := false;
  Fun.protect
    ~finally:(fun () -> Simplify.enabled := true)
    (fun () ->
      Reldb.Db.reset_counters db;
      let rows =
        Reldb.Db.query db "SELECT * FROM emp WHERE salary > 5 AND salary < 3"
      in
      check int_t "still no rows" 0 (List.length rows);
      check bool_t "table scanned without the rewrite" true
        (Reldb.Db.rows_read db > 0))

(* ---------------- lint rules ------------------------------------------ *)

let rules_of db stmt_text =
  let stmt = Reldb.Sql_parser.parse stmt_text in
  List.map
    (fun f -> f.F.rule)
    (Analysis.Lint.lint_stmt ~catalog:(Reldb.Db.catalog db) stmt)

let has rule rules = List.mem rule rules

let test_lint_rules () =
  let db = make_emp_db () in
  let rules = rules_of db in
  check bool_t "cartesian product flagged" true
    (has "cartesian-product" (rules "SELECT * FROM emp a, emp b"));
  check bool_t "connected join not flagged" false
    (has "cartesian-product"
       (rules "SELECT * FROM emp a, emp b WHERE a.id = b.id"));
  check bool_t "contradiction flagged" true
    (has "contradiction"
       (rules "SELECT * FROM emp WHERE salary > 5 AND salary < 3"));
  check bool_t "tautology flagged" true
    (has "tautology" (rules "SELECT * FROM emp WHERE 1 = 1 AND salary > 0"));
  check bool_t "satisfiable range clean" false
    (has "contradiction"
       (rules "SELECT * FROM emp WHERE salary > 3 AND salary < 5"));
  check bool_t "unsargable indexed column flagged" true
    (has "unsargable" (rules "SELECT * FROM emp WHERE id + 0 = 5"));
  check bool_t "unsargable needs an index" false
    (has "unsargable" (rules "SELECT * FROM emp WHERE salary + 0 = 5"));
  check bool_t "redundant DISTINCT over unique key" true
    (has "redundant-distinct" (rules "SELECT DISTINCT id FROM emp"));
  check bool_t "DISTINCT over non-unique column kept" false
    (has "redundant-distinct" (rules "SELECT DISTINCT name FROM emp"));
  check bool_t "single-value IN flagged" true
    (has "degenerate-in" (rules "SELECT * FROM emp WHERE id IN (5)"));
  check bool_t "inverted BETWEEN flagged" true
    (has "degenerate-between"
       (rules "SELECT * FROM emp WHERE id BETWEEN 5 AND 3"));
  check bool_t "well-formed query clean" true
    (rules "SELECT name FROM emp WHERE salary > 100" = []);
  (* DML goes through the same WHERE analysis *)
  check bool_t "DELETE with contradictory WHERE" true
    (has "contradiction" (rules "DELETE FROM emp WHERE id > 5 AND id < 3"))

(* ---------------- order-correctness contract -------------------------- *)

let env =
  lazy
    (let doc = O.Workload.dataset ~scale:1 in
     let db = Reldb.Db.create () in
     List.iter
       (fun enc -> ignore (O.Api.Store.create db ~name:"q" enc doc))
       O.Encoding.all;
     db)

(* mirror of the translation suite's query lists: the shipped fragment *)
let global_queries =
  [
    "/site/open_auctions/open_auction";
    "//bidder";
    "//bidder/increase";
    "/site/people/person/@id";
    "//person[address]/name";
    "//person[profile/@income > 50000]/name";
    "/site/closed_auctions/closed_auction[price > 500][type = 'Regular']";
    "//open_auction/bidder/following-sibling::bidder";
    "//increase/ancestor::open_auction";
    "/site/regions/africa/item/following::item";
    "//profile/..";
    "//annotation/descendant-or-self::*";
  ]

let shared_queries =
  [
    "/site/open_auctions/open_auction";
    "/site/people/person/@id";
    "/site/people/person[address]/name";
    "/site/open_auctions/open_auction/bidder/following-sibling::bidder";
    "/site/closed_auctions/closed_auction[price > 500]/seller";
    "/site/open_auctions/open_auction/bidder/personref/..";
  ]

let findings_for enc xpath =
  let db = Lazy.force env in
  let path = O.Xpath_parser.parse xpath in
  let sql, meta = O.Translate_sql.translate_meta ~doc:"q" enc path in
  let stmt = Reldb.Sql_parser.parse sql in
  ( Analysis.Lint.lint_stmt ~catalog:(Reldb.Db.catalog db) stmt
    @ Analysis.Order_check.check_stmt enc ~meta stmt,
    stmt,
    meta )

let assert_clean enc xpath =
  let findings, _, _ = findings_for enc xpath in
  let bad = List.filter (fun f -> f.F.severity <> F.Info) findings in
  if bad <> [] then
    Alcotest.failf "%s: %s:\n%s" (O.Encoding.name enc) xpath
      (String.concat "\n" (List.map F.to_string bad))

let test_shipped_translations_lint_clean () =
  List.iter (assert_clean O.Encoding.Global) global_queries;
  List.iter
    (fun enc -> List.iter (assert_clean enc) shared_queries)
    O.Encoding.all

let test_order_contract_columns () =
  let expect = Analysis.Order_check.expected_order_column in
  check bool_t "global orders by g_order" true
    (expect O.Encoding.Global = Some "g_order");
  check bool_t "gap orders by g_order" true
    (expect O.Encoding.Global_gap = Some "g_order");
  check bool_t "dewey orders by path" true
    (expect O.Encoding.Dewey_enc = Some "path");
  check bool_t "ordpath orders by path" true
    (expect O.Encoding.Dewey_caret = Some "path");
  check bool_t "local has no order column" true (expect O.Encoding.Local = None)

(* tampering with a correct translation must trip the checker *)
let test_order_tampering () =
  let enc = O.Encoding.Global in
  let _, stmt, meta = findings_for enc "//bidder" in
  let sel = match stmt with S.Select s -> s | _ -> assert false in
  let errors s =
    List.filter
      (fun f -> f.F.severity = F.Error)
      (Analysis.Order_check.check_stmt enc ~meta (S.Select s))
  in
  check int_t "correct statement has no errors" 0 (List.length (errors sel));
  check bool_t "stripped ORDER BY caught" true
    (errors { sel with order_by = [] } <> []);
  check bool_t "descending order caught" true
    (errors
       { sel with order_by = List.map (fun (e, _) -> (e, S.Desc)) sel.order_by }
    <> []);
  check bool_t "wrong column caught" true
    (errors
       { sel with order_by = [ (S.E_col (Some meta.O.Translate_sql.fm_result_alias, "id"), S.Asc) ] }
    <> [])

let test_axis_support () =
  let p = O.Xpath_parser.parse in
  let errs enc path =
    List.length (Analysis.Order_check.check_axes enc (p path))
  in
  check int_t "following:: outside LOCAL fragment" 1
    (errs O.Encoding.Local "/site/regions/africa/item/following::item");
  check int_t "following:: fine under GLOBAL" 0
    (errs O.Encoding.Global "/site/regions/africa/item/following::item");
  check int_t "descendant outside DEWEY single-statement fragment" 1
    (errs O.Encoding.Dewey_enc "//bidder");
  check int_t "child/parent axes universal" 0
    (errs O.Encoding.Local "/site/people/person/..")

(* ---------------- plan lint ------------------------------------------- *)

let test_plan_lint () =
  let db = make_emp_db () in
  let catalog = Reldb.Db.catalog db in
  let plan_of text =
    match Reldb.Sql_parser.parse text with
    | S.Select sel -> Reldb.Planner.plan_select catalog sel
    | _ -> assert false
  in
  let rules p = List.map (fun f -> f.F.rule) (Analysis.Plan_lint.lint_plan p) in
  (* hand-built filtered scan: predicate on the unique-index key column *)
  let emp = Reldb.Db.table db "emp" in
  let scan =
    P.Filter (cmp E.Eq (col 0) (iconst 5), P.Seq_scan emp)
  in
  check bool_t "seq scan shadowing an index" true
    (has "seq-scan-with-index" (rules scan));
  check bool_t "bare scan clean" true (rules (P.Seq_scan emp) = []);
  check bool_t "cross join flagged" true
    (has "cross-join" (rules (plan_of "SELECT * FROM emp a, emp b")));
  check bool_t "equi join clean of cross-join" false
    (has "cross-join"
       (rules (plan_of "SELECT * FROM emp a, emp b WHERE a.id = b.id")));
  (* a short-circuited contradictory plan is not linted below LIMIT 0 *)
  check bool_t "LIMIT 0 subtree suppressed" true
    (rules (plan_of "SELECT * FROM emp a, emp b WHERE 1 = 0") = [])

(* ---------------- degenerate count() lint over XPath ----------------- *)

let test_lint_degenerate_count () =
  let findings q = Analysis.Lint.lint_xpath (O.Xpath_parser.parse q) in
  let by_rule rule q =
    List.filter (fun (f : F.t) -> f.rule = rule) (findings q)
  in
  let severities rule q = List.map (fun (f : F.t) -> f.severity) (by_rule rule q) in
  (* tautology: count is never negative *)
  check bool_t "count >= 0 warns" true
    (severities "degenerate-count" "/a/b[count(c) >= 0]" = [ F.Warning ]);
  (let module A = O.Xpath_ast in
   let p =
     {
       A.absolute = true;
       steps =
         [
           A.step A.Child (A.Name "a")
             ~preds:
               [
                 A.P_count
                   ( { A.absolute = false; steps = [ A.step A.Child (A.Name "c") ] },
                     A.Ne, -1 );
               ];
         ];
     }
   in
   match Analysis.Lint.lint_xpath p with
   | [ f ] -> check bool_t "count != -1 warns" true (f.F.severity = F.Warning)
   | l -> Alcotest.failf "count != -1: %d findings" (List.length l));
  (* contradiction: filters out everything *)
  (match by_rule "degenerate-count" "/a/b[count(c) < 0]" with
  | [ f ] ->
      check bool_t "count < 0 warns" true (f.severity = F.Warning);
      check bool_t "message says never" true
        (Astring_contains.contains f.message "never")
  | l -> Alcotest.failf "count < 0: %d findings" (List.length l));
  (* existence tests in disguise are Info, with the suggested spelling *)
  (match by_rule "degenerate-count" "/a/b[count(c) > 0]" with
  | [ f ] ->
      check bool_t "count > 0 is info" true (f.severity = F.Info);
      check bool_t "suggests [c]" true (Astring_contains.contains f.message "[c]")
  | l -> Alcotest.failf "count > 0: %d findings" (List.length l));
  (match by_rule "degenerate-count" "/a/b[count(c) = 0]" with
  | [ f ] ->
      check bool_t "count = 0 is info" true (f.severity = F.Info);
      check bool_t "suggests not(c)" true
        (Astring_contains.contains f.message "not(c)")
  | l -> Alcotest.failf "count = 0: %d findings" (List.length l));
  (* nested inside boolean connectives and inner predicates still fires *)
  check bool_t "nested in not()" true
    (severities "degenerate-count" "/a/b[not(count(c) >= 0)]" = [ F.Warning ]);
  check bool_t "nested in and" true
    (List.length (by_rule "degenerate-count" "/a/b[count(c) >= 0 and d]") = 1);
  check bool_t "inner predicate path" true
    (List.length (by_rule "degenerate-count" "/a/b[c[count(d) < 0]]") = 1);
  (* honest counts stay silent *)
  check bool_t "count >= 2 clean" true
    (by_rule "degenerate-count" "/a/b[count(c) >= 2]" = []);
  check bool_t "count = 3 clean" true
    (by_rule "degenerate-count" "/a/b[count(c) = 3]" = []);
  check bool_t "plain path clean" true (findings "/a/b[c]/d" = [])

let tests =
  ( "analysis",
    [
      Alcotest.test_case "simplify: contradictions" `Quick
        test_simplify_contradictions;
      Alcotest.test_case "simplify: subsumption" `Quick
        test_simplify_subsumption;
      Alcotest.test_case "simplify: constant folding" `Quick test_fold;
      Alcotest.test_case "planner short-circuits contradictions" `Quick
        test_contradiction_short_circuits;
      Alcotest.test_case "lint rules" `Quick test_lint_rules;
      Alcotest.test_case "shipped translations lint clean" `Quick
        test_shipped_translations_lint_clean;
      Alcotest.test_case "order contract columns" `Quick
        test_order_contract_columns;
      Alcotest.test_case "order tampering caught" `Quick test_order_tampering;
      Alcotest.test_case "axis support" `Quick test_axis_support;
      Alcotest.test_case "plan lint" `Quick test_plan_lint;
      Alcotest.test_case "degenerate count() lint" `Quick
        test_lint_degenerate_count;
    ] )
