let () =
  Alcotest.run "ordered_xml"
    [
      Test_xml.tests;
      Test_btree.tests;
      Test_dtd.tests;
      Test_core_units.tests;
      Test_sql.tests;
      Test_reldb_units.tests;
      Test_obs.tests;
      Test_dewey.tests;
      Test_doc_index.tests;
      Test_xpath.tests;
      Test_shred.tests;
      Test_translate.tests;
      Test_translate_sql.tests;
      Test_analysis.tests;
      Test_schema_check.tests;
      Test_prepared.tests;
      Test_update.tests;
      Test_api.tests;
      Test_flwor.tests;
      Test_wal.tests;
      Test_wal.crash_tests;
      Test_fuzz.tests;
      Test_differential.tests;
    ]
