(* SQL engine: parser, expressions, planner behaviours, end-to-end DML/DDL. *)

module D = Reldb.Db
module V = Reldb.Value

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let fresh () = D.create ()

let e db sql = ignore (D.exec db sql)

let ints db sql =
  List.map
    (fun row ->
      Array.to_list
        (Array.map (function V.Int i -> i | v -> Alcotest.failf "not int: %s" (V.to_string v)) row))
    (D.query db sql)

let setup_emp db =
  e db "CREATE TABLE emp (id INT NOT NULL, name TEXT, dept INT, salary FLOAT)";
  e db "CREATE UNIQUE INDEX emp_id ON emp (id)";
  e db "CREATE INDEX emp_dept ON emp (dept, salary)";
  e db "CREATE TABLE dept (id INT NOT NULL, dname TEXT)";
  e db "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')";
  for i = 1 to 50 do
    e db
      (Printf.sprintf "INSERT INTO emp VALUES (%d, 'e%d', %d, %d.0)" i i
         (1 + (i mod 2)) (1000 + i))
  done

(* --- expression layer ------------------------------------------------ *)

let test_like () =
  let cases =
    [
      ("abc", "abc", true);
      ("abc", "a%", true);
      ("abc", "%c", true);
      ("abc", "a_c", true);
      ("abc", "a_b", false);
      ("abc", "%", true);
      ("", "%", true);
      ("", "_", false);
      ("aXbXc", "a%b%c", true);
      ("mississippi", "%iss%ppi", true);
    ]
  in
  List.iter
    (fun (s, p, expect) ->
      check bool_t (Printf.sprintf "%s LIKE %s" s p) expect
        (Reldb.Expr.like_match ~pattern:p s))
    cases

let test_three_valued_logic () =
  let db = fresh () in
  e db "CREATE TABLE t (a INT, b INT)";
  e db "INSERT INTO t VALUES (1, NULL), (NULL, 2), (3, 4)";
  check int_t "null comparison filters" 1
    (List.length (D.query db "SELECT a FROM t WHERE a < 5 AND b > 0"));
  check int_t "is null" 1 (List.length (D.query db "SELECT a FROM t WHERE a IS NULL"));
  check int_t "is not null" 2
    (List.length (D.query db "SELECT a FROM t WHERE a IS NOT NULL"));
  (* NOT (NULL) is NULL -> filtered *)
  check int_t "not null pred" 1
    (List.length (D.query db "SELECT a FROM t WHERE NOT (b > 2)"))

let test_arith_and_concat () =
  let db = fresh () in
  e db "CREATE TABLE one (x INT)";
  e db "INSERT INTO one VALUES (7)";
  (match D.query db "SELECT x * 2 + 1, x / 2, x % 3, -x, x || 'b' FROM one" with
  | [ [| V.Int 15; V.Int 3; V.Int 1; V.Int (-7); V.Str "7b" |] ] -> ()
  | r ->
      Alcotest.failf "arith row: %s"
        (String.concat ";" (List.map Reldb.Tuple.to_string r)));
  (match D.exec db "SELECT x / 0 FROM one" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "division by zero must error")

(* --- parser ----------------------------------------------------------- *)

let test_parse_errors () =
  let db = fresh () in
  let bad sql =
    match D.exec db sql with
    | exception D.Sql_error _ -> ()
    | _ -> Alcotest.failf "expected error: %s" sql
  in
  bad "SELEC 1";
  bad "SELECT FROM t";
  bad "SELECT * FROM";
  bad "SELECT * FROM nosuch";
  bad "INSERT INTO nosuch VALUES (1)";
  bad "CREATE TABLE t (a NOTATYPE)";
  bad "SELECT * FROM t WHERE";
  bad "DROP TABLE nosuch"

let test_quoting () =
  let db = fresh () in
  e db "CREATE TABLE t (s TEXT)";
  e db "INSERT INTO t VALUES ('it''s')";
  match D.query db "SELECT s FROM t WHERE s = 'it''s'" with
  | [ [| V.Str "it's" |] ] -> ()
  | _ -> Alcotest.fail "quote handling"

let test_bytes_literals () =
  let db = fresh () in
  e db "CREATE TABLE t (b BYTES)";
  e db "INSERT INTO t VALUES (X'0102ff')";
  (match D.query db "SELECT b FROM t WHERE b >= X'0102'" with
  | [ [| V.Bytes "\x01\x02\xff" |] ] -> ()
  | _ -> Alcotest.fail "bytes roundtrip");
  check int_t "bytes range excludes" 0
    (List.length (D.query db "SELECT b FROM t WHERE b < X'0102'"))

(* --- query behaviours -------------------------------------------------- *)

let test_order_limit_offset () =
  let db = fresh () in
  setup_emp db;
  check
    (Alcotest.list (Alcotest.list int_t))
    "top 3 desc"
    [ [ 50 ]; [ 49 ]; [ 48 ] ]
    (ints db "SELECT id FROM emp ORDER BY salary DESC LIMIT 3");
  check
    (Alcotest.list (Alcotest.list int_t))
    "offset"
    [ [ 3 ]; [ 4 ] ]
    (ints db "SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2")

let test_joins () =
  let db = fresh () in
  setup_emp db;
  check int_t "equi join rows" 50
    (List.length (D.query db "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id"));
  (* join + filter + projection *)
  (match
     D.query db
       "SELECT d.dname, e.name FROM emp e, dept d WHERE e.dept = d.id AND \
        e.id = 7"
   with
  | [ [| V.Str "sales"; V.Str "e7" |] ] -> ()
  | _ -> Alcotest.fail "join row wrong");
  (* cross join *)
  check int_t "cross" 150
    (List.length (D.query db "SELECT e.id FROM emp e, dept d"));
  (* theta join: dept 1 (25 rows) matches d.id in {2,3}; dept 2 matches {3} *)
  check int_t "theta" 75
    (List.length (D.query db "SELECT e.id FROM emp e, dept d WHERE e.dept < d.id"))

let test_three_way_join () =
  let db = fresh () in
  e db "CREATE TABLE a (x INT)";
  e db "CREATE TABLE b (x INT, y INT)";
  e db "CREATE TABLE c (y INT, z TEXT)";
  e db "INSERT INTO a VALUES (1), (2)";
  e db "INSERT INTO b VALUES (1, 10), (2, 20), (2, 21)";
  e db "INSERT INTO c VALUES (10, 'ten'), (20, 'twenty'), (21, 'twenty-one')";
  check int_t "3-way" 3
    (List.length
       (D.query db
          "SELECT c.z FROM a, b, c WHERE a.x = b.x AND b.y = c.y"))

let test_aggregates () =
  let db = fresh () in
  setup_emp db;
  (match D.query db "SELECT COUNT(*), MIN(salary), MAX(salary) FROM emp" with
  | [ [| V.Int 50; V.Float 1001.0; V.Float 1050.0 |] ] -> ()
  | r -> Alcotest.failf "agg: %s" (String.concat ";" (List.map Reldb.Tuple.to_string r)));
  (match
     D.query db
       "SELECT d.dname, COUNT(*) AS n FROM emp e, dept d WHERE e.dept = d.id \
        GROUP BY d.dname ORDER BY d.dname"
   with
  | [ [| V.Str "eng"; V.Int 25 |]; [| V.Str "sales"; V.Int 25 |] ] -> ()
  | _ -> Alcotest.fail "group by");
  (* aggregate over empty input *)
  (match D.query db "SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 999" with
  | [ [| V.Int 0; V.Null |] ] -> ()
  | _ -> Alcotest.fail "empty agg");
  (* AVG *)
  match D.query db "SELECT AVG(dept) FROM emp" with
  | [ [| V.Float f |] ] when abs_float (f -. 1.5) < 1e-9 -> ()
  | _ -> Alcotest.fail "avg"

let test_distinct () =
  let db = fresh () in
  setup_emp db;
  check int_t "distinct depts" 2
    (List.length (D.query db "SELECT DISTINCT dept FROM emp"))

let test_between_in_like () =
  let db = fresh () in
  setup_emp db;
  check int_t "between" 5
    (List.length (D.query db "SELECT id FROM emp WHERE id BETWEEN 3 AND 7"));
  check int_t "in" 3
    (List.length (D.query db "SELECT id FROM emp WHERE id IN (1, 2, 3, 999)"));
  check int_t "not in" 47
    (List.length (D.query db "SELECT id FROM emp WHERE id NOT IN (1, 2, 3)"));
  check int_t "like" 10
    (List.length (D.query db "SELECT id FROM emp WHERE name LIKE 'e1_' AND id < 20"))

let test_update_delete () =
  let db = fresh () in
  setup_emp db;
  (match D.exec db "UPDATE emp SET salary = salary * 2.0 WHERE dept = 1" with
  | D.Affected 25 -> ()
  | _ -> Alcotest.fail "update count");
  (match D.query db "SELECT MAX(salary) FROM emp" with
  | [ [| V.Float f |] ] when f = 2100.0 -> ()
  | _ -> Alcotest.fail "update applied");
  (match D.exec db "DELETE FROM emp WHERE dept = 2" with
  | D.Affected 25 -> ()
  | _ -> Alcotest.fail "delete count");
  check int_t "remaining" 25 (List.length (D.query db "SELECT id FROM emp"))

let test_unique_shift_update () =
  (* the statement-level constraint semantics the encodings rely on *)
  let db = fresh () in
  e db "CREATE TABLE t (k INT NOT NULL)";
  e db "CREATE UNIQUE INDEX t_k ON t (k)";
  e db "INSERT INTO t VALUES (1), (2), (3), (4), (5)";
  (match D.exec db "UPDATE t SET k = k + 1 WHERE k >= 3" with
  | D.Affected 3 -> ()
  | _ -> Alcotest.fail "shift count");
  check
    (Alcotest.list (Alcotest.list int_t))
    "shifted"
    [ [ 1 ]; [ 2 ]; [ 4 ]; [ 5 ]; [ 6 ] ]
    (ints db "SELECT k FROM t ORDER BY k")

let test_constraints () =
  let db = fresh () in
  e db "CREATE TABLE t (k INT NOT NULL)";
  e db "CREATE UNIQUE INDEX t_k ON t (k)";
  e db "INSERT INTO t VALUES (1)";
  (match D.exec db "INSERT INTO t VALUES (1)" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate must fail");
  (match D.exec db "INSERT INTO t VALUES (NULL)" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "not null must fail");
  (* failed insert must not corrupt the table *)
  check int_t "intact" 1 (List.length (D.query db "SELECT k FROM t"))

let test_insert_columns () =
  let db = fresh () in
  e db "CREATE TABLE t (a INT, b TEXT, c FLOAT)";
  e db "INSERT INTO t (b, a) VALUES ('x', 1)";
  match D.query db "SELECT a, b, c FROM t" with
  | [ [| V.Int 1; V.Str "x"; V.Null |] ] -> ()
  | _ -> Alcotest.fail "column targeting"

(* --- planner behaviours ------------------------------------------------ *)

let test_having () =
  let db = fresh () in
  setup_emp db;
  (match
     D.query db
       "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) > 20 \
        ORDER BY dept"
   with
  | [ [| V.Int 1; V.Int 25 |]; [| V.Int 2; V.Int 25 |] ] -> ()
  | r -> Alcotest.failf "having rows: %d" (List.length r));
  check int_t "having filters all" 0
    (List.length
       (D.query db "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) > 99"));
  (* having over an aggregate not in the select list *)
  check int_t "having on hidden agg" 1
    (List.length
       (D.query db
          "SELECT dept FROM emp GROUP BY dept HAVING MAX(salary) >= 1050.0"));
  (* group expr in having *)
  check int_t "group expr in having" 1
    (List.length (D.query db "SELECT dept FROM emp GROUP BY dept HAVING dept = 1"));
  match D.exec db "SELECT id FROM emp HAVING id > 3" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "HAVING without aggregation must fail"

let test_union_all () =
  let db = fresh () in
  setup_emp db;
  check int_t "union all keeps duplicates" 100
    (List.length
       (D.query db "SELECT id FROM emp UNION ALL SELECT id FROM emp"));
  (match
     D.query db
       "SELECT MIN(id) FROM emp UNION ALL SELECT MAX(id) FROM emp"
   with
  | [ [| V.Int 1 |]; [| V.Int 50 |] ] -> ()
  | _ -> Alcotest.fail "union of aggregates");
  (* arity mismatch rejected *)
  match D.exec db "SELECT id, name FROM emp UNION ALL SELECT id FROM emp" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch accepted"

let test_transactions () =
  let db = fresh () in
  setup_emp db;
  (* rollback restores rows, updates and deletes — and index contents *)
  e db "BEGIN";
  e db "INSERT INTO emp VALUES (999, 'temp', 1, 1.0)";
  e db "UPDATE emp SET salary = 0.0 WHERE id = 1";
  e db "DELETE FROM emp WHERE id = 2";
  (* 50 originals - id 1 (zeroed) - id 2 (deleted) + temp = 49 *)
  check int_t "dirty state visible" 49
    (List.length (D.query db "SELECT id FROM emp WHERE salary > 0.5"));
  e db "ROLLBACK";
  check int_t "row count restored" 50 (List.length (D.query db "SELECT id FROM emp"));
  check int_t "update undone" 0
    (List.length (D.query db "SELECT id FROM emp WHERE salary = 0.0"));
  check int_t "indexed probe after rollback" 1
    (List.length (D.query db "SELECT id FROM emp WHERE id = 2"));
  (* commit keeps changes *)
  e db "BEGIN";
  e db "DELETE FROM emp WHERE id = 2";
  e db "COMMIT";
  check int_t "commit kept" 49 (List.length (D.query db "SELECT id FROM emp"));
  (* with_transaction rolls back on exception *)
  (match
     D.with_transaction db (fun () ->
         e db "DELETE FROM emp";
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check int_t "rolled back on exception" 49
    (List.length (D.query db "SELECT id FROM emp"));
  (* DDL forbidden inside, unbalanced commit rejected *)
  e db "BEGIN";
  (match D.exec db "CREATE TABLE x (a INT)" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "DDL in txn accepted");
  e db "ROLLBACK";
  match D.exec db "COMMIT" with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "commit without begin accepted"

let test_index_selection () =
  let db = fresh () in
  setup_emp db;
  let plan = D.explain db "SELECT id FROM emp WHERE dept = 1 AND salary > 1010.0" in
  check bool_t "uses composite index" true
    (Astring_contains.contains plan "IndexScan emp.emp_dept");
  let plan2 = D.explain db "SELECT id FROM emp WHERE name = 'e1'" in
  check bool_t "falls back to scan" true
    (Astring_contains.contains plan2 "SeqScan emp")

let test_sort_elimination () =
  let db = fresh () in
  setup_emp db;
  let plan = D.explain db "SELECT id FROM emp WHERE dept = 1 ORDER BY dept, salary" in
  check bool_t "no sort node" false (Astring_contains.contains plan "Sort");
  let plan_desc =
    D.explain db "SELECT id FROM emp WHERE dept = 1 ORDER BY dept DESC, salary DESC"
  in
  check bool_t "desc via reverse scan" false
    (Astring_contains.contains plan_desc "Sort");
  (* results actually ordered *)
  let rows = ints db "SELECT id FROM emp WHERE dept = 1 ORDER BY salary DESC" in
  check (Alcotest.list int_t) "head" [ 50 ] (List.hd rows)

let test_hash_join_planned () =
  let db = fresh () in
  setup_emp db;
  let plan = D.explain db "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id" in
  check bool_t "hash join" true (Astring_contains.contains plan "HashJoin")

let test_rows_counters () =
  let db = fresh () in
  setup_emp db;
  D.reset_counters db;
  ignore (D.query db "SELECT id FROM emp WHERE id = 25");
  let reads = D.rows_read db in
  check bool_t "indexed point read is cheap" true (reads <= 3)

let test_multi_key_order () =
  let db = fresh () in
  setup_emp db;
  (* mixed-direction multi-key sort *)
  let rows = ints db "SELECT dept, id FROM emp ORDER BY dept ASC, id DESC LIMIT 3" in
  check (Alcotest.list (Alcotest.list int_t)) "mixed sort"
    [ [ 1; 50 ]; [ 1; 48 ]; [ 1; 46 ] ] rows

let test_expression_precedence () =
  let db = fresh () in
  e db "CREATE TABLE one (x INT)";
  e db "INSERT INTO one VALUES (10)";
  (match D.query db "SELECT 2 + 3 * x, (2 + 3) * x, -x + 1 FROM one" with
  | [ [| V.Int 32; V.Int 50; V.Int (-9) |] ] -> ()
  | r -> Alcotest.failf "precedence: %s" (String.concat ";" (List.map Reldb.Tuple.to_string r)));
  (* boolean precedence: AND binds tighter than OR *)
  check int_t "and/or precedence" 1
    (List.length (D.query db "SELECT x FROM one WHERE 1 = 2 AND 1 = 1 OR x = 10"))

let test_scalar_functions () =
  let db = fresh () in
  e db "CREATE TABLE s (v TEXT, n INT)";
  e db "INSERT INTO s VALUES ('Hello', -4)";
  match
    D.query db
      "SELECT LENGTH(v), UPPER(v), LOWER(v), ABS(n), SUBSTR(v, 2, 3) FROM s"
  with
  | [ [| V.Int 5; V.Str "HELLO"; V.Str "hello"; V.Int 4; V.Str "ell" |] ] -> ()
  | r -> Alcotest.failf "functions: %s" (String.concat ";" (List.map Reldb.Tuple.to_string r))

let test_delete_via_index () =
  (* DELETE through an index range, then ensure the index agrees *)
  let db = fresh () in
  setup_emp db;
  D.reset_counters db;
  (match D.exec db "DELETE FROM emp WHERE id BETWEEN 10 AND 19" with
  | D.Affected 10 -> ()
  | _ -> Alcotest.fail "ranged delete count");
  check bool_t "indexed delete is cheap" true (D.rows_read db < 30);
  check int_t "index sees deletions" 0
    (List.length (D.query db "SELECT id FROM emp WHERE id = 15"))

let test_order_by_aggregate () =
  let db = fresh () in
  setup_emp db;
  match
    D.query db
      "SELECT dept, COUNT(*) AS n FROM emp WHERE id <= 10 GROUP BY dept \
       ORDER BY COUNT(*) DESC"
  with
  | [ [| V.Int _; V.Int a |]; [| V.Int _; V.Int b |] ] when a >= b -> ()
  | _ -> Alcotest.fail "order by aggregate"

(* --- hostile values through dump / restore (ISSUE 4) ------------------- *)

(* strings chosen to break naive statement splitting or literal quoting *)
let hostile_strings =
  [
    "semi;colon";
    "line one\nline two";
    "quote ' and '' doubled";
    "-- looks like a comment";
    "mix; -- of\nall ''the'' above;";
    "back\\slash and \ttab";
    "";
  ]

let test_hostile_dump_restore () =
  let db = fresh () in
  e db "CREATE TABLE h (id INT NOT NULL, v TEXT)";
  List.iteri
    (fun i s ->
      e db
        (Printf.sprintf "INSERT INTO h VALUES (%d, %s)" i
           (V.to_sql_literal (V.Str s))))
    hostile_strings;
  let db2 = D.restore (D.dump db) in
  List.iteri
    (fun i s ->
      match
        D.query_one db2 (Printf.sprintf "SELECT v FROM h WHERE id = %d" i)
      with
      | Some [| V.Str got |] ->
          check string_t (Printf.sprintf "hostile string %d" i) s got
      | _ -> Alcotest.failf "hostile string %d lost in dump/restore" i)
    hostile_strings;
  check string_t "dump is a fixpoint" (D.dump db) (D.dump db2)

let test_float_literal_roundtrip () =
  let db = fresh () in
  e db "CREATE TABLE f (id INT NOT NULL, x FLOAT)";
  let floats =
    [
      1e22 (* %.17g prints no decimal point: regression for the dump bug *);
      1.5;
      -0.0;
      1e-300;
      max_float;
      Float.min_float;
      nan;
      infinity;
      neg_infinity;
    ]
  in
  List.iteri
    (fun i x ->
      e db
        (Printf.sprintf "INSERT INTO f VALUES (%d, %s)" i
           (V.to_sql_literal (V.Float x))))
    floats;
  let db2 = D.restore (D.dump db) in
  List.iteri
    (fun i x ->
      match
        D.query_one db2 (Printf.sprintf "SELECT x FROM f WHERE id = %d" i)
      with
      | Some [| V.Float got |] ->
          let same =
            (Float.is_nan x && Float.is_nan got)
            || (x = got && Float.sign_bit x = Float.sign_bit got)
          in
          if not same then
            Alcotest.failf "float %d: %h restored as %h" i x got
      | _ -> Alcotest.failf "float %d lost in dump/restore" i)
    floats

let test_script_line_comments () =
  (* [--] outside a string literal starts a comment; inside one it is data *)
  let db =
    D.restore
      "-- header comment; with semicolons\n\
       CREATE TABLE t (id INT NOT NULL, v TEXT); -- trailing comment\n\
       INSERT INTO t VALUES (1, '-- not; a comment\nsecond line');\n\
       -- INSERT INTO t VALUES (2, 'commented out');\n\
       INSERT INTO t VALUES (3, 'it''s -- still data');"
  in
  check int_t "commented-out statement skipped" 2
    (List.length (D.query db "SELECT id FROM t"));
  (match D.query_one db "SELECT v FROM t WHERE id = 1" with
  | Some [| V.Str v |] ->
      check string_t "comment marker inside literal survives"
        "-- not; a comment\nsecond line" v
  | _ -> Alcotest.fail "row 1 missing");
  match D.query_one db "SELECT v FROM t WHERE id = 3" with
  | Some [| V.Str v |] ->
      check string_t "escaped quote before comment marker" "it's -- still data" v
  | _ -> Alcotest.fail "row 3 missing"

let tests =
  ( "sql",
    [
      Alcotest.test_case "LIKE matcher" `Quick test_like;
      Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
      Alcotest.test_case "arith + concat" `Quick test_arith_and_concat;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "string quoting" `Quick test_quoting;
      Alcotest.test_case "bytes literals" `Quick test_bytes_literals;
      Alcotest.test_case "order/limit/offset" `Quick test_order_limit_offset;
      Alcotest.test_case "joins" `Quick test_joins;
      Alcotest.test_case "three-way join" `Quick test_three_way_join;
      Alcotest.test_case "aggregates" `Quick test_aggregates;
      Alcotest.test_case "distinct" `Quick test_distinct;
      Alcotest.test_case "between/in/like" `Quick test_between_in_like;
      Alcotest.test_case "update/delete" `Quick test_update_delete;
      Alcotest.test_case "unique-shift update" `Quick test_unique_shift_update;
      Alcotest.test_case "constraints" `Quick test_constraints;
      Alcotest.test_case "insert column list" `Quick test_insert_columns;
      Alcotest.test_case "HAVING" `Quick test_having;
      Alcotest.test_case "UNION ALL" `Quick test_union_all;
      Alcotest.test_case "transactions" `Quick test_transactions;
      Alcotest.test_case "index selection" `Quick test_index_selection;
      Alcotest.test_case "sort elimination" `Quick test_sort_elimination;
      Alcotest.test_case "hash join planned" `Quick test_hash_join_planned;
      Alcotest.test_case "I/O counters" `Quick test_rows_counters;
      Alcotest.test_case "multi-key ORDER BY" `Quick test_multi_key_order;
      Alcotest.test_case "expression precedence" `Quick test_expression_precedence;
      Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
      Alcotest.test_case "delete via index" `Quick test_delete_via_index;
      Alcotest.test_case "ORDER BY aggregate" `Quick test_order_by_aggregate;
      Alcotest.test_case "hostile strings dump/restore" `Quick
        test_hostile_dump_restore;
      Alcotest.test_case "float literal roundtrip" `Quick
        test_float_literal_roundtrip;
      Alcotest.test_case "script line comments" `Quick
        test_script_line_comments;
    ] )
