(* Updates: DOM-equivalence of insert/delete/set_text under every encoding,
   the relative renumbering costs the paper reports, and invariants after
   random edit sequences. *)

module O = Ordered_xml
module T = Xmllib.Types
module U = O.Update

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let base_doc () = Xmllib.Generator.flat ~tag:"item" ~count:20 ()

let all_stores doc =
  let db = Reldb.Db.create () in
  List.map (fun enc -> (enc, O.Api.Store.create db ~name:"u" enc doc)) O.Encoding.all

(* structural-invariant gate: every update workload must leave all encodings
   in a state Integrity.check accepts *)
let assert_integrity stores =
  List.iter
    (fun (enc, store) ->
      match O.Integrity.check (O.Api.Store.db store) ~doc:"u" enc with
      | Ok () -> ()
      | Error msgs ->
          Alcotest.failf "%s integrity violated: %s" (O.Encoding.name enc)
            (String.concat "; " msgs))
    stores

(* DOM-side reference edit: insert node as pos-th child of root *)
let dom_insert_at_root doc pos node =
  let root = doc.T.root in
  let rec insert i = function
    | rest when i = pos -> node :: rest
    | [] -> [ node ]
    | c :: rest -> c :: insert (i + 1) rest
  in
  { doc with T.root = { root with T.children = insert 1 root.T.children } }

let frag = T.element "item" ~attrs:[ T.attr "rank" "new" ] [ T.text "inserted" ]

let test_insert_positions () =
  List.iter
    (fun pos ->
      let doc = base_doc () in
      let expected = dom_insert_at_root doc pos frag in
      let stores = all_stores doc in
      List.iter
        (fun (enc, store) ->
          let root = O.Api.Store.root_id store in
          ignore (O.Api.Store.insert_subtree store ~parent:root ~pos frag);
          let got = O.Api.Store.document store in
          if not (T.equal_document expected got) then
            Alcotest.failf "%s: insert at %d diverges from DOM edit"
              (O.Encoding.name enc) pos)
        stores;
      assert_integrity stores)
    [ 1; 10; 21 ]

let test_insert_nested_fragment () =
  let doc = base_doc () in
  let big = O.Workload.update_fragment ~seed:5 in
  let expected = dom_insert_at_root doc 5 big in
  List.iter
    (fun (enc, store) ->
      let root = O.Api.Store.root_id store in
      let st = O.Api.Store.insert_subtree store ~parent:root ~pos:5 big in
      check bool_t (O.Encoding.name enc ^ " many rows") true (st.U.rows_inserted > 20);
      check bool_t
        (O.Encoding.name enc ^ " equal")
        true
        (T.equal_document expected (O.Api.Store.document store)))
    (all_stores doc)

let test_renumbering_costs () =
  (* front insertion: LOCAL << DEWEY <= GLOBAL; GLOBAL touches ~everything *)
  let doc = base_doc () in
  let costs =
    List.map
      (fun (enc, store) ->
        let root = O.Api.Store.root_id store in
        let st = O.Api.Store.insert_subtree store ~parent:root ~pos:1 frag in
        (enc, st.U.rows_renumbered))
      (all_stores doc)
  in
  let cost e = List.assoc e costs in
  check bool_t "local renumbers only siblings" true
    (cost O.Encoding.Local = 20);
  check bool_t "global renumbers nearly everything" true
    (cost O.Encoding.Global > 100);
  check bool_t "dewey between" true
    (cost O.Encoding.Dewey_enc > cost O.Encoding.Local
    && cost O.Encoding.Dewey_enc < cost O.Encoding.Global);
  check int_t "gap variant absorbs the insert" 0 (cost O.Encoding.Global_gap)

let test_back_insert_cheap_everywhere () =
  let doc = base_doc () in
  List.iter
    (fun (enc, store) ->
      let root = O.Api.Store.root_id store in
      let st = O.Api.Store.insert_subtree store ~parent:root ~pos:21 frag in
      match enc with
      | O.Encoding.Local | O.Encoding.Dewey_enc | O.Encoding.Dewey_caret
      | O.Encoding.Global_gap ->
          check int_t (O.Encoding.name enc ^ " append renumbers") 0
            st.U.rows_renumbered
      | O.Encoding.Global ->
          (* dense intervals still shift the ancestors' end values *)
          check bool_t "global append touches only ancestors" true
            (st.U.rows_renumbered <= 2))
    (all_stores doc)

let test_gap_exhaustion_falls_back () =
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:4 () in
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create ~gap:4 db ~name:"u" O.Encoding.Global_gap doc in
  let root = O.Api.Store.root_id store in
  (* keep inserting at the same point; the gap must eventually run out and
     renumbering kick in, while the document stays correct *)
  let total_renum = ref 0 in
  let expected = ref doc in
  for i = 1 to 8 do
    let st = O.Api.Store.insert_subtree store ~parent:root ~pos:2 frag in
    total_renum := !total_renum + st.U.rows_renumbered;
    expected := dom_insert_at_root !expected 2 frag;
    ignore i
  done;
  check bool_t "fallback occurred" true (!total_renum > 0);
  check bool_t "document correct" true
    (T.equal_document !expected (O.Api.Store.document store));
  assert_integrity [ (O.Encoding.Global_gap, store) ]

let test_delete () =
  let doc = base_doc () in
  let stores = all_stores doc in
  List.iter
    (fun (enc, store) ->
      let victim =
        match O.Api.Store.query_ids store "/doc/item[3]" with
        | [ id ] -> id
        | _ -> Alcotest.fail "victim lookup"
      in
      (* item + @rank + f0 + text + f1 + text = 6 records *)
      let st = O.Api.Store.delete_subtree store ~id:victim in
      check int_t (O.Encoding.name enc ^ " deleted rows") 6 st.U.rows_deleted;
      check int_t
        (O.Encoding.name enc ^ " remaining items")
        19
        (O.Api.Store.count store "/doc/item");
      (* positional query still works after the delete *)
      check int_t
        (O.Encoding.name enc ^ " item[3] exists")
        1
        (O.Api.Store.count store "/doc/item[3]"))
    stores;
  assert_integrity stores

let test_delete_then_insert_reuses_space () =
  let doc = base_doc () in
  List.iter
    (fun (_, store) ->
      let victim =
        match O.Api.Store.query_ids store "/doc/item[10]" with
        | [ id ] -> id
        | _ -> Alcotest.fail "victim"
      in
      ignore (O.Api.Store.delete_subtree store ~id:victim);
      let root = O.Api.Store.root_id store in
      ignore (O.Api.Store.insert_subtree store ~parent:root ~pos:10 frag);
      check int_t "items stable" 20 (O.Api.Store.count store "/doc/item"))
    (all_stores doc)

let test_update_errors () =
  let doc = base_doc () in
  List.iter
    (fun (_, store) ->
      let root = O.Api.Store.root_id store in
      (match O.Api.Store.insert_subtree store ~parent:root ~pos:99 frag with
      | exception U.Update_error _ -> ()
      | _ -> Alcotest.fail "pos out of range accepted");
      (match O.Api.Store.delete_subtree store ~id:root with
      | exception U.Update_error _ -> ()
      | _ -> Alcotest.fail "root delete accepted");
      match O.Api.Store.insert_subtree store ~parent:999_999 ~pos:1 frag with
      | exception U.Update_error _ -> ()
      | _ -> Alcotest.fail "bad parent accepted")
    (all_stores doc)

let test_move_subtree () =
  let doc = base_doc () in
  let stores = all_stores doc in
  List.iter
    (fun (enc, store) ->
      (* move item[3] to the front *)
      let victim = List.hd (O.Api.Store.query_ids store "/doc/item[3]") in
      let root = O.Api.Store.root_id store in
      ignore (O.Api.Store.move_subtree store ~id:victim ~parent:root ~pos:1);
      check
        (Alcotest.list Alcotest.string)
        (O.Encoding.name enc ^ " moved to front")
        [ "2" ]
        (O.Api.Store.query_values store "/doc/item[1]/@rank");
      check int_t (O.Encoding.name enc ^ " count stable") 20
        (O.Api.Store.count store "/doc/item");
      (* move under another element *)
      let nest = List.hd (O.Api.Store.query_ids store "/doc/item[5]") in
      let target = List.hd (O.Api.Store.query_ids store "/doc/item[1]") in
      ignore (O.Api.Store.move_subtree store ~id:nest ~parent:target ~pos:1);
      check int_t (O.Encoding.name enc ^ " nested") 1
        (O.Api.Store.count store "/doc/item[1]/item");
      (* cannot move under own descendant *)
      let outer = List.hd (O.Api.Store.query_ids store "/doc/item[1]") in
      let inner = List.hd (O.Api.Store.query_ids store "/doc/item[1]/item") in
      match O.Api.Store.move_subtree store ~id:outer ~parent:inner ~pos:1 with
      | exception U.Update_error _ -> ()
      | _ -> Alcotest.fail "cycle move accepted")
    stores;
  assert_integrity stores

let test_replace_subtree () =
  let doc = base_doc () in
  let replacement =
    T.element "item" ~attrs:[ T.attr "rank" "fresh" ] [ T.text "swapped" ]
  in
  List.iter
    (fun (enc, store) ->
      let victim = List.hd (O.Api.Store.query_ids store "/doc/item[4]") in
      ignore (O.Api.Store.replace_subtree store ~id:victim replacement);
      check
        (Alcotest.list Alcotest.string)
        (O.Encoding.name enc ^ " replaced in place")
        [ "fresh" ]
        (O.Api.Store.query_values store "/doc/item[4]/@rank");
      check int_t (O.Encoding.name enc ^ " count stable") 20
        (O.Api.Store.count store "/doc/item");
      check bool_t (O.Encoding.name enc ^ " invariants") true
        (O.Integrity.check (O.Api.Store.db store) ~doc:"u" enc = Ok ()))
    (all_stores doc)

let test_attributes () =
  let doc = base_doc () in
  let stores = all_stores doc in
  List.iter
    (fun (enc, store) ->
      let item = List.hd (O.Api.Store.query_ids store "/doc/item[2]") in
      (* add a new attribute *)
      ignore (O.Api.Store.set_attribute store ~id:item ~name:"color" ~value:"red");
      check
        (Alcotest.list Alcotest.string)
        (O.Encoding.name enc ^ " added")
        [ "red" ]
        (O.Api.Store.query_values store "/doc/item[2]/@color");
      (* overwrite *)
      ignore (O.Api.Store.set_attribute store ~id:item ~name:"color" ~value:"blue");
      check
        (Alcotest.list Alcotest.string)
        (O.Encoding.name enc ^ " overwritten")
        [ "blue" ]
        (O.Api.Store.query_values store "/doc/item[2]/@color");
      (* numeric shadow works for predicates *)
      ignore (O.Api.Store.set_attribute store ~id:item ~name:"w" ~value:"2.5");
      check int_t (O.Encoding.name enc ^ " numeric attr") 1
        (O.Api.Store.count store "/doc/item[@w > 2]");
      (* remove *)
      ignore (O.Api.Store.remove_attribute store ~id:item ~name:"color");
      check int_t (O.Encoding.name enc ^ " removed") 0
        (O.Api.Store.count store "/doc/item[2]/@color");
      (* removing a missing attribute is a no-op *)
      let st = O.Api.Store.remove_attribute store ~id:item ~name:"nope" in
      check int_t (O.Encoding.name enc ^ " noop") 0 st.U.rows_deleted;
      check bool_t (O.Encoding.name enc ^ " invariants") true
        (O.Integrity.check (O.Api.Store.db store) ~doc:"u" enc = Ok ()))
    stores;
  (* every encoding converges to the same document *)
  let docs = List.map (fun (_, s) -> O.Api.Store.document s) stores in
  (match docs with
  | d0 :: rest ->
      List.iter
        (fun d ->
          check bool_t "attr edits agree" true (T.equal_document d0 d))
        rest
  | [] -> ());
  (* errors *)
  let db = Reldb.Db.create () in
  let s = O.Api.Store.create db ~name:"a" O.Encoding.Global (base_doc ()) in
  let txt = List.hd (O.Api.Store.query_ids s "/doc/item[1]/f0/text()") in
  match O.Api.Store.set_attribute s ~id:txt ~name:"x" ~value:"y" with
  | exception U.Update_error _ -> ()
  | _ -> Alcotest.fail "attribute on a text node accepted"

let test_set_text () =
  let doc = base_doc () in
  let stores = all_stores doc in
  List.iter
    (fun (_, store) ->
      let tid =
        match O.Api.Store.query_ids store "/doc/item[1]/f0/text()" with
        | [ id ] -> id
        | _ -> Alcotest.fail "text lookup"
      in
      ignore (O.Api.Store.set_text store ~id:tid "7.25");
      check
        (Alcotest.list Alcotest.string)
        "new value" [ "7.25" ]
        (O.Api.Store.query_values store "/doc/item[1]/f0/text()");
      (* nval updated: numeric predicate now matches *)
      check int_t "numeric predicate" 1
        (O.Api.Store.count store "/doc/item[f0 > 7.0]"))
    stores;
  assert_integrity stores

let test_integrity_checker_detects () =
  (* the checker actually fires: corrupt a GLOBAL interval by hand *)
  let doc = base_doc () in
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create db ~name:"c" O.Encoding.Global doc in
  ignore store;
  check bool_t "clean store passes" true
    (O.Integrity.check db ~doc:"c" O.Encoding.Global = Ok ());
  ignore (Reldb.Db.exec db "UPDATE c_global SET g_end = g_order + 100000 WHERE id = 3");
  (match O.Integrity.check db ~doc:"c" O.Encoding.Global with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "corruption not detected");
  (* LOCAL: punch a hole in the sibling ranks *)
  let db2 = Reldb.Db.create () in
  ignore (O.Api.Store.create db2 ~name:"c" O.Encoding.Local doc);
  ignore (Reldb.Db.exec db2 "UPDATE c_local SET l_order = 99 WHERE parent = 0 AND l_order = 5");
  (match O.Integrity.check db2 ~doc:"c" O.Encoding.Local with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rank hole not detected");
  (* DEWEY: break the depth column *)
  let db3 = Reldb.Db.create () in
  ignore (O.Api.Store.create db3 ~name:"c" O.Encoding.Dewey_enc doc);
  ignore (Reldb.Db.exec db3 "UPDATE c_dewey SET depth = 9 WHERE id = 3");
  match O.Integrity.check db3 ~doc:"c" O.Encoding.Dewey_enc with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "depth corruption not detected"

let test_insert_forest () =
  (* bulk insertion: same result as k single inserts, one renumbering pass *)
  let forest = List.init 5 (fun i -> T.element "item" [ T.text (string_of_int i) ]) in
  let doc = base_doc () in
  let expected =
    List.fold_left
      (fun d (i, node) -> dom_insert_at_root d (7 + i) node)
      doc
      (List.mapi (fun i n -> (i, n)) forest)
  in
  let stores = all_stores doc in
  List.iter
    (fun (enc, store) ->
      let root = O.Api.Store.root_id store in
      let st = O.Api.Store.insert_forest store ~parent:root ~pos:7 forest in
      check bool_t
        (O.Encoding.name enc ^ " forest equal")
        true
        (T.equal_document expected (O.Api.Store.document store));
      (* the amortization claim: bulk renumbering cost equals the cost of a
         single insertion at the same spot, not 5x *)
      let doc2 = base_doc () in
      let db2 = Reldb.Db.create () in
      let single = O.Api.Store.create db2 ~name:"s" enc doc2 in
      let sroot = O.Api.Store.root_id single in
      let st1 = O.Api.Store.insert_subtree single ~parent:sroot ~pos:7 (List.hd forest) in
      check bool_t
        (O.Encoding.name enc ^ " amortized")
        true
        (st.U.rows_renumbered <= st1.U.rows_renumbered + 5))
    stores;
  assert_integrity stores;
  (* empty forest rejected *)
  let db = Reldb.Db.create () in
  let s = O.Api.Store.create db ~name:"e" O.Encoding.Local (base_doc ()) in
  match O.Api.Store.insert_forest s ~parent:(O.Api.Store.root_id s) ~pos:1 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty forest accepted"

let test_ordpath_zero_renumber () =
  (* the caret encoding's reason to exist: front and middle insertions touch
     no existing rows *)
  let doc = base_doc () in
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create db ~name:"o" O.Encoding.Dewey_caret doc in
  let root = O.Api.Store.root_id store in
  let expected = ref doc in
  List.iter
    (fun pos ->
      let st = O.Api.Store.insert_subtree store ~parent:root ~pos frag in
      check int_t (Printf.sprintf "pos %d renumbers nothing" pos) 0
        st.U.rows_renumbered;
      expected := dom_insert_at_root !expected pos frag)
    [ 1; 11; 5; 23; 2 ];
  check bool_t "document correct" true
    (T.equal_document !expected (O.Api.Store.document store))

let test_ordpath_hotspot_growth () =
  (* repeated insertion at the same point: ORDPATH pays with key growth and
     eventually an amortized repack, DEWEY pays with renumbering every time *)
  let run enc =
    let doc = Xmllib.Generator.flat ~tag:"item" ~count:30 () in
    let db = Reldb.Db.create () in
    let store = O.Api.Store.create db ~name:"h" enc doc in
    let root = O.Api.Store.root_id store in
    let renum = ref 0 in
    for _ = 1 to 40 do
      let st = O.Api.Store.insert_subtree store ~parent:root ~pos:10 frag in
      renum := !renum + st.U.rows_renumbered
    done;
    (!renum, (O.Api.Store.storage store).O.Storage.max_key_bytes, store)
  in
  let renum_caret, max_key_caret, s_caret = run O.Encoding.Dewey_caret in
  let renum_dewey, max_key_dewey, s_dewey = run O.Encoding.Dewey_enc in
  check bool_t "caret renumbers far less" true (renum_caret * 5 < renum_dewey);
  check bool_t "caret keys grow" true (max_key_caret > max_key_dewey);
  (* both must agree on the result *)
  check bool_t "same document" true
    (T.equal_document (O.Api.Store.document s_caret) (O.Api.Store.document s_dewey))

let test_ordpath_prepend_amortization () =
  (* repeated front insertions: one cheap slot, then a repack that buys
     headroom for many more *)
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:10 () in
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create db ~name:"p" O.Encoding.Dewey_caret doc in
  let root = O.Api.Store.root_id store in
  let repacks = ref 0 in
  let expected = ref doc in
  for _ = 1 to 30 do
    let st = O.Api.Store.insert_subtree store ~parent:root ~pos:1 frag in
    if st.U.rows_renumbered > 0 then incr repacks;
    expected := dom_insert_at_root !expected 1 frag
  done;
  check bool_t "repacks are rare" true (!repacks <= 2);
  check bool_t "document correct" true
    (T.equal_document !expected (O.Api.Store.document store))

let test_atomic_updates () =
  (* a failing batch leaves the store byte-identical, for every encoding *)
  let doc = base_doc () in
  let stores = all_stores doc in
  List.iter
    (fun (enc, store) ->
      let before = Reldb.Db.dump (O.Api.Store.db store) in
      (match
         O.Api.Store.atomically store (fun () ->
             let root = O.Api.Store.root_id store in
             ignore (O.Api.Store.insert_subtree store ~parent:root ~pos:1 frag);
             ignore (O.Api.Store.insert_subtree store ~parent:root ~pos:5 frag);
             failwith "abort the batch")
       with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception swallowed");
      check bool_t
        (O.Encoding.name enc ^ " identical after rollback")
        true
        (String.equal before (Reldb.Db.dump (O.Api.Store.db store)));
      (* and a successful batch commits *)
      O.Api.Store.atomically store (fun () ->
          let root = O.Api.Store.root_id store in
          ignore (O.Api.Store.insert_subtree store ~parent:root ~pos:1 frag));
      check int_t (O.Encoding.name enc ^ " committed") 21
        (O.Api.Store.count store "/doc/item"))
    stores;
  assert_integrity stores

(* random edit sequences: all encodings converge to the same document and
   keep answering ordered queries correctly *)
let prop_random_edits =
  let gen = QCheck.Gen.(pair (int_bound 10_000) (list_size (int_range 1 12) (int_bound 99))) in
  let print (seed, ops) =
    Printf.sprintf "seed=%d ops=%s" seed (String.concat "," (List.map string_of_int ops))
  in
  QCheck.Test.make ~name:"random edit sequences keep encodings in agreement"
    ~count:40 (QCheck.make ~print gen) (fun (seed, ops) ->
      let doc = Xmllib.Generator.flat ~tag:"item" ~count:8 () in
      let stores = all_stores doc in
      let rng = Xmllib.Rng.create seed in
      List.iter
        (fun op ->
          let roots =
            List.map (fun (_, s) -> (s, O.Api.Store.root_id s)) stores
          in
          let counts =
            O.Api.Store.count (fst (List.hd roots)) "/doc/item"
          in
          if op mod 3 = 0 && counts > 2 then begin
            (* delete the k-th item everywhere *)
            let k = 1 + Xmllib.Rng.int rng counts in
            List.iter
              (fun (s, _) ->
                match
                  O.Api.Store.query_ids s (Printf.sprintf "/doc/item[%d]" k)
                with
                | [ id ] -> ignore (O.Api.Store.delete_subtree s ~id)
                | _ -> ())
              roots
          end
          else begin
            let pos = 1 + Xmllib.Rng.int rng (counts + 1) in
            List.iter
              (fun (s, root) ->
                ignore (O.Api.Store.insert_subtree s ~parent:root ~pos frag))
              roots
          end)
        ops;
      let ok_integrity =
        List.for_all
          (fun (enc, s) ->
            O.Integrity.check (O.Api.Store.db s) ~doc:"u" enc = Ok ())
          stores
      in
      let docs = List.map (fun (_, s) -> O.Api.Store.document s) stores in
      ok_integrity
      &&
      match docs with
      | d0 :: rest -> List.for_all (fun d -> T.equal_document d0 d) rest
      | [] -> true)

let tests =
  ( "update",
    [
      Alcotest.test_case "insert at front/middle/back" `Quick test_insert_positions;
      Alcotest.test_case "insert nested fragment" `Quick test_insert_nested_fragment;
      Alcotest.test_case "renumbering costs" `Quick test_renumbering_costs;
      Alcotest.test_case "append is cheap" `Quick test_back_insert_cheap_everywhere;
      Alcotest.test_case "gap exhaustion fallback" `Quick test_gap_exhaustion_falls_back;
      Alcotest.test_case "delete subtree" `Quick test_delete;
      Alcotest.test_case "delete then insert" `Quick test_delete_then_insert_reuses_space;
      Alcotest.test_case "error cases" `Quick test_update_errors;
      Alcotest.test_case "set_text" `Quick test_set_text;
      Alcotest.test_case "move subtree" `Quick test_move_subtree;
      Alcotest.test_case "replace subtree" `Quick test_replace_subtree;
      Alcotest.test_case "attribute operations" `Quick test_attributes;
      Alcotest.test_case "insert forest" `Quick test_insert_forest;
      Alcotest.test_case "atomic update batches" `Quick test_atomic_updates;
      Alcotest.test_case "integrity checker" `Quick test_integrity_checker_detects;
      Alcotest.test_case "ordpath zero renumbering" `Quick test_ordpath_zero_renumber;
      Alcotest.test_case "ordpath hotspot growth" `Quick test_ordpath_hotspot_growth;
      Alcotest.test_case "ordpath prepend amortization" `Quick
        test_ordpath_prepend_amortization;
      QCheck_alcotest.to_alcotest prop_random_edits;
    ] )
