(* Schema-aware XPath analysis (ISSUE 5): unit tests over the example
   catalog schema plus the differential oracle — random (DTD, DTD-valid
   document, schema-relevant query) triples where the schema-aware
   translation, the blind translation, and the DOM oracle must agree under
   every encoding, and unsatisfiable queries must return zero rows without
   issuing SQL. *)

module O = Ordered_xml
module A = O.Xpath_ast
module D = Xmllib.Dtd
module SC = Analysis.Schema_check

let check = Alcotest.check
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let catalog_dtd =
  lazy
    (D.parse
       {|
       <!ELEMENT catalog (book*)>
       <!ELEMENT book (title, author+, price?)>
       <!ELEMENT title (#PCDATA)>
       <!ELEMENT author (#PCDATA)>
       <!ELEMENT price (#PCDATA)>
       <!ATTLIST book isbn CDATA #REQUIRED year CDATA #IMPLIED>
       |})

let analyze q = SC.analyze (Lazy.force catalog_dtd) (O.Xpath_parser.parse q)

let has_rule rule (r : SC.result) =
  List.exists (fun (f : Analysis.Finding.t) -> f.rule = rule) r.findings

(* --- graph ------------------------------------------------------------- *)

let test_graph () =
  let g = SC.graph (Lazy.force catalog_dtd) in
  check (Alcotest.list string_t) "roots" [ "catalog" ] (SC.graph_roots g);
  check (Alcotest.list string_t) "reachable"
    [ "author"; "book"; "catalog"; "price"; "title" ]
    (SC.graph_reachable g);
  check bool_t "catalog occurs once" true (SC.occurrence g "catalog" = SC.One);
  check bool_t "book occurs many" true (SC.occurrence g "book" = SC.Many);
  (* an element declared but unreachable from the root *)
  let g2 =
    SC.graph ~roots:[ "book" ]
      (D.parse "<!ELEMENT book (title)> <!ELEMENT title (#PCDATA)> <!ELEMENT orphan EMPTY>")
  in
  check bool_t "orphan unreachable" true
    (not (List.mem "orphan" (SC.graph_reachable g2)))

(* --- satisfiability ---------------------------------------------------- *)

let test_unsat () =
  let r = analyze "//zzz" in
  check bool_t "undeclared element unsatisfiable" false r.satisfiable;
  check bool_t "error finding" true (has_rule "schema-unsat" r);
  (* undeclared attribute in a predicate *)
  let r = analyze "/catalog/book[@bogus]/title" in
  check bool_t "undeclared attribute pred" false r.satisfiable;
  (* a child that exists in the DTD but not under this parent *)
  let r = analyze "/catalog/title" in
  check bool_t "title not a catalog child" false r.satisfiable;
  (* text() under an element-only content model *)
  let r = analyze "/catalog/text()" in
  check bool_t "text under element-only content" false r.satisfiable;
  (* satisfiable queries stay satisfiable *)
  check bool_t "plain path satisfiable" true (analyze "/catalog/book/title").satisfiable;
  check bool_t "pred path satisfiable" true
    (analyze "/catalog/book[price]/title").satisfiable

(* --- cardinality ------------------------------------------------------- *)

let test_cardinality () =
  (* title is (title, ...) — exactly one per book, so [1] is a no-op *)
  let r = analyze "/catalog/book/title[1]" in
  check bool_t "[1] dropped" true (has_rule "schema-cardinality" r);
  check string_t "rewritten" "/catalog/book/title" (A.to_string r.rewritten);
  (* author+ can repeat: [1] must survive *)
  let r = analyze "/catalog/book/author[1]" in
  check string_t "author [1] kept" "/catalog/book/author[1]"
    (A.to_string r.rewritten);
  (* count(title) >= 2 can never hold when the schema caps title at one *)
  let r = analyze "/catalog/book[count(title) >= 2]" in
  check bool_t "impossible count" false r.satisfiable

(* --- axis strength reduction ------------------------------------------- *)

let test_axis_reduction () =
  let r = analyze "//title" in
  check string_t "descendant to chain" "/catalog/book/title"
    (A.to_string r.rewritten);
  check bool_t "axis finding" true (has_rule "schema-axis" r);
  (* positional predicate with a repeatable intermediate blocks the rewrite:
     //title[1] means the first title in the document, not per book *)
  let r = analyze "//title[1]" in
  check string_t "positional blocks chain" "/descendant::title[1]"
    (A.to_string r.rewritten)

(* --- uniqueness / DISTINCT -------------------------------------------- *)

let test_unique () =
  (* price? is at most one per book: the join cannot duplicate titles *)
  let r = analyze "/catalog/book[price]/title" in
  check bool_t "price pred unique" true r.unique;
  (* author+ can repeat: DISTINCT must stay *)
  let r = analyze "/catalog/book[author]/title" in
  check bool_t "author pred not unique" false r.unique;
  (* and the translator actually honours the flag *)
  let sql_of unique =
    O.Translate_sql.translate ~unique ~doc:"doc" O.Encoding.Global
      (O.Xpath_parser.parse "/catalog/book[price]/title")
  in
  check bool_t "DISTINCT skipped when unique" true
    (not (Astring_contains.contains (sql_of true) "DISTINCT"));
  check bool_t "DISTINCT kept when blind" true
    (Astring_contains.contains (sql_of false) "DISTINCT")

(* --- the enabled gate --------------------------------------------------- *)

let test_disabled () =
  SC.enabled := false;
  Fun.protect
    ~finally:(fun () -> SC.enabled := true)
    (fun () ->
      let r = analyze "//zzz" in
      check bool_t "disabled: satisfiable" true r.satisfiable;
      check bool_t "disabled: no findings" true (r.findings = []);
      check string_t "disabled: unchanged" "/descendant::zzz"
        (A.to_string r.rewritten))

(* --- differential oracle ------------------------------------------------ *)

(* For each seed: a random DAG-shaped DTD, a document sampled from it, and a
   batch of schema-relevant queries. The DOM oracle, the blind translation,
   and the schema-aware translation must agree under every encoding, and
   unsatisfiable verdicts must come with empty oracle results. *)

let encodings = O.Encoding.all
let dtd_seeds = 30
let paths_per_dtd = 10

let run_schema_case cases seed =
  let rand = Random.State.make [| 7919 * seed |] in
  let case = QCheck.Gen.generate1 ~rand Xpath_gen.gen_schema_case in
  let dtd =
    try D.parse case.Xpath_gen.dtd_text
    with D.Parse_error m ->
      Alcotest.failf "seed %d: generated DTD does not parse (%s):\n%s" seed m
        case.Xpath_gen.dtd_text
  in
  let doc = D.sample dtd ~root:case.Xpath_gen.root (Xmllib.Rng.create seed) in
  (match D.validate dtd doc with
  | Ok () -> ()
  | Error msgs ->
      Alcotest.failf "seed %d: sampled document invalid: %s" seed
        (String.concat "; " msgs));
  let idx = O.Doc_index.build doc in
  let db = Reldb.Db.create () in
  List.iter
    (fun enc -> ignore (O.Api.Store.create db ~name:"s" enc doc))
    encodings;
  let paths =
    QCheck.Gen.generate ~rand ~n:paths_per_dtd
      (Xpath_gen.gen_schema_path case.Xpath_gen.ntags)
  in
  List.iter
    (fun path ->
      incr cases;
      let xpath = A.to_string path in
      let expected = O.Dom_eval.eval idx path in
      let r = SC.analyze ~roots:[ case.Xpath_gen.root ] dtd path in
      if (not r.SC.satisfiable) && expected <> [] then
        Alcotest.failf "seed %d, %s: declared unsatisfiable but oracle has %d rows"
          seed xpath (List.length expected);
      List.iter
        (fun enc ->
          let ids (res : O.Translate.result) =
            List.map
              (fun (row : O.Node_row.t) -> row.O.Node_row.id)
              res.O.Translate.rows
          in
          let blind = O.Translate.eval db ~doc:"s" enc path in
          let schema =
            SC.eval ~roots:[ case.Xpath_gen.root ] dtd db ~doc:"s" enc path
          in
          if ids blind <> expected then
            Alcotest.failf "seed %d, %s, %s: blind [%s], oracle [%s]" seed
              (O.Encoding.name enc) xpath
              (String.concat "," (List.map string_of_int (ids blind)))
              (String.concat "," (List.map string_of_int expected));
          if ids schema <> expected then
            Alcotest.failf
              "seed %d, %s, %s: schema-aware [%s], oracle [%s] (rewritten %s)"
              seed (O.Encoding.name enc) xpath
              (String.concat "," (List.map string_of_int (ids schema)))
              (String.concat "," (List.map string_of_int expected))
              (A.to_string r.SC.rewritten);
          if (not r.SC.satisfiable) && schema.O.Translate.statements <> 0 then
            Alcotest.failf "seed %d, %s, %s: unsatisfiable path issued %d statements"
              seed (O.Encoding.name enc) xpath schema.O.Translate.statements)
        encodings)
    paths

let test_differential () =
  let cases = ref 0 in
  for seed = 1 to dtd_seeds do
    run_schema_case cases seed
  done;
  check bool_t "at least 300 (dtd, doc, query) cases" true (!cases >= 300)

let tests =
  ( "schema_check",
    [
      Alcotest.test_case "reachability graph" `Quick test_graph;
      Alcotest.test_case "satisfiability" `Quick test_unsat;
      Alcotest.test_case "cardinality inference" `Quick test_cardinality;
      Alcotest.test_case "axis strength reduction" `Quick test_axis_reduction;
      Alcotest.test_case "uniqueness and DISTINCT" `Quick test_unique;
      Alcotest.test_case "enabled gate" `Quick test_disabled;
      Alcotest.test_case "differential: schema vs blind vs DOM (300+ cases)"
        `Quick test_differential;
    ] )
