type index = {
  idx_name : string;
  key_cols : int array;
  unique : bool;
  tree : Btree.t;
}

type undo =
  | U_insert of int  (* row id to remove *)
  | U_delete of int * Tuple.t  (* row id to resurrect with this image *)
  | U_update of int * Tuple.t  (* row id to restore to this image *)

type t = {
  tbl_name : string;
  tbl_schema : Schema.t;
  slots : Tuple.t option Vec.t;
  mutable live : int;
  mutable idxs : index list;
  mutable reads : int;
  mutable writes : int;
  mutable journal : undo list option;
}

exception Constraint_violation of string

let create tbl_name tbl_schema =
  {
    tbl_name;
    tbl_schema;
    slots = Vec.create ();
    live = 0;
    idxs = [];
    reads = 0;
    writes = 0;
    journal = None;
  }

let name t = t.tbl_name
let schema t = t.tbl_schema
let indexes t = t.idxs

let find_index t n =
  List.find_opt (fun i -> String.lowercase_ascii i.idx_name = String.lowercase_ascii n) t.idxs

let index_key idx ~rowid tuple =
  let k = Tuple.key idx.key_cols tuple in
  if idx.unique then k else Array.append k [| Value.Int rowid |]

let index_insert t idx rowid tuple =
  let k = index_key idx ~rowid tuple in
  try Btree.insert idx.tree k rowid
  with Btree.Duplicate_key ->
    raise
      (Constraint_violation
         (Printf.sprintf "unique index %s on %s: duplicate key %s" idx.idx_name
            t.tbl_name (Tuple.to_string k)))

let index_delete idx rowid tuple =
  ignore (Btree.delete idx.tree (index_key idx ~rowid tuple))

let create_index t ~name ~cols ~unique =
  Array.iter
    (fun c ->
      if c < 0 || c >= Schema.arity t.tbl_schema then
        invalid_arg "Table.create_index: column out of range")
    cols;
  let idx = { idx_name = name; key_cols = cols; unique; tree = Btree.create () } in
  Vec.iteri
    (fun rowid slot ->
      match slot with
      | None -> ()
      | Some tuple -> index_insert t idx rowid tuple)
    t.slots;
  t.idxs <- t.idxs @ [ idx ];
  idx

let validate t tuple =
  match Schema.check_tuple t.tbl_schema tuple with
  | Ok () -> ()
  | Error msg ->
      raise (Constraint_violation (Printf.sprintf "table %s: %s" t.tbl_name msg))

let record t entry =
  match t.journal with
  | None -> ()
  | Some log -> t.journal <- Some (entry :: log)

let insert t tuple =
  validate t tuple;
  let rowid = Vec.push t.slots (Some tuple) in
  (try List.iter (fun idx -> index_insert t idx rowid tuple) t.idxs
   with Constraint_violation _ as e ->
     (* roll back: remove slot and any index entries already added *)
     Vec.set t.slots rowid None;
     List.iter
       (fun idx -> ignore (Btree.delete idx.tree (index_key idx ~rowid tuple)))
       t.idxs;
     raise e);
  t.live <- t.live + 1;
  t.writes <- t.writes + 1;
  record t (U_insert rowid);
  rowid

let get t rowid =
  if rowid < 0 || rowid >= Vec.length t.slots then None
  else begin
    t.reads <- t.reads + 1;
    Vec.get t.slots rowid
  end

let delete t rowid =
  if rowid >= 0 && rowid < Vec.length t.slots then
    match Vec.get t.slots rowid with
    | None -> ()
    | Some tuple ->
        List.iter (fun idx -> index_delete idx rowid tuple) t.idxs;
        Vec.set t.slots rowid None;
        t.live <- t.live - 1;
        t.writes <- t.writes + 1;
        record t (U_delete (rowid, tuple))

let update t rowid tuple =
  match Vec.get t.slots rowid with
  | None -> invalid_arg "Table.update: row deleted"
  | Some old ->
      validate t tuple;
      List.iter (fun idx -> index_delete idx rowid old) t.idxs;
      Vec.set t.slots rowid (Some tuple);
      (try List.iter (fun idx -> index_insert t idx rowid tuple) t.idxs
       with Constraint_violation _ as e ->
         (* restore the old row *)
         List.iter (fun idx -> ignore (Btree.delete idx.tree (index_key idx ~rowid tuple))) t.idxs;
         Vec.set t.slots rowid (Some old);
         List.iter (fun idx -> index_insert t idx rowid old) t.idxs;
         raise e);
      t.writes <- t.writes + 1;
      record t (U_update (rowid, old))

(* Statement-level bulk update. Rowids are preserved (rows are overwritten in
   place, not deleted and re-inserted) and each index is maintained only for
   the rows whose key under THAT index actually changed — an UPDATE that
   shifts g_order never touches the id index, and a value-only UPDATE touches
   no index at all. Atomic with respect to unique-key violations. *)
let update_rows t changes =
  let images =
    List.map
      (fun (rowid, tu) ->
        validate t tu;
        match Vec.get t.slots rowid with
        | None -> invalid_arg "Table.update_rows: row deleted"
        | Some old -> (rowid, old, tu))
      changes
  in
  let per_idx =
    List.map
      (fun idx ->
        ( idx,
          List.filter
            (fun (rowid, old, tu) ->
              index_key idx ~rowid old <> index_key idx ~rowid tu)
            images ))
      t.idxs
  in
  let undo_index (idx, rows) =
    List.iter (fun (rowid, _, tu) -> index_delete idx rowid tu) rows;
    List.iter (fun (rowid, old, _) -> index_insert t idx rowid old) rows
  in
  let apply_index (idx, rows) =
    List.iter (fun (rowid, old, _) -> index_delete idx rowid old) rows;
    let inserted = ref [] in
    try
      List.iter
        (fun (rowid, _, tu) ->
          index_insert t idx rowid tu;
          inserted := (rowid, tu) :: !inserted)
        rows
    with Constraint_violation _ as e ->
      List.iter (fun (rowid, tu) -> index_delete idx rowid tu) !inserted;
      List.iter (fun (rowid, old, _) -> index_insert t idx rowid old) rows;
      raise e
  in
  let completed = ref [] in
  (try
     List.iter
       (fun entry ->
         apply_index entry;
         completed := entry :: !completed)
       per_idx
   with Constraint_violation _ as e ->
     List.iter undo_index !completed;
     raise e);
  (* Journal the batch as delete-all + reinsert-all rather than per-row
     U_update entries: rollback replays newest-first, so all the new images
     are removed before any old image is restored — per-row U_update replay
     could transiently collide on a unique key mid-unwind. *)
  List.iter (fun (rowid, old, _) -> record t (U_delete (rowid, old))) images;
  List.iter
    (fun (rowid, _, tu) ->
      Vec.set t.slots rowid (Some tu);
      record t (U_insert rowid))
    images;
  t.writes <- t.writes + List.length images

let row_count t = t.live

let scan t =
  Seq.filter_map
    (fun (i, slot) ->
      match slot with
      | None -> None
      | Some tuple ->
          t.reads <- t.reads + 1;
          Some (i, tuple))
    (Vec.to_seq t.slots)

let truncate t =
  if t.journal <> None then
    invalid_arg "Table.truncate: not allowed inside a transaction";
  Vec.iteri (fun i slot -> if slot <> None then Vec.set t.slots i None) t.slots;
  t.live <- 0;
  let rebuilt =
    List.map
      (fun idx -> { idx with tree = Btree.create () })
      t.idxs
  in
  t.idxs <- rebuilt

let begin_journal t =
  if t.journal <> None then invalid_arg "Table.begin_journal: already active";
  t.journal <- Some []

let journal_active t = t.journal <> None

let commit_journal t = t.journal <- None

let rollback_journal t =
  match t.journal with
  | None -> ()
  | Some log ->
      (* stop recording while we unwind *)
      t.journal <- None;
      List.iter
        (fun entry ->
          match entry with
          | U_insert rowid -> (
              match Vec.get t.slots rowid with
              | None -> ()
              | Some tuple ->
                  List.iter (fun idx -> index_delete idx rowid tuple) t.idxs;
                  Vec.set t.slots rowid None;
                  t.live <- t.live - 1)
          | U_delete (rowid, tuple) ->
              Vec.set t.slots rowid (Some tuple);
              List.iter (fun idx -> index_insert t idx rowid tuple) t.idxs;
              t.live <- t.live + 1
          | U_update (rowid, old) -> (
              match Vec.get t.slots rowid with
              | None -> ()
              | Some current ->
                  List.iter (fun idx -> index_delete idx rowid current) t.idxs;
                  Vec.set t.slots rowid (Some old);
                  List.iter (fun idx -> index_insert t idx rowid old) t.idxs))
        log

let rows_read t = t.reads
let rows_written t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

let size_bytes t =
  Vec.fold
    (fun acc slot ->
      match slot with None -> acc | Some tu -> acc + Tuple.size_bytes tu)
    0 t.slots
