(** Scalar expressions evaluated against a tuple.

    Column references are positional; the planner resolves names to positions
    when it builds plans. Boolean results use SQL three-valued logic with
    [Int 1] / [Int 0] / [Null]. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod
type func = Length | Abs | Lower | Upper | Substr

type t =
  | Const of Value.t
  | Col of int
  | Param of int
      (** Positional [?] placeholder (0-based). Plans may carry unbound
          parameters (e.g. for EXPLAIN of a prepared statement); evaluating
          one raises {!Eval_error} — {!Db.prepare} substitutes constants
          before execution. *)
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | Concat of t * t
  | Is_null of t
  | Is_not_null of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In_list of t * Value.t list
  | Func of func * t list

exception Eval_error of string

val eval : t -> Tuple.t -> Value.t
(** @raise Eval_error on type errors (e.g. arithmetic on text). *)

val eval_bool : t -> Tuple.t -> bool
(** Predicate semantics: [true] iff {!eval} yields a truthy non-null value. *)

val like_match : pattern:string -> string -> bool
(** Exposed for tests. *)

val columns : t -> int list
(** Distinct column positions referenced, ascending. *)

val map_columns : (int -> int) -> t -> t
(** Rewrite every column reference. *)

val shift_columns : int -> t -> t
(** Add an offset to every column reference (used when an expression over a
    join input is rebased onto the concatenated join schema). *)

val conjuncts : t -> t list
(** Flatten nested [And]s. *)

val conjoin : t list -> t option
(** [None] for the empty list. *)

val pp : Format.formatter -> t -> unit
