(** Plan execution. Pipelining operators produce rows lazily; Sort, hash
    builds, Distinct and Aggregate materialize as relational engines do. *)

exception Exec_error of string

val run : Plan.t -> Tuple.t Seq.t
(** Evaluate the plan. The sequence may be consumed once. *)

val run_list : Plan.t -> Tuple.t list
(** Convenience: fully materialize the result. *)

val row_count : Plan.t -> int
(** Consume the plan counting rows. *)

(** {2 Instrumented execution}

    Per-operator runtime statistics, the engine half of
    [Db.explain_analyze]. *)

type prof = {
  prof_label : string;  (** {!Plan.label} of the operator *)
  prof_children : prof list;
  mutable prof_rows : int;  (** rows the operator produced *)
  mutable prof_loops : int;  (** times its output sequence was started *)
  mutable prof_ns : int64;
      (** time spent pulling rows out of it, children included *)
}

val run_profiled : Plan.t -> Tuple.t list * prof
(** Evaluate the plan with every operator wrapped in a row counter and a
    monotonic pull timer; returns the materialized rows and the stats tree
    (mirroring the plan's shape). *)

val pp_prof : Format.formatter -> prof -> unit
(** The plan tree annotated with actual rows / loops / elapsed time. *)
