(** Heap tables with secondary B+-tree indexes.

    Rows live in a growable slot array; a row id is the slot number and stays
    valid until the row is deleted. Indexes are maintained synchronously on
    every insert/delete/update. Non-unique indexes get the row id appended to
    the key so that B+-tree keys stay unique. *)

type t

type index = {
  idx_name : string;
  key_cols : int array;  (** column positions forming the key, in order *)
  unique : bool;
  tree : Btree.t;
}

exception Constraint_violation of string
(** Unique-index violation or schema (type / NOT NULL) violation. *)

val create : string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

val create_index : t -> name:string -> cols:int array -> unique:bool -> index
(** Builds the index over existing rows and registers it for maintenance.
    @raise Constraint_violation if [unique] and duplicates exist. *)

val indexes : t -> index list
val find_index : t -> string -> index option

val insert : t -> Tuple.t -> int
(** Returns the new row id. @raise Constraint_violation on schema or unique
    violations. *)

val delete : t -> int -> unit
(** Delete by row id; no-op if already deleted. *)

val update : t -> int -> Tuple.t -> unit
(** Replace the row, maintaining all indexes. *)

val update_rows : t -> (int * Tuple.t) list -> unit
(** Statement-level bulk update: overwrite each row in place (rowids stable)
    and maintain only the indexes whose key actually changed for a given row.
    Atomic: a unique-key violation rolls back every index change and leaves
    all rows untouched.
    @raise Constraint_violation on schema or unique-key violation.
    @raise Invalid_argument if any rowid refers to a deleted row. *)

val get : t -> int -> Tuple.t option
(** [None] if the slot was deleted. *)

val row_count : t -> int
(** Live rows. *)

val scan : t -> (int * Tuple.t) Seq.t
(** All live rows with their ids, in slot order (not a meaningful order —
    relations are unordered; ordered access goes through an index). *)

val index_key : index -> rowid:int -> Tuple.t -> Tuple.t
(** The B+-tree key this index stores for the given row. *)

val truncate : t -> unit
(** Remove all rows (indexes emptied too). Row ids are not reused afterwards. *)

(** {2 Undo journal} (transaction support; driven by {!Db})

    While a journal is active every row mutation records its inverse;
    {!rollback_journal} replays the inverses newest-first, restoring the
    exact pre-journal state (including index contents and row ids). *)

val begin_journal : t -> unit
(** @raise Invalid_argument if a journal is already active. *)

val journal_active : t -> bool

val commit_journal : t -> unit
(** Discard the recorded inverses, keeping all changes. *)

val rollback_journal : t -> unit
(** Undo every change since {!begin_journal}. *)

(** {2 Instrumentation}

    The experiments report logical I/O per operation; every row read through
    a scan or index probe and every row written is counted here. *)

val rows_read : t -> int
val rows_written : t -> int
val reset_counters : t -> unit
val size_bytes : t -> int
(** Total payload bytes of live rows (heap only, excluding indexes). *)
