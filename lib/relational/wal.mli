(** Write-ahead log: an append-only file of CRC-framed records, each holding
    the SQL text of one committed write (or one committed transaction's worth
    of writes). The engine keeps data in memory; durability comes from
    logging every committed statement here and replaying the log over the
    latest checkpoint on {!Db.open_dir}.

    {2 File format}

    {v
    file   := header record*
    header := "OXWAL1\n" generation:64le          (15 bytes)
    record := kind:8 len:32le crc:32le payload    (9-byte frame + payload)
    v}

    [kind] is ['S'] (one autocommit statement, payload = SQL text) or ['T']
    (one committed transaction, payload = a sequence of 32le-length-prefixed
    SQL texts). [crc] is CRC-32 (IEEE) over the kind byte followed by the
    payload, so a bit flip in either the type or the body of a record is
    detected. A record is valid only if its whole frame fits in the file and
    the CRC matches; the first invalid record ends the valid prefix and
    everything after it is a {e torn tail} — discarded on recovery and
    truncated away when a writer reopens the file. Appends are single
    [write(2)] calls, so the log is always a valid prefix followed by at
    most one torn record. *)

type fsync_policy =
  | Always  (** fsync after every record: no committed write is ever lost *)
  | Every of int
      (** fsync after every [n] records: bounds loss to the last [n-1]
          commits on power failure (in-process crashes lose nothing) *)
  | Never  (** leave flushing to the OS (and to {!close}) *)

type record =
  | Stmt of string  (** one autocommit DML/DDL statement *)
  | Batch of string list  (** one committed transaction *)

exception Corrupt of string
(** Raised when a log file's header does not belong to the generation the
    caller expects (record-level damage is never an error: it just ends the
    valid prefix). *)

(** {2 Writing} *)

type writer

val open_writer : ?policy:fsync_policy -> gen:int -> string -> writer
(** Open (or create) the log at [path] for appending. A missing, empty or
    header-torn file is (re)initialized with a fresh header; an existing log
    is scanned and truncated to its valid prefix so new records never land
    after a torn tail.
    @raise Corrupt if the file carries a different generation. *)

val append : writer -> record -> unit
(** Frame, CRC and append one record in a single write, then fsync according
    to the policy. Counts [wal.append] (and [wal.fsync] when it syncs) in
    {!Obs} when enabled. *)

val sync : writer -> unit
(** Unconditional fsync (no-op if nothing was appended since the last). *)

val close : writer -> unit
(** Sync and close. Idempotent. *)

val size : writer -> int
(** Current file length in bytes, header included. *)

val gen : writer -> int
val path : writer -> string

val appends : writer -> int
(** Records appended through this writer. *)

val fsyncs : writer -> int
(** fsync(2) calls issued by this writer. *)

(** {2 Reading (recovery)} *)

type read_result = {
  records : record list;  (** the valid prefix, in append order *)
  file_gen : int;  (** generation from the header, [-1] if header torn *)
  valid_len : int;  (** byte length of header + valid records *)
  torn_bytes : int;  (** bytes past the valid prefix (0 for a clean log) *)
}

val read_file : string -> read_result
(** Parse a log file, stopping at the first invalid record. Never raises on
    damaged contents — damage just shortens the valid prefix.
    @raise Sys_error if the file cannot be opened. *)

val frame_ends : string -> int list
(** Byte offsets just past each valid record (test instrumentation: maps a
    truncation offset to the number of records that survive it). *)

(** {2 Crash-point hooks}

    The commit and checkpoint sequences call {!failpoint} with a point name
    at every step boundary; a test installs a hook that raises to simulate a
    process kill at exactly that point. The hook must treat the database
    handle as dead afterwards — only {!Db.open_dir} on the directory is
    meaningful, as after a real crash. *)

val set_failpoint : (string -> unit) option -> unit
val failpoint : string -> unit

(** {2 Utilities} *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3), as used by the record frames. *)

val fsync_dir : string -> unit
(** fsync a directory so renames/creates/unlinks in it are durable (best
    effort: ignored on systems that refuse directory fsync). *)
