type fsync_policy = Always | Every of int | Never

type record =
  | Stmt of string
  | Batch of string list

exception Corrupt of string

let magic = "OXWAL1\n"
let header_size = String.length magic + 8

(* --- failpoints -------------------------------------------------------- *)

let failpoint_hook : (string -> unit) option ref = ref None
let set_failpoint h = failpoint_hook := h
let failpoint name = match !failpoint_hook with Some h -> h name | None -> ()

(* --- CRC-32 (IEEE 802.3, table-driven) --------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s =
  let tbl = Lazy.force crc_table in
  let c = ref crc in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c

let crc32 s = crc32_update 0xFFFFFFFF s lxor 0xFFFFFFFF

(* --- little-endian integer framing ------------------------------------- *)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let get_u32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let put_u64 buf v =
  for k = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * k)) land 0xff))
  done

let get_u64 s off =
  let v = ref 0 in
  for k = 7 downto 0 do
    v := (!v lsl 8) lor Char.code s.[off + k]
  done;
  !v

(* --- record encoding --------------------------------------------------- *)

let kind_char = function Stmt _ -> 'S' | Batch _ -> 'T'

let payload_of = function
  | Stmt s -> s
  | Batch stmts ->
      let buf = Buffer.create 256 in
      List.iter
        (fun s ->
          put_u32 buf (String.length s);
          Buffer.add_string buf s)
        stmts;
      Buffer.contents buf

let encode_record r =
  let kind = kind_char r in
  let payload = payload_of r in
  let crc = crc32_update 0xFFFFFFFF (String.make 1 kind) in
  let crc = crc32_update crc payload lxor 0xFFFFFFFF in
  let buf = Buffer.create (String.length payload + 9) in
  Buffer.add_char buf kind;
  put_u32 buf (String.length payload);
  put_u32 buf crc;
  Buffer.add_string buf payload;
  Buffer.contents buf

(* Split a 'T' payload back into statements; None if the length prefixes do
   not tile the payload exactly (CRC passed, so this is a writer bug rather
   than disk damage — treat it as end-of-valid-prefix all the same). *)
let decode_batch payload =
  let n = String.length payload in
  let rec go acc off =
    if off = n then Some (List.rev acc)
    else if off + 4 > n then None
    else
      let len = get_u32 payload off in
      if len < 0 || off + 4 + len > n then None
      else go (String.sub payload (off + 4) len :: acc) (off + 4 + len)
  in
  go [] 0

(* Decode the records of [data] (a whole log file image). Returns the valid
   records with the byte offset just past each, in order. *)
let decode_records data =
  let n = String.length data in
  let rec go acc off =
    if off + 9 > n then List.rev acc
    else
      let kind = data.[off] in
      if kind <> 'S' && kind <> 'T' then List.rev acc
      else
        let len = get_u32 data (off + 1) in
        let crc = get_u32 data (off + 5) in
        if len < 0 || off + 9 + len > n then List.rev acc
        else
          let payload = String.sub data (off + 9) len in
          let crc' = crc32_update 0xFFFFFFFF (String.make 1 kind) in
          let crc' = crc32_update crc' payload lxor 0xFFFFFFFF in
          if crc' <> crc then List.rev acc
          else
            let record =
              if kind = 'S' then Some (Stmt payload)
              else Option.map (fun ss -> Batch ss) (decode_batch payload)
            in
            match record with
            | None -> List.rev acc
            | Some r -> go ((r, off + 9 + len) :: acc) (off + 9 + len)
  in
  go [] header_size

type read_result = {
  records : record list;
  file_gen : int;
  valid_len : int;
  torn_bytes : int;
}

let read_string path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_image data =
  let n = String.length data in
  if n < header_size || String.sub data 0 (String.length magic) <> magic then
    { records = []; file_gen = -1; valid_len = 0; torn_bytes = n }
  else
    let gen = get_u64 data (String.length magic) in
    let decoded = decode_records data in
    let valid_len =
      List.fold_left (fun _ (_, e) -> e) header_size decoded
    in
    {
      records = List.map fst decoded;
      file_gen = gen;
      valid_len;
      torn_bytes = n - valid_len;
    }

let read_file path = parse_image (read_string path)

let frame_ends path =
  List.map snd (decode_records (read_string path))

(* --- directory sync ---------------------------------------------------- *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* --- writer ------------------------------------------------------------ *)

type writer = {
  w_path : string;
  w_gen : int;
  w_policy : fsync_policy;
  w_fd : Unix.file_descr;
  mutable w_size : int;
  mutable w_unsynced : int;  (* records appended since the last fsync *)
  mutable w_appends : int;
  mutable w_fsyncs : int;
  mutable w_closed : bool;
}

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd bytes !off (n - !off)
  done

let header_bytes gen =
  let buf = Buffer.create header_size in
  Buffer.add_string buf magic;
  put_u64 buf gen;
  Buffer.to_bytes buf

let open_writer ?(policy = Every 32) ~gen path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let w =
    {
      w_path = path;
      w_gen = gen;
      w_policy = policy;
      w_fd = fd;
      w_size = 0;
      w_unsynced = 0;
      w_appends = 0;
      w_fsyncs = 0;
      w_closed = false;
    }
  in
  let image = read_string path in
  let parsed = parse_image image in
  if parsed.file_gen = -1 then begin
    (* fresh file, or a header torn by a crash during creation: start over *)
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    Unix.ftruncate fd 0;
    write_all fd (header_bytes gen);
    Unix.fsync fd;
    w.w_fsyncs <- w.w_fsyncs + 1;
    w.w_size <- header_size
  end
  else if parsed.file_gen <> gen then begin
    Unix.close fd;
    raise
      (Corrupt
         (Printf.sprintf "%s: log carries generation %d, expected %d" path
            parsed.file_gen gen))
  end
  else begin
    (* drop the torn tail so appends extend the valid prefix *)
    if parsed.torn_bytes > 0 then Unix.ftruncate fd parsed.valid_len;
    ignore (Unix.lseek fd parsed.valid_len Unix.SEEK_SET);
    w.w_size <- parsed.valid_len
  end;
  w

let do_fsync w =
  Unix.fsync w.w_fd;
  w.w_fsyncs <- w.w_fsyncs + 1;
  w.w_unsynced <- 0;
  Obs.incr "wal.fsync"

let append w r =
  if w.w_closed then invalid_arg "Wal.append: writer is closed";
  let frame = encode_record r in
  failpoint "wal.append.before";
  write_all w.w_fd (Bytes.of_string frame);
  w.w_size <- w.w_size + String.length frame;
  w.w_appends <- w.w_appends + 1;
  w.w_unsynced <- w.w_unsynced + 1;
  Obs.incr "wal.append";
  failpoint "wal.append.after";
  (match w.w_policy with
  | Always -> do_fsync w
  | Every n -> if w.w_unsynced >= n then do_fsync w
  | Never -> ());
  failpoint "wal.append.synced"

let sync w =
  if (not w.w_closed) && w.w_unsynced > 0 then do_fsync w

let close w =
  if not w.w_closed then begin
    (try if w.w_unsynced > 0 then do_fsync w with Unix.Unix_error _ -> ());
    (try Unix.close w.w_fd with Unix.Unix_error _ -> ());
    w.w_closed <- true
  end

let size w = w.w_size
let gen w = w.w_gen
let path w = w.w_path
let appends w = w.w_appends
let fsyncs w = w.w_fsyncs
