exception Exec_error of string

(* evaluate sort keys once per tuple, then compare decorated pairs *)
let sort_tuples keys tuples =
  let decorated =
    List.map
      (fun t -> (List.map (fun (e, dir) -> (Expr.eval e t, dir)) keys, t))
      tuples
  in
  let cmp (ka, _) (kb, _) =
    let rec go a b =
      match (a, b) with
      | [], [] -> 0
      | (va, dir) :: ra, (vb, _) :: rb ->
          let c = Value.compare va vb in
          if c <> 0 then (match dir with Plan.Asc -> c | Plan.Desc -> -c)
          else go ra rb
      | _ -> 0
    in
    go ka kb
  in
  List.map snd (List.stable_sort cmp decorated)

type agg_state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable minv : Value.t;
  mutable maxv : Value.t;
}

let new_agg_state () =
  {
    count = 0;
    sum_i = 0;
    sum_f = 0.0;
    saw_float = false;
    minv = Value.Null;
    maxv = Value.Null;
  }

let agg_feed st (v : Value.t) =
  match v with
  | Value.Null -> ()
  | v ->
      st.count <- st.count + 1;
      (match v with
      | Value.Int i -> st.sum_i <- st.sum_i + i
      | Value.Float f ->
          st.saw_float <- true;
          st.sum_f <- st.sum_f +. f
      | Value.Str _ | Value.Bytes _ | Value.Null -> ());
      if Value.is_null st.minv || Value.compare v st.minv < 0 then st.minv <- v;
      if Value.is_null st.maxv || Value.compare v st.maxv > 0 then st.maxv <- v

let agg_result (agg : Plan.agg) (star_count : int) st =
  match agg with
  | Plan.Count_star -> Value.Int star_count
  | Plan.Count _ -> Value.Int st.count
  | Plan.Sum _ ->
      if st.count = 0 then Value.Null
      else if st.saw_float then Value.Float (st.sum_f +. float_of_int st.sum_i)
      else Value.Int st.sum_i
  | Plan.Min _ -> st.minv
  | Plan.Max _ -> st.maxv
  | Plan.Avg _ ->
      if st.count = 0 then Value.Null
      else Value.Float ((st.sum_f +. float_of_int st.sum_i) /. float_of_int st.count)

let agg_expr = function
  | Plan.Count_star -> None
  | Plan.Count e | Plan.Sum e | Plan.Min e | Plan.Max e | Plan.Avg e -> Some e

(* The evaluator is parametric in a per-node wrapper so the same operator
   implementations serve both the plain path (identity wrapper) and EXPLAIN
   ANALYZE (a row-counting, pull-timing wrapper around every operator). *)
let rec eval ~wrap (p : Plan.t) : Tuple.t Seq.t =
  let run c = wrap c (eval ~wrap c) in
  match p with
  | Plan.Seq_scan t -> Seq.map snd (Table.scan t)
  | Plan.Index_scan { table; index; lo; hi; reverse } ->
      let entries =
        if reverse then Btree.range_desc index.Table.tree ~lo ~hi
        else Btree.range index.Table.tree ~lo ~hi
      in
      Seq.filter_map
        (fun (_, rowid) ->
          match Table.get table rowid with
          | Some tu -> Some tu
          | None -> None)
        entries
  | Plan.Filter (pred, input) ->
      Seq.filter (fun t -> Expr.eval_bool pred t) (run input)
  | Plan.Project (cols, input) ->
      Seq.map
        (fun t -> Array.map (fun (e, _) -> Expr.eval e t) cols)
        (run input)
  | Plan.Nl_join { outer; inner; pred } ->
      (* materialize inner once; re-scan per outer row *)
      let inner_rows = List.of_seq (run inner) in
      Seq.concat_map
        (fun ot ->
          List.to_seq
            (List.filter_map
               (fun it ->
                 let joined = Tuple.concat ot it in
                 match pred with
                 | None -> Some joined
                 | Some e -> if Expr.eval_bool e joined then Some joined else None)
               inner_rows))
        (run outer)
  | Plan.Hash_join { left; right; left_key; right_key; residual } ->
      let table = Hashtbl.create 1024 in
      Seq.iter
        (fun lt ->
          let k = Tuple.key left_key lt in
          if not (Array.exists Value.is_null k) then
            Hashtbl.add table (Tuple.hash_key k) (k, lt))
        (run left);
      Seq.concat_map
        (fun rt ->
          let k = Tuple.key right_key rt in
          if Array.exists Value.is_null k then Seq.empty
          else
            let candidates = Hashtbl.find_all table (Tuple.hash_key k) in
            List.to_seq
              (List.rev
                 (List.filter_map
                    (fun (lk, lt) ->
                      if Tuple.equal lk k then begin
                        let joined = Tuple.concat lt rt in
                        match residual with
                        | None -> Some joined
                        | Some e ->
                            if Expr.eval_bool e joined then Some joined else None
                      end
                      else None)
                    candidates)))
        (run right)
  | Plan.Merge_join { left; right; left_key; right_key; residual } ->
      let lrows = Array.of_seq (run left) in
      let rrows = Array.of_seq (run right) in
      let emit = ref [] in
      let li = ref 0 and ri = ref 0 in
      let ln = Array.length lrows and rn = Array.length rrows in
      while !li < ln && !ri < rn do
        let lk = Tuple.key left_key lrows.(!li) in
        let rk = Tuple.key right_key rrows.(!ri) in
        let c = Tuple.compare_key lk rk in
        if c < 0 then incr li
        else if c > 0 then incr ri
        else begin
          (* collect both equal groups *)
          let lstop = ref !li in
          while
            !lstop < ln && Tuple.compare_key (Tuple.key left_key lrows.(!lstop)) lk = 0
          do
            incr lstop
          done;
          let rstop = ref !ri in
          while
            !rstop < rn && Tuple.compare_key (Tuple.key right_key rrows.(!rstop)) rk = 0
          do
            incr rstop
          done;
          if not (Array.exists Value.is_null lk) then
            for i = !li to !lstop - 1 do
              for j = !ri to !rstop - 1 do
                let joined = Tuple.concat lrows.(i) rrows.(j) in
                match residual with
                | None -> emit := joined :: !emit
                | Some e -> if Expr.eval_bool e joined then emit := joined :: !emit
              done
            done;
          li := !lstop;
          ri := !rstop
        end
      done;
      List.to_seq (List.rev !emit)
  | Plan.Sort { input; keys } ->
      let rows = List.of_seq (run input) in
      List.to_seq (sort_tuples keys rows)
  | Plan.Distinct input ->
      let seen = Hashtbl.create 256 in
      Seq.filter
        (fun t ->
          let h = Tuple.hash_key t in
          let bucket = Hashtbl.find_all seen h in
          if List.exists (fun u -> Tuple.equal u t) bucket then false
          else begin
            Hashtbl.add seen h t;
            true
          end)
        (run input)
  | Plan.Aggregate { input; group_by; aggs } ->
      let groups : (int, Tuple.t * int ref * agg_state array) Hashtbl.t =
        Hashtbl.create 256
      in
      let order = ref [] in
      Seq.iter
        (fun t ->
          let gkey = Array.map (fun (e, _) -> Expr.eval e t) group_by in
          let h = Tuple.hash_key gkey in
          let entry =
            let candidates = Hashtbl.find_all groups h in
            match List.find_opt (fun (k, _, _) -> Tuple.equal k gkey) candidates with
            | Some e -> e
            | None ->
                let e =
                  (gkey, ref 0, Array.init (Array.length aggs) (fun _ -> new_agg_state ()))
                in
                Hashtbl.add groups h e;
                order := e :: !order;
                e
          in
          let _, star, states = entry in
          incr star;
          Array.iteri
            (fun i (agg, _) ->
              match agg_expr agg with
              | None -> ()
              | Some e -> agg_feed states.(i) (Expr.eval e t))
            aggs)
        (run input);
      let finalize (gkey, star, states) =
        let aggvals =
          Array.mapi (fun i (agg, _) -> agg_result agg !star states.(i)) aggs
        in
        Tuple.concat gkey aggvals
      in
      let entries = List.rev !order in
      let entries =
        (* global aggregate over an empty input still yields one row *)
        if entries = [] && Array.length group_by = 0 then
          [ ([||], ref 0, Array.init (Array.length aggs) (fun _ -> new_agg_state ())) ]
        else entries
      in
      List.to_seq (List.map finalize entries)
  | Plan.Limit { input; limit; offset } ->
      let s = Seq.drop offset (run input) in
      (match limit with None -> s | Some n -> Seq.take n s)
  | Plan.Union_all branches ->
      Seq.concat_map run (List.to_seq branches)

let id_wrap _ s = s
let run p = eval ~wrap:id_wrap p
let run_list p = List.of_seq (run p)

let row_count p = Seq.fold_left (fun acc _ -> acc + 1) 0 (run p)

(* ---- instrumented execution (EXPLAIN ANALYZE) ---------------------- *)

type prof = {
  prof_label : string;
  prof_children : prof list;
  mutable prof_rows : int;
  mutable prof_loops : int;
  mutable prof_ns : int64;
}

(* Time every pull through the operator and count the rows it produces.
   Pulls cascade into children, so recorded times are inclusive of the
   subtree below the operator — the convention EXPLAIN ANALYZE uses. *)
let instrument st (s : Tuple.t Seq.t) : Tuple.t Seq.t =
  let rec go s () =
    let t0 = Obs.Clock.now_ns () in
    let node = s () in
    st.prof_ns <- Int64.add st.prof_ns (Int64.sub (Obs.Clock.now_ns ()) t0);
    match node with
    | Seq.Nil -> Seq.Nil
    | Seq.Cons (x, rest) ->
        st.prof_rows <- st.prof_rows + 1;
        Seq.Cons (x, go rest)
  in
  fun () ->
    st.prof_loops <- st.prof_loops + 1;
    go s ()

let run_profiled (p : Plan.t) : Tuple.t list * prof =
  (* stats are keyed by the plan node's physical identity: structurally
     equal nodes (a self-join's two scans) must keep separate counters *)
  let assoc = ref [] in
  let rec build p =
    let children = List.map build (Plan.children p) in
    let node =
      {
        prof_label = Plan.label p;
        prof_children = children;
        prof_rows = 0;
        prof_loops = 0;
        prof_ns = 0L;
      }
    in
    assoc := (Obj.repr p, node) :: !assoc;
    node
  in
  let root = build p in
  let wrap p s =
    match List.assq_opt (Obj.repr p) !assoc with
    | None -> s
    | Some st -> instrument st s
  in
  let tuples = List.of_seq (wrap p (eval ~wrap p)) in
  (tuples, root)

let rec pp_prof_indent ppf (level, pr) =
  Format.fprintf ppf "%s%s (actual rows=%d loops=%d time=%.3f ms)@."
    (String.make (level * 2) ' ')
    pr.prof_label pr.prof_rows pr.prof_loops
    (Int64.to_float pr.prof_ns /. 1e6);
  List.iter (fun c -> pp_prof_indent ppf (level + 1, c)) pr.prof_children

let pp_prof ppf pr = pp_prof_indent ppf (0, pr)
