(* A cached SELECT plan: valid only while the catalog version is unchanged.
   [ce_tick] implements LRU — it records the last lookup that touched the
   entry; eviction removes the smallest tick. *)
type cache_entry = {
  ce_version : int;
  ce_simplify : bool;  (* Simplify.enabled at plan time; toggling it must
                          not serve plans built under the other setting *)
  ce_plan : Plan.t;
  mutable ce_tick : int;
}

(* Durable state for databases opened with [open_dir]: the WAL writer plus
   the transaction's pending log records. Committed writes are appended to
   the WAL as SQL text; a transaction buffers its statements here and logs
   them as one atomic batch record at commit. *)
type durable = {
  dur_dir : string;
  mutable dur_wal : Wal.writer;
  mutable dur_gen : int;  (* checkpoint generation the WAL belongs to *)
  dur_policy : Wal.fsync_policy;
  mutable dur_txn_buf : string list;  (* reversed *)
  mutable dur_auto : int option;  (* checkpoint when WAL exceeds this size *)
}

type recovery_info = {
  rec_gen : int;  (* generation recovered *)
  rec_checkpoint : bool;  (* whether a checkpoint snapshot was loaded *)
  rec_records : int;  (* WAL records replayed *)
  rec_statements : int;  (* statements inside those records *)
  rec_torn_bytes : int;  (* torn tail discarded from the log *)
  rec_ms : float;
}

type t = {
  cat : Catalog.t;
  mutable txn : bool;
  mutable slow_ms : float option;  (* slow-query log threshold *)
  mutable slow_log : (float * string) list;  (* newest first, capped *)
  plan_cache : (string, cache_entry) Hashtbl.t;  (* keyed by raw SQL text *)
  mutable cache_tick : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable dur : durable option;  (* None: plain in-memory database *)
  mutable last_recovery : recovery_info option;
}

let slow_log_cap = 32
let plan_cache_cap = 128

type result =
  | Rows of { schema : Schema.t; tuples : Tuple.t list }
  | Affected of int

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

let create () =
  {
    cat = Catalog.create ();
    txn = false;
    slow_ms = None;
    slow_log = [];
    plan_cache = Hashtbl.create 64;
    cache_tick = 0;
    cache_hits = 0;
    cache_misses = 0;
    dur = None;
    last_recovery = None;
  }

let set_slow_query_threshold t ms = t.slow_ms <- ms
let slow_queries t = t.slow_log
let clear_slow_queries t = t.slow_log <- []

let in_transaction t = t.txn

let catalog t = t.cat

let table t name =
  match Catalog.find_table t.cat name with
  | Some tbl -> tbl
  | None -> fail "no such table %s" name

let rows_read t =
  List.fold_left (fun acc tbl -> acc + Table.rows_read tbl) 0 (Catalog.tables t.cat)

let rows_written t =
  List.fold_left (fun acc tbl -> acc + Table.rows_written tbl) 0 (Catalog.tables t.cat)

let reset_counters t = List.iter Table.reset_counters (Catalog.tables t.cat)

(* --- dump -------------------------------------------------------------- *)

let row_literal tu =
  Printf.sprintf "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_sql_literal tu)))

let dump t =
  let buf = Buffer.create 4096 in
  let tables =
    List.sort
      (fun a b -> compare (Table.name a) (Table.name b))
      (Catalog.tables t.cat)
  in
  List.iter
    (fun tbl ->
      let schema = Table.schema tbl in
      Buffer.add_string buf
        (Printf.sprintf "CREATE TABLE %s (%s);\n" (Table.name tbl)
           (String.concat ", "
              (Array.to_list
                 (Array.map
                    (fun (c : Schema.column) ->
                      Printf.sprintf "%s %s%s" c.Schema.col_name
                        (Value.ty_name c.Schema.col_type)
                        (if c.Schema.nullable then "" else " NOT NULL"))
                    schema))));
      List.iter
        (fun (idx : Table.index) ->
          Buffer.add_string buf
            (Printf.sprintf "CREATE %sINDEX %s ON %s (%s);\n"
               (if idx.Table.unique then "UNIQUE " else "")
               idx.Table.idx_name (Table.name tbl)
               (String.concat ", "
                  (Array.to_list
                     (Array.map
                        (fun c -> schema.(c).Schema.col_name)
                        idx.Table.key_cols)))))
        (Table.indexes tbl);
      (* batch rows into multi-VALUES inserts *)
      let batch = ref [] and n = ref 0 in
      let flush () =
        if !batch <> [] then begin
          Buffer.add_string buf
            (Printf.sprintf "INSERT INTO %s VALUES %s;\n" (Table.name tbl)
               (String.concat ", " (List.rev !batch)));
          batch := [];
          n := 0
        end
      in
      Seq.iter
        (fun (_, tu) ->
          batch := row_literal tu :: !batch;
          incr n;
          if !n >= 100 then flush ())
        (Table.scan tbl);
      flush ())
    tables;
  Buffer.contents buf

let dump_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump t))

(* --- durability: WAL logging and checkpointing ------------------------- *)

let ckpt_name gen = Printf.sprintf "checkpoint.%d.sql" gen
let wal_name gen = Printf.sprintf "wal.%d.log" gen

let is_durable t = t.dur <> None
let db_dir t = Option.map (fun d -> d.dur_dir) t.dur
let last_recovery t = t.last_recovery
let wal_size t = match t.dur with Some d -> Wal.size d.dur_wal | None -> 0

(* Crash-safe checkpoint: snapshot the database, then truncate the log, in
   an order where a kill at any point leaves either the old generation (old
   checkpoint + old WAL) or the new one (new checkpoint + empty WAL) fully
   recoverable. The commit point is the rename in step 3 — recovery always
   picks the highest generation with a completed checkpoint file.

     1. write checkpoint.<g+1>.sql.tmp (full dump), fsync
     2. create wal.<g+1>.log (header only), fsync
     3. rename the .tmp to checkpoint.<g+1>.sql, fsync dir   <- commit point
     4. switch the writer to the new WAL
     5. delete checkpoint.<g>.sql and wal.<g>.log, fsync dir *)
let checkpoint t =
  match t.dur with
  | None -> fail "checkpoint requires a database opened with Db.open_dir"
  | Some d ->
      if t.txn then fail "cannot checkpoint inside a transaction";
      Wal.failpoint "checkpoint.begin";
      let gen' = d.dur_gen + 1 in
      let ckpt = Filename.concat d.dur_dir (ckpt_name gen') in
      let tmp = ckpt ^ ".tmp" in
      let oc = open_out_bin tmp in
      (try
         output_string oc (dump t);
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc);
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Wal.failpoint "checkpoint.temp_written";
      let wal' =
        Wal.open_writer ~policy:d.dur_policy ~gen:gen'
          (Filename.concat d.dur_dir (wal_name gen'))
      in
      Wal.fsync_dir d.dur_dir;
      Wal.failpoint "checkpoint.wal_created";
      Sys.rename tmp ckpt;
      Wal.fsync_dir d.dur_dir;
      Wal.failpoint "checkpoint.renamed";
      let old_wal = d.dur_wal and old_gen = d.dur_gen in
      d.dur_wal <- wal';
      d.dur_gen <- gen';
      Wal.close old_wal;
      Wal.failpoint "checkpoint.switched";
      (try Sys.remove (Filename.concat d.dur_dir (ckpt_name old_gen))
       with Sys_error _ -> ());
      (try Sys.remove (Filename.concat d.dur_dir (wal_name old_gen))
       with Sys_error _ -> ());
      Wal.fsync_dir d.dur_dir;
      Obs.incr "db.checkpoint";
      Wal.failpoint "checkpoint.done"

let maybe_auto_checkpoint t =
  match t.dur with
  | Some { dur_auto = Some limit; dur_wal; _ }
    when (not t.txn) && Wal.size dur_wal >= limit ->
      checkpoint t
  | _ -> ()

(* Log one committed write. Inside a transaction the statement is buffered
   and becomes part of the commit's batch record; in autocommit mode it is
   appended (and synced per policy) immediately — the durability point is
   before control returns to the caller. *)
let log_write t sql =
  match t.dur with
  | None -> ()
  | Some d ->
      if t.txn then d.dur_txn_buf <- sql :: d.dur_txn_buf
      else begin
        Wal.append d.dur_wal (Wal.Stmt sql);
        maybe_auto_checkpoint t
      end

(* Log several statements that committed as one unit (bulk loads). *)
let log_batch t sqls =
  match t.dur with
  | None -> ()
  | Some d ->
      if t.txn then
        List.iter (fun s -> d.dur_txn_buf <- s :: d.dur_txn_buf) sqls
      else begin
        Wal.append d.dur_wal (Wal.Batch sqls);
        maybe_auto_checkpoint t
      end

(* --- transactions ------------------------------------------------------ *)

let begin_txn t =
  if t.txn then fail "a transaction is already active";
  (match t.dur with Some d -> d.dur_txn_buf <- [] | None -> ());
  List.iter Table.begin_journal (Catalog.tables t.cat);
  t.txn <- true

let commit t =
  if not t.txn then fail "no active transaction";
  (* WAL first: once the batch record is on disk the transaction is durable;
     a crash after this point replays it, a crash before loses it whole. *)
  (match t.dur with
  | Some d when d.dur_txn_buf <> [] ->
      Wal.failpoint "commit.before_log";
      Wal.append d.dur_wal (Wal.Batch (List.rev d.dur_txn_buf));
      d.dur_txn_buf <- [];
      Wal.failpoint "commit.logged"
  | _ -> ());
  List.iter Table.commit_journal (Catalog.tables t.cat);
  t.txn <- false;
  Wal.failpoint "commit.done";
  maybe_auto_checkpoint t

let rollback t =
  if not t.txn then fail "no active transaction";
  (match t.dur with Some d -> d.dur_txn_buf <- [] | None -> ());
  List.iter Table.rollback_journal (Catalog.tables t.cat);
  t.txn <- false

let with_transaction t f =
  begin_txn t;
  match f () with
  | v ->
      commit t;
      v
  | exception e ->
      rollback t;
      raise e

(* constant folding for INSERT value lists *)
let rec const_eval (e : Sql_ast.sexpr) : Value.t =
  match e with
  | Sql_ast.E_const v -> v
  | Sql_ast.E_neg a -> begin
      match const_eval a with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> fail "cannot negate %s" (Value.to_string v)
    end
  | Sql_ast.E_arith (op, a, b) -> begin
      let ea = Expr.Const (const_eval a) and eb = Expr.Const (const_eval b) in
      try Expr.eval (Expr.Arith (op, ea, eb)) [||]
      with Expr.Eval_error m -> fail "%s" m
    end
  | Sql_ast.E_concat (a, b) ->
      Value.Str (Value.to_string (const_eval a) ^ Value.to_string (const_eval b))
  | _ -> fail "INSERT values must be constants"

let do_insert t ~table:name ~columns ~values =
  let tbl = table t name in
  let schema = Table.schema tbl in
  let arity = Schema.arity schema in
  let positions =
    match columns with
    | None -> Array.init arity (fun i -> i)
    | Some cols ->
        Array.of_list
          (List.map
             (fun c ->
               match Schema.find_opt schema c with
               | Some i -> i
               | None -> fail "table %s has no column %s" name c)
             cols)
  in
  let count = ref 0 in
  List.iter
    (fun row ->
      if List.length row <> Array.length positions then
        fail "INSERT arity mismatch";
      let tuple = Array.make arity Value.Null in
      List.iteri (fun i e -> tuple.(positions.(i)) <- const_eval e) row;
      (try ignore (Table.insert tbl tuple)
       with Table.Constraint_violation m -> fail "%s" m);
      incr count)
    values;
  Affected !count

let resolve_where tbl = function
  | None -> None
  | Some w -> (
      try Some (Planner.resolve_expr_for_table tbl w)
      with Planner.Plan_error m -> fail "%s" m)

let do_update t ~table:name ~sets ~where =
  let tbl = table t name in
  let schema = Table.schema tbl in
  let pred = resolve_where tbl where in
  let sets =
    List.map
      (fun (col, e) ->
        match Schema.find_opt schema col with
        | None -> fail "table %s has no column %s" name col
        | Some i -> (
            try (i, Planner.resolve_expr_for_table tbl e)
            with Planner.Plan_error m -> fail "%s" m))
      sets
  in
  let victims = List.of_seq (Planner.table_candidates tbl pred) in
  (* statement-level constraint semantics: compute every new tuple first,
     then apply them as one bulk in-place update — rowids are preserved, only
     indexes whose key changed are maintained, and a multi-row UPDATE that
     shifts a uniquely indexed column never trips over its own transient
     duplicates (Table.update_rows deletes all changed old keys per index
     before inserting any new ones). *)
  let changes =
    List.map
      (fun (rowid, old) ->
        let tuple = Array.copy old in
        List.iter
          (fun (i, e) ->
            tuple.(i) <-
              (try Expr.eval e old with Expr.Eval_error m -> fail "%s" m))
          sets;
        (rowid, tuple))
      victims
  in
  (try Table.update_rows tbl changes
   with Table.Constraint_violation m -> fail "%s" m);
  Affected (List.length victims)

let do_delete t ~table:name ~where =
  let tbl = table t name in
  let pred = resolve_where tbl where in
  let victims = List.of_seq (Planner.table_candidates tbl pred) in
  List.iter (fun (rowid, _) -> Table.delete tbl rowid) victims;
  Affected (List.length victims)

let do_create_table t ~name ~columns =
  if t.txn then fail "DDL is not allowed inside a transaction";
  let schema =
    Array.of_list
      (List.map
         (fun (cd : Sql_ast.column_def) ->
           Schema.column ~nullable:(not cd.cd_not_null) cd.cd_name cd.cd_type)
         columns)
  in
  (try ignore (Catalog.create_table t.cat name schema)
   with Catalog.Catalog_error m -> fail "%s" m);
  Affected 0

let do_create_index t ~name ~table:tname ~columns ~unique =
  if t.txn then fail "DDL is not allowed inside a transaction";
  let tbl = table t tname in
  let schema = Table.schema tbl in
  let cols =
    Array.of_list
      (List.map
         (fun c ->
           match Schema.find_opt schema c with
           | Some i -> i
           | None -> fail "table %s has no column %s" tname c)
         columns)
  in
  (try ignore (Table.create_index tbl ~name ~cols ~unique)
   with Table.Constraint_violation m -> fail "%s" m);
  (* a new index changes the available access paths: cached plans are stale *)
  Catalog.bump_version t.cat;
  Affected 0

let plan_of_select t q =
  try Planner.plan_select t.cat q with Planner.Plan_error m -> fail "%s" m

let stmt_kind : Sql_ast.stmt -> string = function
  | Sql_ast.Select _ | Sql_ast.Union_all _ -> "select"
  | Sql_ast.Insert _ -> "insert"
  | Sql_ast.Update _ -> "update"
  | Sql_ast.Delete _ -> "delete"
  | Sql_ast.Create_table _ | Sql_ast.Create_index _ | Sql_ast.Drop_table _ ->
      "ddl"
  | Sql_ast.Begin_txn | Sql_ast.Commit_txn | Sql_ast.Rollback_txn -> "txn"

let union_plan t qs =
  let plans = List.map (plan_of_select t) qs in
  let arities = List.map (fun p -> Schema.arity (Plan.schema_of p)) plans in
  (match arities with
  | a :: rest when List.exists (fun b -> b <> a) rest ->
      fail "UNION ALL branches have different arities"
  | _ -> ());
  Plan.Union_all plans

let run_select plan =
  let tuples =
    Obs.Span.with_ "exec" (fun () ->
        try Exec.run_list plan
        with Expr.Eval_error m | Exec.Exec_error m -> fail "%s" m)
  in
  Rows { schema = Plan.schema_of plan; tuples }

let exec_stmt t stmt =
  match stmt with
  | Sql_ast.Select q ->
      run_select (Obs.Span.with_ "plan" (fun () -> plan_of_select t q))
  | Sql_ast.Union_all qs ->
      run_select (Obs.Span.with_ "plan" (fun () -> union_plan t qs))
  | Sql_ast.Insert { table; columns; values } ->
      do_insert t ~table ~columns ~values
  | Sql_ast.Update { table; sets; where } -> do_update t ~table ~sets ~where
  | Sql_ast.Delete { table; where } -> do_delete t ~table ~where
  | Sql_ast.Create_table { name; columns } -> do_create_table t ~name ~columns
  | Sql_ast.Create_index { name; table; columns; unique } ->
      do_create_index t ~name ~table ~columns ~unique
  | Sql_ast.Drop_table name -> (
      if t.txn then fail "DDL is not allowed inside a transaction";
      try
        Catalog.drop_table t.cat name;
        Affected 0
      with Catalog.Catalog_error m -> fail "%s" m)
  | Sql_ast.Begin_txn ->
      begin_txn t;
      Affected 0
  | Sql_ast.Commit_txn ->
      commit t;
      Affected 0
  | Sql_ast.Rollback_txn ->
      rollback t;
      Affected 0

let parse_stmt sql =
  try Sql_parser.parse sql with Sql_parser.Parse_error m -> fail "%s" m

(* --- plan cache ------------------------------------------------------- *)
(* Only SELECT/UNION ALL plans are cached (DML re-evaluates its constants and
   takes different code paths). The key is the raw SQL text, looked up BEFORE
   lexing — a hit skips parse, simplify and planning entirely. Entries are
   validated against the catalog version; DDL and CREATE INDEX bump it, and
   [restore] builds a fresh Db, so stale plans are never served. *)

let cache_touch t entry =
  t.cache_tick <- t.cache_tick + 1;
  entry.ce_tick <- t.cache_tick

let cache_lookup t sql =
  match Hashtbl.find_opt t.plan_cache sql with
  | Some entry
    when entry.ce_version = Catalog.version t.cat
         && entry.ce_simplify = !Simplify.enabled ->
      cache_touch t entry;
      t.cache_hits <- t.cache_hits + 1;
      Obs.incr "db.plan_cache.hit";
      Some entry.ce_plan
  | Some _ ->
      Hashtbl.remove t.plan_cache sql;
      None
  | None -> None

let cache_store t sql plan =
  if Hashtbl.length t.plan_cache >= plan_cache_cap then begin
    (* evict the least recently used entry; O(n) over a small fixed cap *)
    let victim = ref None in
    Hashtbl.iter
      (fun key entry ->
        match !victim with
        | Some (_, best) when entry.ce_tick >= best -> ()
        | _ -> victim := Some (key, entry.ce_tick))
      t.plan_cache;
    match !victim with
    | Some (key, _) -> Hashtbl.remove t.plan_cache key
    | None -> ()
  end;
  t.cache_tick <- t.cache_tick + 1;
  Hashtbl.replace t.plan_cache sql
    {
      ce_version = Catalog.version t.cat;
      ce_simplify = !Simplify.enabled;
      ce_plan = plan;
      ce_tick = t.cache_tick;
    }

let plan_cache_stats t =
  (t.cache_hits, t.cache_misses, Hashtbl.length t.plan_cache)

(* Writes that must reach the WAL when the database is durable. Reads and
   transaction control do not: BEGIN/COMMIT materialize as batch records. *)
let should_log : Sql_ast.stmt -> bool = function
  | Sql_ast.Insert _ | Sql_ast.Update _ | Sql_ast.Delete _
  | Sql_ast.Create_table _ | Sql_ast.Create_index _ | Sql_ast.Drop_table _ ->
      true
  | Sql_ast.Select _ | Sql_ast.Union_all _ | Sql_ast.Begin_txn
  | Sql_ast.Commit_txn | Sql_ast.Rollback_txn ->
      false

(* Execute an already-parsed statement, populating the plan cache on SELECT
   misses. [sql] is the cache key. *)
let exec_parsed t ~sql stmt =
  if Sql_ast.param_count stmt > 0 then
    fail "statement has unbound parameters; use Db.prepare and bind values";
  match stmt with
  | Sql_ast.Select q ->
      let plan = Obs.Span.with_ "plan" (fun () -> plan_of_select t q) in
      t.cache_misses <- t.cache_misses + 1;
      Obs.incr "db.plan_cache.miss";
      cache_store t sql plan;
      run_select plan
  | Sql_ast.Union_all qs ->
      let plan = Obs.Span.with_ "plan" (fun () -> union_plan t qs) in
      t.cache_misses <- t.cache_misses + 1;
      Obs.incr "db.plan_cache.miss";
      cache_store t sql plan;
      run_select plan
  | stmt ->
      let result = exec_stmt t stmt in
      if should_log stmt then log_write t sql;
      result

let note_slow t ~sql ms =
  match t.slow_ms with
  | Some threshold when ms >= threshold ->
      let log = (ms, sql) :: t.slow_log in
      t.slow_log <-
        (if List.length log > slow_log_cap then
           List.filteri (fun i _ -> i < slow_log_cap) log
         else log)
  | _ -> ()

let exec t sql =
  if not (Obs.enabled ()) then
    match cache_lookup t sql with
    | Some plan -> run_select plan
    | None -> exec_parsed t ~sql (parse_stmt sql)
  else begin
    let t0 = Obs.Clock.now_ns () in
    let kind, result =
      match cache_lookup t sql with
      | Some plan -> ("select", run_select plan)
      | None ->
          let stmt = Obs.Span.with_ "sql-parse" (fun () -> parse_stmt sql) in
          (stmt_kind stmt, exec_parsed t ~sql stmt)
    in
    let ms = Obs.Clock.since_ms t0 in
    Obs.incr "db.statements";
    Obs.observe ("db.exec." ^ kind) ms;
    note_slow t ~sql ms;
    result
  end

let query t sql =
  match exec t sql with
  | Rows { tuples; _ } -> tuples
  | Affected _ -> fail "expected a SELECT statement"

let query_one t sql =
  match query t sql with [] -> None | r :: _ -> Some r

(* --- prepared statements ---------------------------------------------- *)

type stmt = {
  ps_db : t;
  ps_sql : string;
  ps_ast : Sql_ast.stmt;
  ps_nparams : int;
}

let prepare t sql =
  let t0 = Obs.Clock.now_ns () in
  let ast = parse_stmt sql in
  let s = { ps_db = t; ps_sql = sql; ps_ast = ast; ps_nparams = Sql_ast.param_count ast } in
  if Obs.enabled () then Obs.observe "db.prepare" (Obs.Clock.since_ms t0);
  s

(* Inline bound parameter values into the [?]-form SQL text, tracking string
   literals and quoted identifiers so a '?' inside either is left alone. The
   result is what the WAL records for a prepared write: replay then parses
   plain constants, exactly like an autocommit statement. *)
let substitute_params sql params =
  let buf = Buffer.create (String.length sql + 32) in
  let n = String.length sql in
  let next = ref 0 in
  let i = ref 0 in
  let in_str = ref false and in_ident = ref false in
  while !i < n do
    let c = sql.[!i] in
    if !in_str then begin
      Buffer.add_char buf c;
      if c = '\'' then
        if !i + 1 < n && sql.[!i + 1] = '\'' then begin
          Buffer.add_char buf '\'';
          incr i
        end
        else in_str := false
    end
    else if !in_ident then begin
      Buffer.add_char buf c;
      if c = '"' then in_ident := false
    end
    else begin
      match c with
      | '\'' ->
          in_str := true;
          Buffer.add_char buf c
      | '"' ->
          in_ident := true;
          Buffer.add_char buf c
      | '?' when !next < Array.length params ->
          Buffer.add_string buf (Value.to_sql_literal params.(!next));
          incr next
      | c -> Buffer.add_char buf c
    end;
    incr i
  done;
  Buffer.contents buf

module Stmt = struct
  let param_count s = s.ps_nparams
  let sql s = s.ps_sql

  (* Parameters are substituted into the AST before planning, so the planner
     sees ordinary constants and can match index access paths. Bound plans
     are NOT stored in the plan cache: the cache key is the [?]-form text,
     which would alias different bindings. *)
  let exec s params =
    let t = s.ps_db in
    if Array.length params <> s.ps_nparams then
      fail "prepared statement expects %d parameter(s), got %d" s.ps_nparams
        (Array.length params);
    let bound =
      try Sql_ast.bind_params params s.ps_ast
      with Sql_ast.Bind_error m -> fail "%s" m
    in
    let run () =
      let result = exec_stmt t bound in
      if should_log bound && is_durable t then
        log_write t (substitute_params s.ps_sql params);
      result
    in
    if not (Obs.enabled ()) then run ()
    else begin
      let t0 = Obs.Clock.now_ns () in
      let result = run () in
      let ms = Obs.Clock.since_ms t0 in
      Obs.incr "db.statements";
      Obs.observe ("db.exec." ^ stmt_kind bound) ms;
      note_slow t ~sql:s.ps_sql ms;
      result
    end

  let query s params =
    match exec s params with
    | Rows { tuples; _ } -> tuples
    | Affected _ -> fail "expected a SELECT statement"
end

(* --- bulk writes ------------------------------------------------------- *)

(* The dump-form INSERT statements recreating [rows], batched 100 rows per
   statement like [dump] — the WAL's logical record of a bulk load. *)
let insert_statements name rows =
  let stmts = ref [] and batch = ref [] and n = ref 0 in
  let flush () =
    if !batch <> [] then begin
      stmts :=
        Printf.sprintf "INSERT INTO %s VALUES %s" name
          (String.concat ", " (List.rev !batch))
        :: !stmts;
      batch := [];
      n := 0
    end
  in
  List.iter
    (fun row ->
      batch := row_literal row :: !batch;
      incr n;
      if !n >= 100 then flush ())
    rows;
  flush ();
  List.rev !stmts

(* Fast path for loading many rows into one table: skips SQL entirely.
   Atomic: a constraint violation removes the rows inserted so far. *)
let insert_many t name rows =
  let tbl = table t name in
  let inserted = ref [] in
  (try
     List.iter
       (fun row -> inserted := Table.insert tbl row :: !inserted)
       rows
   with Table.Constraint_violation m ->
     List.iter (fun rowid -> Table.delete tbl rowid) !inserted;
     fail "%s" m);
  if is_durable t && rows <> [] then
    log_batch t (insert_statements (Table.name tbl) rows);
  List.length rows

(* Single-row loader fast path (streaming shredders): one Table.insert plus,
   on durable databases, one WAL record. *)
let insert_row t name row =
  let tbl = table t name in
  let rowid =
    try Table.insert tbl row
    with Table.Constraint_violation m -> fail "%s" m
  in
  if is_durable t then
    log_write t
      (Printf.sprintf "INSERT INTO %s VALUES %s" (Table.name tbl)
         (row_literal row));
  rowid

(* --- scripts ----------------------------------------------------------- *)

(* Each statement is parsed exactly once. Runs of DML execute inside one
   implicit transaction (opened lazily, committed before any DDL or explicit
   transaction-control statement, which must run outside a journal); if the
   caller already holds a transaction, statements just run in it. *)
let exec_script t stmts =
  let parsed = List.map (fun s -> (s, parse_stmt s)) stmts in
  if t.txn then
    List.iter (fun (sql, ast) -> ignore (exec_parsed t ~sql ast)) parsed
  else begin
    let open_bracket = ref false in
    let close () =
      if !open_bracket then begin
        commit t;
        open_bracket := false
      end
    in
    try
      List.iter
        (fun (sql, ast) ->
          (match ast with
          | Sql_ast.Create_table _ | Sql_ast.Create_index _
          | Sql_ast.Drop_table _ | Sql_ast.Begin_txn | Sql_ast.Commit_txn
          | Sql_ast.Rollback_txn ->
              close ()
          | Sql_ast.Select _ | Sql_ast.Union_all _ | Sql_ast.Insert _
          | Sql_ast.Update _ | Sql_ast.Delete _ ->
              if (not !open_bracket) && not t.txn then begin
                begin_txn t;
                open_bracket := true
              end);
          ignore (exec_parsed t ~sql ast);
          (* an explicit BEGIN inside the script takes over bracketing *)
          if !open_bracket && not t.txn then open_bracket := false)
        parsed;
      close ()
    with e ->
      if !open_bracket && t.txn then rollback t;
      raise e
  end

let explain t sql =
  match Sql_parser.parse sql with
  | Sql_ast.Select q -> Format.asprintf "%a" Plan.pp (plan_of_select t q)
  | Sql_ast.Union_all qs ->
      Format.asprintf "%a" Plan.pp
        (Plan.Union_all (List.map (plan_of_select t) qs))
  | _ -> fail "EXPLAIN supports only SELECT"
  | exception Sql_parser.Parse_error m -> fail "%s" m

let explain_analyze t sql =
  let analyze plan =
    let read0 = rows_read t in
    let t0 = Obs.Clock.now_ns () in
    let tuples, prof =
      try Exec.run_profiled plan
      with Expr.Eval_error m | Exec.Exec_error m -> fail "%s" m
    in
    let total_ms = Obs.Clock.since_ms t0 in
    Format.asprintf "%a(total: %d rows in %.3f ms; %d logical rows read)"
      Exec.pp_prof prof (List.length tuples) total_ms (rows_read t - read0)
  in
  match Sql_parser.parse sql with
  | Sql_ast.Select q -> analyze (plan_of_select t q)
  | Sql_ast.Union_all qs -> analyze (union_plan t qs)
  | _ -> fail "EXPLAIN ANALYZE supports only SELECT"
  | exception Sql_parser.Parse_error m -> fail "%s" m

let render = function
  | Affected n -> Printf.sprintf "(%d rows affected)" n
  | Rows { schema; tuples } ->
      let headers = Array.map (fun c -> c.Schema.col_name) schema in
      let cells = List.map (Array.map Value.to_string) tuples in
      let widths = Array.map String.length headers in
      List.iter
        (fun row ->
          Array.iteri (fun i s -> widths.(i) <- max widths.(i) (String.length s)) row)
        cells;
      let buf = Buffer.create 256 in
      let line () =
        Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
        Buffer.add_string buf "+\n"
      in
      let row cells =
        Array.iteri
          (fun i s ->
            Buffer.add_string buf (Printf.sprintf "| %-*s " widths.(i) s))
          cells;
        Buffer.add_string buf "|\n"
      in
      line ();
      row headers;
      line ();
      List.iter (fun r -> row r) cells;
      line ();
      Buffer.add_string buf (Printf.sprintf "(%d rows)" (List.length tuples));
      Buffer.contents buf

(* split a script on ';' outside string literals (text values may contain
   newlines and semicolons, so line-based splitting would corrupt them) and
   outside '--' line comments (a comment may contain ';', which must not end
   the statement — the SQL lexer skips the comment, this splitter must too) *)
let split_statements script =
  let out = ref [] in
  let buf = Buffer.create 256 in
  let n = String.length script in
  let in_str = ref false in
  let i = ref 0 in
  while !i < n do
    let c = script.[!i] in
    (if !in_str then begin
       Buffer.add_char buf c;
       if c = '\'' then
         if !i + 1 < n && script.[!i + 1] = '\'' then begin
           Buffer.add_char buf '\'';
           incr i
         end
         else in_str := false
     end
     else
       match c with
       | '\'' ->
           in_str := true;
           Buffer.add_char buf c
       | '-' when !i + 1 < n && script.[!i + 1] = '-' ->
           (* drop the comment text; keep the newline as a separator *)
           while !i < n && script.[!i] <> '\n' do
             incr i
           done;
           if !i < n then Buffer.add_char buf '\n'
       | ';' ->
           out := Buffer.contents buf :: !out;
           Buffer.clear buf
       | c -> Buffer.add_char buf c);
    incr i
  done;
  if String.trim (Buffer.contents buf) <> "" then
    out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out |> List.filter (fun s -> s <> "")

let restore script =
  let t = create () in
  exec_script t (split_statements script);
  t

let restore_from_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> restore (really_input_string ic (in_channel_length ic)))

(* --- persistent databases ---------------------------------------------- *)

(* Parse "<stem>.<gen>.<ext>" names; None for anything else (including the
   ".tmp" files an interrupted checkpoint leaves behind). *)
let gen_of_name ~stem ~ext name =
  let prefix = stem ^ "." and suffix = "." ^ ext in
  if
    String.length name > String.length prefix + String.length suffix
    && String.sub name 0 (String.length prefix) = prefix
    && Filename.check_suffix name suffix
  then
    int_of_string_opt
      (String.sub name (String.length prefix)
         (String.length name - String.length prefix - String.length suffix))
  else None

let ckpt_gen_of = gen_of_name ~stem:"checkpoint" ~ext:"sql"
let wal_gen_of = gen_of_name ~stem:"wal" ~ext:"log"

(* Recovery: load the newest completed checkpoint, replay the WAL of the
   same generation up to its torn tail, and garbage-collect everything else
   (interrupted checkpoints leave .tmp files and, at worst, a fresher empty
   WAL whose checkpoint never committed — all stale by the generation rule). *)
let open_dir ?(fsync = Wal.Every 32) ?auto_checkpoint dir =
  let t0 = Obs.Clock.now_ns () in
  if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      fail "open_dir: %s exists and is not a directory" dir
  end
  else Unix.mkdir dir 0o755;
  let entries = Sys.readdir dir in
  let gens_of f = List.filter_map f (Array.to_list entries) in
  let ckpt_gens = gens_of ckpt_gen_of and wal_gens = gens_of wal_gen_of in
  let gen =
    match (ckpt_gens, wal_gens) with
    | [], [] -> 0
    | [], w :: ws -> List.fold_left min w ws
    | c :: cs, _ -> List.fold_left max c cs
  in
  (* sweep stale generations and interrupted-checkpoint leftovers *)
  Array.iter
    (fun name ->
      let stale =
        Filename.check_suffix name ".tmp"
        || (match ckpt_gen_of name with Some g -> g <> gen | None -> false)
        || (match wal_gen_of name with Some g -> g <> gen | None -> false)
      in
      if stale then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    entries;
  let ckpt_path = Filename.concat dir (ckpt_name gen) in
  let have_ckpt = Sys.file_exists ckpt_path in
  let t = if have_ckpt then restore_from_file ckpt_path else create () in
  let wal_path = Filename.concat dir (wal_name gen) in
  let parsed =
    if Sys.file_exists wal_path then Wal.read_file wal_path
    else { Wal.records = []; file_gen = gen; valid_len = 0; torn_bytes = 0 }
  in
  let statements = ref 0 in
  let replay sql =
    incr statements;
    try ignore (exec t sql)
    with Sql_error m -> fail "WAL replay failed on %S: %s" sql m
  in
  List.iter
    (function
      | Wal.Stmt sql -> replay sql
      | Wal.Batch sqls -> List.iter replay sqls)
    parsed.Wal.records;
  Obs.add "wal.replayed" !statements;
  let wal = Wal.open_writer ~policy:fsync ~gen wal_path in
  Wal.fsync_dir dir;
  t.dur <-
    Some
      {
        dur_dir = dir;
        dur_wal = wal;
        dur_gen = gen;
        dur_policy = fsync;
        dur_txn_buf = [];
        dur_auto = auto_checkpoint;
      };
  let ms = Obs.Clock.since_ms t0 in
  Obs.observe "db.recovery" ms;
  t.last_recovery <-
    Some
      {
        rec_gen = gen;
        rec_checkpoint = have_ckpt;
        rec_records = List.length parsed.Wal.records;
        rec_statements = !statements;
        rec_torn_bytes = parsed.Wal.torn_bytes;
        rec_ms = ms;
      };
  t

let set_auto_checkpoint t limit =
  match t.dur with
  | None -> fail "set_auto_checkpoint requires a database opened with Db.open_dir"
  | Some d ->
      d.dur_auto <- limit;
      maybe_auto_checkpoint t

let close t =
  match t.dur with
  | None -> ()
  | Some d ->
      (* an open transaction dies with the handle, exactly as in a crash *)
      if t.txn then rollback t;
      Wal.close d.dur_wal;
      t.dur <- None
