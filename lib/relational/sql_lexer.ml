type token =
  | Ident of string
  | Kw of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bytes_lit of string
  | Sym of string
  | Eof

exception Error of string

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "ORDER"; "ASC";
    "DESC"; "LIMIT"; "OFFSET"; "AND"; "OR"; "NOT"; "NULL"; "IS"; "IN"; "LIKE";
    "BETWEEN"; "AS"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE";
    "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "ON"; "DROP"; "HAVING"; "EXISTS";
    "UNION"; "ALL"; "BEGIN"; "COMMIT"; "ROLLBACK";
  ]

let is_kw s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Error (Printf.sprintf "bad hex digit %c" c))

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '-' && peek 1 = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if (c = 'x' || c = 'X') && peek 1 = '\'' then begin
      (* bytes literal X'..' *)
      i := !i + 2;
      let buf = Buffer.create 8 in
      let rec go () =
        if !i >= n then raise (Error "unterminated bytes literal")
        else if src.[!i] = '\'' then incr i
        else begin
          if !i + 1 >= n then raise (Error "odd-length bytes literal");
          Buffer.add_char buf
            (Char.chr ((hex_val src.[!i] * 16) + hex_val src.[!i + 1]));
          i := !i + 2;
          go ()
        end
      in
      go ();
      emit (Bytes_lit (Buffer.contents buf))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      if is_kw word then emit (Kw (String.uppercase_ascii word))
      else emit (Ident word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
           incr i;
           if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
           while !i < n && is_digit src.[!i] do
             incr i
           done
         end);
        emit (Float_lit (float_of_string (String.sub src start (!i - start))))
      end
      else emit (Int_lit (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then raise (Error "unterminated string literal")
        else if src.[!i] = '\'' then
          if peek 1 = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            go ()
          end
          else incr i
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      emit (Str_lit (Buffer.contents buf))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> '"' do
        incr i
      done;
      if !i >= n then raise (Error "unterminated quoted identifier");
      emit (Ident (String.sub src start (!i - start)));
      incr i
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" | "||" ->
          emit (Sym (if two = "!=" then "<>" else two));
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/'
          | '%' | ';' | '?' ->
              emit (Sym (String.make 1 c));
              incr i
          | c -> raise (Error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  List.rev (Eof :: !toks)
