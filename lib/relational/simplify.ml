let enabled = ref true

let rec has_col = function
  | Expr.Col _ -> true
  (* A parameter is not a constant we can fold; treating it like a column
     keeps the rewriter from trying. *)
  | Expr.Param _ -> true
  | Expr.Const _ -> false
  | Expr.Cmp (_, a, b)
  | Expr.And (a, b)
  | Expr.Or (a, b)
  | Expr.Arith (_, a, b)
  | Expr.Concat (a, b) ->
      has_col a || has_col b
  | Expr.Not a | Expr.Neg a | Expr.Is_null a | Expr.Is_not_null a
  | Expr.Like (a, _) | Expr.In_list (a, _) ->
      has_col a
  | Expr.Func (_, args) -> List.exists has_col args

type truth = True | False | Unknown

(* Verdict of a constant under WHERE semantics: NULL never accepts a row. *)
let truth_of = function
  | Expr.Const Value.Null -> False
  | Expr.Const (Value.Int 0) -> False
  | Expr.Const (Value.Int _) -> True
  | Expr.Const (Value.Float f) -> if f <> 0.0 then True else False
  | _ -> Unknown

(* Like truth_of but for boolean algebra, where NULL is genuinely unknown
   (FALSE AND NULL = FALSE, but TRUE AND NULL = NULL, not TRUE). *)
let tvl = function
  | Expr.Const Value.Null -> Unknown
  | e -> truth_of e

let const_false = Expr.Const (Value.Int 0)

let rec fold (e : Expr.t) : Expr.t =
  let e =
    match e with
    | Expr.Const _ | Expr.Col _ | Expr.Param _ -> e
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, fold a, fold b)
    | Expr.And (a, b) -> Expr.And (fold a, fold b)
    | Expr.Or (a, b) -> Expr.Or (fold a, fold b)
    | Expr.Not a -> Expr.Not (fold a)
    | Expr.Arith (op, a, b) -> Expr.Arith (op, fold a, fold b)
    | Expr.Neg a -> Expr.Neg (fold a)
    | Expr.Concat (a, b) -> Expr.Concat (fold a, fold b)
    | Expr.Is_null a -> Expr.Is_null (fold a)
    | Expr.Is_not_null a -> Expr.Is_not_null (fold a)
    | Expr.Like (a, p) -> Expr.Like (fold a, p)
    | Expr.In_list (a, vs) -> Expr.In_list (fold a, vs)
    | Expr.Func (f, args) -> Expr.Func (f, List.map fold args)
  in
  match e with
  | Expr.Const _ | Expr.Col _ -> e
  | Expr.And (a, b) -> begin
      match (tvl a, tvl b) with
      | False, _ | _, False -> const_false
      | True, _ -> b
      | _, True -> a
      | _ -> e
    end
  | Expr.Or (a, b) -> begin
      match (tvl a, tvl b) with
      | True, _ | _, True -> Expr.Const (Value.Int 1)
      | False, _ -> b
      | _, False -> a
      | _ -> e
    end
  | e when not (has_col e) -> (
      (* a runtime error (division by zero) must still surface at
         execution, so a failing fold leaves the expression alone *)
      try Expr.Const (Expr.eval e [||]) with Expr.Eval_error _ -> e)
  | e -> e

(* ------------------------------------------------------------------ *)
(* Interval analysis over [col op constant] conjuncts                  *)
(* ------------------------------------------------------------------ *)

type bound = { v : Value.t; strict : bool; src : Expr.t }

type interval = {
  mutable lo : bound option;
  mutable hi : bound option;
  mutable eq : (Value.t * Expr.t) option;
  mutable dead : Expr.t list;  (* conjuncts subsumed by tighter ones *)
  mutable broken : bool;  (* constraints are mutually exclusive *)
}

(* [col op const] in either orientation, with the comparison normalized to
   put the column on the left. NULL constants never match (the fold step
   already turned those into constant NULL). *)
let atom = function
  | Expr.Cmp (op, Expr.Col i, Expr.Const v) when not (Value.is_null v) ->
      Some (i, op, v)
  | Expr.Cmp (op, Expr.Const v, Expr.Col i) when not (Value.is_null v) ->
      let flipped =
        match op with
        | Expr.Lt -> Expr.Gt
        | Expr.Le -> Expr.Ge
        | Expr.Gt -> Expr.Lt
        | Expr.Ge -> Expr.Le
        | (Expr.Eq | Expr.Ne) as op -> op
      in
      Some (i, flipped, v)
  | _ -> None

let satisfies v (op : Expr.cmp) w =
  let c = Value.compare v w in
  match op with
  | Expr.Eq -> c = 0
  | Expr.Ne -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Le -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Ge -> c >= 0

let add_constraint iv conj (op : Expr.cmp) v =
  if iv.broken then ()
  else
    match iv.eq with
    | Some (e, _) ->
        (* an equality pins the column: every further constraint is either
           implied (drop it) or impossible *)
        if satisfies e op v then iv.dead <- conj :: iv.dead
        else iv.broken <- true
    | None -> begin
        match op with
        | Expr.Eq ->
            let ok_lo =
              match iv.lo with
              | None -> true
              | Some b ->
                  let c = Value.compare v b.v in
                  if b.strict then c > 0 else c >= 0
            in
            let ok_hi =
              match iv.hi with
              | None -> true
              | Some b ->
                  let c = Value.compare v b.v in
                  if b.strict then c < 0 else c <= 0
            in
            if ok_lo && ok_hi then begin
              (* the bounds collected so far are implied by the equality *)
              (match iv.lo with Some b -> iv.dead <- b.src :: iv.dead | None -> ());
              (match iv.hi with Some b -> iv.dead <- b.src :: iv.dead | None -> ());
              iv.lo <- None;
              iv.hi <- None;
              iv.eq <- Some (v, conj)
            end
            else iv.broken <- true
        | Expr.Ne -> ()  (* kept as-is; too weak to subsume or contradict alone *)
        | Expr.Gt | Expr.Ge ->
            let strict = op = Expr.Gt in
            (match iv.lo with
            | None -> iv.lo <- Some { v; strict; src = conj }
            | Some b ->
                let c = Value.compare v b.v in
                if c > 0 || (c = 0 && strict && not b.strict) then begin
                  iv.dead <- b.src :: iv.dead;
                  iv.lo <- Some { v; strict; src = conj }
                end
                else iv.dead <- conj :: iv.dead);
            (* check against the upper bound *)
            (match (iv.lo, iv.hi) with
            | Some lo, Some hi ->
                let c = Value.compare lo.v hi.v in
                if c > 0 || (c = 0 && (lo.strict || hi.strict)) then
                  iv.broken <- true
            | _ -> ())
        | Expr.Lt | Expr.Le ->
            let strict = op = Expr.Lt in
            (match iv.hi with
            | None -> iv.hi <- Some { v; strict; src = conj }
            | Some b ->
                let c = Value.compare v b.v in
                if c < 0 || (c = 0 && strict && not b.strict) then begin
                  iv.dead <- b.src :: iv.dead;
                  iv.hi <- Some { v; strict; src = conj }
                end
                else iv.dead <- conj :: iv.dead);
            (match (iv.lo, iv.hi) with
            | Some lo, Some hi ->
                let c = Value.compare lo.v hi.v in
                if c > 0 || (c = 0 && (lo.strict || hi.strict)) then
                  iv.broken <- true
            | _ -> ())
      end

type verdict = Contradiction | Conjuncts of Expr.t list

let simplify_conjuncts conjuncts =
  let folded = List.map fold conjuncts in
  if List.exists (fun c -> truth_of c = False) folded then Contradiction
  else begin
    let live = List.filter (fun c -> truth_of c <> True) folded in
    let intervals : (int, interval) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun conj ->
        match atom conj with
        | None -> ()
        | Some (col, op, v) ->
            let iv =
              match Hashtbl.find_opt intervals col with
              | Some iv -> iv
              | None ->
                  let iv =
                    { lo = None; hi = None; eq = None; dead = []; broken = false }
                  in
                  Hashtbl.add intervals col iv;
                  iv
            in
            add_constraint iv conj op v)
      live;
    let broken = Hashtbl.fold (fun _ iv acc -> acc || iv.broken) intervals false in
    if broken then Contradiction
    else begin
      let dead =
        Hashtbl.fold (fun _ iv acc -> List.rev_append iv.dead acc) intervals []
      in
      Conjuncts (List.filter (fun c -> not (List.memq c dead)) live)
    end
  end
