open Sql_ast

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : Sql_lexer.token list; mutable params : int }

let peek st = match st.toks with [] -> Sql_lexer.Eof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let token_str = function
  | Sql_lexer.Ident s -> Printf.sprintf "identifier %s" s
  | Sql_lexer.Kw s -> s
  | Sql_lexer.Int_lit i -> string_of_int i
  | Sql_lexer.Float_lit f -> string_of_float f
  | Sql_lexer.Str_lit s -> Printf.sprintf "'%s'" s
  | Sql_lexer.Bytes_lit _ -> "bytes literal"
  | Sql_lexer.Sym s -> Printf.sprintf "%S" s
  | Sql_lexer.Eof -> "end of input"

let eat_kw st kw =
  match peek st with
  | Sql_lexer.Kw k when k = kw -> advance st
  | t -> fail "expected %s, got %s" kw (token_str t)

let try_kw st kw =
  match peek st with
  | Sql_lexer.Kw k when k = kw ->
      advance st;
      true
  | _ -> false

let eat_sym st sym =
  match peek st with
  | Sql_lexer.Sym s when s = sym -> advance st
  | t -> fail "expected %S, got %s" sym (token_str t)

let try_sym st sym =
  match peek st with
  | Sql_lexer.Sym s when s = sym ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Sql_lexer.Ident s ->
      advance st;
      s
  | t -> fail "expected an identifier, got %s" (token_str t)

let int_lit st =
  match peek st with
  | Sql_lexer.Int_lit i ->
      advance st;
      i
  | t -> fail "expected an integer, got %s" (token_str t)

(* --- expressions ---------------------------------------------------- *)

let rec parse_or st =
  let left = parse_and st in
  if try_kw st "OR" then E_or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_kw st "AND" then E_and (left, parse_and st) else left

and parse_not st =
  if try_kw st "NOT" then E_not (parse_not st) else parse_predicate st

and parse_predicate st =
  let left = parse_additive st in
  match peek st with
  | Sql_lexer.Sym ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
      let op =
        match peek st with
        | Sql_lexer.Sym "=" -> Expr.Eq
        | Sql_lexer.Sym "<>" -> Expr.Ne
        | Sql_lexer.Sym "<" -> Expr.Lt
        | Sql_lexer.Sym "<=" -> Expr.Le
        | Sql_lexer.Sym ">" -> Expr.Gt
        | Sql_lexer.Sym ">=" -> Expr.Ge
        | _ -> assert false
      in
      advance st;
      E_cmp (op, left, parse_additive st)
  | Sql_lexer.Kw "IS" ->
      advance st;
      if try_kw st "NOT" then begin
        eat_kw st "NULL";
        E_is_not_null left
      end
      else begin
        eat_kw st "NULL";
        E_is_null left
      end
  | Sql_lexer.Kw "LIKE" ->
      advance st;
      begin
        match peek st with
        | Sql_lexer.Str_lit p ->
            advance st;
            E_like (left, p)
        | t -> fail "LIKE expects a string literal, got %s" (token_str t)
      end
  | Sql_lexer.Kw "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      eat_kw st "AND";
      let hi = parse_additive st in
      E_between (left, lo, hi)
  | Sql_lexer.Kw "IN" ->
      advance st;
      eat_sym st "(";
      let rec vals acc =
        let v =
          match peek st with
          | Sql_lexer.Int_lit i ->
              advance st;
              Value.Int i
          | Sql_lexer.Float_lit f ->
              advance st;
              Value.Float f
          | Sql_lexer.Str_lit s ->
              advance st;
              Value.Str s
          | Sql_lexer.Bytes_lit b ->
              advance st;
              Value.Bytes b
          | Sql_lexer.Kw "NULL" ->
              advance st;
              Value.Null
          | t -> fail "IN list expects literals, got %s" (token_str t)
        in
        if try_sym st "," then vals (v :: acc) else List.rev (v :: acc)
      in
      let vs = vals [] in
      eat_sym st ")";
      E_in (left, vs)
  | Sql_lexer.Kw "NOT" ->
      advance st;
      (* NOT LIKE / NOT BETWEEN / NOT IN *)
      E_not (parse_negatable st left)
  | _ -> left

and parse_negatable st left =
  match peek st with
  | Sql_lexer.Kw "LIKE" ->
      advance st;
      begin
        match peek st with
        | Sql_lexer.Str_lit p ->
            advance st;
            E_like (left, p)
        | t -> fail "LIKE expects a string literal, got %s" (token_str t)
      end
  | Sql_lexer.Kw "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      eat_kw st "AND";
      let hi = parse_additive st in
      E_between (left, lo, hi)
  | Sql_lexer.Kw "IN" ->
      advance st;
      eat_sym st "(";
      let rec vals acc =
        let v =
          match peek st with
          | Sql_lexer.Int_lit i ->
              advance st;
              Value.Int i
          | Sql_lexer.Str_lit s ->
              advance st;
              Value.Str s
          | t -> fail "IN list expects literals, got %s" (token_str t)
        in
        if try_sym st "," then vals (v :: acc) else List.rev (v :: acc)
      in
      let vs = vals [] in
      eat_sym st ")";
      E_in (left, vs)
  | t -> fail "expected LIKE/BETWEEN/IN, got %s" (token_str t)

and parse_additive st =
  let left = parse_multiplicative st in
  let rec go left =
    match peek st with
    | Sql_lexer.Sym "+" ->
        advance st;
        go (E_arith (Expr.Add, left, parse_multiplicative st))
    | Sql_lexer.Sym "-" ->
        advance st;
        go (E_arith (Expr.Sub, left, parse_multiplicative st))
    | Sql_lexer.Sym "||" ->
        advance st;
        go (E_concat (left, parse_multiplicative st))
    | _ -> left
  in
  go left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec go left =
    match peek st with
    | Sql_lexer.Sym "*" ->
        advance st;
        go (E_arith (Expr.Mul, left, parse_unary st))
    | Sql_lexer.Sym "/" ->
        advance st;
        go (E_arith (Expr.Div, left, parse_unary st))
    | Sql_lexer.Sym "%" ->
        advance st;
        go (E_arith (Expr.Mod, left, parse_unary st))
    | _ -> left
  in
  go left

and parse_unary st =
  if try_sym st "-" then E_neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Sql_lexer.Int_lit i ->
      advance st;
      E_const (Value.Int i)
  | Sql_lexer.Float_lit f ->
      advance st;
      E_const (Value.Float f)
  | Sql_lexer.Str_lit s ->
      advance st;
      E_const (Value.Str s)
  | Sql_lexer.Bytes_lit b ->
      advance st;
      E_const (Value.Bytes b)
  | Sql_lexer.Kw "NULL" ->
      advance st;
      E_const Value.Null
  | Sql_lexer.Sym "(" ->
      advance st;
      let e = parse_or st in
      eat_sym st ")";
      e
  | Sql_lexer.Sym "*" ->
      advance st;
      E_star
  | Sql_lexer.Sym "?" ->
      advance st;
      let i = st.params in
      st.params <- st.params + 1;
      E_param i
  | Sql_lexer.Ident name ->
      advance st;
      if try_sym st "(" then begin
        (* function call, possibly with * argument *)
        if try_sym st ")" then E_func (String.uppercase_ascii name, [])
        else begin
          let rec args acc =
            let a = parse_or st in
            if try_sym st "," then args (a :: acc) else List.rev (a :: acc)
          in
          let a = args [] in
          eat_sym st ")";
          E_func (String.uppercase_ascii name, a)
        end
      end
      else if try_sym st "." then
        let col = ident st in
        E_col (Some name, col)
      else E_col (None, name)
  | t -> fail "unexpected token in expression: %s" (token_str t)

(* --- statements ----------------------------------------------------- *)

let parse_select st =
  eat_kw st "SELECT";
  let distinct = try_kw st "DISTINCT" in
  let rec items acc =
    let item =
      match peek st with
      | Sql_lexer.Sym "*" ->
          advance st;
          Star
      | _ ->
          let e = parse_or st in
          let alias =
            if try_kw st "AS" then Some (ident st)
            else
              match peek st with
              | Sql_lexer.Ident a ->
                  advance st;
                  Some a
              | _ -> None
          in
          Item (e, alias)
    in
    if try_sym st "," then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  eat_kw st "FROM";
  let rec tables acc =
    let name = ident st in
    let alias =
      if try_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Sql_lexer.Ident a ->
            advance st;
            Some a
        | _ -> None
    in
    if try_sym st "," then tables ((name, alias) :: acc)
    else List.rev ((name, alias) :: acc)
  in
  let from = tables [] in
  let where = if try_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if try_kw st "GROUP" then begin
      eat_kw st "BY";
      let rec go acc =
        let e = parse_or st in
        if try_sym st "," then go (e :: acc) else List.rev (e :: acc)
      in
      go []
    end
    else []
  in
  let having = if try_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if try_kw st "ORDER" then begin
      eat_kw st "BY";
      let rec go acc =
        let e = parse_or st in
        let dir =
          if try_kw st "DESC" then Desc
          else begin
            ignore (try_kw st "ASC");
            Asc
          end
        in
        if try_sym st "," then go ((e, dir) :: acc) else List.rev ((e, dir) :: acc)
      in
      go []
    end
    else []
  in
  let limit = if try_kw st "LIMIT" then Some (int_lit st) else None in
  let offset = if try_kw st "OFFSET" then Some (int_lit st) else None in
  { distinct; items; from; where; group_by; having; order_by; limit; offset }

let parse_insert st =
  eat_kw st "INSERT";
  eat_kw st "INTO";
  let table = ident st in
  let columns =
    if try_sym st "(" then begin
      let rec go acc =
        let c = ident st in
        if try_sym st "," then go (c :: acc) else List.rev (c :: acc)
      in
      let cols = go [] in
      eat_sym st ")";
      Some cols
    end
    else None
  in
  eat_kw st "VALUES";
  let rec rows acc =
    eat_sym st "(";
    let rec vals acc =
      let e = parse_or st in
      if try_sym st "," then vals (e :: acc) else List.rev (e :: acc)
    in
    let row = vals [] in
    eat_sym st ")";
    if try_sym st "," then rows (row :: acc) else List.rev (row :: acc)
  in
  Insert { table; columns; values = rows [] }

let parse_update st =
  eat_kw st "UPDATE";
  let table = ident st in
  eat_kw st "SET";
  let rec sets acc =
    let col = ident st in
    eat_sym st "=";
    let e = parse_or st in
    if try_sym st "," then sets ((col, e) :: acc) else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = if try_kw st "WHERE" then Some (parse_or st) else None in
  Update { table; sets; where }

let parse_delete st =
  eat_kw st "DELETE";
  eat_kw st "FROM";
  let table = ident st in
  let where = if try_kw st "WHERE" then Some (parse_or st) else None in
  Delete { table; where }

let parse_create st =
  eat_kw st "CREATE";
  let unique = try_kw st "UNIQUE" in
  if try_kw st "TABLE" then begin
    if unique then fail "UNIQUE TABLE is not a thing";
    let name = ident st in
    eat_sym st "(";
    let rec cols acc =
      let cd_name = ident st in
      let ty_name =
        match peek st with
        | Sql_lexer.Ident s ->
            advance st;
            s
        | t -> fail "expected a type name, got %s" (token_str t)
      in
      let cd_type =
        match Value.ty_of_name ty_name with
        | Some ty -> ty
        | None -> fail "unknown type %s" ty_name
      in
      let cd_not_null =
        if try_kw st "NOT" then begin
          eat_kw st "NULL";
          true
        end
        else false
      in
      let col = { cd_name; cd_type; cd_not_null } in
      if try_sym st "," then cols (col :: acc) else List.rev (col :: acc)
    in
    let columns = cols [] in
    eat_sym st ")";
    Create_table { name; columns }
  end
  else begin
    eat_kw st "INDEX";
    let name = ident st in
    eat_kw st "ON";
    let table = ident st in
    eat_sym st "(";
    let rec cols acc =
      let c = ident st in
      if try_sym st "," then cols (c :: acc) else List.rev (c :: acc)
    in
    let columns = cols [] in
    eat_sym st ")";
    Create_index { name; table; columns; unique }
  end

let parse_stmt st =
  match peek st with
  | Sql_lexer.Kw "SELECT" -> begin
      let first = parse_select st in
      let rec unions acc =
        if try_kw st "UNION" then begin
          eat_kw st "ALL";
          unions (parse_select st :: acc)
        end
        else List.rev acc
      in
      match unions [ first ] with
      | [ q ] -> Select q
      | qs -> Union_all qs
    end
  | Sql_lexer.Kw "INSERT" -> parse_insert st
  | Sql_lexer.Kw "UPDATE" -> parse_update st
  | Sql_lexer.Kw "DELETE" -> parse_delete st
  | Sql_lexer.Kw "CREATE" -> parse_create st
  | Sql_lexer.Kw "DROP" ->
      advance st;
      eat_kw st "TABLE";
      Drop_table (ident st)
  | Sql_lexer.Kw "BEGIN" ->
      advance st;
      Begin_txn
  | Sql_lexer.Kw "COMMIT" ->
      advance st;
      Commit_txn
  | Sql_lexer.Kw "ROLLBACK" ->
      advance st;
      Rollback_txn
  | t -> fail "expected a statement, got %s" (token_str t)

let finish st =
  ignore (try_sym st ";");
  match peek st with
  | Sql_lexer.Eof -> ()
  | t -> fail "trailing input: %s" (token_str t)

let parse src =
  let toks = try Sql_lexer.tokenize src with Sql_lexer.Error m -> fail "%s" m in
  let st = { toks; params = 0 } in
  let stmt = parse_stmt st in
  finish st;
  stmt

let parse_expr src =
  let toks = try Sql_lexer.tokenize src with Sql_lexer.Error m -> fail "%s" m in
  let st = { toks; params = 0 } in
  let e = parse_or st in
  finish st;
  e
