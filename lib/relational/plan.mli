(** Physical query plans (volcano-style operators). *)

type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Seq_scan of Table.t
  | Index_scan of {
      table : Table.t;
      index : Table.index;
      lo : Btree.bound;
      hi : Btree.bound;
      reverse : bool;
    }  (** rows in index-key order within [lo, hi] *)
  | Filter of Expr.t * t
  | Project of (Expr.t * string) array * t
  | Nl_join of { outer : t; inner : t; pred : Expr.t option }
      (** predicate evaluated over the concatenated schema (outer then inner) *)
  | Hash_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }  (** equi-join; build on left, probe with right *)
  | Merge_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }  (** inputs must already be sorted on their key columns *)
  | Sort of { input : t; keys : (Expr.t * order) list }
  | Distinct of t
  | Aggregate of {
      input : t;
      group_by : (Expr.t * string) array;
      aggs : (agg * string) array;
    }  (** output = group columns then one column per aggregate *)
  | Limit of { input : t; limit : int option; offset : int }
  | Union_all of t list
      (** concatenation of branch outputs; arities must agree *)

val schema_of : t -> Schema.t
(** Output schema of a plan. Column types for computed expressions are
    approximated (TEXT for concatenations, INT for counts, etc.). *)

val label : t -> string
(** One-line description of the root operator (no children) — the node text
    {!pp} indents, shared with [EXPLAIN ANALYZE] annotation. *)

val children : t -> t list
(** Direct child operators, in {!pp} display order. *)

val pp : Format.formatter -> t -> unit
(** Indented plan tree, EXPLAIN-style. *)
