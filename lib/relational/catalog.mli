(** Named tables (case-insensitive lookup). Index metadata lives on the
    tables themselves. *)

type t

exception Catalog_error of string

val create : unit -> t
val create_table : t -> string -> Schema.t -> Table.t
(** @raise Catalog_error if the name is taken. *)

val drop_table : t -> string -> unit
(** @raise Catalog_error if absent. *)

val find_table : t -> string -> Table.t option
val get_table : t -> string -> Table.t
(** @raise Catalog_error if absent. *)

val tables : t -> Table.t list

val version : t -> int
(** Schema version: incremented on every CREATE/DROP TABLE and by
    {!bump_version}. Plan caches compare this to decide staleness. *)

val bump_version : t -> unit
(** Force an increment (used for schema changes the catalog does not see
    directly, e.g. CREATE INDEX on an existing table). *)
