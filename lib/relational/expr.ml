type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod
type func = Length | Abs | Lower | Upper | Substr

type t =
  | Const of Value.t
  | Col of int
  | Param of int  (* positional ? placeholder, 0-based; bound before eval *)
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | Concat of t * t
  | Is_null of t
  | Is_not_null of t
  | Like of t * string
  | In_list of t * Value.t list
  | Func of func * t list

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let bool_v = function true -> Value.Int 1 | false -> Value.Int 0

(* three-valued logic: Some b or None for unknown *)
let to_tvl = function
  | Value.Null -> None
  | Value.Int 0 -> Some false
  | Value.Int _ -> Some true
  | Value.Float f -> Some (f <> 0.0)
  | v -> err "expected a boolean, got %s" (Value.to_string v)

let of_tvl = function None -> Value.Null | Some b -> bool_v b

let like_match ~pattern s =
  (* classic recursive LIKE matcher: % = any run, _ = any single byte *)
  let pl = String.length pattern and sl = String.length s in
  let rec go pi si =
    if pi >= pl then si >= sl
    else
      match pattern.[pi] with
      | '%' ->
          let rec try_from k = k <= sl && (go (pi + 1) k || try_from (k + 1)) in
          try_from si
      | '_' -> si < sl && go (pi + 1) (si + 1)
      | c -> si < sl && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let num_arith op a b =
  let open Value in
  match (op, a, b) with
  | Add, Int x, Int y -> Int (x + y)
  | Sub, Int x, Int y -> Int (x - y)
  | Mul, Int x, Int y -> Int (x * y)
  | Div, Int _, Int 0 -> err "division by zero"
  | Div, Int x, Int y -> Int (x / y)
  | Mod, Int _, Int 0 -> err "modulo by zero"
  | Mod, Int x, Int y -> Int (x mod y)
  | Mod, _, _ -> err "MOD requires integers"
  | op, (Int _ | Float _), (Int _ | Float _) ->
      let f = function Int i -> float_of_int i | Float f -> f | _ -> assert false in
      let x = f a and y = f b in
      Float
        (match op with
        | Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> if y = 0.0 then err "division by zero" else x /. y
        | Mod -> assert false)
  | _, a, b ->
      err "arithmetic on non-numeric values %s, %s" (Value.to_string a)
        (Value.to_string b)

let rec eval e tuple =
  match e with
  | Const v -> v
  | Param i -> err "unbound parameter ?%d" (i + 1)
  | Col i ->
      if i < 0 || i >= Array.length tuple then
        err "column %d out of range (arity %d)" i (Array.length tuple)
      else tuple.(i)
  | Cmp (op, a, b) -> begin
      let va = eval a tuple and vb = eval b tuple in
      if Value.is_null va || Value.is_null vb then Value.Null
      else
        let c = Value.compare va vb in
        bool_v
          (match op with
          | Eq -> c = 0
          | Ne -> c <> 0
          | Lt -> c < 0
          | Le -> c <= 0
          | Gt -> c > 0
          | Ge -> c >= 0)
    end
  | And (a, b) -> begin
      match to_tvl (eval a tuple) with
      | Some false -> bool_v false
      | Some true -> of_tvl (to_tvl (eval b tuple))
      | None -> (
          match to_tvl (eval b tuple) with
          | Some false -> bool_v false
          | Some true | None -> Value.Null)
    end
  | Or (a, b) -> begin
      match to_tvl (eval a tuple) with
      | Some true -> bool_v true
      | Some false -> of_tvl (to_tvl (eval b tuple))
      | None -> (
          match to_tvl (eval b tuple) with
          | Some true -> bool_v true
          | Some false | None -> Value.Null)
    end
  | Not a -> of_tvl (Option.map not (to_tvl (eval a tuple)))
  | Arith (op, a, b) ->
      let va = eval a tuple and vb = eval b tuple in
      if Value.is_null va || Value.is_null vb then Value.Null
      else num_arith op va vb
  | Neg a -> begin
      match eval a tuple with
      | Value.Null -> Value.Null
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> err "negation of %s" (Value.to_string v)
    end
  | Concat (a, b) -> begin
      match (eval a tuple, eval b tuple) with
      | Value.Null, _ | _, Value.Null -> Value.Null
      | x, y -> Value.Str (Value.to_string x ^ Value.to_string y)
    end
  | Is_null a -> bool_v (Value.is_null (eval a tuple))
  | Is_not_null a -> bool_v (not (Value.is_null (eval a tuple)))
  | Like (a, pattern) -> begin
      match eval a tuple with
      | Value.Null -> Value.Null
      | Value.Str s -> bool_v (like_match ~pattern s)
      | v -> err "LIKE on non-text value %s" (Value.to_string v)
    end
  | In_list (a, vs) -> begin
      match eval a tuple with
      | Value.Null -> Value.Null
      | v -> bool_v (List.exists (Value.equal v) vs)
    end
  | Func (f, args) -> eval_func f (List.map (fun a -> eval a tuple) args)

and eval_func f args =
  let open Value in
  match (f, args) with
  | _, args when List.exists Value.is_null args -> Null
  | Length, [ Str s ] -> Int (String.length s)
  | Length, [ Bytes s ] -> Int (String.length s)
  | Abs, [ Int i ] -> Int (abs i)
  | Abs, [ Float f ] -> Float (Float.abs f)
  | Lower, [ Str s ] -> Str (String.lowercase_ascii s)
  | Upper, [ Str s ] -> Str (String.uppercase_ascii s)
  | Substr, [ Str s; Int start; Int len ] ->
      let n = String.length s in
      let start = max 1 start in
      let from = start - 1 in
      if from >= n || len <= 0 then Str ""
      else Str (String.sub s from (min len (n - from)))
  | (Length | Abs | Lower | Upper | Substr), _ ->
      err "bad arguments to function"

let eval_bool e tuple =
  match to_tvl (eval e tuple) with Some b -> b | None -> false

let columns e =
  let acc = ref [] in
  let rec go = function
    | Const _ | Param _ -> ()
    | Col i -> acc := i :: !acc
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) | Concat (a, b) ->
        go a;
        go b
    | Not a | Neg a | Is_null a | Is_not_null a | Like (a, _) | In_list (a, _) ->
        go a
    | Func (_, args) -> List.iter go args
  in
  go e;
  List.sort_uniq Stdlib.compare !acc

let rec map_columns f e =
  let s = map_columns f in
  match e with
  | Const v -> Const v
  | Param i -> Param i
  | Col i -> Col (f i)
  | Cmp (op, a, b) -> Cmp (op, s a, s b)
  | And (a, b) -> And (s a, s b)
  | Or (a, b) -> Or (s a, s b)
  | Not a -> Not (s a)
  | Arith (op, a, b) -> Arith (op, s a, s b)
  | Neg a -> Neg (s a)
  | Concat (a, b) -> Concat (s a, s b)
  | Is_null a -> Is_null (s a)
  | Is_not_null a -> Is_not_null (s a)
  | Like (a, p) -> Like (s a, p)
  | In_list (a, vs) -> In_list (s a, vs)
  | Func (f, args) -> Func (f, List.map s args)

let shift_columns off e = map_columns (fun i -> i + off) e

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> And (acc, x)) e rest)

let cmp_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"

let func_name = function
  | Length -> "LENGTH"
  | Abs -> "ABS"
  | Lower -> "LOWER"
  | Upper -> "UPPER"
  | Substr -> "SUBSTR"

let rec pp ppf = function
  | Const v -> Format.pp_print_string ppf (Value.to_sql_literal v)
  | Param i -> Format.fprintf ppf "?%d" (i + 1)
  | Col i -> Format.fprintf ppf "#%d" i
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_name op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "NOT %a" pp a
  | Arith (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (arith_name op) pp b
  | Neg a -> Format.fprintf ppf "-%a" pp a
  | Concat (a, b) -> Format.fprintf ppf "(%a || %a)" pp a pp b
  | Is_null a -> Format.fprintf ppf "%a IS NULL" pp a
  | Is_not_null a -> Format.fprintf ppf "%a IS NOT NULL" pp a
  | Like (a, p) -> Format.fprintf ppf "%a LIKE '%s'" pp a p
  | In_list (a, vs) ->
      Format.fprintf ppf "%a IN (%s)" pp a
        (String.concat ", " (List.map Value.to_sql_literal vs))
  | Func (f, args) ->
      Format.fprintf ppf "%s(%a)" (func_name f)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
        args
