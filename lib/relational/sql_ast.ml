(* Surface syntax produced by the SQL parser. Column references are by name;
   the planner resolves them to positions. *)

type sexpr =
  | E_const of Value.t
  | E_param of int  (* positional ? placeholder, 0-based, numbered left to right *)
  | E_col of string option * string  (* qualifier (table alias), column *)
  | E_cmp of Expr.cmp * sexpr * sexpr
  | E_and of sexpr * sexpr
  | E_or of sexpr * sexpr
  | E_not of sexpr
  | E_arith of Expr.arith * sexpr * sexpr
  | E_neg of sexpr
  | E_concat of sexpr * sexpr
  | E_is_null of sexpr
  | E_is_not_null of sexpr
  | E_like of sexpr * string
  | E_in of sexpr * Value.t list
  | E_between of sexpr * sexpr * sexpr
  | E_func of string * sexpr list  (* scalar or aggregate; resolved later *)
  | E_star  (* only valid inside COUNT( * ) *)

type order_dir = Asc | Desc

type select_item = Item of sexpr * string option  (* expr AS alias *) | Star

type select = {
  distinct : bool;
  items : select_item list;
  from : (string * string option) list;  (* table name, alias *)
  where : sexpr option;
  group_by : sexpr list;
  having : sexpr option;
  order_by : (sexpr * order_dir) list;
  limit : int option;
  offset : int option;
}

type column_def = { cd_name : string; cd_type : Value.ty; cd_not_null : bool }

type stmt =
  | Select of select
  | Union_all of select list  (* SELECT ... UNION ALL SELECT ... *)
  | Insert of { table : string; columns : string list option; values : sexpr list list }
  | Update of { table : string; sets : (string * sexpr) list; where : sexpr option }
  | Delete of { table : string; where : sexpr option }
  | Create_table of { name : string; columns : column_def list }
  | Create_index of {
      name : string;
      table : string;
      columns : string list;
      unique : bool;
    }
  | Drop_table of string
  | Begin_txn
  | Commit_txn
  | Rollback_txn

(* --- parameter plumbing (prepared statements) ------------------------- *)

(* Rebuild an expression with every [E_param i] replaced by [f i]. *)
let rec subst_params f (e : sexpr) : sexpr =
  let s = subst_params f in
  match e with
  | E_param i -> f i
  | E_const _ | E_col _ | E_star -> e
  | E_cmp (op, a, b) -> E_cmp (op, s a, s b)
  | E_and (a, b) -> E_and (s a, s b)
  | E_or (a, b) -> E_or (s a, s b)
  | E_not a -> E_not (s a)
  | E_arith (op, a, b) -> E_arith (op, s a, s b)
  | E_neg a -> E_neg (s a)
  | E_concat (a, b) -> E_concat (s a, s b)
  | E_is_null a -> E_is_null (s a)
  | E_is_not_null a -> E_is_not_null (s a)
  | E_like (a, p) -> E_like (s a, p)
  | E_in (a, vs) -> E_in (s a, vs)
  | E_between (a, lo, hi) -> E_between (s a, s lo, s hi)
  | E_func (name, args) -> E_func (name, List.map s args)

let map_select g (sel : select) : select =
  {
    sel with
    items =
      List.map
        (function Item (e, alias) -> Item (g e, alias) | Star -> Star)
        sel.items;
    where = Option.map g sel.where;
    group_by = List.map g sel.group_by;
    having = Option.map g sel.having;
    order_by = List.map (fun (e, d) -> (g e, d)) sel.order_by;
  }

(* Apply [g] to every expression position of a statement. *)
let map_exprs g (stmt : stmt) : stmt =
  match stmt with
  | Select sel -> Select (map_select g sel)
  | Union_all sels -> Union_all (List.map (map_select g) sels)
  | Insert { table; columns; values } ->
      Insert { table; columns; values = List.map (List.map g) values }
  | Update { table; sets; where } ->
      Update
        {
          table;
          sets = List.map (fun (c, e) -> (c, g e)) sets;
          where = Option.map g where;
        }
  | Delete { table; where } -> Delete { table; where = Option.map g where }
  | Create_table _ | Create_index _ | Drop_table _ | Begin_txn | Commit_txn
  | Rollback_txn ->
      stmt

let iter_exprs f (stmt : stmt) : unit =
  ignore
    (map_exprs
       (fun e ->
         f e;
         e)
       stmt)

(* Number of parameter slots a statement needs: one past the highest [?]
   index (the parser numbers them densely left to right). *)
let param_count stmt =
  let n = ref 0 in
  iter_exprs
    (fun e ->
      let rec go e =
        match e with
        | E_param i -> if i + 1 > !n then n := i + 1
        | E_const _ | E_col _ | E_star -> ()
        | E_cmp (_, a, b)
        | E_and (a, b)
        | E_or (a, b)
        | E_arith (_, a, b)
        | E_concat (a, b) ->
            go a;
            go b
        | E_not a | E_neg a | E_is_null a | E_is_not_null a
        | E_like (a, _)
        | E_in (a, _) ->
            go a
        | E_between (a, lo, hi) ->
            go a;
            go lo;
            go hi
        | E_func (_, args) -> List.iter go args
      in
      go e)
    stmt;
  !n

exception Bind_error of string

(* Substitute bound values for every parameter. *)
let bind_params (params : Value.t array) stmt =
  map_exprs
    (subst_params (fun i ->
         if i < 0 || i >= Array.length params then
           raise
             (Bind_error
                (Printf.sprintf "parameter ?%d has no bound value" (i + 1)))
         else E_const params.(i)))
    stmt
