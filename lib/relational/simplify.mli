(** Pre-planning predicate simplification: constant folding, boolean
    short-circuits, and interval analysis over conjunct lists.

    The same core serves two callers: the planner rewrites WHERE conjuncts
    before access-path selection (folding arithmetic into index-matchable
    constants, pruning implied bounds, and short-circuiting contradictory
    statements into an empty plan), and the SQL linter reuses the verdicts
    to flag always-false / always-true predicates statically. *)

val enabled : bool ref
(** Global toggle for the planner rewrite (default [true]). The analysis
    entry points below work regardless of the flag; only {!Planner} consults
    it. *)

val fold : Expr.t -> Expr.t
(** Constant folding. Column-free subexpressions are evaluated (NULL
    propagation included); [AND]/[OR] with a decided side collapse per SQL
    three-valued logic ([FALSE AND x = FALSE], [TRUE AND x = x], ...).
    Subexpressions whose evaluation would raise at runtime (division by
    zero) are left untouched so the error still surfaces during execution. *)

type truth = True | False | Unknown
(** Three-valued verdict of a folded predicate, [Unknown] covering both
    SQL NULL and "depends on the row". *)

val truth_of : Expr.t -> truth
(** Verdict of an already-folded expression. A constant NULL counts as
    [False]: as a WHERE conjunct it can never accept a row. *)

type verdict =
  | Contradiction
      (** the conjunction is unsatisfiable — no row can pass *)
  | Conjuncts of Expr.t list
      (** folded conjuncts with always-true and interval-subsumed members
          removed (may be empty, meaning always true) *)

val simplify_conjuncts : Expr.t list -> verdict
(** Fold each conjunct, then run per-column interval analysis over the
    atoms of shape [col op constant]: mutually exclusive bounds (e.g.
    [x > 5 AND x < 3], [x = 1 AND x = 2]) yield [Contradiction]; bounds
    implied by tighter ones are dropped. Sound w.r.t. SQL semantics — a
    NULL column value fails every comparison, so replacing an exclusive
    set of bounds by FALSE never changes the result. *)
