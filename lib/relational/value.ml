type ty = Tint | Tfloat | Ttext | Tbytes

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bytes of string

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Ttext
  | Bytes _ -> Some Tbytes

let ty_name = function
  | Tint -> "INT"
  | Tfloat -> "FLOAT"
  | Ttext -> "TEXT"
  | Tbytes -> "BYTES"

let ty_of_name s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" -> Some Tint
  | "FLOAT" | "REAL" | "DOUBLE" -> Some Tfloat
  | "TEXT" | "VARCHAR" | "STRING" | "CHAR" -> Some Ttext
  | "BYTES" | "BLOB" | "VARBINARY" -> Some Tbytes
  | _ -> None

let rank = function
  | Null -> 0
  | Int _ | Float _ -> 1
  | Str _ -> 2
  | Bytes _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bytes x, Bytes y -> String.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Bytes s -> Hashtbl.hash ("B" ^ s)

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bytes _ -> false

let hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Bytes s -> "0x" ^ hex s

let to_sql_literal = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f ->
      (* Non-finite floats have no literal: an overflowing exponent reads
         back as an infinity, and their difference as a NaN. *)
      if f <> f then "(1.0e999 - 1.0e999)"
      else if f = infinity then "1.0e999"
      else if f = neg_infinity then "-1.0e999"
      else
        let s = Printf.sprintf "%.17g" f in
        (* keep it lexically a float so it parses back as one: the SQL
           lexer requires digits '.' digits before any exponent, so "1e+22"
           must become "1.0e+22" *)
        if String.contains s '.' then s
        else begin
          match String.index_opt s 'e' with
          | Some i -> String.sub s 0 i ^ ".0" ^ String.sub s i (String.length s - i)
          | None -> s ^ ".0"
        end
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf
  | Bytes s -> "X'" ^ hex s ^ "'"

let size_bytes = function
  | Null -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s | Bytes s -> 4 + String.length s

let pp ppf v = Format.pp_print_string ppf (to_string v)
