type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Seq_scan of Table.t
  | Index_scan of {
      table : Table.t;
      index : Table.index;
      lo : Btree.bound;
      hi : Btree.bound;
      reverse : bool;
    }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) array * t
  | Nl_join of { outer : t; inner : t; pred : Expr.t option }
  | Hash_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }
  | Sort of { input : t; keys : (Expr.t * order) list }
  | Distinct of t
  | Aggregate of {
      input : t;
      group_by : (Expr.t * string) array;
      aggs : (agg * string) array;
    }
  | Limit of { input : t; limit : int option; offset : int }
  | Union_all of t list

let expr_type schema (e : Expr.t) : Value.ty =
  let rec go = function
    | Expr.Const v -> Option.value (Value.type_of v) ~default:Value.Ttext
    | Expr.Param _ -> Value.Ttext
    | Expr.Col i ->
        if i < Array.length schema then schema.(i).Schema.col_type
        else Value.Ttext
    | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _
    | Expr.Is_not_null _ | Expr.Like _ | Expr.In_list _ ->
        Value.Tint
    | Expr.Arith (_, a, b) -> begin
        match (go a, go b) with
        | Value.Tint, Value.Tint -> Value.Tint
        | _ -> Value.Tfloat
      end
    | Expr.Neg a -> go a
    | Expr.Concat _ -> Value.Ttext
    | Expr.Func ((Expr.Length | Expr.Abs), _) -> Value.Tint
    | Expr.Func ((Expr.Lower | Expr.Upper | Expr.Substr), _) -> Value.Ttext
  in
  go e

let rec schema_of = function
  | Seq_scan t | Index_scan { table = t; _ } -> Table.schema t
  | Filter (_, p) | Distinct p -> schema_of p
  | Project (cols, p) ->
      let input = schema_of p in
      Array.map
        (fun (e, name) -> Schema.column name (expr_type input e))
        cols
  | Nl_join { outer; inner; _ } ->
      Schema.concat (schema_of outer) (schema_of inner)
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      Schema.concat (schema_of left) (schema_of right)
  | Sort { input; _ } | Limit { input; _ } -> schema_of input
  | Union_all [] -> [||]
  | Union_all (p :: _) -> schema_of p
  | Aggregate { input; group_by; aggs } ->
      let ischema = schema_of input in
      let groups =
        Array.map (fun (e, name) -> Schema.column name (expr_type ischema e)) group_by
      in
      let aggcols =
        Array.map
          (fun (agg, name) ->
            let ty =
              match agg with
              | Count_star | Count _ -> Value.Tint
              | Avg _ -> Value.Tfloat
              | Sum e | Min e | Max e -> expr_type ischema e
            in
            Schema.column name ty)
          aggs
      in
      Array.append groups aggcols

let agg_name = function
  | Count_star -> "COUNT(*)"
  | Count _ -> "COUNT"
  | Sum _ -> "SUM"
  | Min _ -> "MIN"
  | Max _ -> "MAX"
  | Avg _ -> "AVG"

let bound_str = function
  | Btree.Unbounded -> "-inf"
  | Btree.Incl k -> "[" ^ Tuple.to_string k
  | Btree.Excl k -> "(" ^ Tuple.to_string k

let label = function
  | Seq_scan t -> "SeqScan " ^ Table.name t
  | Index_scan { table; index; lo; hi; reverse } ->
      Printf.sprintf "IndexScan %s.%s %s .. %s%s" (Table.name table)
        index.Table.idx_name (bound_str lo) (bound_str hi)
        (if reverse then " DESC" else "")
  | Filter (e, _) -> Format.asprintf "Filter %a" Expr.pp e
  | Project (cols, _) ->
      Printf.sprintf "Project [%s]"
        (String.concat ", " (Array.to_list (Array.map snd cols)))
  | Nl_join { pred; _ } ->
      Printf.sprintf "NestedLoopJoin%s"
        (match pred with
        | None -> ""
        | Some e -> Format.asprintf " on %a" Expr.pp e)
  | Hash_join { left_key; right_key; _ } ->
      Printf.sprintf "HashJoin build(%s) probe(%s)"
        (String.concat "," (Array.to_list (Array.map string_of_int left_key)))
        (String.concat "," (Array.to_list (Array.map string_of_int right_key)))
  | Merge_join _ -> "MergeJoin"
  | Sort { keys; _ } ->
      Printf.sprintf "Sort [%s]"
        (String.concat ", "
           (List.map
              (fun (e, o) ->
                Format.asprintf "%a %s" Expr.pp e
                  (match o with Asc -> "ASC" | Desc -> "DESC"))
              keys))
  | Distinct _ -> "Distinct"
  | Aggregate { group_by; aggs; _ } ->
      Printf.sprintf "Aggregate groups=[%s] aggs=[%s]"
        (String.concat ", " (Array.to_list (Array.map snd group_by)))
        (String.concat ", "
           (Array.to_list (Array.map (fun (a, _) -> agg_name a) aggs)))
  | Limit { limit; offset; _ } ->
      Printf.sprintf "Limit %s offset %d"
        (match limit with None -> "ALL" | Some n -> string_of_int n)
        offset
  | Union_all _ -> "UnionAll"

let children = function
  | Seq_scan _ | Index_scan _ -> []
  | Filter (_, p)
  | Project (_, p)
  | Sort { input = p; _ }
  | Distinct p
  | Aggregate { input = p; _ }
  | Limit { input = p; _ } ->
      [ p ]
  | Nl_join { outer; inner; _ } -> [ outer; inner ]
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      [ left; right ]
  | Union_all branches -> branches

let rec pp_indent ppf (level, p) =
  Format.fprintf ppf "%s%s@." (String.make (level * 2) ' ') (label p);
  List.iter (fun c -> pp_indent ppf (level + 1, c)) (children p)

let pp ppf p = pp_indent ppf (0, p)
