(** Engine facade: SQL text in, rows out. This is the interface the order
    encodings program against, mirroring how the paper's translator emitted
    SQL to a relational back end. *)

type t

type result =
  | Rows of { schema : Schema.t; tuples : Tuple.t list }
  | Affected of int

exception Sql_error of string

val create : unit -> t
val catalog : t -> Catalog.t

val exec : t -> string -> result
(** Execute any supported statement.
    @raise Sql_error with a message on parse, plan or execution errors. *)

val query : t -> string -> Tuple.t list
(** Execute a SELECT and return its rows.
    @raise Sql_error if the statement is not a SELECT. *)

val query_one : t -> string -> Tuple.t option
(** First row of a SELECT, if any. *)

val exec_script : t -> string list -> unit
(** Run a list of statements, discarding results. *)

val explain : t -> string -> string
(** The physical plan chosen for a SELECT, rendered as an indented tree. *)

val explain_analyze : t -> string -> string
(** Execute the SELECT with every plan operator instrumented and render the
    physical plan annotated with {e actual} row counts, loop counts and
    elapsed time per operator, plus a total line with the logical rows read
    (see {!rows_read}). Same tree shape and operator labels as {!explain}.
    @raise Sql_error as {!exec}; non-SELECT statements are rejected. *)

val table : t -> string -> Table.t
(** Direct access to a table (bulk-load paths bypass the SQL layer, as
    loaders do in real systems). @raise Sql_error if absent. *)

val render : result -> string
(** ASCII table rendering for examples and the experiment harness. *)

(** {2 Transactions}

    Single-connection transactions with statement- or API-level control
    (the SQL statements [BEGIN] / [COMMIT] / [ROLLBACK] map to these).
    Rollback restores every table to its exact pre-transaction state via
    per-table undo journals, indexes included. DDL inside a transaction is
    rejected. *)

val begin_txn : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_transaction : t -> bool

val with_transaction : t -> (unit -> 'a) -> 'a
(** Run [f] inside a transaction: commit on return, roll back (and re-raise)
    on exception. *)

(** {2 Persistence}

    The database serializes to a plain SQL script (DDL + INSERTs), the
    lingua franca for moving relational data around. Restoring executes the
    script into a fresh engine. *)

val dump : t -> string
(** SQL script recreating every table, index and row. *)

val dump_to_file : t -> string -> unit

val restore : string -> t
(** @raise Sql_error if the script fails. *)

val restore_from_file : string -> t

(** {2 Logical I/O counters} (aggregated over all tables) *)

val rows_read : t -> int
val rows_written : t -> int
val reset_counters : t -> unit

(** {2 Observability}

    When [Obs.enabled ()], {!exec} times every statement on the monotonic
    clock, recording a per-statement-kind latency histogram
    ([db.exec.select], [db.exec.insert], [db.exec.update], [db.exec.delete],
    [db.exec.ddl], [db.exec.txn]) and a [db.statements] counter in the
    global {!Obs} registry, and opens [sql-parse] / [plan] / [exec] spans so
    engine time nests under whatever higher-level span is active. *)

val set_slow_query_threshold : t -> float option -> unit
(** Statements at least this many milliseconds are appended to the
    slow-query log ([None], the default, disables logging). *)

val slow_queries : t -> (float * string) list
(** [(elapsed ms, SQL text)] of logged slow statements, newest first (the
    log keeps the most recent 32). *)

val clear_slow_queries : t -> unit
