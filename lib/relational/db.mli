(** Engine facade: SQL text in, rows out. This is the interface the order
    encodings program against, mirroring how the paper's translator emitted
    SQL to a relational back end. *)

type t

type result =
  | Rows of { schema : Schema.t; tuples : Tuple.t list }
  | Affected of int

exception Sql_error of string

val create : unit -> t
val catalog : t -> Catalog.t

val exec : t -> string -> result
(** Execute any supported statement.
    @raise Sql_error with a message on parse, plan or execution errors. *)

val query : t -> string -> Tuple.t list
(** Execute a SELECT and return its rows.
    @raise Sql_error if the statement is not a SELECT. *)

val query_one : t -> string -> Tuple.t option
(** First row of a SELECT, if any. *)

val exec_script : t -> string list -> unit
(** Run a list of statements, discarding results. Each statement is parsed
    exactly once, and maximal runs of DML execute inside one implicit
    transaction (committed before any DDL or explicit transaction-control
    statement, rolled back if a statement raises). If a transaction is
    already active the statements simply run inside it. *)

(** {2 Prepared statements}

    [?] positional placeholders in any expression position are bound at
    execution time. Binding substitutes the values into the AST {e before}
    planning, so the planner matches index access paths exactly as if the
    literals had been inlined. *)

type stmt
(** A parsed statement with [?] placeholders, tied to the {!t} that
    prepared it. *)

val prepare : t -> string -> stmt
(** Parse once for repeated execution. Records a [db.prepare] histogram
    sample when [Obs.enabled ()].
    @raise Sql_error on parse errors. *)

module Stmt : sig
  val exec : stmt -> Value.t array -> result
  (** Bind [params] (positional, left to right) and execute.
      @raise Sql_error if the arity does not match {!param_count} or on
      plan/execution errors. *)

  val query : stmt -> Value.t array -> Tuple.t list
  (** As {!exec}, returning rows. @raise Sql_error if not a SELECT. *)

  val param_count : stmt -> int
  val sql : stmt -> string
end

(** {2 Bulk writes} *)

val insert_many : t -> string -> Tuple.t list -> int
(** Insert pre-built tuples into a table, bypassing SQL parsing entirely
    (the loader fast path). Returns the number of rows inserted. Atomic: on
    constraint violation the rows inserted so far are removed and
    [Sql_error] is raised. On durable databases the batch is logged to the
    WAL as one atomic record of dump-form INSERTs. *)

val insert_row : t -> string -> Tuple.t -> int
(** Insert one pre-built tuple (streaming-loader fast path). Returns the
    row id. Logged to the WAL on durable databases.
    @raise Sql_error on constraint violation or missing table. *)

(** {2 Plan cache}

    SELECT / UNION ALL plans are cached keyed by raw SQL text (LRU, 128
    entries); a repeated query skips lexing, parsing, simplification and
    planning. Entries are invalidated by a catalog version counter bumped on
    every CREATE/DROP TABLE and CREATE INDEX, and {!restore} starts from an
    empty cache. Counted in [db.plan_cache.hit] / [db.plan_cache.miss] Obs
    counters (misses count only cacheable, i.e. SELECT, statements). *)

val plan_cache_stats : t -> int * int * int
(** [(hits, misses, entries)] since creation, counted even when Obs is
    disabled. *)

val explain : t -> string -> string
(** The physical plan chosen for a SELECT, rendered as an indented tree. *)

val explain_analyze : t -> string -> string
(** Execute the SELECT with every plan operator instrumented and render the
    physical plan annotated with {e actual} row counts, loop counts and
    elapsed time per operator, plus a total line with the logical rows read
    (see {!rows_read}). Same tree shape and operator labels as {!explain}.
    @raise Sql_error as {!exec}; non-SELECT statements are rejected. *)

val table : t -> string -> Table.t
(** Direct access to a table (bulk-load paths bypass the SQL layer, as
    loaders do in real systems). @raise Sql_error if absent. *)

val render : result -> string
(** ASCII table rendering for examples and the experiment harness. *)

(** {2 Transactions}

    Single-connection transactions with statement- or API-level control
    (the SQL statements [BEGIN] / [COMMIT] / [ROLLBACK] map to these).
    Rollback restores every table to its exact pre-transaction state via
    per-table undo journals, indexes included. DDL inside a transaction is
    rejected. *)

val begin_txn : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_transaction : t -> bool

val with_transaction : t -> (unit -> 'a) -> 'a
(** Run [f] inside a transaction: commit on return, roll back (and re-raise)
    on exception. *)

(** {2 Persistence}

    The database serializes to a plain SQL script (DDL + INSERTs), the
    lingua franca for moving relational data around. Restoring executes the
    script into a fresh engine. *)

val dump : t -> string
(** SQL script recreating every table, index and row. *)

val dump_to_file : t -> string -> unit

val restore : string -> t
(** @raise Sql_error if the script fails. *)

val restore_from_file : string -> t

(** {2 Durability}

    A database opened with {!open_dir} is {e durable}: every committed
    write is appended to a CRC-framed write-ahead log ({!Wal}) before
    control returns to the caller, and {!checkpoint} folds the log into a
    snapshot. The directory holds at most one live generation:

    {v
    <dir>/checkpoint.<g>.sql   snapshot (absent before the first checkpoint)
    <dir>/wal.<g>.log          writes committed since that snapshot
    v}

    Recovery loads the newest completed checkpoint, replays the WAL's valid
    prefix and discards a torn tail, so after a crash the database equals
    the state as of some prefix of the committed history — exactly the
    commits whose records reached the log, in order, with no partial
    transactions ({e prefix consistency}). With [fsync Always] that prefix
    is everything acknowledged; lazier policies trade the last few commits
    on power failure for speed (in-process crashes never lose acknowledged
    commits — records are written, if not yet synced, before the ack).

    Transactions log as one atomic batch record at commit; autocommit
    statements log individually; bulk loads ({!insert_many}, {!insert_row})
    log dump-form INSERTs. The in-memory path ({!create}) pays none of
    this — no WAL state exists and every hook is a [None] check. *)

val open_dir : ?fsync:Wal.fsync_policy -> ?auto_checkpoint:int -> string -> t
(** Open (creating if needed) a persistent database directory and recover
    its state. [fsync] defaults to [Wal.Every 32]; [auto_checkpoint], when
    given, checkpoints automatically once the WAL exceeds that many bytes
    (checked after each autocommit write and commit). Records [wal.replayed]
    and a [db.recovery] latency histogram in {!Obs} when enabled.
    @raise Sql_error if the path is not a directory, or if replay fails. *)

val close : t -> unit
(** Sync and close the WAL (rolling back an open transaction, which dies
    with the handle exactly as in a crash). No-op on in-memory databases;
    idempotent. The handle must not be used for further writes. *)

val checkpoint : t -> unit
(** Snapshot the database ({!dump} form) and truncate the log, advancing
    the generation. Crash-safe at every intermediate point: recovery sees
    either the old generation or the new one, never a mix.
    @raise Sql_error on in-memory databases or inside a transaction. *)

val set_auto_checkpoint : t -> int option -> unit
(** Install or remove the WAL-size threshold (bytes) for automatic
    checkpoints; takes effect immediately if already exceeded.
    @raise Sql_error on in-memory databases. *)

val is_durable : t -> bool
val db_dir : t -> string option
val wal_size : t -> int
(** WAL file size in bytes (header included); [0] for in-memory. *)

type recovery_info = {
  rec_gen : int;  (** generation recovered *)
  rec_checkpoint : bool;  (** whether a checkpoint snapshot was loaded *)
  rec_records : int;  (** WAL records replayed *)
  rec_statements : int;  (** statements inside those records *)
  rec_torn_bytes : int;  (** torn tail discarded from the log *)
  rec_ms : float;  (** wall-clock recovery time *)
}

val last_recovery : t -> recovery_info option
(** Statistics from the {!open_dir} that produced this handle; [None] for
    in-memory databases. *)

(** {2 Logical I/O counters} (aggregated over all tables) *)

val rows_read : t -> int
val rows_written : t -> int
val reset_counters : t -> unit

(** {2 Observability}

    When [Obs.enabled ()], {!exec} times every statement on the monotonic
    clock, recording a per-statement-kind latency histogram
    ([db.exec.select], [db.exec.insert], [db.exec.update], [db.exec.delete],
    [db.exec.ddl], [db.exec.txn]) and a [db.statements] counter in the
    global {!Obs} registry, and opens [sql-parse] / [plan] / [exec] spans so
    engine time nests under whatever higher-level span is active. *)

val set_slow_query_threshold : t -> float option -> unit
(** Statements at least this many milliseconds are appended to the
    slow-query log ([None], the default, disables logging). *)

val slow_queries : t -> (float * string) list
(** [(elapsed ms, SQL text)] of logged slow statements, newest first (the
    log keeps the most recent 32). *)

val clear_slow_queries : t -> unit
