(** Engine facade: SQL text in, rows out. This is the interface the order
    encodings program against, mirroring how the paper's translator emitted
    SQL to a relational back end. *)

type t

type result =
  | Rows of { schema : Schema.t; tuples : Tuple.t list }
  | Affected of int

exception Sql_error of string

val create : unit -> t
val catalog : t -> Catalog.t

val exec : t -> string -> result
(** Execute any supported statement.
    @raise Sql_error with a message on parse, plan or execution errors. *)

val query : t -> string -> Tuple.t list
(** Execute a SELECT and return its rows.
    @raise Sql_error if the statement is not a SELECT. *)

val query_one : t -> string -> Tuple.t option
(** First row of a SELECT, if any. *)

val exec_script : t -> string list -> unit
(** Run a list of statements, discarding results. Each statement is parsed
    exactly once, and maximal runs of DML execute inside one implicit
    transaction (committed before any DDL or explicit transaction-control
    statement, rolled back if a statement raises). If a transaction is
    already active the statements simply run inside it. *)

(** {2 Prepared statements}

    [?] positional placeholders in any expression position are bound at
    execution time. Binding substitutes the values into the AST {e before}
    planning, so the planner matches index access paths exactly as if the
    literals had been inlined. *)

type stmt
(** A parsed statement with [?] placeholders, tied to the {!t} that
    prepared it. *)

val prepare : t -> string -> stmt
(** Parse once for repeated execution. Records a [db.prepare] histogram
    sample when [Obs.enabled ()].
    @raise Sql_error on parse errors. *)

module Stmt : sig
  val exec : stmt -> Value.t array -> result
  (** Bind [params] (positional, left to right) and execute.
      @raise Sql_error if the arity does not match {!param_count} or on
      plan/execution errors. *)

  val query : stmt -> Value.t array -> Tuple.t list
  (** As {!exec}, returning rows. @raise Sql_error if not a SELECT. *)

  val param_count : stmt -> int
  val sql : stmt -> string
end

(** {2 Bulk writes} *)

val insert_many : t -> string -> Tuple.t list -> int
(** Insert pre-built tuples into a table, bypassing SQL parsing entirely
    (the loader fast path). Returns the number of rows inserted. Atomic: on
    constraint violation the rows inserted so far are removed and
    [Sql_error] is raised. *)

(** {2 Plan cache}

    SELECT / UNION ALL plans are cached keyed by raw SQL text (LRU, 128
    entries); a repeated query skips lexing, parsing, simplification and
    planning. Entries are invalidated by a catalog version counter bumped on
    every CREATE/DROP TABLE and CREATE INDEX, and {!restore} starts from an
    empty cache. Counted in [db.plan_cache.hit] / [db.plan_cache.miss] Obs
    counters (misses count only cacheable, i.e. SELECT, statements). *)

val plan_cache_stats : t -> int * int * int
(** [(hits, misses, entries)] since creation, counted even when Obs is
    disabled. *)

val explain : t -> string -> string
(** The physical plan chosen for a SELECT, rendered as an indented tree. *)

val explain_analyze : t -> string -> string
(** Execute the SELECT with every plan operator instrumented and render the
    physical plan annotated with {e actual} row counts, loop counts and
    elapsed time per operator, plus a total line with the logical rows read
    (see {!rows_read}). Same tree shape and operator labels as {!explain}.
    @raise Sql_error as {!exec}; non-SELECT statements are rejected. *)

val table : t -> string -> Table.t
(** Direct access to a table (bulk-load paths bypass the SQL layer, as
    loaders do in real systems). @raise Sql_error if absent. *)

val render : result -> string
(** ASCII table rendering for examples and the experiment harness. *)

(** {2 Transactions}

    Single-connection transactions with statement- or API-level control
    (the SQL statements [BEGIN] / [COMMIT] / [ROLLBACK] map to these).
    Rollback restores every table to its exact pre-transaction state via
    per-table undo journals, indexes included. DDL inside a transaction is
    rejected. *)

val begin_txn : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_transaction : t -> bool

val with_transaction : t -> (unit -> 'a) -> 'a
(** Run [f] inside a transaction: commit on return, roll back (and re-raise)
    on exception. *)

(** {2 Persistence}

    The database serializes to a plain SQL script (DDL + INSERTs), the
    lingua franca for moving relational data around. Restoring executes the
    script into a fresh engine. *)

val dump : t -> string
(** SQL script recreating every table, index and row. *)

val dump_to_file : t -> string -> unit

val restore : string -> t
(** @raise Sql_error if the script fails. *)

val restore_from_file : string -> t

(** {2 Logical I/O counters} (aggregated over all tables) *)

val rows_read : t -> int
val rows_written : t -> int
val reset_counters : t -> unit

(** {2 Observability}

    When [Obs.enabled ()], {!exec} times every statement on the monotonic
    clock, recording a per-statement-kind latency histogram
    ([db.exec.select], [db.exec.insert], [db.exec.update], [db.exec.delete],
    [db.exec.ddl], [db.exec.txn]) and a [db.statements] counter in the
    global {!Obs} registry, and opens [sql-parse] / [plan] / [exec] spans so
    engine time nests under whatever higher-level span is active. *)

val set_slow_query_threshold : t -> float option -> unit
(** Statements at least this many milliseconds are appended to the
    slow-query log ([None], the default, disables logging). *)

val slow_queries : t -> (float * string) list
(** [(elapsed ms, SQL text)] of logged slow statements, newest first (the
    log keeps the most recent 32). *)

val clear_slow_queries : t -> unit
