type t = {
  tbls : (string, Table.t) Hashtbl.t;
  (* Bumped on any schema change (CREATE/DROP TABLE, CREATE INDEX) so cached
     plans can be validated cheaply: a plan is stale iff the version moved. *)
  mutable version : int;
}

exception Catalog_error of string

let create () = { tbls = Hashtbl.create 16; version = 0 }

let norm = String.lowercase_ascii

let version t = t.version

let bump_version t = t.version <- t.version + 1

let find_table t name = Hashtbl.find_opt t.tbls (norm name)

let create_table t name schema =
  if Hashtbl.mem t.tbls (norm name) then
    raise (Catalog_error (Printf.sprintf "table %s already exists" name));
  let tbl = Table.create name schema in
  Hashtbl.add t.tbls (norm name) tbl;
  bump_version t;
  tbl

let drop_table t name =
  if not (Hashtbl.mem t.tbls (norm name)) then
    raise (Catalog_error (Printf.sprintf "no such table %s" name));
  Hashtbl.remove t.tbls (norm name);
  bump_version t

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> raise (Catalog_error (Printf.sprintf "no such table %s" name))

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tbls []
