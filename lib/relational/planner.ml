exception Plan_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Plan_error s)) fmt

(* Virtual column encoding while the join order is still open:
   tbl_idx * slot_width + local column. *)
let slot_width = 1_000_000
let vcol tbl col = (tbl * slot_width) + col
let vcol_table v = v / slot_width
let vcol_local v = v mod slot_width

let agg_funcs = [ "COUNT"; "SUM"; "MIN"; "MAX"; "AVG" ]

let scalar_func = function
  | "LENGTH" -> Some Expr.Length
  | "ABS" -> Some Expr.Abs
  | "LOWER" -> Some Expr.Lower
  | "UPPER" -> Some Expr.Upper
  | "SUBSTR" | "SUBSTRING" -> Some Expr.Substr
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

type from_entry = { alias : string; table : Table.t; tbl_idx : int }

let norm = String.lowercase_ascii

let make_env catalog (from : (string * string option) list) =
  List.mapi
    (fun i (name, alias) ->
      match Catalog.find_table catalog name with
      | None -> fail "no such table %s" name
      | Some table ->
          { alias = norm (Option.value alias ~default:name); table; tbl_idx = i })
    from

let resolve_col env qualifier name =
  match qualifier with
  | Some q -> begin
      match List.find_opt (fun e -> e.alias = norm q) env with
      | None -> fail "unknown table alias %s" q
      | Some e -> (
          match Schema.find_opt (Table.schema e.table) name with
          | Some c -> vcol e.tbl_idx c
          | None -> fail "table %s has no column %s" q name)
    end
  | None -> begin
      let hits =
        List.filter_map
          (fun e ->
            Option.map (fun c -> vcol e.tbl_idx c)
              (Schema.find_opt (Table.schema e.table) name))
          env
      in
      match hits with
      | [ v ] -> v
      | [] -> fail "unknown column %s" name
      | _ -> fail "ambiguous column %s" name
    end

(* Resolve a surface expression to an Expr with virtual column numbers.
   Aggregate calls are rejected here; the aggregate path extracts them before
   calling this. *)
let rec resolve env (e : Sql_ast.sexpr) : Expr.t =
  match e with
  | Sql_ast.E_const v -> Expr.Const v
  | Sql_ast.E_param i -> Expr.Param i
  | Sql_ast.E_col (q, n) -> Expr.Col (resolve_col env q n)
  | Sql_ast.E_cmp (op, a, b) -> Expr.Cmp (op, resolve env a, resolve env b)
  | Sql_ast.E_and (a, b) -> Expr.And (resolve env a, resolve env b)
  | Sql_ast.E_or (a, b) -> Expr.Or (resolve env a, resolve env b)
  | Sql_ast.E_not a -> Expr.Not (resolve env a)
  | Sql_ast.E_arith (op, a, b) -> Expr.Arith (op, resolve env a, resolve env b)
  | Sql_ast.E_neg a -> Expr.Neg (resolve env a)
  | Sql_ast.E_concat (a, b) -> Expr.Concat (resolve env a, resolve env b)
  | Sql_ast.E_is_null a -> Expr.Is_null (resolve env a)
  | Sql_ast.E_is_not_null a -> Expr.Is_not_null (resolve env a)
  | Sql_ast.E_like (a, p) -> Expr.Like (resolve env a, p)
  | Sql_ast.E_in (a, vs) -> Expr.In_list (resolve env a, vs)
  | Sql_ast.E_between (a, lo, hi) ->
      let a' = resolve env a in
      Expr.And
        ( Expr.Cmp (Expr.Ge, a', resolve env lo),
          Expr.Cmp (Expr.Le, a', resolve env hi) )
  | Sql_ast.E_func (name, args) -> begin
      match scalar_func name with
      | Some f -> Expr.Func (f, List.map (resolve env) args)
      | None ->
          if List.mem name agg_funcs then
            fail "aggregate %s not allowed here" name
          else fail "unknown function %s" name
    end
  | Sql_ast.E_star -> fail "* not allowed in this context"

let rec contains_agg (e : Sql_ast.sexpr) =
  match e with
  | Sql_ast.E_func (name, args) ->
      List.mem name agg_funcs || List.exists contains_agg args
  | Sql_ast.E_const _ | Sql_ast.E_param _ | Sql_ast.E_col _ | Sql_ast.E_star ->
      false
  | Sql_ast.E_cmp (_, a, b)
  | Sql_ast.E_and (a, b)
  | Sql_ast.E_or (a, b)
  | Sql_ast.E_arith (_, a, b)
  | Sql_ast.E_concat (a, b) ->
      contains_agg a || contains_agg b
  | Sql_ast.E_between (a, b, c) ->
      contains_agg a || contains_agg b || contains_agg c
  | Sql_ast.E_not a
  | Sql_ast.E_neg a
  | Sql_ast.E_is_null a
  | Sql_ast.E_is_not_null a
  | Sql_ast.E_like (a, _)
  | Sql_ast.E_in (a, _) ->
      contains_agg a

(* ------------------------------------------------------------------ *)
(* Access-path selection                                               *)
(* ------------------------------------------------------------------ *)

(* A conjunct over one table, with columns local to its schema. *)

type range_side = { cmp : Expr.cmp; const : Value.t }

(* For an index, try to consume conjuncts: equalities on a key prefix, then
   ranges on the following key column. Returns (consumed, lo, hi, score). *)
let match_index (idx : Table.index) conjuncts =
  let eq_on col =
    List.find_opt
      (fun c ->
        match c with
        | Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Const v)
        | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Col i) ->
            i = col && not (Value.is_null v)
        | _ -> false)
      conjuncts
  in
  let const_of = function
    | Expr.Cmp (_, Expr.Col _, Expr.Const v) | Expr.Cmp (_, Expr.Const v, Expr.Col _)
      ->
        v
    | _ -> assert false
  in
  let ranges_on col =
    List.filter_map
      (fun c ->
        match c with
        | Expr.Cmp (op, Expr.Col i, Expr.Const v)
          when i = col && (not (Value.is_null v))
               && (op = Expr.Lt || op = Expr.Le || op = Expr.Gt || op = Expr.Ge)
          ->
            Some (c, { cmp = op; const = v })
        | Expr.Cmp (op, Expr.Const v, Expr.Col i)
          when i = col && (not (Value.is_null v))
               && (op = Expr.Lt || op = Expr.Le || op = Expr.Gt || op = Expr.Ge)
          ->
            (* flip: v op col  <=>  col op' v *)
            let flipped =
              match op with
              | Expr.Lt -> Expr.Gt
              | Expr.Le -> Expr.Ge
              | Expr.Gt -> Expr.Lt
              | Expr.Ge -> Expr.Le
              | Expr.Eq | Expr.Ne -> op
            in
            Some (c, { cmp = flipped; const = v })
        | _ -> None)
      conjuncts
  in
  let key = idx.Table.key_cols in
  let rec eat_prefix i consumed prefix =
    if i >= Array.length key then (i, consumed, prefix)
    else
      match eq_on key.(i) with
      | Some c -> eat_prefix (i + 1) (c :: consumed) (const_of c :: prefix)
      | None -> (i, consumed, prefix)
  in
  let neq, consumed, rev_prefix = eat_prefix 0 [] [] in
  let prefix = Array.of_list (List.rev rev_prefix) in
  let lo0 = if Array.length prefix = 0 then Btree.Unbounded else Btree.Incl prefix in
  let hi0 = if Array.length prefix = 0 then Btree.Unbounded else Btree.Incl prefix in
  if neq >= Array.length key then (consumed, lo0, hi0, (2 * neq) + 1)
  else begin
    let next_col = key.(neq) in
    let rs = ranges_on next_col in
    if rs = [] then (consumed, lo0, hi0, 2 * neq)
    else begin
      (* fold all ranges on the column into one lo and one hi *)
      let lo = ref lo0 and hi = ref hi0 and used = ref consumed in
      List.iter
        (fun (c, { cmp; const }) ->
          let k = Array.append prefix [| const |] in
          (* Bounds use truncated-prefix semantics (see Btree.range), so a
             key that extends another covers a narrower slice: the longer
             key is always the tighter bound, for lo and hi alike. For
             equal keys Excl is tighter. *)
          let strict_prefix a b =
            Array.length a < Array.length b
            && Tuple.compare_key a (Array.sub b 0 (Array.length a)) = 0
          in
          let tighter ~keep_larger current cand =
            match (current, cand) with
            | Btree.Unbounded, b -> b
            | b, Btree.Unbounded -> b
            | (Btree.Incl a | Btree.Excl a), (Btree.Incl b | Btree.Excl b) ->
                if strict_prefix a b then cand
                else if strict_prefix b a then current
                else
                  let c = Tuple.compare_key a b in
                  if c = 0 then
                    match (current, cand) with
                    | Btree.Excl _, _ -> current
                    | _, (Btree.Excl _ as b) -> b
                    | a, _ -> a
                  else if (c > 0) = keep_larger then current
                  else cand
          in
          let stronger_lo = tighter ~keep_larger:true in
          let stronger_hi = tighter ~keep_larger:false in
          match cmp with
          | Expr.Ge ->
              lo := stronger_lo !lo (Btree.Incl k);
              used := c :: !used
          | Expr.Gt ->
              lo := stronger_lo !lo (Btree.Excl k);
              used := c :: !used
          | Expr.Le ->
              hi := stronger_hi !hi (Btree.Incl k);
              used := c :: !used
          | Expr.Lt ->
              hi := stronger_hi !hi (Btree.Excl k);
              used := c :: !used
          | Expr.Eq | Expr.Ne -> ())
        rs;
      (* A pure range (no eq prefix) with only an upper bound must still be
         constrained below by the prefix, which is empty: fine. *)
      (!used, !lo, !hi, (2 * neq) + 1)
    end
  end

(* Choose the best access path for [table] given local conjuncts. Returns the
   plan for the scan plus residual conjuncts (already-consumed conjuncts are
   exact and dropped). *)
let choose_access table conjuncts =
  let best = ref None in
  List.iter
    (fun idx ->
      let consumed, lo, hi, score = match_index idx conjuncts in
      if score > 0 then
        match !best with
        | Some (_, _, _, _, s) when s >= score -> ()
        | _ -> best := Some (idx, consumed, lo, hi, score))
    (Table.indexes table);
  match !best with
  | None -> (Plan.Seq_scan table, conjuncts)
  | Some (idx, consumed, lo, hi, _) ->
      let residual =
        List.filter (fun c -> not (List.memq c consumed)) conjuncts
      in
      (Plan.Index_scan { table; index = idx; lo; hi; reverse = false }, residual)

let with_filter plan = function
  | [] -> plan
  | conjuncts -> (
      match Expr.conjoin conjuncts with
      | None -> plan
      | Some pred -> Plan.Filter (pred, plan))

(* ------------------------------------------------------------------ *)
(* Join ordering                                                       *)
(* ------------------------------------------------------------------ *)

let cols_of_tables e = List.map vcol_table (Expr.columns e) |> List.sort_uniq compare

let plan_joins env table_plans vconjuncts =
  (* table_plans: tbl_idx -> (plan, residual local conjuncts applied) *)
  let n = List.length env in
  let placed = Array.make n (-1) in
  (* physical offset per table once placed *)
  let arity i =
    Schema.arity (Table.schema (List.nth env i).table)
  in
  let remaining = ref (List.init n (fun i -> i)) in
  let used = ref [] in
  let conj_remaining = ref vconjuncts in
  (* virtual -> physical, once all referenced tables are placed *)
  let to_physical e =
    Expr.map_columns (fun v -> placed.(vcol_table v) + vcol_local v) e
  in
  let all_placed e =
    List.for_all (fun t -> placed.(t) >= 0) (cols_of_tables e)
  in
  (* pick the first table: prefer an indexed access path, then the fewest
     estimated rows (a crude cardinality model: each pushed conjunct is
     assumed to keep a third of the rows) *)
  let estimate i =
    let plan, residual = List.nth table_plans i in
    let base =
      match plan with
      | Plan.Seq_scan t | Plan.Index_scan { table = t; _ } ->
          float_of_int (Table.row_count t)
      | _ -> 1e9
    in
    let indexed = match plan with Plan.Index_scan _ -> 0.05 | _ -> 1.0 in
    base *. indexed /. (3.0 ** float_of_int (List.length residual))
  in
  let first =
    List.fold_left
      (fun best i -> if estimate i < estimate best then i else best)
      (List.hd !remaining) !remaining
  in
  let base_plan, base_resid = List.nth table_plans first in
  placed.(first) <- 0;
  used := [ first ];
  remaining := List.filter (fun i -> i <> first) !remaining;
  let current = ref (with_filter base_plan base_resid) in
  let current_arity = ref (arity first) in
  while !remaining <> [] do
    (* find a remaining table connected by an equi-join conjunct *)
    let connects j =
      List.exists
        (fun c ->
          match c with
          | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
              let ta = vcol_table a and tb = vcol_table b in
              (ta = j && List.mem tb !used) || (tb = j && List.mem ta !used)
          | _ -> false)
        !conj_remaining
    in
    let j =
      match List.find_opt connects !remaining with
      | Some j -> j
      | None ->
          (* no equi-connected table left: prefer one tied to the placed set
             by any predicate (the translator's descendant/sibling joins are
             range joins), so the nested loop at least filters instead of
             producing a cartesian product *)
          let theta_connects j =
            List.exists
              (fun c ->
                let ts = cols_of_tables c in
                List.mem j ts
                && ts <> [ j ]
                && List.for_all (fun t -> t = j || List.mem t !used) ts)
              !conj_remaining
          in
          (match List.find_opt theta_connects !remaining with
          | Some j -> j
          | None -> List.hd !remaining)
    in
    let jplan, jresid = List.nth table_plans j in
    let right_plan = with_filter jplan jresid in
    let right_arity = arity j in
    (* equi pairs between used-set and j *)
    let eq_pairs, rest =
      List.partition
        (fun c ->
          match c with
          | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
              let ta = vcol_table a and tb = vcol_table b in
              (ta = j && List.mem tb !used) || (tb = j && List.mem ta !used)
          | _ -> false)
        !conj_remaining
    in
    conj_remaining := rest;
    if eq_pairs = [] then begin
      (* cross/theta join: take any conjuncts that become evaluable *)
      placed.(j) <- !current_arity;
      used := j :: !used;
      let now, later =
        List.partition all_placed !conj_remaining
      in
      conj_remaining := later;
      let pred = Expr.conjoin (List.map to_physical now) in
      current := Plan.Nl_join { outer = !current; inner = right_plan; pred };
      current_arity := !current_arity + right_arity
    end
    else begin
      let left_keys, right_keys =
        List.split
          (List.map
             (fun c ->
               match c with
               | Expr.Cmp (Expr.Eq, Expr.Col a, Expr.Col b) ->
                   let ta = vcol_table a in
                   if ta = j then
                     (placed.(vcol_table b) + vcol_local b, vcol_local a)
                   else (placed.(ta) + vcol_local a, vcol_local b)
               | _ -> assert false)
             eq_pairs)
      in
      placed.(j) <- !current_arity;
      used := j :: !used;
      let now, later = List.partition all_placed !conj_remaining in
      conj_remaining := later;
      let residual = Expr.conjoin (List.map to_physical now) in
      current :=
        Plan.Hash_join
          {
            left = !current;
            right = right_plan;
            left_key = Array.of_list left_keys;
            right_key = Array.of_list right_keys;
            residual;
          };
      current_arity := !current_arity + right_arity
    end;
    remaining := List.filter (fun i -> i <> j) !remaining
  done;
  if !conj_remaining <> [] then
    fail "internal: unplaced conjuncts after join ordering";
  (!current, placed)

(* ------------------------------------------------------------------ *)
(* Sort elimination                                                    *)
(* ------------------------------------------------------------------ *)

let rec scan_of = function
  | Plan.Index_scan _ as p -> Some p
  | Plan.Filter (_, p) -> scan_of p
  | _ -> None

let rec replace_scan plan new_scan =
  match plan with
  | Plan.Index_scan _ -> new_scan
  | Plan.Filter (e, p) -> Plan.Filter (e, replace_scan p new_scan)
  | p -> p

(* If the plan is a single-table chain over an index scan whose key order
   already matches the ORDER BY columns, drop the sort (reversing the scan
   direction for DESC). *)
let try_order_via_index plan (keys : (Expr.t * Plan.order) list) =
  match scan_of plan with
  | Some (Plan.Index_scan ({ index; _ } as is)) ->
      let dirs = List.map snd keys in
      let all_asc = List.for_all (fun d -> d = Plan.Asc) dirs in
      let all_desc = List.for_all (fun d -> d = Plan.Desc) dirs in
      let cols =
        List.map (fun (e, _) -> match e with Expr.Col i -> Some i | _ -> None) keys
      in
      if (not (all_asc || all_desc)) || List.exists Option.is_none cols then None
      else begin
        let cols = List.map Option.get cols in
        let key_cols = Array.to_list index.Table.key_cols in
        let rec is_prefix a b =
          match (a, b) with
          | [], _ -> true
          | x :: xs, y :: ys -> x = y && is_prefix xs ys
          | _ :: _, [] -> false
        in
        if is_prefix cols key_cols then
          Some
            (replace_scan plan
               (Plan.Index_scan { is with reverse = all_desc }))
        else None
      end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* SELECT planning                                                     *)
(* ------------------------------------------------------------------ *)

let item_name i (item : Sql_ast.select_item) =
  match item with
  | Sql_ast.Item (_, Some alias) -> alias
  | Sql_ast.Item (Sql_ast.E_col (_, n), None) -> n
  | Sql_ast.Item (Sql_ast.E_func (f, _), None) -> String.lowercase_ascii f
  | Sql_ast.Item _ -> Printf.sprintf "col%d" i
  | Sql_ast.Star -> "*"

let expand_star env placed =
  (* all columns of all tables, in join order *)
  let entries =
    List.sort (fun a b -> compare placed.(a.tbl_idx) placed.(b.tbl_idx)) env
  in
  List.concat_map
    (fun e ->
      let schema = Table.schema e.table in
      List.mapi
        (fun c (col : Schema.column) ->
          (Expr.Col (placed.(e.tbl_idx) + c), col.Schema.col_name))
        (Array.to_list schema))
    entries

let extract_agg env (e : Sql_ast.sexpr) : Plan.agg =
  match e with
  | Sql_ast.E_func ("COUNT", [ Sql_ast.E_star ]) -> Plan.Count_star
  | Sql_ast.E_func ("COUNT", [ a ]) -> Plan.Count (resolve env a)
  | Sql_ast.E_func ("SUM", [ a ]) -> Plan.Sum (resolve env a)
  | Sql_ast.E_func ("MIN", [ a ]) -> Plan.Min (resolve env a)
  | Sql_ast.E_func ("MAX", [ a ]) -> Plan.Max (resolve env a)
  | Sql_ast.E_func ("AVG", [ a ]) -> Plan.Avg (resolve env a)
  | Sql_ast.E_func (f, _) when List.mem f agg_funcs ->
      fail "%s takes exactly one argument" f
  | _ -> fail "only plain aggregate calls are supported in SELECT"

let plan_select catalog (q : Sql_ast.select) =
  if q.from = [] then fail "FROM clause is required";
  let env = make_env catalog q.from in
  (* duplicate alias check *)
  let aliases = List.map (fun e -> e.alias) env in
  if List.length (List.sort_uniq compare aliases) <> List.length aliases then
    fail "duplicate table alias in FROM";
  let vconjuncts =
    match q.where with
    | None -> []
    | Some w ->
        if contains_agg w then fail "aggregates are not allowed in WHERE";
        Expr.conjuncts (resolve env w)
  in
  (* pre-planning simplification: fold constants into index-matchable form,
     drop implied bounds, and detect unsatisfiable conjunctions — those
     short-circuit below into a plan that never touches a table *)
  let vconjuncts, contradiction =
    if not !Simplify.enabled then (vconjuncts, false)
    else
      match Simplify.simplify_conjuncts vconjuncts with
      | Simplify.Contradiction -> ([], true)
      | Simplify.Conjuncts cs -> (cs, false)
  in
  (* split single-table conjuncts *)
  let single, multi =
    List.partition (fun c -> List.length (cols_of_tables c) <= 1) vconjuncts
  in
  let table_plans =
    List.map
      (fun e ->
        let mine =
          List.filter
            (fun c ->
              match cols_of_tables c with
              | [ t ] -> t = e.tbl_idx
              | [] -> false (* constant predicates handled below *)
              | _ -> assert false)
            single
        in
        let local =
          List.map (Expr.map_columns (fun v -> vcol_local v)) mine
        in
        choose_access e.table local)
      env
  in
  let const_preds =
    List.filter (fun c -> cols_of_tables c = []) single
  in
  let joined, placed = plan_joins env table_plans multi in
  let joined = with_filter joined const_preds in
  (* An unsatisfiable WHERE clause produces zero input rows without touching
     any table: LIMIT 0 never forces its input. Wrapping below the aggregate
     keeps [SELECT COUNT(+) ... WHERE 1=0] returning its single row. *)
  let joined =
    if contradiction then Plan.Limit { input = joined; limit = Some 0; offset = 0 }
    else joined
  in
  (* aggregation? *)
  let has_agg =
    q.group_by <> [] || q.having <> None
    || List.exists
         (function Sql_ast.Item (e, _) -> contains_agg e | Sql_ast.Star -> false)
         q.items
  in
  if (not has_agg) && q.having <> None then fail "HAVING requires aggregation";
  let to_physical e =
    Expr.map_columns (fun v -> placed.(vcol_table v) + vcol_local v) e
  in
  let resolve_phys e = to_physical (resolve env e) in
  if not has_agg then begin
    (* items *)
    let projections =
      List.concat
        (List.mapi
           (fun i item ->
             match item with
             | Sql_ast.Star -> expand_star env placed
             | Sql_ast.Item (e, _) -> [ (resolve_phys e, item_name i item) ])
           q.items)
    in
    let order_keys =
      List.map
        (fun (e, dir) ->
          (resolve_phys e, match dir with Sql_ast.Asc -> Plan.Asc | Sql_ast.Desc -> Plan.Desc))
        q.order_by
    in
    let sorted =
      if order_keys = [] then joined
      else
        match try_order_via_index joined order_keys with
        | Some p -> p
        | None -> Plan.Sort { input = joined; keys = order_keys }
    in
    let projected = Plan.Project (Array.of_list projections, sorted) in
    let distinct = if q.distinct then Plan.Distinct projected else projected in
    match (q.limit, q.offset) with
    | None, None -> distinct
    | limit, offset ->
        Plan.Limit { input = distinct; limit; offset = Option.value offset ~default:0 }
  end
  else begin
    (* aggregate path *)
    let group_exprs =
      List.map (fun e -> (resolve_phys e, Format.asprintf "%a" Expr.pp (resolve_phys e))) q.group_by
    in
    let n_groups = List.length group_exprs in
    let aggs = ref [] in
    (* map each select item onto the aggregate output *)
    let item_exprs =
      List.mapi
        (fun i item ->
          match item with
          | Sql_ast.Star -> fail "SELECT * cannot be combined with aggregation"
          | Sql_ast.Item (e, _) ->
              let name = item_name i item in
              if contains_agg e then begin
                match e with
                | Sql_ast.E_func (_, _) ->
                    let agg = extract_agg env e in
                    let agg =
                      (match agg with
                      | Plan.Count_star -> Plan.Count_star
                      | Plan.Count x -> Plan.Count (to_physical x)
                      | Plan.Sum x -> Plan.Sum (to_physical x)
                      | Plan.Min x -> Plan.Min (to_physical x)
                      | Plan.Max x -> Plan.Max (to_physical x)
                      | Plan.Avg x -> Plan.Avg (to_physical x))
                    in
                    let pos = n_groups + List.length !aggs in
                    aggs := !aggs @ [ (agg, name) ];
                    (Expr.Col pos, name)
                | _ -> fail "aggregates must appear as top-level SELECT items"
              end
              else begin
                let phys = resolve_phys e in
                match
                  List.find_index
                    (fun (g, _) -> g = phys)
                    group_exprs
                with
                | Some gi -> (Expr.Col gi, name)
                | None -> (
                    match phys with
                    | Expr.Const _ -> (phys, name)
                    | _ ->
                        fail
                          "non-aggregated SELECT item must appear in GROUP BY")
              end)
        q.items
    in
    (* resolve an expression against the aggregate output: aggregate calls
       map to their output column (appending new ones as needed), any
       aggregate-free subexpression must match a GROUP BY expression *)
    let agg_output_col agg name =
      match List.find_index (fun (a, _) -> a = agg) !aggs with
      | Some ai -> n_groups + ai
      | None ->
          let pos = n_groups + List.length !aggs in
          aggs := !aggs @ [ (agg, name) ];
          pos
    in
    let to_phys_agg agg =
      match agg with
      | Plan.Count_star -> Plan.Count_star
      | Plan.Count x -> Plan.Count (to_physical x)
      | Plan.Sum x -> Plan.Sum (to_physical x)
      | Plan.Min x -> Plan.Min (to_physical x)
      | Plan.Max x -> Plan.Max (to_physical x)
      | Plan.Avg x -> Plan.Avg (to_physical x)
    in
    let rec resolve_over_agg (e : Sql_ast.sexpr) : Expr.t =
      (* aggregate calls map to output columns; any aggregate-free
         subexpression matching a GROUP BY expression maps to its group
         column; otherwise decompose structurally *)
      let group_match =
        if contains_agg e then None
        else
          match e with
          | Sql_ast.E_const _ -> None
          | e -> (
              match
                List.find_index
                  (fun (g, _) -> g = resolve_phys e)
                  group_exprs
              with
              | Some gi -> Some (Expr.Col gi)
              | None -> None)
      in
      match (group_match, e) with
      | Some col, _ -> col
      | None, Sql_ast.E_const v -> Expr.Const v
      | None, Sql_ast.E_func (name, _) when List.mem name agg_funcs ->
          Expr.Col
            (agg_output_col
               (to_phys_agg (extract_agg env e))
               (String.lowercase_ascii name))
      | None, e -> resolve_over_agg_structural e

    and resolve_over_agg_structural (e : Sql_ast.sexpr) : Expr.t =
      match e with
      | Sql_ast.E_param i -> Expr.Param i
      | Sql_ast.E_cmp (op, a, b) ->
          Expr.Cmp (op, resolve_over_agg a, resolve_over_agg b)
      | Sql_ast.E_and (a, b) -> Expr.And (resolve_over_agg a, resolve_over_agg b)
      | Sql_ast.E_or (a, b) -> Expr.Or (resolve_over_agg a, resolve_over_agg b)
      | Sql_ast.E_not a -> Expr.Not (resolve_over_agg a)
      | Sql_ast.E_arith (op, a, b) ->
          Expr.Arith (op, resolve_over_agg a, resolve_over_agg b)
      | Sql_ast.E_neg a -> Expr.Neg (resolve_over_agg a)
      | Sql_ast.E_concat (a, b) ->
          Expr.Concat (resolve_over_agg a, resolve_over_agg b)
      | Sql_ast.E_is_null a -> Expr.Is_null (resolve_over_agg a)
      | Sql_ast.E_is_not_null a -> Expr.Is_not_null (resolve_over_agg a)
      | Sql_ast.E_between (a, lo, hi) ->
          let a' = resolve_over_agg a in
          Expr.And
            ( Expr.Cmp (Expr.Ge, a', resolve_over_agg lo),
              Expr.Cmp (Expr.Le, a', resolve_over_agg hi) )
      | Sql_ast.E_in (a, vs) -> Expr.In_list (resolve_over_agg a, vs)
      | Sql_ast.E_like (a, p) -> Expr.Like (resolve_over_agg a, p)
      | Sql_ast.E_col _ | Sql_ast.E_func _ | Sql_ast.E_star | Sql_ast.E_const _
        ->
          fail "HAVING must use aggregates or GROUP BY expressions"
    in
    let having_pred = Option.map resolve_over_agg q.having in
    let agg_plan =
      Plan.Aggregate
        {
          input = joined;
          group_by = Array.of_list group_exprs;
          aggs = Array.of_list !aggs;
        }
    in
    let agg_plan =
      match having_pred with
      | None -> agg_plan
      | Some pred -> Plan.Filter (pred, agg_plan)
    in
    (* ORDER BY over aggregate output: match group exprs or aggregate items *)
    let order_keys =
      List.map
        (fun (e, dir) ->
          let dir = match dir with Sql_ast.Asc -> Plan.Asc | Sql_ast.Desc -> Plan.Desc in
          if contains_agg e then begin
            let agg = extract_agg env e in
            let agg =
              match agg with
              | Plan.Count_star -> Plan.Count_star
              | Plan.Count x -> Plan.Count (to_physical x)
              | Plan.Sum x -> Plan.Sum (to_physical x)
              | Plan.Min x -> Plan.Min (to_physical x)
              | Plan.Max x -> Plan.Max (to_physical x)
              | Plan.Avg x -> Plan.Avg (to_physical x)
            in
            match List.find_index (fun (a, _) -> a = agg) !aggs with
            | Some ai -> (Expr.Col (n_groups + ai), dir)
            | None -> fail "ORDER BY aggregate must also be selected"
          end
          else
            let phys = resolve_phys e in
            match List.find_index (fun (g, _) -> g = phys) group_exprs with
            | Some gi -> (Expr.Col gi, dir)
            | None -> fail "ORDER BY must reference GROUP BY expressions"
        )
        q.order_by
    in
    let sorted =
      if order_keys = [] then agg_plan
      else Plan.Sort { input = agg_plan; keys = order_keys }
    in
    let projected = Plan.Project (Array.of_list item_exprs, sorted) in
    let distinct = if q.distinct then Plan.Distinct projected else projected in
    match (q.limit, q.offset) with
    | None, None -> distinct
    | limit, offset ->
        Plan.Limit { input = distinct; limit; offset = Option.value offset ~default:0 }
  end

(* ------------------------------------------------------------------ *)
(* Single-table helpers for UPDATE/DELETE                              *)
(* ------------------------------------------------------------------ *)

let resolve_expr_for_table table e =
  let schema = Table.schema table in
  let env_resolve q n =
    (match q with
    | Some q when norm q <> norm (Table.name table) ->
        fail "unknown table alias %s" q
    | _ -> ());
    match Schema.find_opt schema n with
    | Some c -> c
    | None -> fail "table %s has no column %s" (Table.name table) n
  in
  let rec go (e : Sql_ast.sexpr) : Expr.t =
    match e with
    | Sql_ast.E_const v -> Expr.Const v
    | Sql_ast.E_param i -> Expr.Param i
    | Sql_ast.E_col (q, n) -> Expr.Col (env_resolve q n)
    | Sql_ast.E_cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Sql_ast.E_and (a, b) -> Expr.And (go a, go b)
    | Sql_ast.E_or (a, b) -> Expr.Or (go a, go b)
    | Sql_ast.E_not a -> Expr.Not (go a)
    | Sql_ast.E_arith (op, a, b) -> Expr.Arith (op, go a, go b)
    | Sql_ast.E_neg a -> Expr.Neg (go a)
    | Sql_ast.E_concat (a, b) -> Expr.Concat (go a, go b)
    | Sql_ast.E_is_null a -> Expr.Is_null (go a)
    | Sql_ast.E_is_not_null a -> Expr.Is_not_null (go a)
    | Sql_ast.E_like (a, p) -> Expr.Like (go a, p)
    | Sql_ast.E_in (a, vs) -> Expr.In_list (go a, vs)
    | Sql_ast.E_between (a, lo, hi) ->
        let a' = go a in
        Expr.And (Expr.Cmp (Expr.Ge, a', go lo), Expr.Cmp (Expr.Le, a', go hi))
    | Sql_ast.E_func (name, args) -> begin
        match scalar_func name with
        | Some f -> Expr.Func (f, List.map go args)
        | None -> fail "function %s not allowed here" name
      end
    | Sql_ast.E_star -> fail "* not allowed here"
  in
  go e

let access_for table pred =
  let conjuncts = match pred with None -> [] | Some p -> Expr.conjuncts p in
  choose_access table conjuncts

let table_candidates table pred =
  let scan, residual = access_for table pred in
  let rows =
    match scan with
    | Plan.Seq_scan t -> Table.scan t
    | Plan.Index_scan { table = t; index; lo; hi; _ } ->
        Seq.filter_map
          (fun (_, rowid) ->
            Option.map (fun tu -> (rowid, tu)) (Table.get t rowid))
          (Btree.range index.Table.tree ~lo ~hi)
    | _ -> assert false
  in
  match Expr.conjoin residual with
  | None -> rows
  | Some pred -> Seq.filter (fun (_, tu) -> Expr.eval_bool pred tu) rows

let access_path_description table pred =
  let scan, residual = access_for table pred in
  let base =
    match scan with
    | Plan.Seq_scan t -> Printf.sprintf "SeqScan(%s)" (Table.name t)
    | Plan.Index_scan { index; _ } ->
        Printf.sprintf "IndexScan(%s)" index.Table.idx_name
    | _ -> assert false
  in
  if residual = [] then base else base ^ "+filter"
