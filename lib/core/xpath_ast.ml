(* Abstract syntax for the ordered-XPath subset (DESIGN.md section 4). *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Attribute
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Ancestor
  | Ancestor_or_self

type node_test =
  | Name of string  (* element (or attribute, on the attribute axis) name *)
  | Any_name  (* '*' *)
  | Text_test  (* text() *)
  | Comment_test  (* comment() *)
  | Node_test  (* node() *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal = L_num of float | L_str of string

(* Operand of a value comparison: the string-value of nodes selected by a
   relative path (XPath existential comparison semantics). *)
type predicate =
  | P_pos of cmp * int  (* position() cmp k ; [k] sugar for position() = k *)
  | P_last  (* [last()] i.e. position() = last() *)
  | P_exists of path  (* [relative/path] *)
  | P_cmp of path * cmp * literal  (* [relative/path op literal] *)
  | P_count of path * cmp * int  (* [count(relative/path) op k] *)
  | P_and of predicate * predicate
  | P_or of predicate * predicate
  | P_not of predicate

and step = { axis : axis; test : node_test; preds : predicate list }

and path = { absolute : bool; steps : step list }

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Attribute -> "attribute"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"

let cmp_name = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let test_name = function
  | Name n -> n
  | Any_name -> "*"
  | Text_test -> "text()"
  | Comment_test -> "comment()"
  | Node_test -> "node()"

let rec pred_to_string = function
  | P_pos (Eq, k) -> string_of_int k
  | P_pos (op, k) -> Printf.sprintf "position() %s %d" (cmp_name op) k
  | P_last -> "last()"
  | P_exists p -> to_string p
  | P_cmp (p, op, L_num f) ->
      Printf.sprintf "%s %s %g" (to_string p) (cmp_name op) f
  | P_cmp (p, op, L_str s) ->
      Printf.sprintf "%s %s '%s'" (to_string p) (cmp_name op) s
  | P_count (p, op, k) ->
      Printf.sprintf "count(%s) %s %d" (to_string p) (cmp_name op) k
  | P_and (a, b) -> Printf.sprintf "(%s and %s)" (pred_to_string a) (pred_to_string b)
  | P_or (a, b) -> Printf.sprintf "(%s or %s)" (pred_to_string a) (pred_to_string b)
  | P_not a -> Printf.sprintf "not(%s)" (pred_to_string a)

and step_to_string s =
  let base =
    match (s.axis, s.test) with
    | Child, t -> test_name t
    | Attribute, t -> "@" ^ test_name t
    | axis, t -> axis_name axis ^ "::" ^ test_name t
  in
  base
  ^ String.concat ""
      (List.map (fun p -> "[" ^ pred_to_string p ^ "]") s.preds)

and to_string (p : path) =
  (if p.absolute then "/" else "")
  ^ String.concat "/" (List.map step_to_string p.steps)

type union = path list
(* alternatives of a top-level union expression (p1 | p2 | ...) *)

let union_to_string (u : union) = String.concat " | " (List.map to_string u)

(* Constructors and structural queries used by the schema analysis. *)

let step ?(preds = []) axis test = { axis; test; preds }

let child_chain names =
  List.map (fun n -> step Child (Name n)) names

(* Does the predicate consult position()/last() of the *current* context?
   Positions inside nested paths (P_exists/P_cmp/P_count operands) are
   relative to their own inner contexts and don't count. *)
let rec pred_has_positional = function
  | P_pos _ | P_last -> true
  | P_exists _ | P_cmp _ | P_count _ -> false
  | P_and (a, b) | P_or (a, b) ->
      pred_has_positional a || pred_has_positional b
  | P_not a -> pred_has_positional a

let step_has_positional s = List.exists pred_has_positional s.preds
