module V = Reldb.Value

let interval_numbering idx ~gap =
  let n = Doc_index.length idx in
  let out = Array.make n (0, 0) in
  let counter = ref 0 in
  let next () =
    counter := !counter + gap;
    !counter
  in
  let rec go i =
    let start = next () in
    List.iter go (Doc_index.attributes idx i);
    List.iter go (Doc_index.children idx i);
    out.(i) <- (start, next ())
  in
  go 0;
  out

let common_prefix (r : Doc_index.record) =
  let tag = if r.Doc_index.tag = "" then V.Null else V.Str r.Doc_index.tag in
  let value =
    match r.Doc_index.kind with
    | Doc_index.Elem -> V.Null
    | _ -> V.Str r.Doc_index.value
  in
  [|
    V.Int r.Doc_index.id;
    (if r.Doc_index.parent < 0 then V.Null else V.Int r.Doc_index.parent);
    V.Int (Doc_index.kind_code r.Doc_index.kind);
    tag;
    value;
    Encoding.nval_of ~kind:r.Doc_index.kind r.Doc_index.value;
  |]

(* ORDPATH-style load numbering: children at odd components (3, 5, 7, ...),
   leaving even components free as insertion carets and odd slot 1 free for
   one cheap prepend; the reserved attribute level 0 stays 0. *)
let caretify path =
  Array.map (fun c -> if c = 0 then 0 else (2 * c) + 1) path

let row_of_record enc ~gap_orders (r : Doc_index.record) =
  let prefix = common_prefix r in
  match enc with
  | Encoding.Global | Encoding.Global_gap ->
      let g_order, g_end =
        match gap_orders with
        | Some orders -> orders.(r.Doc_index.id)
        | None -> invalid_arg "Shred.row_of_record: GLOBAL needs gap_orders"
      in
      Array.append prefix [| V.Int g_order; V.Int g_end |]
  | Encoding.Local -> Array.append prefix [| V.Int r.Doc_index.pos |]
  | Encoding.Dewey_enc ->
      Array.append prefix
        [|
          V.Int (Dewey.depth r.Doc_index.dewey);
          V.Bytes (Dewey.encode r.Doc_index.dewey);
        |]
  | Encoding.Dewey_caret ->
      Array.append prefix
        [|
          V.Int (Dewey.depth r.Doc_index.dewey);
          V.Bytes (Dewey.encode (caretify r.Doc_index.dewey));
        |]

let shred ?gap db ~doc enc document =
  Obs.Span.with_ "shred"
    ~attrs:[ ("doc", doc); ("encoding", Encoding.name enc) ]
    (fun () ->
      let idx = Doc_index.build document in
      Encoding.create_tables db ~doc enc;
      let gap_orders =
        match enc with
        | Encoding.Global -> Some (interval_numbering idx ~gap:1)
        | Encoding.Global_gap ->
            Some
              (interval_numbering idx
                 ~gap:(Option.value gap ~default:Encoding.default_gap))
        | Encoding.Local | Encoding.Dewey_enc | Encoding.Dewey_caret -> None
      in
      (* bulk-load in one call: build all rows first, then hand the batch to
         the engine's loader fast path *)
      let rows =
        Array.fold_right
          (fun r acc -> row_of_record enc ~gap_orders r :: acc)
          (Doc_index.records idx) []
      in
      ignore (Reldb.Db.insert_many db (Encoding.table_name ~doc enc) rows);
      idx)

(* ------------------------------------------------------------------ *)
(* Streaming load                                                      *)
(* ------------------------------------------------------------------ *)

type frame = {
  f_id : int;
  f_tag : string;
  f_start : int;  (* GLOBAL interval start *)
  mutable f_children : int;  (* non-attribute children seen *)
  f_dewey : Dewey.t;  (* logical path *)
}

let shred_stream ?gap db ~doc enc src =
 Obs.Span.with_ "shred"
   ~attrs:[ ("doc", doc); ("encoding", Encoding.name enc); ("mode", "stream") ]
 @@ fun () ->
  Encoding.create_tables db ~doc enc;
  let tname = Encoding.table_name ~doc enc in
  let table = Reldb.Db.table db tname in
  (* durable databases go through the engine so each row is WAL-logged;
     the in-memory path keeps the direct heap insert *)
  let insert_tuple =
    if Reldb.Db.is_durable db then fun row ->
      ignore (Reldb.Db.insert_row db tname row)
    else fun row -> ignore (Reldb.Table.insert table row)
  in
  let gap =
    match enc with
    | Encoding.Global -> 1
    | Encoding.Global_gap -> Option.value gap ~default:Encoding.default_gap
    | Encoding.Local | Encoding.Dewey_enc | Encoding.Dewey_caret -> 1
  in
  let counter = ref 0 in
  let next () =
    counter := !counter + gap;
    !counter
  in
  let ids = ref 0 in
  let next_id () =
    let id = !ids in
    incr ids;
    id
  in
  let stack : frame list ref = ref [] in
  let add_row ~id ~parent ~kind ~tag ~value ~pos ~dewey ~interval =
    let tagv = if tag = "" then V.Null else V.Str tag in
    let valuev =
      match kind with Doc_index.Elem -> V.Null | _ -> V.Str value
    in
    let prefix =
      [|
        V.Int id;
        (if parent < 0 then V.Null else V.Int parent);
        V.Int (Doc_index.kind_code kind);
        tagv;
        valuev;
        Encoding.nval_of ~kind value;
      |]
    in
    let row =
      match enc with
      | Encoding.Global | Encoding.Global_gap ->
          let s, e = interval in
          Array.append prefix [| V.Int s; V.Int e |]
      | Encoding.Local -> Array.append prefix [| V.Int pos |]
      | Encoding.Dewey_enc ->
          Array.append prefix
            [| V.Int (Dewey.depth dewey); V.Bytes (Dewey.encode dewey) |]
      | Encoding.Dewey_caret ->
          Array.append prefix
            [| V.Int (Dewey.depth dewey); V.Bytes (Dewey.encode (caretify dewey)) |]
    in
    insert_tuple row
  in
  let leaf ~kind ~tag ~value =
    let id = next_id () in
    let parent, pos, dewey =
      match !stack with
      | [] -> invalid_arg "Shred.shred_stream: leaf outside root"
      | f :: _ ->
          f.f_children <- f.f_children + 1;
          (f.f_id, f.f_children, Dewey.child f.f_dewey f.f_children)
    in
    let s = next () in
    let e = next () in
    add_row ~id ~parent ~kind ~tag ~value ~pos ~dewey ~interval:(s, e)
  in
  Xmllib.Sax.iter src (fun ev ->
      match ev with
      | Xmllib.Sax.Start_element { tag; attrs } ->
          let id = next_id () in
          let parent, pos, dewey =
            match !stack with
            | [] -> (-1, 1, Dewey.root)
            | f :: _ ->
                f.f_children <- f.f_children + 1;
                (f.f_id, f.f_children, Dewey.child f.f_dewey f.f_children)
          in
          let f_start = next () in
          let m = List.length attrs in
          List.iteri
            (fun j (an, av) ->
              let aid = next_id () in
              let s = next () in
              let e = next () in
              add_row ~id:aid ~parent:id ~kind:Doc_index.Attr ~tag:an ~value:av
                ~pos:(j - m)
                ~dewey:(Dewey.child (Dewey.child dewey 0) (j + 1))
                ~interval:(s, e))
            attrs;
          stack :=
            { f_id = id; f_tag = tag; f_start; f_children = 0; f_dewey = dewey }
            :: !stack;
          (* the element row itself is written at End_element, when its
             interval end is known; other encodings do not mind *)
          ignore pos;
          ignore parent
      | Xmllib.Sax.End_element _ -> (
          match !stack with
          | [] -> assert false
          | f :: rest ->
              let g_end = next () in
              let parent, pos =
                match rest with
                | [] -> (-1, 1)
                | p :: _ -> (p.f_id, p.f_children)
              in
              add_row ~id:f.f_id ~parent ~kind:Doc_index.Elem ~tag:f.f_tag
                ~value:"" ~pos ~dewey:f.f_dewey ~interval:(f.f_start, g_end);
              stack := rest)
      | Xmllib.Sax.Text s -> leaf ~kind:Doc_index.Text_node ~tag:"" ~value:s
      | Xmllib.Sax.Comment s ->
          leaf ~kind:Doc_index.Comment_node ~tag:"" ~value:s
      | Xmllib.Sax.Pi { target; data } ->
          leaf ~kind:Doc_index.Pi_node ~tag:target ~value:data);
  !ids
