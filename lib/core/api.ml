module Store = struct
  type t = { db : Reldb.Db.t; name : string; enc : Encoding.t }

  let create ?gap db ~name enc doc =
    ignore (Shred.shred ?gap db ~doc:name enc doc);
    { db; name; enc }

  let open_existing db ~name enc =
    (* probe the table so a missing store fails loudly *)
    ignore (Reldb.Db.table db (Encoding.table_name ~doc:name enc));
    { db; name; enc }

  let drop t = Encoding.drop_tables t.db ~doc:t.name t.enc

  let db t = t.db
  let name t = t.name
  let encoding t = t.enc

  (* a span named after the API entry point, tagged with the encoding, so
     traces read as user operation -> phases -> engine statements *)
  let op_span t name f =
    Obs.Span.with_ name ~attrs:[ ("encoding", Encoding.name t.enc) ] f

  let query t xpath =
    Obs.Span.with_ "query"
      ~attrs:[ ("xpath", xpath); ("encoding", Encoding.name t.enc) ]
    @@ fun () ->
    let parsed =
      Obs.Span.with_ "xpath-parse" (fun () -> Xpath_parser.parse_union xpath)
    in
    (* translation emits and executes SQL as it walks the steps, so engine
       spans (sql-parse / plan / exec) nest under [translate] *)
    Obs.Span.with_ "translate" @@ fun () ->
    match parsed with
    | [ p ] -> Translate.eval t.db ~doc:t.name t.enc p
    | u -> Translate.eval_union t.db ~doc:t.name t.enc u

  let query_ids t xpath =
    List.map (fun (r : Node_row.t) -> r.Node_row.id) (query t xpath).Translate.rows

  let subtree t ~id = Reconstruct.subtree t.db ~doc:t.name t.enc ~id
  let serialize t ~id = Reconstruct.serialize_subtree t.db ~doc:t.name t.enc ~id

  let query_nodes t xpath =
    let ids = query_ids t xpath in
    Obs.Span.with_ "reconstruct" (fun () ->
        List.map (fun id -> subtree t ~id) ids)

  let query_values t xpath =
    let rows = (query t xpath).Translate.rows in
    Obs.Span.with_ "reconstruct" @@ fun () ->
    List.map
      (fun (r : Node_row.t) ->
        match r.Node_row.kind with
        | Doc_index.Elem ->
            Xmllib.Types.text_content (subtree t ~id:r.Node_row.id)
        | _ -> r.Node_row.value)
      rows

  let count t xpath = List.length (query t xpath).Translate.rows

  let flwor t q = op_span t "flwor" (fun () -> Flwor.run t.db ~doc:t.name t.enc q)

  let insert_subtree t ~parent ~pos fragment =
    op_span t "insert_subtree" @@ fun () ->
    Update.insert_subtree t.db ~doc:t.name t.enc ~parent ~pos fragment

  let insert_forest t ~parent ~pos fragments =
    op_span t "insert_forest" @@ fun () ->
    Update.insert_forest t.db ~doc:t.name t.enc ~parent ~pos fragments

  let append_child t ~parent fragment =
    op_span t "append_child" @@ fun () ->
    Update.append_child t.db ~doc:t.name t.enc ~parent fragment

  let delete_subtree t ~id =
    op_span t "delete_subtree" @@ fun () ->
    Update.delete_subtree t.db ~doc:t.name t.enc ~id

  let move_subtree t ~id ~parent ~pos =
    op_span t "move_subtree" @@ fun () ->
    Update.move_subtree t.db ~doc:t.name t.enc ~id ~parent ~pos

  let replace_subtree t ~id fragment =
    op_span t "replace_subtree" @@ fun () ->
    Update.replace_subtree t.db ~doc:t.name t.enc ~id fragment

  let set_text t ~id value =
    op_span t "set_text" @@ fun () ->
    Update.set_text t.db ~doc:t.name t.enc ~id value

  let set_attribute t ~id ~name ~value =
    op_span t "set_attribute" @@ fun () ->
    Update.set_attribute t.db ~doc:t.name t.enc ~id ~name ~value

  let remove_attribute t ~id ~name =
    op_span t "remove_attribute" @@ fun () ->
    Update.remove_attribute t.db ~doc:t.name t.enc ~id ~name

  let atomically t f = Reldb.Db.with_transaction t.db f

  let document t = Reconstruct.document t.db ~doc:t.name t.enc
  let root_id t = Reconstruct.root_id t.db ~doc:t.name t.enc
  let storage t = Storage.measure t.db ~doc:t.name t.enc
  let check t = Integrity.check t.db ~doc:t.name t.enc
end
