module T = Xmllib.Types
module V = Reldb.Value

let log_src = Logs.Src.create "ordered_xml.update" ~doc:"order-preserving updates"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  rows_inserted : int;
  rows_deleted : int;
  rows_renumbered : int;
  statements : int;
}

exception Update_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Update_error s)) fmt

let zero = { rows_inserted = 0; rows_deleted = 0; rows_renumbered = 0; statements = 0 }

type state = { db : Reldb.Db.t; enc : Encoding.t; tname : string; mutable st : stats }

(* Every public update runs as one transaction: a logical XML update either
   lands completely or not at all. Compound operations (move, replace) call
   the primitives re-entrantly, so nesting joins the enclosing transaction. *)
let transactionally db f =
  if Reldb.Db.in_transaction db then f () else Reldb.Db.with_transaction db f

let exec state sql =
  state.st <- { state.st with statements = state.st.statements + 1 };
  Log.debug (fun m -> m "%s" sql);
  match Reldb.Db.exec state.db sql with
  | Reldb.Db.Affected n -> n
  | Reldb.Db.Rows _ -> 0

let query state sql =
  state.st <- { state.st with statements = state.st.statements + 1 };
  Reldb.Db.query state.db sql

(* order-maintenance statements run under a [renumber] span so update-path
   phase breakdowns separate renumbering cost from row insertion *)
let renumber state sql = Obs.Span.with_ "renumber" (fun () -> exec state sql)

let fetch_node state id =
  let sql =
    Printf.sprintf "SELECT %s FROM %s e WHERE e.id = %d"
      (Node_row.select_list state.enc "e") state.tname id
  in
  match query state sql with
  | [ tu ] -> Node_row.of_tuple state.enc tu
  | [] -> fail "no node with id %d" id
  | _ -> assert false

(* non-attribute children of a node, in document order *)
let fetch_children state id =
  let order_col =
    match state.enc with
    | Encoding.Global | Encoding.Global_gap -> "e.g_order"
    | Encoding.Local -> "e.l_order"
    | Encoding.Dewey_enc | Encoding.Dewey_caret -> "e.path"
  in
  let sql =
    Printf.sprintf
      "SELECT %s FROM %s e WHERE e.parent = %d AND e.kind <> 2 ORDER BY %s"
      (Node_row.select_list state.enc "e") state.tname id order_col
  in
  List.map (Node_row.of_tuple state.enc) (query state sql)

let max_id state =
  match query state (Printf.sprintf "SELECT MAX(id) FROM %s" state.tname) with
  | [ [| V.Int m |] ] -> m
  | _ -> 0

(* --- fragment flattening -------------------------------------------- *)

(* Wrap the fragment under a dummy root, index it, and drop the dummy:
   record ids 1.. are the fragment's records in record order. *)
let fragment_index fragment =
  match fragment with
  | T.Element _ | T.Text _ | T.Comment _ | T.Pi _ ->
      Doc_index.build
        { T.decl = false; root = { T.tag = "frag"; attrs = []; children = [ fragment ] } }

let fragment_size idx = Doc_index.length idx - 1

(* --- shared row construction ----------------------------------------- *)

(* routed through the engine so durable databases WAL-log the row *)
let insert_row state tuple =
  (try ignore (Reldb.Db.insert_row state.db state.tname tuple)
   with Reldb.Db.Sql_error m -> fail "%s" m);
  state.st <- { state.st with rows_inserted = state.st.rows_inserted + 1 }

(* one bulk-load call instead of a statement per row *)
let bulk_insert state rows =
  if rows <> [] then begin
    let n =
      try Reldb.Db.insert_many state.db state.tname rows
      with Reldb.Db.Sql_error m -> fail "%s" m
    in
    state.st <-
      {
        state.st with
        statements = state.st.statements + 1;
        rows_inserted = state.st.rows_inserted + n;
      }
  end

let common_payload (r : Doc_index.record) ~id ~parent =
  let tag = if r.Doc_index.tag = "" then V.Null else V.Str r.Doc_index.tag in
  let value =
    match r.Doc_index.kind with
    | Doc_index.Elem -> V.Null
    | _ -> V.Str r.Doc_index.value
  in
  [|
    V.Int id;
    V.Int parent;
    V.Int (Doc_index.kind_code r.Doc_index.kind);
    tag;
    value;
    Encoding.nval_of ~kind:r.Doc_index.kind r.Doc_index.value;
  |]

(* map a fragment-index record to (new id, new parent id) *)
let remap base ~parent (r : Doc_index.record) =
  let id = base + (r.Doc_index.id - 1) in
  let parent_id =
    if r.Doc_index.parent = 0 then parent else base + (r.Doc_index.parent - 1)
  in
  (id, parent_id)

(* --- insertion boundary ---------------------------------------------- *)

type boundary = {
  parent_row : Node_row.t;
  siblings : Node_row.t list;  (* non-attr children, in order *)
  pos : int;
}

let locate state ~parent ~pos =
  let parent_row = fetch_node state parent in
  if parent_row.Node_row.kind <> Doc_index.Elem then
    fail "node %d is not an element" parent;
  let siblings = fetch_children state parent in
  let n = List.length siblings in
  if pos < 1 || pos > n + 1 then
    fail "position %d out of range (parent has %d children)" pos n;
  { parent_row; siblings; pos }

(* --- LOCAL ----------------------------------------------------------- *)

let local_insert state b fragments =
  (* fragments: (index, base id) pairs; one sibling shift makes room for
     the whole forest *)
  let k = List.length fragments in
  let l0 =
    if b.pos <= List.length b.siblings then
      match (List.nth b.siblings (b.pos - 1)).Node_row.ord with
      | Node_row.Ol o -> o
      | _ -> assert false
    else
      match List.rev b.siblings with
      | [] -> 1
      | last :: _ -> (
          match last.Node_row.ord with Node_row.Ol o -> o + 1 | _ -> assert false)
  in
  (if b.pos <= List.length b.siblings then begin
     let shifted =
       renumber state
         (Printf.sprintf
            "UPDATE %s SET l_order = l_order + %d WHERE parent = %d AND \
             l_order >= %d"
            state.tname k b.parent_row.Node_row.id l0)
     in
     state.st <- { state.st with rows_renumbered = state.st.rows_renumbered + shifted }
   end);
  let rows = ref [] in
  List.iteri
    (fun j (fragment_idx, base) ->
      Array.iter
        (fun (r : Doc_index.record) ->
          if r.Doc_index.id = 0 then ()
          else begin
            let id, parent_id = remap base ~parent:b.parent_row.Node_row.id r in
            let l_order =
              if r.Doc_index.parent = 0 then l0 + j else r.Doc_index.pos
            in
            rows :=
              Array.append (common_payload r ~id ~parent:parent_id) [| V.Int l_order |]
              :: !rows
          end)
        (Doc_index.records fragment_idx))
    fragments;
  bulk_insert state (List.rev !rows)

(* --- GLOBAL (dense and gapped) --------------------------------------- *)

(* endpoint ordinals within the fragment: record i of the wrapper document
   gets interval (start, end) from a dense numbering where the wrapper root
   consumed the first start and the last end; ordinals are 0-based *)
let fragment_ordinals fragment_idx =
  let nums = Shred.interval_numbering fragment_idx ~gap:1 in
  Array.map (fun (s, e) -> (s - 2, e - 2)) nums

let global_insert state b fragments ~gapped =
  let sizes = List.map (fun (idx, _) -> fragment_size idx) fragments in
  let total = List.fold_left ( + ) 0 sizes in
  let need = 2 * total in
  (* free window (lo, hi): between the predecessor's last used value and the
     successor's first *)
  let lo =
    if b.pos = 1 then begin
      (* the parent's attribute records sit between the parent's start and
         its first child; the window must begin after them *)
      let attr_end =
        query state
          (Printf.sprintf
             "SELECT MAX(g_end) FROM %s WHERE parent = %d AND kind = 2"
             state.tname b.parent_row.Node_row.id)
      in
      match attr_end with
      | [ [| V.Int m |] ] -> m
      | _ -> (
          match b.parent_row.Node_row.ord with
          | Node_row.Og (o, _) -> o
          | _ -> assert false)
    end
    else
      match (List.nth b.siblings (b.pos - 2)).Node_row.ord with
      | Node_row.Og (_, e) -> e
      | _ -> assert false
  in
  let hi =
    if b.pos <= List.length b.siblings then
      match (List.nth b.siblings (b.pos - 1)).Node_row.ord with
      | Node_row.Og (o, _) -> o
      | _ -> assert false
    else
      match b.parent_row.Node_row.ord with Node_row.Og (_, e) -> e | _ -> assert false
  in
  let assign =
    if gapped && hi - lo > need then begin
      (* place endpoints inside the gap: ordinal i -> lo + (i+1)*(hi-lo)/(need+1) *)
      fun ordinal -> lo + ((ordinal + 1) * (hi - lo) / (need + 1))
    end
    else begin
      (* shift everything at or after [hi] to open a window of [need]
         values; ancestors' ends shift with the same statements. When
         gapped, shift by gap-sized strides to restore headroom. *)
      let stride = if gapped then need * Encoding.default_gap else need in
      let shifted1 =
        renumber state
          (Printf.sprintf "UPDATE %s SET g_order = g_order + %d WHERE g_order >= %d"
             state.tname stride hi)
      in
      let shifted2 =
        renumber state
          (Printf.sprintf "UPDATE %s SET g_end = g_end + %d WHERE g_end >= %d"
             state.tname stride hi)
      in
      state.st <-
        { state.st with rows_renumbered = state.st.rows_renumbered + shifted1 + shifted2 };
      if gapped then
        let step = stride / (need + 1) in
        fun ordinal -> hi - 1 + ((ordinal + 1) * step)
      else fun ordinal -> hi + ordinal
    end
  in
  let offset = ref 0 in
  let rows = ref [] in
  List.iter
    (fun (fragment_idx, base) ->
      let ordinals = fragment_ordinals fragment_idx in
      Array.iter
        (fun (r : Doc_index.record) ->
          if r.Doc_index.id = 0 then ()
          else begin
            let id, parent_id = remap base ~parent:b.parent_row.Node_row.id r in
            let s_ord, e_ord = ordinals.(r.Doc_index.id) in
            rows :=
              Array.append
                (common_payload r ~id ~parent:parent_id)
                [| V.Int (assign (!offset + s_ord)); V.Int (assign (!offset + e_ord)) |]
              :: !rows
          end)
        (Doc_index.records fragment_idx);
      offset := !offset + (2 * fragment_size fragment_idx))
    fragments;
  bulk_insert state (List.rev !rows)

(* --- DEWEY (plain and caret) ------------------------------------------ *)

let parent_dewey (b : boundary) =
  match b.parent_row.Node_row.ord with
  | Node_row.Od p -> Dewey.decode p
  | _ -> assert false

(* move a whole subtree to a new path prefix, one UPDATE per row, like the
   middle tier must (the new prefix is computed outside SQL) *)
let rewrite_subtree_paths state ~old_path ~new_path =
  Obs.Span.with_ "renumber" ~attrs:[ ("op", "rewrite-paths") ] @@ fun () ->
  let old_enc = Dewey.encode old_path in
  let new_enc = Dewey.encode new_path in
  let rows =
    query state
      (Printf.sprintf
         "SELECT e.id, e.path FROM %s e WHERE e.path >= %s AND e.path < %s"
         state.tname
         (V.to_sql_literal (V.Bytes old_enc))
         (V.to_sql_literal (V.Bytes (Dewey.prefix_upper_bound old_enc))))
  in
  let old_len = String.length old_enc in
  (* one parse for the whole loop; values bound per row *)
  let upd =
    Reldb.Db.prepare state.db
      (Printf.sprintf "UPDATE %s SET path = ? WHERE id = ?" state.tname)
  in
  List.iter
    (fun tu ->
      match tu with
      | [| V.Int id; V.Bytes p |] ->
          let rewritten =
            new_enc ^ String.sub p old_len (String.length p - old_len)
          in
          let n =
            match Reldb.Db.Stmt.exec upd [| V.Bytes rewritten; V.Int id |] with
            | Reldb.Db.Affected n -> n
            | Reldb.Db.Rows _ -> 0
          in
          state.st <-
            {
              state.st with
              statements = state.st.statements + 1;
              rows_renumbered = state.st.rows_renumbered + n;
            }
      | _ -> assert false)
    rows

(* insert the fragment rows grafted under [target]. [component_map] adjusts
   the fragment's logical components ([Fun.id] for DEWEY, caretify for
   ORDPATH); [target_depth] is the logical depth of the fragment top. *)
let dewey_graft state b fragment_idx base ~target ~target_depth ~component_map =
  let rows = ref [] in
  Array.iter
    (fun (r : Doc_index.record) ->
      if r.Doc_index.id = 0 then ()
      else begin
        let id, parent_id = remap base ~parent:b.parent_row.Node_row.id r in
        (* fragment record paths are [1; 1; suffix...]: drop the wrapper
           root and the fragment top, graft onto [target] *)
        let frag_path = r.Doc_index.dewey in
        let suffix = Array.sub frag_path 2 (Array.length frag_path - 2) in
        let path = Array.append target (Array.map component_map suffix) in
        let depth = target_depth + Array.length suffix in
        rows :=
          Array.append
            (common_payload r ~id ~parent:parent_id)
            [| V.Int depth; V.Bytes (Dewey.encode path) |]
          :: !rows
      end)
    (Doc_index.records fragment_idx);
  bulk_insert state (List.rev !rows)

let fetch_depth state id =
  match
    query state (Printf.sprintf "SELECT depth FROM %s WHERE id = %d" state.tname id)
  with
  | [ [| V.Int d |] ] -> d
  | _ -> fail "node %d has no depth" id

let dewey_insert state b fragments =
  let k = List.length fragments in
  let parent_path = parent_dewey b in
  let comp_of (r : Node_row.t) = Dewey.last (Node_row.dewey r) in
  let c0 =
    if b.pos <= List.length b.siblings then comp_of (List.nth b.siblings (b.pos - 1))
    else
      match List.rev b.siblings with
      | [] -> 1
      | last :: _ -> comp_of last + 1
  in
  (* shift following siblings by the forest width in one pass (component
     >= c0), last first so the unique path index never sees a collision;
     every row of each sibling subtree gets its path prefix rewritten *)
  let to_shift =
    List.filter (fun s -> comp_of s >= c0) b.siblings |> List.rev
  in
  List.iter
    (fun (s : Node_row.t) ->
      let old_path = Node_row.dewey s in
      rewrite_subtree_paths state ~old_path
        ~new_path:(Dewey.with_last old_path (Dewey.last old_path + k)))
    to_shift;
  List.iteri
    (fun j (fragment_idx, base) ->
      let target = Dewey.child parent_path (c0 + j) in
      dewey_graft state b fragment_idx base ~target
        ~target_depth:(Dewey.depth target) ~component_map:Fun.id)
    fragments

(* --- ORDPATH-style caret allocation ------------------------------------ *)

(* Component vectors relative to the parent path. ORDPATH invariants:

   - real node labels always terminate in an ODD component (children are
     loaded at odd components); the attribute level is 0;
   - an insertion whose sibling gap holds no free integer claims the EVEN
     value between the neighbors and extends it ("caret"), e.g. between
     [3] and [5] the new label is [4; 5];
   - carets therefore extend only even-ended proper prefixes, never a full
     node label — so "path extends node X's path" still means "attribute or
     descendant of X", which is what the SQL prefix ranges rely on.

   Raises [No_slot] when a zone is exhausted towards the front (full
   ORDPATH escapes with negative components; the unsigned codec cannot, so
   the caller falls back to a renumbering that restores headroom). *)
exception No_slot

(* first label inside a freshly opened caret zone: odd, with room for
   ~32k further insertions on either side before the zone is exhausted *)
let caret_zone_start = 65537

let rec caret_between lo hi =
  let lo = match lo with Some [] -> None | x -> x in
  match (lo, hi) with
  | _, Some [] -> raise No_slot
  | Some [], _ -> assert false (* normalized to None above *)
  | None, None ->
      (* empty parent: first child *)
      [ 3 ]
  | Some (l0 :: _), None ->
      (* append: next odd above the last head *)
      [ (if l0 mod 2 = 0 then l0 + 1 else l0 + 2) ]
  | None, Some (h0 :: ht) ->
      (* prepend: the largest odd below h0, if any *)
      let c = if (h0 - 1) mod 2 = 1 then h0 - 1 else h0 - 2 in
      if c >= 1 then [ c ]
      else if h0 mod 2 = 0 && ht <> [] then
        (* hi is a caret zone: slot in below its tail *)
        h0 :: caret_between None (Some ht)
      else raise No_slot
  | Some (l0 :: lt), Some (h0 :: ht) ->
      if h0 - l0 >= 2 then begin
        (* room at this level: prefer an odd label, else open a caret with
           enough headroom that a hotspot amortizes *)
        let c = if (l0 + 1) mod 2 = 1 then l0 + 1 else l0 + 2 in
        if c < h0 then [ c ] else [ l0 + 1; caret_zone_start ]
      end
      else if h0 = l0 then begin
        (* shared head: only caret heads can be shared by two labels *)
        if l0 mod 2 = 1 || l0 = 0 then raise No_slot
        else
          l0
          :: caret_between (if lt = [] then None else Some lt) (Some ht)
      end
      else begin
        (* adjacent heads: extend whichever side is a caret zone *)
        if l0 mod 2 = 0 then
          l0 :: caret_between (if lt = [] then None else Some lt) None
        else (* h0 = l0 + 1 is even *)
          h0 :: caret_between None (Some ht)
      end

let suffix_of parent_len (r : Node_row.t) =
  let p = Node_row.dewey r in
  Array.to_list (Array.sub p parent_len (Array.length p - parent_len))

(* renumbering fallback: repack positions [pos..] with fresh odd heads and
   generous headroom below (so front insertions amortize), going through a
   temporary zone so the unique path index never collides *)
let caret_prepend_headroom = 64

let caret_renumber state b ~parent_path ~lo_head =
  let parent_len = Array.length parent_path in
  let moved = List.filteri (fun i _ -> i >= b.pos - 1) b.siblings in
  let heads = List.map (fun s -> List.hd (suffix_of parent_len s)) b.siblings in
  let max_head = List.fold_left max 0 heads in
  let target_head =
    let t = lo_head + caret_prepend_headroom in
    if t mod 2 = 0 then t + 1 else t
  in
  let final_heads = List.mapi (fun i _ -> target_head + (2 * (i + 1))) moved in
  let tmp_base =
    let top = max max_head (List.fold_left max target_head final_heads) in
    top + 2
  in
  (* phase 1: everything up into the free zone above all heads *)
  List.iteri
    (fun i (s : Node_row.t) ->
      let old_path = Node_row.dewey s in
      rewrite_subtree_paths state ~old_path
        ~new_path:(Array.append parent_path [| tmp_base + (2 * i) |]))
    moved;
  (* phase 2: down to the final dense odd heads *)
  List.iteri
    (fun i final ->
      let tmp = Array.append parent_path [| tmp_base + (2 * i) |] in
      rewrite_subtree_paths state ~old_path:tmp
        ~new_path:(Array.append parent_path [| final |]))
    final_heads;
  target_head

let caret_insert state b fragments =
  let parent_path = parent_dewey b in
  let parent_len = Array.length parent_path in
  let lo0 =
    if b.pos = 1 then None
    else Some (suffix_of parent_len (List.nth b.siblings (b.pos - 2)))
  in
  let hi =
    if b.pos <= List.length b.siblings then
      Some (suffix_of parent_len (List.nth b.siblings (b.pos - 1)))
    else None
  in
  let target_depth = fetch_depth state b.parent_row.Node_row.id + 1 in
  (* allocate slots one after another, each bounded below by the previous
     allocation; careting never renumbers except on zone exhaustion *)
  let lo = ref lo0 in
  List.iter
    (fun (fragment_idx, base) ->
      let rel =
        try caret_between !lo hi
        with No_slot ->
          let lo_head = match !lo with Some (l0 :: _) -> l0 | _ -> 0 in
          [ caret_renumber state b ~parent_path ~lo_head ]
      in
      lo := Some rel;
      let target = Array.append parent_path (Array.of_list rel) in
      dewey_graft state b fragment_idx base ~target ~target_depth
        ~component_map:(fun c -> if c = 0 then 0 else (2 * c) + 1))
    fragments

(* --- public API -------------------------------------------------------- *)

let insert_forest db ~doc enc ~parent ~pos fragments =
  if fragments = [] then invalid_arg "Update.insert_forest: empty forest";
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let b = locate state ~parent ~pos in
  let base0 = max_id state + 1 in
  let _, with_bases =
    List.fold_left
      (fun (base, acc) fragment ->
        let idx = fragment_index fragment in
        (base + fragment_size idx, (idx, base) :: acc))
      (base0, []) fragments
  in
  let with_bases = List.rev with_bases in
  (match enc with
  | Encoding.Local -> local_insert state b with_bases
  | Encoding.Global -> global_insert state b with_bases ~gapped:false
  | Encoding.Global_gap -> global_insert state b with_bases ~gapped:true
  | Encoding.Dewey_enc -> dewey_insert state b with_bases
  | Encoding.Dewey_caret -> caret_insert state b with_bases);
  state.st

let insert_subtree db ~doc enc ~parent ~pos fragment =
  insert_forest db ~doc enc ~parent ~pos [ fragment ]

let append_child db ~doc enc ~parent fragment =
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let n = List.length (fetch_children state parent) in
  insert_subtree db ~doc enc ~parent ~pos:(n + 1) fragment

let delete_subtree db ~doc enc ~id =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  if row.Node_row.kind = Doc_index.Attr then fail "cannot delete an attribute subtree";
  if row.Node_row.parent = None then fail "cannot delete the document root";
  let deleted =
    match (enc, row.Node_row.ord) with
    | (Encoding.Global | Encoding.Global_gap), Node_row.Og (o, e) ->
        exec state
          (Printf.sprintf "DELETE FROM %s WHERE g_order >= %d AND g_order <= %d"
             state.tname o e)
    | (Encoding.Dewey_enc | Encoding.Dewey_caret), Node_row.Od p ->
        exec state
          (Printf.sprintf "DELETE FROM %s WHERE path >= %s AND path < %s"
             state.tname
             (V.to_sql_literal (V.Bytes p))
             (V.to_sql_literal (V.Bytes (Dewey.prefix_upper_bound p))))
    | Encoding.Local, Node_row.Ol l0 ->
        (* collect the subtree breadth-first, delete, then close the
           sibling gap *)
        let rows =
          Reconstruct.fetch_subtree_rows db ~doc enc ~root:row
        in
        let del =
          Reldb.Db.prepare state.db
            (Printf.sprintf "DELETE FROM %s WHERE id = ?" state.tname)
        in
        let n =
          List.fold_left
            (fun acc (r : Node_row.t) ->
              state.st <- { state.st with statements = state.st.statements + 1 };
              acc
              + (match Reldb.Db.Stmt.exec del [| V.Int r.Node_row.id |] with
                | Reldb.Db.Affected n -> n
                | Reldb.Db.Rows _ -> 0))
            0 rows
        in
        let parent = Option.get row.Node_row.parent in
        let shifted =
          renumber state
            (Printf.sprintf
               "UPDATE %s SET l_order = l_order - 1 WHERE parent = %d AND \
                l_order > %d"
               state.tname parent l0)
        in
        state.st <-
          { state.st with rows_renumbered = state.st.rows_renumbered + shifted };
        n
    | _ -> assert false
  in
  { state.st with rows_deleted = deleted }

let move_subtree db ~doc enc ~id ~parent ~pos =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  if row.Node_row.kind = Doc_index.Attr then fail "cannot move an attribute";
  if row.Node_row.parent = None then fail "cannot move the document root";
  (* the destination must not be inside the moved subtree *)
  let subtree_rows = Reconstruct.fetch_subtree_rows db ~doc enc ~root:row in
  if List.exists (fun (r : Node_row.t) -> r.Node_row.id = parent) subtree_rows
  then fail "cannot move node %d under its own descendant %d" id parent;
  let fragment = Reconstruct.subtree db ~doc enc ~id in
  let st1 = delete_subtree db ~doc enc ~id in
  let st2 = insert_subtree db ~doc enc ~parent ~pos fragment in
  {
    rows_inserted = st1.rows_inserted + st2.rows_inserted;
    rows_deleted = st1.rows_deleted + st2.rows_deleted;
    rows_renumbered = st1.rows_renumbered + st2.rows_renumbered;
    statements = st1.statements + st2.statements;
  }

(* attribute rows of an element, in attribute order *)
let fetch_attrs state id =
  let order_col =
    match state.enc with
    | Encoding.Global | Encoding.Global_gap -> "e.g_order"
    | Encoding.Local -> "e.l_order"
    | Encoding.Dewey_enc | Encoding.Dewey_caret -> "e.path"
  in
  let sql =
    Printf.sprintf
      "SELECT %s FROM %s e WHERE e.parent = %d AND e.kind = 2 ORDER BY %s"
      (Node_row.select_list state.enc "e") state.tname id order_col
  in
  List.map (Node_row.of_tuple state.enc) (query state sql)

let set_attribute db ~doc enc ~id ~name ~value =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  if row.Node_row.kind <> Doc_index.Elem then fail "node %d is not an element" id;
  let attrs = fetch_attrs state id in
  match
    List.find_opt (fun (a : Node_row.t) -> a.Node_row.tag = name) attrs
  with
  | Some existing ->
      (* overwrite in place: order untouched *)
      let n =
        exec state
          (Printf.sprintf "UPDATE %s SET value = %s WHERE id = %d" state.tname
             (V.to_sql_literal (V.Str value))
             existing.Node_row.id)
      in
      { state.st with rows_renumbered = n }
  | None -> begin
      let new_id = max_id state + 1 in

      let payload =
        [|
          V.Int new_id; V.Int id; V.Int (Doc_index.kind_code Doc_index.Attr);
          V.Str name; V.Str value;
          Encoding.nval_of ~kind:Doc_index.Attr value;
        |]
      in
      (match enc with
      | Encoding.Local ->
          (* keep ranks dense at -m..-1: shift the old ones down *)
          let shifted =
            renumber state
              (Printf.sprintf
                 "UPDATE %s SET l_order = l_order - 1 WHERE parent = %d AND \
                  kind = 2"
                 state.tname id)
          in
          state.st <-
            { state.st with rows_renumbered = state.st.rows_renumbered + shifted };
          insert_row state (Array.append payload [| V.Int (-1) |])
      | Encoding.Global | Encoding.Global_gap ->
          (* open two interval values right after the last attribute *)
          let hi =
            (* first value after the attribute zone: first child start, or
               the parent's end *)
            match fetch_children state id with
            | first :: _ -> (
                match first.Node_row.ord with Node_row.Og (o, _) -> o | _ -> 0)
            | [] -> (
                match row.Node_row.ord with Node_row.Og (_, e) -> e | _ -> 0)
          in
          let shifted1 =
            renumber state
              (Printf.sprintf
                 "UPDATE %s SET g_order = g_order + 2 WHERE g_order >= %d"
                 state.tname hi)
          in
          let shifted2 =
            renumber state
              (Printf.sprintf "UPDATE %s SET g_end = g_end + 2 WHERE g_end >= %d"
                 state.tname hi)
          in
          state.st <-
            {
              state.st with
              rows_renumbered = state.st.rows_renumbered + shifted1 + shifted2;
            };
          insert_row state (Array.append payload [| V.Int hi; V.Int (hi + 1) |])
      | Encoding.Dewey_enc | Encoding.Dewey_caret ->
          let parent_path =
            match row.Node_row.ord with
            | Node_row.Od p -> Dewey.decode p
            | _ -> assert false
          in
          let next_j =
            match List.rev attrs with
            | [] -> 1
            | last :: _ -> Dewey.last (Node_row.dewey last) + 1
          in
          let path =
            Array.append parent_path [| 0; next_j |]
          in
          let depth = fetch_depth state id + 2 in
          insert_row state
            (Array.append payload [| V.Int depth; V.Bytes (Dewey.encode path) |]));
      state.st
    end

let remove_attribute db ~doc enc ~id ~name =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  if row.Node_row.kind <> Doc_index.Elem then fail "node %d is not an element" id;
  match
    List.find_opt
      (fun (a : Node_row.t) -> a.Node_row.tag = name)
      (fetch_attrs state id)
  with
  | None -> state.st
  | Some victim ->
      let deleted =
        exec state
          (Printf.sprintf "DELETE FROM %s WHERE id = %d" state.tname
             victim.Node_row.id)
      in
      (* LOCAL keeps attribute ranks dense at -m..-1 *)
      (match (enc, victim.Node_row.ord) with
      | Encoding.Local, Node_row.Ol pos ->
          let shifted =
            renumber state
              (Printf.sprintf
                 "UPDATE %s SET l_order = l_order + 1 WHERE parent = %d AND \
                  kind = 2 AND l_order < %d"
                 state.tname id pos)
          in
          state.st <-
            { state.st with rows_renumbered = state.st.rows_renumbered + shifted }
      | _ -> ());
      { state.st with rows_deleted = deleted }

let replace_subtree db ~doc enc ~id fragment =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  if row.Node_row.kind = Doc_index.Attr then fail "cannot replace an attribute";
  let parent =
    match row.Node_row.parent with
    | Some p -> p
    | None -> fail "cannot replace the document root"
  in
  (* position among the parent's non-attribute children *)
  let siblings = fetch_children state parent in
  let pos =
    match
      List.find_index (fun (s : Node_row.t) -> s.Node_row.id = id) siblings
    with
    | Some i -> i + 1
    | None -> fail "node %d not found among its parent's children" id
  in
  let st1 = delete_subtree db ~doc enc ~id in
  let st2 = insert_subtree db ~doc enc ~parent ~pos fragment in
  {
    rows_inserted = st1.rows_inserted + st2.rows_inserted;
    rows_deleted = st1.rows_deleted + st2.rows_deleted;
    rows_renumbered = st1.rows_renumbered + st2.rows_renumbered;
    statements = st1.statements + st2.statements;
  }

let set_text db ~doc enc ~id value =
  transactionally db @@ fun () ->
  let state = { db; enc; tname = Encoding.table_name ~doc enc; st = zero } in
  let row = fetch_node state id in
  (match row.Node_row.kind with
  | Doc_index.Text_node | Doc_index.Attr | Doc_index.Comment_node
  | Doc_index.Pi_node ->
      ()
  | Doc_index.Elem -> fail "set_text on an element (id %d)" id);
  let nval =
    match float_of_string_opt (String.trim value) with
    | Some f when Float.is_finite f -> V.to_sql_literal (V.Float f)
    | Some _ | None -> "NULL"
  in
  let n =
    exec state
      (Printf.sprintf "UPDATE %s SET value = %s, nval = %s WHERE id = %d"
         state.tname
         (V.to_sql_literal (V.Str value))
         nval id)
  in
  { state.st with rows_renumbered = n }
