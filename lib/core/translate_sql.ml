module A = Xpath_ast
module V = Reldb.Value

exception Not_single_statement of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_single_statement s)) fmt

let is_global = function
  | Encoding.Global | Encoding.Global_gap -> true
  | Encoding.Local | Encoding.Dewey_enc | Encoding.Dewey_caret -> false

(* ------------------------------------------------------------------ *)
(* Fragment checks                                                     *)
(* ------------------------------------------------------------------ *)

let axis_supported enc (axis : A.axis) =
  match axis with
  | A.Child | A.Attribute | A.Parent | A.Self | A.Following_sibling
  | A.Preceding_sibling ->
      true
  | A.Descendant | A.Descendant_or_self | A.Following | A.Preceding
  | A.Ancestor | A.Ancestor_or_self ->
      (* only interval numbering makes these closed-form in one statement —
         the expressiveness edge the paper credits to global order *)
      is_global enc

let rec pred_supported enc (p : A.predicate) =
  match p with
  | A.P_exists path | A.P_cmp (path, _, _) ->
      List.for_all
        (fun (s : A.step) ->
          axis_supported enc s.A.axis && List.for_all (pred_supported enc) s.A.preds)
        path.A.steps
  | A.P_and (a, b) -> pred_supported enc a && pred_supported enc b
  | A.P_pos _ | A.P_last | A.P_or _ | A.P_not _ | A.P_count _ -> false

let step_supported enc (s : A.step) =
  axis_supported enc s.A.axis && List.for_all (pred_supported enc) s.A.preds

let eligible enc (path : A.path) =
  (match path.A.steps with
  | { A.axis = A.Child | A.Descendant | A.Descendant_or_self; _ } :: _ -> true
  | _ -> false)
  && List.for_all (step_supported enc) path.A.steps

(* ------------------------------------------------------------------ *)
(* SQL generation                                                      *)
(* ------------------------------------------------------------------ *)

type gen = {
  enc : Encoding.t;
  tname : string;
  mutable aliases : string list;  (* reversed *)
  mutable conds : string list;  (* reversed *)
  mutable count : int;
}

let new_alias g =
  let a = Printf.sprintf "s%d" g.count in
  g.count <- g.count + 1;
  g.aliases <- a :: g.aliases;
  a

let add g cond = g.conds <- cond :: g.conds

let test_cond axis alias (test : A.node_test) =
  match (axis, test) with
  | A.Attribute, A.Name n ->
      Printf.sprintf "%s.kind = 2 AND %s.tag = %s" alias alias
        (V.to_sql_literal (V.Str n))
  | A.Attribute, (A.Any_name | A.Node_test) -> Printf.sprintf "%s.kind = 2" alias
  | A.Attribute, (A.Text_test | A.Comment_test) ->
      Printf.sprintf "%s.kind = 9" alias (* empty *)
  | _, A.Name n ->
      Printf.sprintf "%s.kind = 0 AND %s.tag = %s" alias alias
        (V.to_sql_literal (V.Str n))
  | _, A.Any_name -> Printf.sprintf "%s.kind = 0" alias
  | _, A.Text_test -> Printf.sprintf "%s.kind = 1" alias
  | _, A.Comment_test -> Printf.sprintf "%s.kind = 3" alias
  | _, A.Node_test -> Printf.sprintf "%s.kind <> 2" alias

(* join condition between the previous step's alias and the new one *)
let axis_join g ~prev alias (axis : A.axis) =
  let glob fmt = Printf.ksprintf (fun s -> add g s) fmt in
  match axis with
  | A.Child -> glob "%s.parent = %s.id AND %s.kind <> 2" alias prev alias
  | A.Attribute -> glob "%s.parent = %s.id" alias prev
  | A.Parent -> glob "%s.id = %s.parent" alias prev
  | A.Following_sibling -> begin
      (* attribute nodes have no siblings: the context must be a non-attr *)
      glob "%s.parent = %s.parent AND %s.kind <> 2 AND %s.kind <> 2" alias prev
        alias prev;
      match g.enc with
      | Encoding.Global | Encoding.Global_gap ->
          glob "%s.g_order > %s.g_order" alias prev
      | Encoding.Local -> glob "%s.l_order > %s.l_order" alias prev
      | Encoding.Dewey_enc | Encoding.Dewey_caret ->
          glob "%s.path > %s.path" alias prev
    end
  | A.Preceding_sibling -> begin
      glob "%s.parent = %s.parent AND %s.kind <> 2 AND %s.kind <> 2" alias prev
        alias prev;
      match g.enc with
      | Encoding.Global | Encoding.Global_gap ->
          glob "%s.g_order < %s.g_order" alias prev
      | Encoding.Local -> glob "%s.l_order < %s.l_order AND %s.l_order > 0" alias prev alias
      | Encoding.Dewey_enc | Encoding.Dewey_caret ->
          glob "%s.path < %s.path" alias prev
    end
  | A.Descendant ->
      glob "%s.g_order > %s.g_order AND %s.g_order < %s.g_end AND %s.kind <> 2"
        alias prev alias prev alias
  | A.Descendant_or_self ->
      glob "%s.g_order >= %s.g_order AND %s.g_order < %s.g_end AND %s.kind <> 2"
        alias prev alias prev alias
  | A.Following -> glob "%s.g_order > %s.g_end AND %s.kind <> 2" alias prev alias
  | A.Preceding -> glob "%s.g_end < %s.g_order AND %s.kind <> 2" alias prev alias
  | A.Ancestor -> glob "%s.g_order < %s.g_order AND %s.g_end > %s.g_end" alias prev alias prev
  | A.Ancestor_or_self ->
      glob "%s.g_order <= %s.g_order AND %s.g_end >= %s.g_end" alias prev alias prev
  | A.Self -> assert false (* handled by the caller without a new alias *)

let number_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let cmp_sql = function
  | A.Eq -> "="
  | A.Ne -> "<>"
  | A.Lt -> "<"
  | A.Le -> "<="
  | A.Gt -> ">"
  | A.Ge -> ">="

(* one step: returns the alias holding the step's result *)
let rec gen_step g ~prev (step : A.step) =
  let alias =
    match step.A.axis with
    | A.Self ->
        (* no new alias: just a test on the previous one *)
        add g (test_cond A.Child prev step.A.test);
        prev
    | axis ->
        let a = new_alias g in
        axis_join g ~prev a axis;
        add g (test_cond axis a step.A.test);
        a
  in
  List.iter (gen_pred g ~ctx:alias) step.A.preds;
  alias

and gen_pred g ~ctx (p : A.predicate) =
  match p with
  | A.P_and (a, b) ->
      gen_pred g ~ctx a;
      gen_pred g ~ctx b
  | A.P_exists path -> ignore (gen_rel g ~ctx path)
  | A.P_cmp (path, op, lit) -> begin
      let target = gen_rel g ~ctx path in
      (* an element target compares via its text children (same data-centric
         string-value convention as the step-at-a-time translator) *)
      let selects_elements =
        match List.rev path.A.steps with
        | last :: _ -> (
            match (last.A.axis, last.A.test) with
            | A.Attribute, _ -> false
            | _, (A.Name _ | A.Any_name) -> true
            | _, A.Node_test -> true (* conservatively route through text() *)
            | _, (A.Text_test | A.Comment_test) -> false)
        | [] -> true
      in
      let value_alias =
        if selects_elements then
          gen_rel g ~ctx:target
            { A.absolute = false;
              steps = [ { A.axis = A.Child; test = A.Text_test; preds = [] } ] }
        else target
      in
      match lit with
      | A.L_num f ->
          add g (Printf.sprintf "%s.nval %s %s" value_alias (cmp_sql op)
                   (V.to_sql_literal (V.Float f)))
      | A.L_str s -> (
          match op with
          | A.Eq | A.Ne ->
              add g (Printf.sprintf "%s.value %s %s" value_alias (cmp_sql op)
                       (V.to_sql_literal (V.Str s)))
          | A.Lt | A.Le | A.Gt | A.Ge ->
              let f = number_of_string s in
              if Float.is_nan f then add g "1 = 0"
              else
                add g (Printf.sprintf "%s.nval %s %s" value_alias (cmp_sql op)
                         (V.to_sql_literal (V.Float f))))
    end
  | A.P_pos _ | A.P_last | A.P_or _ | A.P_not _ | A.P_count _ ->
      fail "positional, disjunctive or counting predicates need the \
            step-at-a-time mode"

and gen_rel g ~ctx (path : A.path) =
  List.fold_left (fun prev step -> gen_step g ~prev step) ctx path.A.steps

(* ------------------------------------------------------------------ *)
(* Fragment metadata                                                   *)
(* ------------------------------------------------------------------ *)

type fragment_meta = {
  fm_encoding : Encoding.t;
  fm_table : string;
  fm_result_alias : string;
  fm_aliases : string list;
  fm_ordered : bool;
  fm_order_column : string option;
  fm_axes : A.axis list;
}

let rec axes_of_pred (p : A.predicate) acc =
  match p with
  | A.P_exists path | A.P_cmp (path, _, _) -> axes_of_path path acc
  | A.P_count (path, _, _) -> axes_of_path path acc
  | A.P_and (a, b) | A.P_or (a, b) -> axes_of_pred a (axes_of_pred b acc)
  | A.P_not a -> axes_of_pred a acc
  | A.P_pos _ | A.P_last -> acc

and axes_of_path (path : A.path) acc =
  List.fold_left
    (fun acc (s : A.step) ->
      List.fold_left
        (fun acc p -> axes_of_pred p acc)
        (s.A.axis :: acc) s.A.preds)
    acc path.A.steps

let path_axes path = List.sort_uniq compare (axes_of_path path [])

let translate_meta ?(unique = false) ~doc enc (path : A.path) =
  if not (eligible enc path) then
    fail
      "path is outside the single-statement fragment for the %s encoding"
      (Encoding.name enc);
  let g = { enc; tname = Encoding.table_name ~doc enc; aliases = []; conds = []; count = 0 } in
  (* first step chains off the (virtual) document root *)
  let first, rest =
    match path.A.steps with s :: r -> (s, r) | [] -> assert false
  in
  let first_alias =
    match first.A.axis with
    | A.Child ->
        let a = new_alias g in
        add g (Printf.sprintf "%s.parent IS NULL" a);
        add g (test_cond A.Child a first.A.test);
        a
    | A.Descendant | A.Descendant_or_self ->
        let a = new_alias g in
        add g (Printf.sprintf "%s.kind <> 2" a);
        add g (test_cond A.Child a first.A.test);
        a
    | _ -> fail "an absolute path must start with child or descendant"
  in
  List.iter (gen_pred g ~ctx:first_alias) first.A.preds;
  let result = List.fold_left (fun prev step -> gen_step g ~prev step) first_alias rest in
  let from =
    String.concat ", "
      (List.rev_map (fun a -> Printf.sprintf "%s %s" g.tname a) g.aliases)
  in
  let where = String.concat " AND " (List.rev g.conds) in
  let order_column =
    match enc with
    | Encoding.Global | Encoding.Global_gap -> Some "g_order"
    | Encoding.Dewey_enc | Encoding.Dewey_caret -> Some "path"
    | Encoding.Local -> None
  in
  let order =
    match order_column with
    | Some col -> Printf.sprintf " ORDER BY %s.%s" result col
    | None -> ""
  in
  (* a single alias is one pass over the base table — no self-join, so no
     duplicates to eliminate; [unique] is the schema analysis vouching that
     each result row is reached exactly once, so dedup can be skipped *)
  let distinct =
    if unique || List.length g.aliases <= 1 then "" else "DISTINCT "
  in
  let sql =
    Printf.sprintf "SELECT %s%s FROM %s WHERE %s%s" distinct
      (Node_row.select_list enc result)
      from where order
  in
  let meta =
    {
      fm_encoding = enc;
      fm_table = g.tname;
      fm_result_alias = result;
      fm_aliases = List.rev g.aliases;
      fm_ordered = order_column <> None;
      fm_order_column = order_column;
      fm_axes = path_axes path;
    }
  in
  (sql, meta)

let translate ?unique ~doc enc path = fst (translate_meta ?unique ~doc enc path)

let eval ?unique db ~doc enc (path : A.path) =
  let sql = translate ?unique ~doc enc path in
  let rows = List.map (Node_row.of_tuple enc) (Reldb.Db.query db sql) in
  match enc with
  | Encoding.Local ->
      (* no document order in the relation: the middle tier must sort,
         paying the parent-chain fetches — the paper's LOCAL caveat *)
      let sorted, extra = Translate.sort_document_order db ~doc enc rows in
      { Translate.rows = sorted; statements = 1 + extra; sql_log = [ sql ] }
  | _ -> { Translate.rows; statements = 1; sql_log = [ sql ] }
