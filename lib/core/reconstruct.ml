module T = Xmllib.Types
module V = Reldb.Value

let fetch_row db ~doc enc ~id =
  let tname = Encoding.table_name ~doc enc in
  let sql =
    Printf.sprintf "SELECT %s FROM %s e WHERE e.id = %d"
      (Node_row.select_list enc "e") tname id
  in
  match Reldb.Db.query_one db sql with
  | Some tu -> Node_row.of_tuple enc tu
  | None -> raise Not_found

let root_id db ~doc enc =
  let tname = Encoding.table_name ~doc enc in
  let sql =
    Printf.sprintf "SELECT %s FROM %s e WHERE e.parent IS NULL"
      (Node_row.select_list enc "e") tname
  in
  match Reldb.Db.query_one db sql with
  | Some tu -> (Node_row.of_tuple enc tu).Node_row.id
  | None -> raise Not_found

let fetch_subtree_rows db ~doc enc ~root =
  let tname = Encoding.table_name ~doc enc in
  let rows sql = List.map (Node_row.of_tuple enc) (Reldb.Db.query db sql) in
  match (enc, root.Node_row.ord) with
  | (Encoding.Global | Encoding.Global_gap), Node_row.Og (o, e) ->
      rows
        (Printf.sprintf
           "SELECT %s FROM %s e WHERE e.g_order >= %d AND e.g_order <= %d \
            ORDER BY e.g_order"
           (Node_row.select_list enc "e") tname o e)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), Node_row.Od p ->
      let ub = Dewey.prefix_upper_bound p in
      rows
        (Printf.sprintf
           "SELECT %s FROM %s e WHERE e.path >= %s AND e.path < %s ORDER BY \
            e.path"
           (Node_row.select_list enc "e") tname
           (V.to_sql_literal (V.Bytes p))
           (V.to_sql_literal (V.Bytes ub)))
  | Encoding.Local, _ ->
      (* breadth-first: one SQL statement per level *)
      let acc = ref [ root ] in
      let frontier = ref [ root ] in
      while !frontier <> [] do
        let level =
          if List.length !frontier <= 4 then
            List.concat_map
              (fun (r : Node_row.t) ->
                rows
                  (Printf.sprintf "SELECT %s FROM %s e WHERE e.parent = %d"
                     (Node_row.select_list enc "e") tname r.Node_row.id))
              !frontier
          else
            let ctx_rows =
              List.map (fun r -> [| V.Int r.Node_row.id |]) !frontier
            in
            Temp.with_ctx db ~cols:[ ("id", V.Tint) ] ~rows:ctx_rows (fun ctx ->
                rows
                  (Printf.sprintf
                     "SELECT %s FROM %s e, %s c WHERE e.parent = c.id"
                     (Node_row.select_list enc "e") tname ctx))
        in
        acc := !acc @ level;
        frontier := level
      done;
      !acc
  | (Encoding.Global | Encoding.Global_gap | Encoding.Dewey_enc | Encoding.Dewey_caret), _ ->
      invalid_arg "Reconstruct.fetch_subtree_rows: row/encoding mismatch"

let assemble rows ~root_id:rid =
  (* children grouped by parent and sorted by the encoding's order value;
     attributes (kind 2) have negative LOCAL ranks / 0-level Dewey paths /
     early global intervals, so the same sort puts them first *)
  let by_parent : (int, Node_row.t list ref) Hashtbl.t = Hashtbl.create 256 in
  let by_id : (int, Node_row.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Node_row.t) ->
      Hashtbl.replace by_id r.Node_row.id r;
      match r.Node_row.parent with
      | Some p when r.Node_row.id <> rid ->
          let cell =
            match Hashtbl.find_opt by_parent p with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add by_parent p c;
                c
          in
          cell := r :: !cell
      | _ -> ())
    rows;
  let children_of id =
    match Hashtbl.find_opt by_parent id with
    | None -> []
    | Some c -> List.sort Node_row.compare_ord !c
  in
  let rec build (r : Node_row.t) =
    match r.Node_row.kind with
    | Doc_index.Text_node -> T.Text r.Node_row.value
    | Doc_index.Comment_node -> T.Comment r.Node_row.value
    | Doc_index.Pi_node -> T.Pi { target = r.Node_row.tag; data = r.Node_row.value }
    | Doc_index.Attr -> invalid_arg "Reconstruct: attribute outside element"
    | Doc_index.Elem ->
        let kids = children_of r.Node_row.id in
        let attrs, others =
          List.partition (fun (k : Node_row.t) -> k.Node_row.kind = Doc_index.Attr) kids
        in
        T.Element
          {
            T.tag = r.Node_row.tag;
            attrs =
              List.map
                (fun (a : Node_row.t) ->
                  { T.attr_name = a.Node_row.tag; attr_value = a.Node_row.value })
                attrs;
            children = List.map build others;
          }
  in
  match Hashtbl.find_opt by_id rid with
  | None -> raise Not_found
  | Some root -> build root

let subtree db ~doc enc ~id =
  let root = fetch_row db ~doc enc ~id in
  if root.Node_row.kind = Doc_index.Attr then
    invalid_arg "Reconstruct.subtree: attribute node";
  let rows = fetch_subtree_rows db ~doc enc ~root in
  assemble rows ~root_id:id

(* Single-pass serialization from document-ordered rows: a stack of open
   elements, closed when the next row's parent chain no longer includes
   them. Attribute rows arrive between their element and its first child,
   while the start tag is still open. *)
let serialize_rows buf rows =
  (* stack: (id, tag, still_open) where still_open = '>' not yet emitted *)
  let stack : (int * string * bool ref) list ref = ref [] in
  let close_tag () =
    match !stack with
    | (_, _, ({ contents = true } as pending)) :: _ ->
        Buffer.add_char buf '>';
        pending := false
    | _ -> ()
  in
  let pop () =
    match !stack with
    | (_, tag, pending) :: rest ->
        if !pending then Buffer.add_string buf "/>"
        else begin
          Buffer.add_string buf "</";
          Buffer.add_string buf tag;
          Buffer.add_char buf '>'
        end;
        stack := rest
    | [] -> ()
  in
  let rec unwind_to parent =
    match !stack with
    | (id, _, _) :: _ when Some id <> parent -> begin
        pop ();
        match !stack with [] -> () | _ -> unwind_to parent
      end
    | _ -> ()
  in
  List.iter
    (fun (r : Node_row.t) ->
      match r.Node_row.kind with
      | Doc_index.Attr ->
          (* belongs to the still-open element on top of the stack *)
          Buffer.add_char buf ' ';
          Buffer.add_string buf r.Node_row.tag;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (Xmllib.Printer.escape_attr r.Node_row.value);
          Buffer.add_char buf '"'
      | kind ->
          unwind_to r.Node_row.parent;
          close_tag ();
          (match kind with
          | Doc_index.Elem ->
              Buffer.add_char buf '<';
              Buffer.add_string buf r.Node_row.tag;
              stack := (r.Node_row.id, r.Node_row.tag, ref true) :: !stack
          | Doc_index.Text_node ->
              Buffer.add_string buf (Xmllib.Printer.escape_text r.Node_row.value)
          | Doc_index.Comment_node ->
              Xmllib.Printer.add_comment buf r.Node_row.value
          | Doc_index.Pi_node ->
              Xmllib.Printer.add_pi buf ~target:r.Node_row.tag
                ~data:r.Node_row.value
          | Doc_index.Attr -> assert false))
    rows;
  while !stack <> [] do
    pop ()
  done

let serialize_subtree db ~doc enc ~id =
  let root = fetch_row db ~doc enc ~id in
  if root.Node_row.kind = Doc_index.Attr then
    invalid_arg "Reconstruct.serialize_subtree: attribute node";
  let rows = fetch_subtree_rows db ~doc enc ~root in
  let rows =
    match enc with
    | Encoding.Local -> fst (Translate.sort_document_order db ~doc enc rows)
    | _ -> rows
  in
  (* rebase: the subtree root must behave like a top-level node *)
  let buf = Buffer.create 1024 in
  serialize_rows buf rows;
  Buffer.contents buf

let document db ~doc enc =
  let rid = root_id db ~doc enc in
  match subtree db ~doc enc ~id:rid with
  | T.Element root -> { T.decl = false; root }
  | T.Text _ | T.Comment _ | T.Pi _ -> assert false
