let counter = ref 0

(* Context tables are created and dropped through the catalog directly, not
   via SQL DDL: they are private scratch space, and going around [Db.exec]
   lets a context live inside an open transaction (the table exists only
   within the bracket, so journaling never sees it). *)
let with_ctx db ~cols ~rows f =
  incr counter;
  let name = Printf.sprintf "ctx_%d" !counter in
  let cat = Reldb.Db.catalog db in
  let schema =
    Array.of_list
      (List.map (fun (n, ty) -> Reldb.Schema.column ~nullable:true n ty) cols)
  in
  let table = Reldb.Catalog.create_table cat name schema in
  List.iter (fun row -> ignore (Reldb.Table.insert table row)) rows;
  Fun.protect
    ~finally:(fun () -> Reldb.Catalog.drop_table cat name)
    (fun () -> f name)
