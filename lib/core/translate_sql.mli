(** Whole-path translation: one SQL statement per XPath query.

    The paper's translator emitted a single SQL statement per path query — a
    chain of self-joins over the edge table, one alias per location step
    (what the shredding literature calls structural joins). This module
    implements that mode for the fragment of the subset where a single
    unordered SQL block is expressive enough:

    - axes [child], [descendant], [descendant-or-self], [attribute],
      [parent], plus GLOBAL/DEWEY [following-sibling]/[preceding-sibling]/
      [following]/[preceding]/[ancestor] (LOCAL supports the sibling axes;
      its document-order axes need recursion, which single-statement SQL
      without RECURSIVE cannot express — the paper's point);
    - name/wildcard/text()/comment()/node() tests;
    - existence and value-comparison predicates (they become additional
      joined aliases);
    - {e no} positional predicates — ranking inside an unordered SQL block
      needs subqueries or window functions, which is exactly why the paper
      stores sibling ranks as data; use the step-at-a-time evaluator
      ({!Translate}) for those.

    The generated statement selects the result nodes' columns with
    [SELECT DISTINCT], ordered by the encoding's document-order column when
    it has one (GLOBAL, DEWEY); LOCAL results are returned unordered and the
    caller middle-tier sorts (documented cost). *)

exception Not_single_statement of string
(** The path uses a feature outside the single-statement fragment. *)

val translate :
  ?unique:bool -> doc:string -> Encoding.t -> Xpath_ast.path -> string
(** The SQL text. [~unique:true] is an external guarantee (e.g. from the
    schema analysis) that the join can produce no duplicate result rows, so
    [DISTINCT] is omitted. Defaults to [false].
    @raise Not_single_statement when ineligible. *)

type fragment_meta = {
  fm_encoding : Encoding.t;  (** the encoding the statement was emitted for *)
  fm_table : string;  (** edge-table name every alias ranges over *)
  fm_result_alias : string;  (** the alias whose columns are selected *)
  fm_aliases : string list;  (** all FROM aliases, in emission order *)
  fm_ordered : bool;  (** statement carries a document-order ORDER BY *)
  fm_order_column : string option;
      (** the order column ([g_order], [path]) or [None] for LOCAL, whose
          results the middle tier must sort itself *)
  fm_axes : Xpath_ast.axis list;
      (** every axis the path uses, including inside predicates (sorted,
          deduplicated) — what the order checker validates against
          {!axis_supported} *)
}
(** What the translator promises about an emitted statement. The static
    analyzer checks the statement against this record rather than re-deriving
    the contract from the SQL text. *)

val translate_meta :
  ?unique:bool ->
  doc:string ->
  Encoding.t ->
  Xpath_ast.path ->
  string * fragment_meta
(** [translate] plus the metadata contract for the emitted statement.
    @raise Not_single_statement when ineligible. *)

val axis_supported : Encoding.t -> Xpath_ast.axis -> bool
(** Whether the encoding can express the axis inside a single unordered SQL
    statement (document-order axes such as [following::] need interval
    numbering — GLOBAL/GLOBAL_GAP only). *)

val path_axes : Xpath_ast.path -> Xpath_ast.axis list
(** Every axis a path uses, including inside predicates (sorted,
    deduplicated). *)

val eval :
  ?unique:bool ->
  Reldb.Db.t ->
  doc:string ->
  Encoding.t ->
  Xpath_ast.path ->
  Translate.result
(** Run the single statement and decode the result rows (sorting LOCAL
    results into document order in the middle tier).
    @raise Not_single_statement when ineligible. *)

val eligible : Encoding.t -> Xpath_ast.path -> bool
