(** User-facing facade: an ordered XML store inside a relational engine.

    {[
      let db = Reldb.Db.create () in
      let doc = Xmllib.Parser.parse_document xml_text in
      let store = Api.Store.create db ~name:"books" Encoding.Dewey_enc doc in
      let titles = Api.Store.query_values store "/catalog/book[2]/title" in
      ...
    ]}

    {2 Tracing}

    When {!Obs.enabled} (the default), every entry point below runs under an
    {!Obs.Span}: queries open a [query] span (attributes [xpath] and
    [encoding]) with [xpath-parse] / [translate] / [reconstruct] children,
    loading opens [shred], and each update opens a span named after the
    operation (e.g. [insert_subtree]) whose renumbering statements nest
    under [renumber] spans. Engine-level spans ([sql-parse] / [plan] /
    [exec]) from {!Reldb.Db.exec} nest inside whichever phase issued the
    statement. Capture a trace with {!Obs.Span.collect}:

    {[
      let nodes, spans =
        Obs.Span.collect (fun () -> Api.Store.query_nodes store xpath)
      in
      print_string (Obs.Span.to_string spans)
    ]} *)

module Store : sig
  type t

  val create :
    ?gap:int ->
    Reldb.Db.t ->
    name:string ->
    Encoding.t ->
    Xmllib.Types.document ->
    t
  (** Shred the document into tables named [<name>_<encoding>].
      @raise Reldb.Db.Sql_error if the store already exists. *)

  val open_existing : Reldb.Db.t -> name:string -> Encoding.t -> t
  (** Attach to tables created earlier. @raise Reldb.Db.Sql_error if the
      edge table is missing. *)

  val drop : t -> unit

  val db : t -> Reldb.Db.t
  val name : t -> string
  val encoding : t -> Encoding.t

  (** {2 Queries} *)

  val query : t -> string -> Translate.result
  (** Evaluate an XPath string. @raise Xpath_parser.Parse_error on bad
      syntax. *)

  val query_ids : t -> string -> int list
  (** Node ids in document order. *)

  val query_nodes : t -> string -> Xmllib.Types.node list
  (** Result subtrees, reconstructed. Attribute results cannot be rebuilt
      as standalone subtrees — {!Reconstruct.subtree} raises
      [Invalid_argument] for them — so use {!query_values} when the XPath
      selects attributes. *)

  val query_values : t -> string -> string list
  (** XPath string-values of the result nodes. *)

  val count : t -> string -> int

  val flwor : t -> string -> Xmllib.Types.node list
  (** Run a FLWOR-lite publishing query (see {!Flwor}). *)

  (** {2 Updates} *)

  val insert_subtree : t -> parent:int -> pos:int -> Xmllib.Types.node -> Update.stats

  (** Bulk sibling insertion with one renumbering pass, see
      {!Update.insert_forest}. *)
  val insert_forest :
    t -> parent:int -> pos:int -> Xmllib.Types.node list -> Update.stats
  val append_child : t -> parent:int -> Xmllib.Types.node -> Update.stats
  val delete_subtree : t -> id:int -> Update.stats
  val move_subtree : t -> id:int -> parent:int -> pos:int -> Update.stats
  val replace_subtree : t -> id:int -> Xmllib.Types.node -> Update.stats
  val set_text : t -> id:int -> string -> Update.stats
  val set_attribute : t -> id:int -> name:string -> value:string -> Update.stats
  val remove_attribute : t -> id:int -> name:string -> Update.stats

  val atomically : t -> (unit -> 'a) -> 'a
  (** Run a batch of updates in one engine transaction: an exception rolls
      every row of every table back (see {!Reldb.Db.with_transaction}). *)

  (** {2 Whole-document access} *)

  val document : t -> Xmllib.Types.document
  val root_id : t -> int
  val subtree : t -> id:int -> Xmllib.Types.node

  (** Single-pass streaming serialization of a subtree, see
      {!Reconstruct.serialize_subtree}. *)
  val serialize : t -> id:int -> string
  val storage : t -> Storage.t

  val check : t -> (unit, string list) result
  (** Verify the encoding's structural invariants (see {!Integrity}). *)
end
