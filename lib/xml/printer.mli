(** XML serialization.

    Everything this module emits parses back to the same value: character
    data escapes [& < >] plus carriage return (XML 1.0 §2.11 end-of-line
    handling would otherwise fold it to a line feed), and attribute values
    additionally escape the double quote, tab, line feed and carriage
    return as character references (§3.3.3 attribute-value normalization
    would otherwise fold them to spaces). Comments and processing
    instructions have {e no} escaping mechanism, so contents colliding with
    their delimiters raise {!Unserializable} instead of producing
    unparseable output. *)

exception Unserializable of string
(** Raised for nodes XML cannot represent: a comment containing ["--"] or
    ending with ["-"], or processing-instruction data containing ["?>"]. *)

val escape_text : string -> string
(** Escape [& < > \r] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets, the double quote, and tab/LF/CR for
    double-quoted attribute values. *)

val add_comment : Buffer.t -> string -> unit
(** Append [<!--s-->]. @raise Unserializable, see above. *)

val add_pi : Buffer.t -> target:string -> data:string -> unit
(** Append [<?target data?>]. @raise Unserializable, see above. *)

val node_to_string : Types.node -> string
(** Compact serialization (no added whitespace). Empty elements are written
    self-closed ([<a/>]). @raise Unserializable, see above. *)

val document_to_string : Types.document -> string
(** Serialize the document, emitting an XML declaration when the document
    carries one. @raise Unserializable, see above. *)

val pretty : ?indent:int -> Types.node -> string
(** Indented rendering for humans. Text nodes inhibit indentation of their
    siblings so mixed content round-trips visually intact.
    @raise Unserializable, see above. *)
