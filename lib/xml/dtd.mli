(** DTD-lite: parse, validate against, and sample from Document Type
    Definitions.

    The XML-shredding systems of the paper's era were schema-driven — DTDs
    decided inlining and table layout — so a relational XML store needs at
    least enough DTD support to validate what it loads. The subset:

    {v
    <!ELEMENT name EMPTY>
    <!ELEMENT name ANY>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT name (#PCDATA | a | b)*>          (mixed content)
    <!ELEMENT name (a, (b | c)*, d?, e+)>       (content models)
    <!ATTLIST name attr CDATA #REQUIRED
                   other CDATA #IMPLIED
                   kind  CDATA "default">
    v}

    Validation matches element content against the models with Brzozowski
    derivatives (no backtracking blow-ups), checks required attributes, and
    flags undeclared elements and attributes. *)

type particle =
  | P_name of string
  | P_seq of particle list
  | P_choice of particle list
  | P_opt of particle  (** [?] *)
  | P_star of particle  (** [*] *)
  | P_plus of particle  (** [+] *)

type content =
  | C_empty
  | C_any
  | C_mixed of string list  (** (#PCDATA | a | ...)* ; [[]] = (#PCDATA) *)
  | C_model of particle

type attr_default = A_required | A_implied | A_default of string

type t

exception Parse_error of string

val parse : string -> t
(** Parse a sequence of [<!ELEMENT>] / [<!ATTLIST>] declarations (comments
    and whitespace allowed). @raise Parse_error on malformed input or
    duplicate element declarations. *)

val element_names : t -> string list
val content_of : t -> string -> content option
val attributes_of : t -> string -> (string * attr_default) list

val particle_bounds : particle -> (string * (int * int option)) list
(** [(min, max)] occurrences of each child element name in one match of the
    particle; [None] max means unbounded. Sound over-approximation: any
    valid expansion has between [min] and [max] occurrences of the name. *)

val child_bounds : t -> string -> (string * (int * int option)) list
(** Per-child-name occurrence bounds for the content model of an element.
    [EMPTY] and undeclared elements have no children; [ANY] admits every
    declared element [0..unbounded]; mixed content admits its listed names
    [0..unbounded]. *)

val allows_text : t -> string -> bool
(** Can a valid instance of the element have text children? (mixed or ANY) *)

val allows_comments : t -> string -> bool
(** Can a valid instance carry comment children? (anything but EMPTY) *)

val validate : t -> Types.document -> (unit, string list) result
(** Structural validation (one message per violation, with the element
    name). Elements not declared in the DTD are violations, as are
    undeclared or missing-required attributes. *)

val sample : t -> root:string -> Rng.t -> Types.document
(** Generate a random document valid under the DTD, rooted at [root]
    (unbounded models are cut off at a small random repetition count;
    recursive models are depth-limited by preferring non-recursive
    choices). @raise Invalid_argument if [root] is not declared. *)
