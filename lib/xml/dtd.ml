type particle =
  | P_name of string
  | P_seq of particle list
  | P_choice of particle list
  | P_opt of particle
  | P_star of particle
  | P_plus of particle

type content = C_empty | C_any | C_mixed of string list | C_model of particle

type attr_default = A_required | A_implied | A_default of string

type t = {
  elements : (string, content) Hashtbl.t;
  attlists : (string, (string * attr_default) list) Hashtbl.t;
}

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type st = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some '<'
    when st.pos + 3 < String.length st.src
         && String.sub st.src st.pos 4 = "<!--" -> begin
      (* comment *)
      match
        let rec find i =
          if i + 3 > String.length st.src then None
          else if String.sub st.src i 3 = "-->" then Some i
          else find (i + 1)
        in
        find (st.pos + 4)
      with
      | Some i ->
          st.pos <- i + 3;
          skip_ws st
      | None -> fail "unterminated comment"
    end
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail "expected %c at offset %d" c st.pos

let looking_at st s =
  st.pos + String.length s <= String.length st.src
  && String.sub st.src st.pos (String.length s) = s

let eat st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail "expected %s at offset %d" s st.pos

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = ':' || c = '.'

let read_name st =
  let start = st.pos in
  while
    st.pos < String.length st.src && is_name_char st.src.[st.pos]
  do
    advance st
  done;
  if st.pos = start then fail "expected a name at offset %d" st.pos;
  String.sub st.src start (st.pos - start)

let read_occurrence st p =
  match peek st with
  | Some '?' ->
      advance st;
      P_opt p
  | Some '*' ->
      advance st;
      P_star p
  | Some '+' ->
      advance st;
      P_plus p
  | _ -> p

(* particle grammar inside parentheses; '(' already consumed *)
let rec parse_group st =
  skip_ws st;
  let first = parse_term st in
  skip_ws st;
  match peek st with
  | Some ',' ->
      let rec go acc =
        skip_ws st;
        match peek st with
        | Some ',' ->
            advance st;
            skip_ws st;
            go (parse_term st :: acc)
        | Some ')' ->
            advance st;
            P_seq (List.rev acc)
        | _ -> fail "expected , or ) in content model"
      in
      go [ first ]
  | Some '|' ->
      let rec go acc =
        skip_ws st;
        match peek st with
        | Some '|' ->
            advance st;
            skip_ws st;
            go (parse_term st :: acc)
        | Some ')' ->
            advance st;
            P_choice (List.rev acc)
        | _ -> fail "expected | or ) in content model"
      in
      go [ first ]
  | Some ')' ->
      advance st;
      first
  | _ -> fail "malformed content model"

and parse_term st =
  skip_ws st;
  match peek st with
  | Some '(' ->
      advance st;
      read_occurrence st (parse_group st)
  | _ -> read_occurrence st (P_name (read_name st))

let parse_content st =
  skip_ws st;
  if looking_at st "EMPTY" then begin
    eat st "EMPTY";
    C_empty
  end
  else if looking_at st "ANY" then begin
    eat st "ANY";
    C_any
  end
  else begin
    expect st '(';
    skip_ws st;
    if looking_at st "#PCDATA" then begin
      eat st "#PCDATA";
      let rec names acc =
        skip_ws st;
        match peek st with
        | Some '|' ->
            advance st;
            skip_ws st;
            names (read_name st :: acc)
        | Some ')' ->
            advance st;
            List.rev acc
        | _ -> fail "malformed mixed-content model"
      in
      let ns = names [] in
      (* (#PCDATA) may omit the trailing *; (#PCDATA|a)* requires it *)
      (match peek st with
      | Some '*' -> advance st
      | _ -> if ns <> [] then fail "mixed content with names requires a trailing *");
      C_mixed ns
    end
    else C_model (read_occurrence st (parse_group st))
  end

let parse_attdef st =
  let attr = read_name st in
  skip_ws st;
  (* attribute type: a name (CDATA, ID, ...) or an enumeration *)
  (match peek st with
  | Some '(' ->
      advance st;
      let rec skip_enum () =
        skip_ws st;
        ignore (read_name st);
        skip_ws st;
        match peek st with
        | Some '|' ->
            advance st;
            skip_enum ()
        | Some ')' -> advance st
        | _ -> fail "malformed attribute enumeration"
      in
      skip_enum ()
  | _ -> ignore (read_name st));
  skip_ws st;
  let default =
    if looking_at st "#REQUIRED" then begin
      eat st "#REQUIRED";
      A_required
    end
    else if looking_at st "#IMPLIED" then begin
      eat st "#IMPLIED";
      A_implied
    end
    else begin
      if looking_at st "#FIXED" then begin
        eat st "#FIXED";
        skip_ws st
      end;
      match peek st with
      | Some ('"' as q) | Some ('\'' as q) ->
          advance st;
          let start = st.pos in
          while st.pos < String.length st.src && st.src.[st.pos] <> q do
            advance st
          done;
          if st.pos >= String.length st.src then fail "unterminated default value";
          let v = String.sub st.src start (st.pos - start) in
          advance st;
          A_default v
      | _ -> fail "expected an attribute default at offset %d" st.pos
    end
  in
  (attr, default)

let parse src =
  let st = { src; pos = 0 } in
  let t = { elements = Hashtbl.create 16; attlists = Hashtbl.create 16 } in
  let rec go () =
    skip_ws st;
    match peek st with
    | None -> ()
    | Some '<' ->
        if looking_at st "<!ELEMENT" then begin
          eat st "<!ELEMENT";
          skip_ws st;
          let name = read_name st in
          if Hashtbl.mem t.elements name then
            fail "duplicate declaration of element %s" name;
          let content = parse_content st in
          skip_ws st;
          expect st '>';
          Hashtbl.replace t.elements name content;
          go ()
        end
        else if looking_at st "<!ATTLIST" then begin
          eat st "<!ATTLIST";
          skip_ws st;
          let name = read_name st in
          let rec defs acc =
            skip_ws st;
            match peek st with
            | Some '>' ->
                advance st;
                List.rev acc
            | _ -> defs (parse_attdef st :: acc)
          in
          let ds = defs [] in
          let existing =
            Option.value (Hashtbl.find_opt t.attlists name) ~default:[]
          in
          Hashtbl.replace t.attlists name (existing @ ds);
          go ()
        end
        else fail "expected <!ELEMENT or <!ATTLIST at offset %d" st.pos
    | Some c -> fail "unexpected character %C at offset %d" c st.pos
  in
  go ();
  if Hashtbl.length t.elements = 0 then fail "no element declarations";
  t

let element_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.elements []
let content_of t name = Hashtbl.find_opt t.elements name
let attributes_of t name =
  Option.value (Hashtbl.find_opt t.attlists name) ~default:[]

(* ------------------------------------------------------------------ *)
(* Occurrence bounds (schema analysis accessors)                       *)
(* ------------------------------------------------------------------ *)

(* (min, max) occurrences of each child name in one expansion of the
   particle; [None] is unbounded. Sound over-approximation: a valid element
   never has fewer/more occurrences of a name than the bounds say. *)

let bound_add (mn1, mx1) (mn2, mx2) =
  let mx =
    match (mx1, mx2) with Some a, Some b -> Some (a + b) | _ -> None
  in
  (mn1 + mn2, mx)

let bound_max (mn1, mx1) (mn2, mx2) =
  let mx =
    match (mx1, mx2) with Some a, Some b -> Some (max a b) | _ -> None
  in
  (min mn1 mn2, mx)

let merge_bounds combine absent a b =
  let names =
    List.sort_uniq compare (List.map fst a @ List.map fst b)
  in
  List.map
    (fun n ->
      let find l = Option.value (List.assoc_opt n l) ~default:absent in
      (n, combine (find a) (find b)))
    names

let rec particle_bounds = function
  | P_name n -> [ (n, (1, Some 1)) ]
  | P_seq l ->
      List.fold_left
        (fun acc p -> merge_bounds bound_add (0, Some 0) acc (particle_bounds p))
        [] l
  | P_choice [] -> []
  | P_choice (p :: rest) ->
      List.fold_left
        (fun acc q -> merge_bounds bound_max (0, Some 0) acc (particle_bounds q))
        (particle_bounds p) rest
  | P_opt p -> List.map (fun (n, (_, mx)) -> (n, (0, mx))) (particle_bounds p)
  | P_star p -> List.map (fun (n, _) -> (n, (0, None))) (particle_bounds p)
  | P_plus p -> List.map (fun (n, (mn, _)) -> (n, (mn, None))) (particle_bounds p)

let child_bounds t name =
  match content_of t name with
  | None | Some C_empty -> []
  | Some C_any ->
      List.map
        (fun n -> (n, (0, None)))
        (List.sort compare (element_names t))
  | Some (C_mixed names) ->
      List.map (fun n -> (n, (0, None))) (List.sort_uniq compare names)
  | Some (C_model p) -> particle_bounds p

let allows_text t name =
  match content_of t name with
  | Some (C_mixed _ | C_any) -> true
  | Some (C_empty | C_model _) | None -> false

let allows_comments t name =
  (* the validator only rejects comments under EMPTY content (an EMPTY
     element must have no children at all) *)
  match content_of t name with
  | Some (C_any | C_mixed _ | C_model _) -> true
  | Some C_empty | None -> false

(* ------------------------------------------------------------------ *)
(* Validation (Brzozowski derivatives over the particle algebra)       *)
(* ------------------------------------------------------------------ *)

let fail_p = P_choice []
let eps = P_seq []

let rec nullable = function
  | P_name _ -> false
  | P_seq l -> List.for_all nullable l
  | P_choice l -> List.exists nullable l
  | P_opt _ | P_star _ -> true
  | P_plus p -> nullable p

let rec simp p =
  match p with
  | P_name _ -> p
  | P_seq l ->
      let l = List.map simp l in
      if List.mem fail_p l then fail_p
      else begin
        match List.filter (fun x -> x <> eps) l with
        | [] -> eps
        | [ x ] -> x
        | l -> P_seq l
      end
  | P_choice l -> begin
      match List.filter (fun x -> x <> fail_p) (List.map simp l) with
      | [] -> fail_p
      | [ x ] -> x
      | l -> P_choice l
    end
  | P_opt x -> ( match simp x with x when x = fail_p -> eps | x -> P_opt x)
  | P_star x -> ( match simp x with x when x = fail_p -> eps | x -> P_star x)
  | P_plus x -> ( match simp x with x when x = fail_p -> fail_p | x -> P_plus x)

let rec deriv p tag =
  match p with
  | P_name n -> if n = tag then eps else fail_p
  | P_choice l -> simp (P_choice (List.map (fun x -> deriv x tag) l))
  | P_seq [] -> fail_p
  | P_seq (x :: rest) ->
      let with_head = simp (P_seq (deriv x tag :: rest)) in
      if nullable x then simp (P_choice [ with_head; deriv (P_seq rest) tag ])
      else with_head
  | P_opt x -> deriv x tag
  | P_star x -> simp (P_seq [ deriv x tag; P_star x ])
  | P_plus x -> simp (P_seq [ deriv x tag; P_star x ])

let matches particle tags =
  let final = List.fold_left (fun p tag -> deriv p tag) particle tags in
  nullable final

let validate t (doc : Types.document) =
  let errors = ref [] in
  let seen = Hashtbl.create 8 in
  let report kind fmt =
    Printf.ksprintf
      (fun msg ->
        if not (Hashtbl.mem seen (kind, msg)) then begin
          Hashtbl.add seen (kind, msg) ();
          errors := msg :: !errors
        end)
      fmt
  in
  let rec walk (e : Types.element) =
    (match content_of t e.Types.tag with
    | None -> report "decl" "element %s is not declared" e.Types.tag
    | Some content -> begin
        let child_tags =
          List.filter_map Types.tag_of e.Types.children
        in
        let has_text =
          List.exists
            (function Types.Text _ -> true | _ -> false)
            e.Types.children
        in
        match content with
        | C_empty ->
            if e.Types.children <> [] then
              report "empty" "element %s must be empty" e.Types.tag
        | C_any -> ()
        | C_mixed names ->
            List.iter
              (fun tag ->
                if not (List.mem tag names) then
                  report "mixed" "element %s does not allow child %s"
                    e.Types.tag tag)
              child_tags
        | C_model particle ->
            if has_text then
              report "pcdata" "element %s does not allow text content" e.Types.tag;
            if not (matches particle child_tags) then
              report "model" "children of %s (%s) do not match its model"
                e.Types.tag
                (String.concat "," child_tags)
      end);
    (* attributes *)
    let declared = attributes_of t e.Types.tag in
    List.iter
      (fun (a : Types.attribute) ->
        if not (List.mem_assoc a.Types.attr_name declared) then
          report "attr" "element %s has undeclared attribute %s" e.Types.tag
            a.Types.attr_name)
      e.Types.attrs;
    List.iter
      (fun (name, d) ->
        if d = A_required && not
             (List.exists (fun (a : Types.attribute) -> a.Types.attr_name = name) e.Types.attrs)
        then
          report "required" "element %s is missing required attribute %s"
            e.Types.tag name)
      declared;
    List.iter
      (fun c -> match c with Types.Element e -> walk e | _ -> ())
      e.Types.children
  in
  walk doc.Types.root;
  match !errors with [] -> Ok () | msgs -> Error (List.rev msgs)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

(* rough expansion weight: how many element names a minimal expansion of the
   particle forces; used to steer away from recursion at depth *)
let rec weight = function
  | P_name _ -> 1
  | P_seq l -> List.fold_left (fun acc p -> acc + weight p) 0 l
  | P_choice l -> List.fold_left (fun acc p -> min acc (weight p)) max_int l
  | P_opt _ | P_star _ -> 0
  | P_plus p -> weight p

let sample t ~root rng =
  if content_of t root = None then
    invalid_arg (Printf.sprintf "Dtd.sample: element %s is not declared" root);
  let max_depth = 12 in
  let rec gen_particle depth p =
    match p with
    | P_name n -> [ gen_elem depth n ]
    | P_seq l -> List.concat_map (gen_particle depth) l
    | P_choice l ->
        let l = if l = [] then [ eps ] else l in
        let pick =
          if depth >= max_depth then
            List.fold_left
              (fun best c -> if weight c < weight best then c else best)
              (List.hd l) l
          else List.nth l (Rng.int rng (List.length l))
        in
        gen_particle depth pick
    | P_opt x ->
        if depth < max_depth && Rng.bool rng then gen_particle depth x else []
    | P_star x ->
        if depth >= max_depth then []
        else
          List.concat
            (List.init (Rng.int rng 3) (fun _ -> gen_particle depth x))
    | P_plus x ->
        let reps = if depth >= max_depth then 1 else 1 + Rng.int rng 2 in
        List.concat (List.init reps (fun _ -> gen_particle depth x))
  and gen_elem depth name =
    let attrs =
      List.filter_map
        (fun (a, d) ->
          match d with
          | A_required -> Some (Types.attr a (Generator.words ~seed:(Rng.int rng 1000) 1))
          | A_implied ->
              if Rng.bool rng then
                Some (Types.attr a (Generator.words ~seed:(Rng.int rng 1000) 1))
              else None
          | A_default v -> if Rng.bool rng then Some (Types.attr a v) else None)
        (attributes_of t name)
    in
    let children =
      match content_of t name with
      | None | Some C_empty -> []
      | Some C_any -> if Rng.bool rng then [ Types.text (Generator.words ~seed:(Rng.int rng 1000) 2) ] else []
      | Some (C_mixed names) ->
          List.concat
            (List.init (Rng.int rng 3) (fun _ ->
                 if names <> [] && Rng.bool rng && depth < max_depth then
                   [ gen_elem (depth + 1) (List.nth names (Rng.int rng (List.length names))) ]
                 else [ Types.text (Generator.words ~seed:(Rng.int rng 1000) 2) ]))
      | Some (C_model p) -> gen_particle (depth + 1) p
    in
    Types.element ~attrs name children
  in
  match Types.normalize (gen_elem 0 root) with
  | Types.Element e -> { Types.decl = false; root = e }
  | _ -> assert false
