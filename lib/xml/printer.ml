exception Unserializable of string

let unserializable fmt =
  Printf.ksprintf (fun s -> raise (Unserializable s)) fmt

(* XML 1.0 gives parsers license to rewrite whitespace we emit raw: §3.3.3
   attribute-value normalization folds tab/CR/LF in attribute values to
   spaces, and §2.11 end-of-line handling folds CR (and CRLF) in content to
   LF. Emitting them as character references is the only way a round trip
   preserves the exact string. *)
let escape buf ~quot s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quot -> Buffer.add_string buf "&quot;"
      | '\n' when quot -> Buffer.add_string buf "&#10;"
      | '\t' when quot -> Buffer.add_string buf "&#9;"
      | '\r' -> Buffer.add_string buf "&#13;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape buf ~quot:true s;
  Buffer.contents buf

(* Comments and processing instructions have no escaping mechanism at all,
   so contents that collide with their delimiters cannot be serialized —
   reject rather than emit XML that will not parse back. *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let add_comment buf s =
  if contains_sub s "--" then
    unserializable "comment contains \"--\": %S" s;
  if s <> "" && s.[String.length s - 1] = '-' then
    unserializable "comment ends with \"-\": %S" s;
  Buffer.add_string buf "<!--";
  Buffer.add_string buf s;
  Buffer.add_string buf "-->"

let add_pi buf ~target ~data =
  if contains_sub data "?>" then
    unserializable "processing-instruction data contains \"?>\": %S" data;
  Buffer.add_string buf "<?";
  Buffer.add_string buf target;
  if data <> "" then begin
    Buffer.add_char buf ' ';
    Buffer.add_string buf data
  end;
  Buffer.add_string buf "?>"

let add_attrs buf attrs =
  List.iter
    (fun (a : Types.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.attr_name;
      Buffer.add_string buf "=\"";
      escape buf ~quot:true a.attr_value;
      Buffer.add_char buf '"')
    attrs

let rec add_node buf (n : Types.node) =
  match n with
  | Types.Text s -> escape buf ~quot:false s
  | Types.Comment s -> add_comment buf s
  | Types.Pi { target; data } -> add_pi buf ~target ~data
  | Types.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (add_node buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>'
      end

let node_to_string n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

let document_to_string (d : Types.document) =
  let buf = Buffer.create 256 in
  if d.decl then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_node buf (Types.Element d.root);
  Buffer.contents buf

let pretty ?(indent = 2) n =
  let buf = Buffer.create 256 in
  let pad level = Buffer.add_string buf (String.make (level * indent) ' ') in
  let has_text children =
    List.exists (function Types.Text _ -> true | _ -> false) children
  in
  let rec go level (n : Types.node) =
    match n with
    | Types.Element e when e.children <> [] && not (has_text e.children) ->
        pad level;
        Buffer.add_char buf '<';
        Buffer.add_string buf e.tag;
        add_attrs buf e.attrs;
        Buffer.add_string buf ">\n";
        List.iter (go (level + 1)) e.children;
        pad level;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_string buf ">\n"
    | n ->
        pad level;
        add_node buf n;
        Buffer.add_char buf '\n'
  in
  go 0 n;
  Buffer.contents buf
