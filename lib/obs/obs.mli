(** Engine observability: monotonic timers, labeled counters and gauges,
    latency histograms, and hierarchical spans with a pluggable sink.

    All state is process-global (the engine is single-connection and
    single-threaded). Instrumentation is {e zero-cost when disabled}: every
    entry point checks {!enabled} first and touches neither the clock nor
    the registries when it is off — benchmarks flip the switch once at
    startup.

    Metrics (counters / gauges / histograms) accumulate from process start
    until {!reset}. Span {e retention} is separate: spans are always timed
    and handed to the sink when enabled, but are only kept in memory inside
    {!Span.collect} (or when an explicit sink is installed), so long-running
    processes do not accumulate unbounded trace buffers. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Drop every registered counter, gauge and histogram, and any buffered
    spans. Instances obtained before the reset are detached: they keep
    working but no longer appear in reports. *)

module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic clock (CLOCK_MONOTONIC), nanoseconds from an arbitrary
      origin. Never jumps backwards, unlike [Unix.gettimeofday]. *)

  val since_ms : int64 -> float
  (** Milliseconds elapsed since an earlier {!now_ns} reading. *)

  val time_ms : (unit -> 'a) -> 'a * float
  (** Run the thunk and return its result with the elapsed wall-clock
      milliseconds (measured even when observability is disabled — this is
      the harness-facing timer, not an instrumentation point). *)
end

module Counter : sig
  type t

  val create : ?help:string -> string -> t
  (** Find-or-create the counter registered under [name]. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val find : string -> t option
end

module Gauge : sig
  type t

  val create : ?help:string -> string -> t
  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val name : t -> string
  val find : string -> t option
end

module Histogram : sig
  type t

  val create : ?help:string -> string -> t
  (** Find-or-create the histogram registered under [name]. Values are
      unit-free; engine latency histograms store milliseconds. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val min_value : t -> float
  val max_value : t -> float
  val mean : t -> float

  val percentile : t -> float -> float
  (** Nearest-rank percentile over the recorded samples ([p] in [0..100]);
      [0.] when empty. Raw samples are retained up to a fixed cap (65536);
      beyond it count/sum/min/max stay exact and percentiles describe the
      retained prefix. *)

  val p50 : t -> float
  val p95 : t -> float
  val p99 : t -> float
  val name : t -> string
  val find : string -> t option
end

(** {2 Name-based conveniences} (find-or-create then operate) *)

val incr : string -> unit
val add : string -> int -> unit
val set_gauge : string -> float -> unit
val observe : string -> float -> unit

val counter_value : string -> int
(** Current value of a registered counter, [0] if it was never created. *)

module Span : sig
  (** Hierarchical timed regions. [with_] nests: a span started while
      another is open records a larger depth, so a collected batch renders
      as a tree. *)

  type t = {
    sp_name : string;
    sp_attrs : (string * string) list;
    sp_depth : int;  (** nesting depth at start (absolute) *)
    sp_seq : int;  (** global start order — sort key for preorder *)
    mutable sp_elapsed_ns : int64;
  }

  val with_ : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** Time the thunk as a span. The span is completed (and re-raised
      through) on exception. When observability is disabled this is just
      [f ()]. *)

  val set_sink : (t -> unit) option -> unit
  (** Install a callback invoked with every completed span (streaming
      export). Independent of {!collect} buffering. *)

  val collect : (unit -> 'a) -> 'a * t list
  (** Run the thunk with span retention on; return the spans completed
      during it, in start (preorder) order. Nests: an inner [collect] steals
      nothing from the outer one. *)

  val elapsed_ms : t -> float

  val aggregate : t list -> (string * int * float) list
  (** Per-name [(name, count, total ms)], in first-seen order. *)

  val to_string : t list -> string
  (** Render a collected batch as an indented tree with timings. *)
end

module Report : sig
  val to_text : unit -> string
  (** Every registered counter, gauge and histogram, sorted by name. *)

  val to_json : unit -> string
  (** Same content as a single JSON object:
      [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
end
