let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

module Clock = struct
  let now_ns () = Monotonic_clock.now ()
  let since_ms t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6

  let time_ms f =
    let t0 = now_ns () in
    let v = f () in
    (v, since_ms t0)
end

module Counter = struct
  type t = { c_name : string; c_help : string; mutable c_value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let create ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_help = help; c_value = 0 } in
        Hashtbl.add registry name c;
        c

  let add c n = if !enabled_flag then c.c_value <- c.c_value + n
  let incr c = add c 1
  let value c = c.c_value
  let name c = c.c_name
  let find name = Hashtbl.find_opt registry name
end

module Gauge = struct
  type t = { g_name : string; g_help : string; mutable g_value : float }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let create ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_help = help; g_value = 0.0 } in
        Hashtbl.add registry name g;
        g

  let set g v = if !enabled_flag then g.g_value <- v
  let add g v = if !enabled_flag then g.g_value <- g.g_value +. v
  let value g = g.g_value
  let name g = g.g_name
  let find name = Hashtbl.find_opt registry name
end

module Histogram = struct
  (* raw samples up to a cap; count/sum/min/max stay exact past it *)
  let sample_cap = 65536

  type t = {
    h_name : string;
    h_help : string;
    mutable samples : float array;
    mutable stored : int;
    mutable sorted : bool;
    mutable n : int;
    mutable total : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let create ?(help = "") name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_help = help;
            samples = Array.make 64 0.0;
            stored = 0;
            sorted = true;
            n = 0;
            total = 0.0;
            minv = infinity;
            maxv = neg_infinity;
          }
        in
        Hashtbl.add registry name h;
        h

  let observe h v =
    if !enabled_flag then begin
      h.n <- h.n + 1;
      h.total <- h.total +. v;
      if v < h.minv then h.minv <- v;
      if v > h.maxv then h.maxv <- v;
      if h.stored < sample_cap then begin
        if h.stored = Array.length h.samples then begin
          let bigger =
            Array.make (Stdlib.min sample_cap (2 * h.stored)) 0.0
          in
          Array.blit h.samples 0 bigger 0 h.stored;
          h.samples <- bigger
        end;
        h.samples.(h.stored) <- v;
        h.stored <- h.stored + 1;
        h.sorted <- false
      end
    end

  let count h = h.n
  let sum h = h.total
  let min_value h = if h.n = 0 then 0.0 else h.minv
  let max_value h = if h.n = 0 then 0.0 else h.maxv
  let mean h = if h.n = 0 then 0.0 else h.total /. float_of_int h.n

  let ensure_sorted h =
    if not h.sorted then begin
      let prefix = Array.sub h.samples 0 h.stored in
      Array.sort compare prefix;
      Array.blit prefix 0 h.samples 0 h.stored;
      h.sorted <- true
    end

  (* nearest-rank: the ceil(p/100 * n)-th smallest sample *)
  let percentile h p =
    if h.stored = 0 then 0.0
    else begin
      ensure_sorted h;
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.stored)) in
      let idx = Stdlib.max 0 (Stdlib.min (h.stored - 1) (rank - 1)) in
      h.samples.(idx)
    end

  let p50 h = percentile h 50.0
  let p95 h = percentile h 95.0
  let p99 h = percentile h 99.0
  let name h = h.h_name
  let find name = Hashtbl.find_opt registry name
end

let incr name = if !enabled_flag then Counter.incr (Counter.create name)

let counter_value name =
  match Counter.find name with Some c -> Counter.value c | None -> 0
let add name n = if !enabled_flag then Counter.add (Counter.create name) n
let set_gauge name v = if !enabled_flag then Gauge.set (Gauge.create name) v

let observe name v =
  if !enabled_flag then Histogram.observe (Histogram.create name) v

module Span = struct
  type t = {
    sp_name : string;
    sp_attrs : (string * string) list;
    sp_depth : int;
    sp_seq : int;
    mutable sp_elapsed_ns : int64;
  }

  let depth = ref 0
  let seq = ref 0
  let recording = ref false
  let buffer : t list ref = ref []
  let sink : (t -> unit) option ref = ref None
  let set_sink s = sink := s

  let with_ ?(attrs = []) name f =
    if not !enabled_flag then f ()
    else begin
      Stdlib.incr seq;
      let sp =
        {
          sp_name = name;
          sp_attrs = attrs;
          sp_depth = !depth;
          sp_seq = !seq;
          sp_elapsed_ns = 0L;
        }
      in
      depth := !depth + 1;
      let t0 = Clock.now_ns () in
      let finish () =
        sp.sp_elapsed_ns <- Int64.sub (Clock.now_ns ()) t0;
        depth := !depth - 1;
        if !recording then buffer := sp :: !buffer;
        match !sink with Some emit -> emit sp | None -> ()
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let collect f =
    let saved_recording = !recording and saved_buffer = !buffer in
    recording := true;
    buffer := [];
    let finish () =
      let spans =
        List.sort (fun a b -> compare a.sp_seq b.sp_seq) !buffer
      in
      recording := saved_recording;
      buffer := saved_buffer;
      spans
    in
    match f () with
    | v -> (v, finish ())
    | exception e ->
        ignore (finish ());
        raise e

  let clear () =
    buffer := [];
    depth := 0

  let elapsed_ms sp = Int64.to_float sp.sp_elapsed_ns /. 1e6

  let aggregate spans =
    let order = ref [] in
    let acc : (string, (int * float) ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        match Hashtbl.find_opt acc sp.sp_name with
        | Some cell ->
            let n, ms = !cell in
            cell := (n + 1, ms +. elapsed_ms sp)
        | None ->
            order := sp.sp_name :: !order;
            Hashtbl.add acc sp.sp_name (ref (1, elapsed_ms sp)))
      spans;
    List.rev_map
      (fun name ->
        let n, ms = !(Hashtbl.find acc name) in
        (name, n, ms))
      !order

  let to_string spans =
    match spans with
    | [] -> "(no spans)\n"
    | first :: _ ->
        let base = first.sp_depth in
        let buf = Buffer.create 256 in
        List.iter
          (fun sp ->
            let attrs =
              match sp.sp_attrs with
              | [] -> ""
              | kv ->
                  " ["
                  ^ String.concat ", "
                      (List.map (fun (k, v) -> k ^ "=" ^ v) kv)
                  ^ "]"
            in
            Buffer.add_string buf
              (Printf.sprintf "%s%-24s %10.3f ms%s\n"
                 (String.make (2 * Stdlib.max 0 (sp.sp_depth - base)) ' ')
                 sp.sp_name (elapsed_ms sp) attrs))
          spans;
        Buffer.contents buf
end

let reset () =
  Hashtbl.reset Counter.registry;
  Hashtbl.reset Gauge.registry;
  Hashtbl.reset Histogram.registry;
  Span.clear ()

module Report = struct
  let sorted_values registry =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
    |> List.map (Hashtbl.find registry)

  let to_text () =
    let buf = Buffer.create 512 in
    let counters = sorted_values Counter.registry in
    let gauges = sorted_values Gauge.registry in
    let hists = sorted_values Histogram.registry in
    if counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  %-32s %d\n" (Counter.name c) (Counter.value c)))
        counters
    end;
    if gauges <> [] then begin
      Buffer.add_string buf "gauges:\n";
      List.iter
        (fun g ->
          Buffer.add_string buf
            (Printf.sprintf "  %-32s %g\n" (Gauge.name g) (Gauge.value g)))
        gauges
    end;
    if hists <> [] then begin
      Buffer.add_string buf
        "histograms (count / mean / p50 / p95 / p99 / max, ms):\n";
      List.iter
        (fun h ->
          Buffer.add_string buf
            (Printf.sprintf "  %-32s %6d  %8.3f %8.3f %8.3f %8.3f %8.3f\n"
               (Histogram.name h) (Histogram.count h) (Histogram.mean h)
               (Histogram.p50 h) (Histogram.p95 h) (Histogram.p99 h)
               (Histogram.max_value h)))
        hists
    end;
    if Buffer.length buf = 0 then "(no metrics recorded)\n"
    else Buffer.contents buf

  let json_escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let json_float f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.6g" f

  let to_json () =
    let obj fields = "{" ^ String.concat "," fields ^ "}" in
    let field k v = Printf.sprintf "\"%s\":%s" (json_escape k) v in
    let counters =
      List.map
        (fun c -> field (Counter.name c) (string_of_int (Counter.value c)))
        (sorted_values Counter.registry)
    in
    let gauges =
      List.map
        (fun g -> field (Gauge.name g) (json_float (Gauge.value g)))
        (sorted_values Gauge.registry)
    in
    let hists =
      List.map
        (fun h ->
          field (Histogram.name h)
            (obj
               [
                 field "count" (string_of_int (Histogram.count h));
                 field "sum" (json_float (Histogram.sum h));
                 field "min" (json_float (Histogram.min_value h));
                 field "mean" (json_float (Histogram.mean h));
                 field "p50" (json_float (Histogram.p50 h));
                 field "p95" (json_float (Histogram.p95 h));
                 field "p99" (json_float (Histogram.p99 h));
                 field "max" (json_float (Histogram.max_value h));
               ]))
        (sorted_values Histogram.registry)
    in
    obj
      [
        field "counters" (obj counters);
        field "gauges" (obj gauges);
        field "histograms" (obj hists);
      ]
end
