module O = Ordered_xml
module S = Reldb.Sql_ast

let norm = String.lowercase_ascii

let expected_order_column (enc : O.Encoding.t) =
  match enc with
  | O.Encoding.Global | O.Encoding.Global_gap -> Some "g_order"
  | O.Encoding.Dewey_enc | O.Encoding.Dewey_caret -> Some "path"
  | O.Encoding.Local -> None

let axis_finding severity enc ax =
  let f : Finding.t =
    {
      Finding.severity;
      rule = "axis-support";
      message =
        Printf.sprintf
          "axis %s:: is outside the single-statement fragment of the %s \
           encoding (needs interval numbering)"
          (O.Xpath_ast.axis_name ax) (O.Encoding.name enc);
    }
  in
  f

let check_axes ?(severity = Finding.Error) enc path =
  List.filter_map
    (fun ax ->
      if O.Translate_sql.axis_supported enc ax then None
      else Some (axis_finding severity enc ax))
    (O.Translate_sql.path_axes path)

let check_stmt enc ~(meta : O.Translate_sql.fragment_meta) (stmt : S.stmt) =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  if meta.O.Translate_sql.fm_encoding <> enc then
    add
      (Finding.error "order-contract"
         "statement was translated for %s but is being checked against %s"
         (O.Encoding.name meta.O.Translate_sql.fm_encoding)
         (O.Encoding.name enc));
  List.iter
    (fun ax ->
      if not (O.Translate_sql.axis_supported enc ax) then
        add (axis_finding Finding.Error enc ax))
    meta.O.Translate_sql.fm_axes;
  let expect = expected_order_column enc in
  if expect <> meta.O.Translate_sql.fm_order_column then
    add
      (Finding.error "order-contract"
         "translator metadata promises order column %s but the %s contract \
          requires %s"
         (Option.value meta.O.Translate_sql.fm_order_column ~default:"<none>")
         (O.Encoding.name enc)
         (Option.value expect ~default:"<none>"));
  (match stmt with
  | S.Select sel -> (
      let result = norm meta.O.Translate_sql.fm_result_alias in
      match expect with
      | Some col -> (
          match sel.S.order_by with
          | [ (S.E_col (Some q, c), S.Asc) ]
            when norm q = result && norm c = col ->
              ()
          | [] ->
              add
                (Finding.error "order-contract"
                   "missing ORDER BY %s.%s: %s results must come back in \
                    document order"
                   meta.O.Translate_sql.fm_result_alias col
                   (O.Encoding.name enc))
          | _ ->
              add
                (Finding.error "order-contract"
                   "ORDER BY clause does not match the %s document-order \
                    contract (expected ORDER BY %s.%s ascending)"
                   (O.Encoding.name enc) meta.O.Translate_sql.fm_result_alias
                   col))
      | None -> (
          if meta.O.Translate_sql.fm_ordered then
            add
              (Finding.error "order-contract"
                 "metadata claims the statement is ordered, but LOCAL has no \
                  document-order column");
          match sel.S.order_by with
          | [] ->
              add
                (Finding.info "order-contract"
                   "LOCAL statements return unordered results: the middle \
                    tier must sort them into document order (paper's \
                    documented LOCAL cost)")
          | _ ->
              add
                (Finding.error "order-contract"
                   "LOCAL encoding has no document-order column; this ORDER \
                    BY cannot establish document order")))
  | _ ->
      add
        (Finding.error "order-contract" "translated statement is not a SELECT"));
  Finding.sort (List.rev !acc)
