(** Order-correctness checking of translated statements.

    The paper's contract: a single-statement translation must return result
    nodes in document order when the encoding can express it — GLOBAL and
    GLOBAL_GAP order by the result alias's [g_order], DEWEY and ORDPATH by
    the binary [path] — and LOCAL statements are explicitly unordered (the
    middle tier sorts, at documented cost). Axes that need interval
    numbering ([descendant::], [following::], [ancestor::], ...) may only
    appear under encodings that support them. This module checks a parsed
    statement against the metadata {!Ordered_xml.Translate_sql} emits,
    rather than re-deriving the contract from SQL text. *)

val expected_order_column : Ordered_xml.Encoding.t -> string option
(** The document-order column the encoding's translations must ORDER BY,
    or [None] for LOCAL (no such column exists). *)

val check_stmt :
  Ordered_xml.Encoding.t ->
  meta:Ordered_xml.Translate_sql.fragment_meta ->
  Reldb.Sql_ast.stmt ->
  Finding.t list
(** Check a translated statement: it must be a SELECT whose ORDER BY is
    exactly the encoding's document-order column on the result alias
    (ascending), the metadata must agree with the encoding's contract, and
    every axis the path used must be expressible under the encoding.
    LOCAL statements get an [Info] noting the middle tier must sort. *)

val check_axes :
  ?severity:Finding.severity ->
  Ordered_xml.Encoding.t ->
  Ordered_xml.Xpath_ast.path ->
  Finding.t list
(** Axis-support check on a raw path (no translation needed): one finding
    per axis the encoding cannot express in a single statement. Severity
    defaults to [Error]. *)
