module A = Ordered_xml.Xpath_ast
module Dtd = Xmllib.Dtd

(* ------------------------------------------------------------------ *)
(* Cardinality lattice                                                 *)
(* ------------------------------------------------------------------ *)

type card = Zero | One | Many

let card_add a b = match (a, b) with Zero, x | x, Zero -> x | _ -> Many

let card_mul a b =
  match (a, b) with Zero, _ | _, Zero -> Zero | One, One -> One | _ -> Many

let card_max a b =
  match (a, b) with
  | Many, _ | _, Many -> Many
  | One, _ | _, One -> One
  | Zero, Zero -> Zero

let card_le_one = function Zero | One -> true | Many -> false

let card_of_bounds (_mn, mx) =
  match mx with Some 0 -> Zero | Some 1 -> One | _ -> Many

(* ------------------------------------------------------------------ *)
(* Reachability graph                                                  *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

type graph = {
  dtd : Dtd.t;
  roots : string list;  (* possible document root elements *)
  reachable : SSet.t;  (* declared elements reachable from the roots *)
  edges : (string, (string * (int * int option)) list) Hashtbl.t;
      (* parent -> per-child occurrence bounds (declared children only) *)
  rev : (string, SSet.t) Hashtbl.t;  (* child -> declared parents *)
  occ : (string, card) Hashtbl.t;  (* per-document occurrence bound *)
}

let default_roots dtd =
  let names = List.sort_uniq compare (Dtd.element_names dtd) in
  let as_child =
    List.fold_left
      (fun acc e ->
        List.fold_left
          (fun acc (c, _) -> SSet.add c acc)
          acc (Dtd.child_bounds dtd e))
      SSet.empty names
  in
  (* a document root is an element no content model mentions; recursive or
     ANY-heavy DTDs may leave none, in which case any element may be root *)
  match List.filter (fun e -> not (SSet.mem e as_child)) names with
  | [] -> names
  | rs -> rs

let graph ?roots dtd =
  let declared n = Dtd.content_of dtd n <> None in
  let roots =
    match roots with
    | Some rs -> List.sort_uniq compare (List.filter declared rs)
    | None -> default_roots dtd
  in
  let edges = Hashtbl.create 16 and rev = Hashtbl.create 16 in
  (* BFS over declared-child edges; undeclared names in content models are
     validation errors, so valid documents never contain them *)
  let rec visit seen = function
    | [] -> seen
    | e :: rest when SSet.mem e seen -> visit seen rest
    | e :: rest ->
        let bounds =
          List.filter
            (fun (c, b) -> declared c && card_of_bounds b <> Zero)
            (Dtd.child_bounds dtd e)
        in
        Hashtbl.replace edges e bounds;
        List.iter
          (fun (c, _) ->
            let ps =
              Option.value (Hashtbl.find_opt rev c) ~default:SSet.empty
            in
            Hashtbl.replace rev c (SSet.add e ps))
          bounds;
        visit (SSet.add e seen) (List.map fst bounds @ rest)
  in
  let reachable = visit SSet.empty roots in
  (* per-document occurrence bound: a monotone fixpoint over the finite
     lattice; recursion saturates to Many *)
  let occ = Hashtbl.create 16 in
  let get e = Option.value (Hashtbl.find_opt occ e) ~default:Zero in
  let changed = ref true in
  while !changed do
    changed := false;
    SSet.iter
      (fun e ->
        let from_root = if List.mem e roots then One else Zero in
        let v =
          SSet.fold
            (fun p acc ->
              let eb =
                match
                  List.assoc_opt e
                    (Option.value (Hashtbl.find_opt edges p) ~default:[])
                with
                | Some b -> card_of_bounds b
                | None -> Zero
              in
              card_add acc (card_mul (get p) eb))
            (Option.value (Hashtbl.find_opt rev e) ~default:SSet.empty)
            from_root
        in
        if v <> get e then begin
          Hashtbl.replace occ e v;
          changed := true
        end)
      reachable
  done;
  { dtd; roots; reachable; edges; rev; occ }

let graph_roots g = g.roots
let graph_reachable g = SSet.elements g.reachable
let occurrence g e = Option.value (Hashtbl.find_opt g.occ e) ~default:Zero
let edge_bounds g p = Option.value (Hashtbl.find_opt g.edges p) ~default:[]

let edge_card g p c =
  match List.assoc_opt c (edge_bounds g p) with
  | Some b -> card_of_bounds b
  | None -> Zero

let elem_parents g c =
  Option.value (Hashtbl.find_opt g.rev c) ~default:SSet.empty

(* ------------------------------------------------------------------ *)
(* Abstract node kinds and axis transitions                            *)
(* ------------------------------------------------------------------ *)

(* Where can a step land? [K_root] is the virtual document root — only ever
   a context, never a result (it is not a row; [parent IS NULL] marks the
   root element). Text/comment/PI kinds carry their owner element; the
   validator permits comments and PIs anywhere except under EMPTY content
   and text only under mixed/ANY content. *)
type kind =
  | K_root
  | K_elem of string
  | K_text of string
  | K_comment of string
  | K_pi of string
  | K_attr of string * string  (* owner element, attribute name *)

module KSet = Set.Make (struct
  type t = kind

  let compare = compare
end)

let kset_of_list l = List.fold_left (fun s k -> KSet.add k s) KSet.empty l

let children_of_kind g = function
  | K_root -> List.map (fun r -> K_elem r) g.roots
  | K_elem e ->
      let elems = List.map (fun (c, _) -> K_elem c) (edge_bounds g e) in
      let extra = if Dtd.allows_text g.dtd e then [ K_text e ] else [] in
      let extra =
        if Dtd.allows_comments g.dtd e then K_comment e :: K_pi e :: extra
        else extra
      in
      elems @ extra
  | K_text _ | K_comment _ | K_pi _ | K_attr _ -> []

let parents_of_kind g = function
  | K_root -> []
  | K_elem e ->
      (* the document root element has no parent row, so [K_root] is never
         a parent-axis result *)
      SSet.fold (fun p acc -> K_elem p :: acc) (elem_parents g e) []
  | K_text e | K_comment e | K_pi e | K_attr (e, _) -> [ K_elem e ]

let closure next start =
  let rec go seen = function
    | [] -> seen
    | k :: rest ->
        if KSet.mem k seen then go seen rest
        else go (KSet.add k seen) (next k @ rest)
  in
  go KSet.empty start

let descendants g ks =
  closure (children_of_kind g)
    (KSet.fold (fun k acc -> children_of_kind g k @ acc) ks [])

let ancestors g ks =
  closure (parents_of_kind g)
    (KSet.fold (fun k acc -> parents_of_kind g k @ acc) ks [])

let siblings g ks =
  KSet.fold
    (fun k acc ->
      match k with
      | K_root | K_attr _ -> acc (* attributes have no siblings *)
      | K_elem _ | K_text _ | K_comment _ | K_pi _ ->
          List.fold_left
            (fun acc p ->
              List.fold_left
                (fun acc c -> KSet.add c acc)
                acc (children_of_kind g p))
            acc (parents_of_kind g k))
    ks KSet.empty

let axis_kinds g (axis : A.axis) ks =
  match axis with
  | A.Self -> ks
  | A.Child ->
      KSet.fold
        (fun k acc -> KSet.union acc (kset_of_list (children_of_kind g k)))
        ks KSet.empty
  | A.Attribute ->
      KSet.fold
        (fun k acc ->
          match k with
          | K_elem e ->
              List.fold_left
                (fun acc (n, _) -> KSet.add (K_attr (e, n)) acc)
                acc
                (Dtd.attributes_of g.dtd e)
          | _ -> acc)
        ks KSet.empty
  | A.Parent ->
      KSet.fold
        (fun k acc -> KSet.union acc (kset_of_list (parents_of_kind g k)))
        ks KSet.empty
  | A.Descendant -> descendants g ks
  | A.Descendant_or_self -> KSet.union ks (descendants g ks)
  | A.Ancestor -> ancestors g ks
  | A.Ancestor_or_self -> KSet.union ks (ancestors g ks)
  | A.Following_sibling | A.Preceding_sibling -> siblings g ks
  | A.Following | A.Preceding ->
      (* over-approximation: any non-attribute node in the document; exact
         narrowing happens in the strength-reduction pass *)
      if KSet.is_empty (KSet.remove K_root ks) then KSet.empty
      else descendants g (KSet.singleton K_root)

let test_filter (axis : A.axis) (test : A.node_test) ks =
  KSet.filter
    (fun k ->
      match (axis, test, k) with
      | A.Attribute, A.Name n, K_attr (_, a) -> a = n
      | A.Attribute, (A.Any_name | A.Node_test), K_attr _ -> true
      | A.Attribute, _, _ -> false
      | _, A.Name n, K_elem e -> e = n
      | _, A.Any_name, K_elem _ -> true
      | _, A.Text_test, K_text _ -> true
      | _, A.Comment_test, K_comment _ -> true
      | _, A.Node_test, (K_elem _ | K_text _ | K_comment _ | K_pi _) -> true
      | _ -> false)
    ks

let raw_target g ks (s : A.step) =
  test_filter s.A.axis s.A.test (axis_kinds g s.A.axis ks)

(* ------------------------------------------------------------------ *)
(* Per-context-node result cardinality of a step                       *)
(* ------------------------------------------------------------------ *)

let text_card g e = if Dtd.allows_text g.dtd e then Many else Zero
let comment_card g e = if Dtd.allows_comments g.dtd e then Many else Zero

let child_elem_card g e =
  List.fold_left
    (fun acc (_, b) -> card_add acc (card_of_bounds b))
    Zero (edge_bounds g e)

(* how many descendants named [n] can one instance of each element have?
   D(e) = sum over edges e->c of card(edge) * ((c = n) + D(c)); monotone,
   saturates to Many through recursion *)
let desc_name_card g n =
  let d = Hashtbl.create 16 in
  let get e = Option.value (Hashtbl.find_opt d e) ~default:Zero in
  let changed = ref true in
  while !changed do
    changed := false;
    SSet.iter
      (fun e ->
        let v =
          List.fold_left
            (fun acc (c, b) ->
              card_add acc
                (card_mul (card_of_bounds b)
                   (card_add (if c = n then One else Zero) (get c))))
            Zero (edge_bounds g e)
        in
        if v <> get e then begin
          Hashtbl.replace d e v;
          changed := true
        end)
      g.reachable
  done;
  get

let step_card g ctx (s : A.step) =
  let over f = KSet.fold (fun k acc -> card_max acc (f k)) ctx Zero in
  match s.A.axis with
  | A.Self | A.Parent -> One
  | A.Attribute -> (
      match s.A.test with
      | A.Name _ -> One
      | A.Any_name | A.Node_test ->
          over (function
            | K_elem e -> (
                match List.length (Dtd.attributes_of g.dtd e) with
                | 0 -> Zero
                | 1 -> One
                | _ -> Many)
            | _ -> Zero)
      | A.Text_test | A.Comment_test -> Zero)
  | A.Child ->
      over (fun k ->
        match (k, s.A.test) with
        | K_root, (A.Name _ | A.Any_name | A.Node_test) ->
            One (* the one root element *)
        | K_root, (A.Text_test | A.Comment_test) -> Zero
        | K_elem e, A.Name n -> edge_card g e n
        | K_elem e, A.Any_name -> child_elem_card g e
        (* comments may split adjacent text nodes, so text under mixed
           content is Many even for pure (#PCDATA) *)
        | K_elem e, A.Text_test -> text_card g e
        | K_elem e, A.Comment_test -> comment_card g e
        | K_elem e, A.Node_test ->
            card_add (child_elem_card g e)
              (card_add (text_card g e) (comment_card g e))
        | _ -> Zero)
  | A.Descendant -> (
      match s.A.test with
      | A.Name n ->
          let d = desc_name_card g n in
          over (function
            | K_root ->
                (* one root element per document: max, not sum *)
                List.fold_left
                  (fun acc r ->
                    card_max acc
                      (card_add (if r = n then One else Zero) (d r)))
                  Zero g.roots
            | K_elem e -> d e
            | _ -> Zero)
      | _ -> Many)
  | A.Descendant_or_self | A.Following_sibling | A.Preceding_sibling
  | A.Following | A.Preceding | A.Ancestor | A.Ancestor_or_self ->
      Many

(* upper bound on results of a relative path per context node (ignores
   predicates, which only filter) *)
let path_card g ctx (p : A.path) =
  let rec go ctx acc = function
    | [] -> acc
    | s :: rest ->
        let ts = raw_target g ctx s in
        if KSet.is_empty ts then Zero
        else go ts (card_mul acc (step_card g ctx s)) rest
  in
  go ctx One p.A.steps

(* ------------------------------------------------------------------ *)
(* Three-valued static predicate evaluation                            *)
(* ------------------------------------------------------------------ *)

type tri = T_true | T_false | T_unknown

let tri_not = function
  | T_true -> T_false
  | T_false -> T_true
  | T_unknown -> T_unknown

let tri_and a b =
  match (a, b) with
  | T_false, _ | _, T_false -> T_false
  | T_true, T_true -> T_true
  | _ -> T_unknown

let tri_or a b =
  match (a, b) with
  | T_true, _ | _, T_true -> T_true
  | T_false, T_false -> T_false
  | _ -> T_unknown

let of_bool b = if b then T_true else T_false

let cmp_int (op : A.cmp) a b =
  match op with
  | A.Eq -> a = b
  | A.Ne -> a <> b
  | A.Lt -> a < b
  | A.Le -> a <= b
  | A.Gt -> a > b
  | A.Ge -> a >= b

(* the node set a value comparison actually reads: element results compare
   via their text children (the translator's string-value convention) *)
let value_set g ts (p : A.path) =
  let selects_elements =
    match List.rev p.A.steps with
    | last :: _ -> (
        match (last.A.axis, last.A.test) with
        | A.Attribute, _ -> false
        | _, (A.Name _ | A.Any_name | A.Node_test) -> true
        | _, (A.Text_test | A.Comment_test) -> false)
    | [] -> true
  in
  if selects_elements then
    raw_target g ts { A.axis = A.Child; test = A.Text_test; preds = [] }
  else ts

let rec steps_target g ctx steps =
  List.fold_left
    (fun ts (s : A.step) ->
      if KSet.is_empty ts then ts
      else
        let out = raw_target g ts s in
        if KSet.is_empty out then out
        else
          let single = card_le_one (step_card g ts s) in
          if
            List.exists
              (fun p -> pred_static g out ~single p = T_false)
              s.A.preds
          then KSet.empty
          else out)
    ctx steps

and pred_static g ctx ~single (p : A.predicate) =
  match p with
  | A.P_pos (op, k) -> if single then of_bool (cmp_int op 1 k) else T_unknown
  | A.P_last -> if single then T_true else T_unknown
  | A.P_exists pth ->
      if KSet.is_empty (steps_target g ctx pth.A.steps) then T_false
      else T_unknown
  | A.P_cmp (pth, _, _) ->
      let ts = steps_target g ctx pth.A.steps in
      if KSet.is_empty ts || KSet.is_empty (value_set g ts pth) then T_false
      else T_unknown
  | A.P_count (pth, op, k) -> (
      let ts = steps_target g ctx pth.A.steps in
      let decide lo hi =
        (* count ranges over [lo..hi]; hi < 0 means unbounded *)
        let outcomes =
          List.init
            (if hi < 0 then 0 else hi - lo + 1)
            (fun i -> cmp_int op (lo + i) k)
        in
        if hi < 0 then
          (* unbounded: only universally monotone forms decide *)
          match op with
          | A.Ge when k <= lo -> T_true
          | A.Gt when k < lo -> T_true
          | A.Ne when k < lo -> T_true
          | A.Lt when k <= lo -> T_false
          | A.Le when k < lo -> T_false
          | A.Eq when k < lo -> T_false
          | _ -> T_unknown
        else if List.for_all Fun.id outcomes then T_true
        else if List.for_all not outcomes then T_false
        else T_unknown
      in
      if KSet.is_empty ts then of_bool (cmp_int op 0 k)
      else
        match path_card g ctx pth with
        | Zero -> of_bool (cmp_int op 0 k)
        | One -> decide 0 1
        | Many -> decide 0 (-1))
  | A.P_and (a, b) ->
      tri_and (pred_static g ctx ~single a) (pred_static g ctx ~single b)
  | A.P_or (a, b) ->
      tri_or (pred_static g ctx ~single a) (pred_static g ctx ~single b)
  | A.P_not a -> tri_not (pred_static g ctx ~single a)

(* simplify a predicate, dropping statically-decided subterms *)
let rec simp_pred g ctx ~single (p : A.predicate) =
  match p with
  | A.P_and (a, b) -> (
      match (simp_pred g ctx ~single a, simp_pred g ctx ~single b) with
      | `False, _ | _, `False -> `False
      | `True, x | x, `True -> x
      | `Keep a', `Keep b' -> `Keep (A.P_and (a', b')))
  | A.P_or (a, b) -> (
      match (simp_pred g ctx ~single a, simp_pred g ctx ~single b) with
      | `True, _ | _, `True -> `True
      | `False, x | x, `False -> x
      | `Keep a', `Keep b' -> `Keep (A.P_or (a', b')))
  | A.P_not a -> (
      match simp_pred g ctx ~single a with
      | `True -> `False
      | `False -> `True
      | `Keep a' -> `Keep (A.P_not a'))
  | p -> (
      match pred_static g ctx ~single p with
      | T_true -> `True
      | T_false -> `False
      | T_unknown -> `Keep p)

(* ------------------------------------------------------------------ *)
(* Axis strength reduction                                             *)
(* ------------------------------------------------------------------ *)

let max_chain_len = 12

(* elements from which [n] is reachable via child edges *)
let can_reach g n =
  let rec go seen = function
    | [] -> seen
    | e :: rest when SSet.mem e seen -> go seen rest
    | e :: rest ->
        go (SSet.add e seen)
          (SSet.elements (elem_parents g e) @ rest)
  in
  go SSet.empty (SSet.elements (elem_parents g n))

exception Give_up

(* Every label chain from the start kinds down to [n]. Fails (None) when
   [n] can recur below itself (matches at several depths), when more than
   one distinct chain exists, or when a chain is oversized. Also returns
   the saturated product of the edge cardinalities excluding the final
   edge into [n]: when that product is One, each context node has at most
   one instance of the chain's parent, so positions inside the rewritten
   child chain group exactly as descendant positions did. *)
let chains_to g starts n =
  if SSet.mem n (can_reach g n) then None
  else begin
    let reach = can_reach g n in
    let chains = ref [] and inter_card = ref Zero in
    let record labels card =
      if not (List.mem labels !chains) then chains := labels :: !chains;
      if List.length !chains > 1 then raise Give_up;
      inter_card := card_max !inter_card card
    in
    let rec dfs labels stack card e =
      if List.length labels > max_chain_len then raise Give_up;
      if e = n then record labels card
        (* nothing below [n] can reach [n] again: stop descending *)
      else
        List.iter
          (fun (c, b) ->
            if c = n || SSet.mem c reach then begin
              if List.mem c stack then raise Give_up;
              let card' =
                if c = n then card else card_mul card (card_of_bounds b)
              in
              dfs (labels @ [ c ]) (c :: stack) card' c
            end)
          (edge_bounds g e)
    in
    let enter card c = dfs [ c ] [ c ] card c in
    try
      KSet.iter
        (fun k ->
          match k with
          | K_root ->
              List.iter
                (fun r -> if r = n || SSet.mem r reach then enter One r)
                g.roots
          | K_elem e ->
              List.iter
                (fun (c, b) ->
                  if c = n || SSet.mem c reach then
                    enter (if c = n then One else card_of_bounds b) c)
                (edge_bounds g e)
          | K_text _ | K_comment _ | K_pi _ | K_attr _ -> ())
        starts;
      match !chains with
      | [ chain ] -> Some (chain, !inter_card)
      | _ -> None
    with Give_up -> None
  end

(* descendant::n -> child chain when every DTD path from the context to [n]
   has one fixed label sequence *)
let reduce_descendant g ctx (s : A.step) =
  match (s.A.axis, s.A.test) with
  | A.Descendant, A.Name n -> (
      match chains_to g ctx n with
      | Some (chain, inter) ->
          (* the product of the intermediate edge cardinalities must be One
             for positional predicates to keep their groups *)
          if A.step_has_positional s && not (card_le_one inter) then None
          else
            let prefix =
              List.filteri (fun i _ -> i < List.length chain - 1) chain
            in
            Some (A.child_chain prefix @ [ { s with A.axis = A.Child } ])
      | None -> None)
  | _ -> None

(* following::n / preceding::n -> the sibling axis when schema proves every
   instance of [n] and every context node share the one instance of a
   single parent element *)
let reduce_following g ctx (s : A.step) =
  let sibling_axis =
    match s.A.axis with
    | A.Following -> Some A.Following_sibling
    | A.Preceding -> Some A.Preceding_sibling
    | _ -> None
  in
  match (sibling_axis, s.A.test) with
  | Some axis, A.Name n when not (KSet.is_empty ctx) ->
      let all_elems =
        KSet.for_all (function K_elem _ -> true | _ -> false) ctx
      in
      if not all_elems then None
      else
        let parents =
          KSet.fold
            (fun k acc ->
              match k with
              | K_elem e -> SSet.union acc (elem_parents g e)
              | _ -> acc)
            ctx (elem_parents g n)
        in
        (match SSet.elements parents with
        | [ p ] when card_le_one (occurrence g p) ->
            Some { s with A.axis = axis }
        | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The analysis driver                                                 *)
(* ------------------------------------------------------------------ *)

type result = {
  findings : Finding.t list;
  rewritten : A.path;
  satisfiable : bool;
  unique : bool;
}

let enabled = ref true

(* can the single-statement join over this predicate produce duplicate
   bindings for one context node? *)
let rec pred_unique g ctx (p : A.predicate) =
  match p with
  | A.P_exists pth -> card_le_one (path_card g ctx pth)
  | A.P_cmp (pth, _, _) ->
      (* element targets read an extra text() alias that can bind to any of
         several text children, so only direct-value targets stay unique *)
      let direct =
        match List.rev pth.A.steps with
        | last :: _ -> (
            match (last.A.axis, last.A.test) with
            | A.Attribute, _ -> true
            | _, (A.Text_test | A.Comment_test) -> true
            | _ -> false)
        | [] -> false
      in
      direct && card_le_one (path_card g ctx pth)
  | A.P_and (a, b) -> pred_unique g ctx a && pred_unique g ctx b
  | A.P_pos _ | A.P_last | A.P_or _ | A.P_not _ | A.P_count _ -> false

let analyze ?roots dtd (path : A.path) =
  if not !enabled then
    { findings = []; rewritten = path; satisfiable = true; unique = false }
  else begin
    let g = graph ?roots dtd in
    let findings = ref [] in
    let note f = findings := f :: !findings in
    let unique = ref true in
    let unsat = ref None in
    (* both translators evaluate relative paths from the document root too *)
    let rec walk ctx acc idx = function
      | [] -> List.rev acc
      | (s : A.step) :: rest when !unsat = None -> begin
          (* pass 3: axis strength reduction (produces plain child /
             sibling steps that the passes below then process) *)
          match reduce_descendant g ctx s with
          | Some steps ->
              note
                (Finding.info "schema-axis"
                   "step %d: descendant::%s has one DTD shape; rewritten \
                    to the child chain %s"
                   idx (A.test_name s.A.test)
                   (String.concat "/" (List.map A.step_to_string steps)));
              walk ctx acc idx (steps @ rest)
          | None -> (
              match reduce_following g ctx s with
              | Some s' ->
                  note
                    (Finding.info "schema-axis"
                       "step %d: the schema confines %s::%s to the \
                        context's parent; narrowed to %s::"
                       idx (A.axis_name s.A.axis) (A.test_name s.A.test)
                       (A.axis_name s'.A.axis));
                  walk ctx acc idx (s' :: rest)
              | None ->
                  (* pass 1: satisfiability *)
                  let first_ok =
                    idx > 1
                    ||
                    match s.A.axis with
                    | A.Child | A.Descendant | A.Descendant_or_self -> true
                    | _ -> false
                  in
                  let ts =
                    if first_ok then raw_target g ctx s else KSet.empty
                  in
                  if KSet.is_empty ts then begin
                    unsat :=
                      Some
                        (Finding.error "schema-unsat"
                           "step %d (%s): no document valid under the DTD \
                            has nodes matching this step"
                           idx (A.step_to_string s));
                    List.rev acc
                  end
                  else begin
                    (* pass 2: cardinality — a provably-singleton step
                       makes position() = last() = 1 *)
                    let single = card_le_one (step_card g ctx s) in
                    let dead = ref false in
                    let preds =
                      List.filter_map
                        (fun p ->
                          match simp_pred g ts ~single p with
                          | `True ->
                              note
                                (Finding.info "schema-cardinality"
                                   "step %d (%s): predicate [%s] always \
                                    holds under the DTD; dropped"
                                   idx (A.step_to_string s)
                                   (A.pred_to_string p));
                              None
                          | `False ->
                              dead := true;
                              unsat :=
                                Some
                                  (Finding.error "schema-unsat"
                                     "step %d (%s): predicate [%s] can \
                                      never hold under the DTD"
                                     idx (A.step_to_string s)
                                     (A.pred_to_string p));
                              None
                          | `Keep p' -> Some p')
                        s.A.preds
                    in
                    if !dead then List.rev acc
                    else begin
                      let s' = { s with A.preds } in
                      (* track single-statement uniqueness over the
                         rewritten steps *)
                      (match s'.A.axis with
                      | A.Child | A.Attribute | A.Self -> ()
                      | _ when idx = 1 -> ()
                      | _ -> unique := false);
                      if
                        not
                          (List.for_all (pred_unique g ts) s'.A.preds)
                      then unique := false;
                      walk ts (s' :: acc) (idx + 1) rest
                    end
                  end)
        end
      | _ :: _ -> List.rev acc
    in
    let steps = walk (KSet.singleton K_root) [] 1 path.A.steps in
    match !unsat with
    | Some f ->
        {
          findings = Finding.sort (List.rev (f :: !findings));
          rewritten = path;
          satisfiable = false;
          unique = false;
        }
    | None ->
        let rewritten = { path with A.steps } in
        let unique = !unique in
        if unique && List.length steps > 1 then
          note
            (Finding.info "schema-distinct"
               "the DTD proves result rows are already distinct; DISTINCT \
                can be skipped in single-statement mode");
        {
          findings = Finding.sort (List.rev !findings);
          rewritten;
          satisfiable = true;
          unique;
        }
  end

let eval ?roots dtd db ~doc enc (path : A.path) =
  if not !enabled then Ordered_xml.Translate.eval db ~doc enc path
  else
    let r = analyze ?roots dtd path in
    if not r.satisfiable then
      { Ordered_xml.Translate.rows = []; statements = 0; sql_log = [] }
    else Ordered_xml.Translate.eval db ~doc enc r.rewritten
