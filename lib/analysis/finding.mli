(** Analyzer findings: a severity, the rule that fired, and a message.

    [Error] means the statement is wrong (order contract violated, result
    would be incorrect); [Warning] means it is suspicious or wasteful
    (contradiction, cartesian product, unsargable predicate); [Info] is a
    note (degenerate-but-harmless forms, documented LOCAL unorderedness). *)

type severity = Error | Warning | Info

type t = { severity : severity; rule : string; message : string }

val error : string -> ('a, unit, string, t) format4 -> 'a
(** [error rule fmt ...] builds an [Error] finding. *)

val warning : string -> ('a, unit, string, t) format4 -> 'a
val info : string -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val to_string : t -> string
(** [severity[rule] message], the CLI line format. *)

val sort : t list -> t list
(** Stable sort, most severe first. *)

val has_errors : t list -> bool
