type severity = Error | Warning | Info

type t = { severity : severity; rule : string; message : string }

let make severity rule fmt =
  Printf.ksprintf (fun message -> { severity; rule; message }) fmt

let error rule fmt = make Error rule fmt
let warning rule fmt = make Warning rule fmt
let info rule fmt = make Info rule fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let to_string f =
  Printf.sprintf "%s[%s] %s" (severity_name f.severity) f.rule f.message

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let sort fs =
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) fs

let has_errors fs = List.exists (fun f -> f.severity = Error) fs
