module P = Reldb.Plan
module T = Reldb.Table
module E = Reldb.Expr
module V = Reldb.Value

(* [col op const] either way around, with an operator an index range or
   probe can serve *)
let sargable_col = function
  | E.Cmp (op, E.Col i, E.Const v) | E.Cmp (op, E.Const v, E.Col i)
    when (not (V.is_null v)) && op <> E.Ne ->
      Some i
  | _ -> None

(* Filter chain ending in a sequential scan: the conjuncts the scan has to
   test row by row. Column positions are local to the table schema because a
   scan's output schema is the table's. *)
let rec filtered_seq_scan preds = function
  | P.Filter (e, inner) -> filtered_seq_scan (E.conjuncts e @ preds) inner
  | P.Seq_scan t -> if preds = [] then None else Some (t, preds)
  | _ -> None

let rec has_base_scan = function
  | P.Seq_scan _ | P.Index_scan _ -> true
  | p -> List.exists has_base_scan (P.children p)

let lint_plan plan =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let reported : (string * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec go p =
    match p with
    | P.Limit { limit = Some 0; _ } ->
        (* the planner emits LIMIT 0 when it proves the WHERE contradictory;
           the subtree below never executes, so its join shape is moot *)
        ()
    | _ -> go_node p
  and go_node p =
    (match filtered_seq_scan [] p with
    | Some (t, preds) ->
        List.iter
          (fun conj ->
            match sargable_col conj with
            | None -> ()
            | Some col ->
                List.iter
                  (fun idx ->
                    if
                      Array.length idx.T.key_cols > 0
                      && idx.T.key_cols.(0) = col
                    then begin
                      let key = (T.name t, idx.T.idx_name) in
                      if not (Hashtbl.mem reported key) then begin
                        Hashtbl.add reported key ();
                        let cname =
                          (Reldb.Table.schema t).(col).Reldb.Schema.col_name
                        in
                        add
                          (Finding.warning "seq-scan-with-index"
                             "sequential scan of %s filters on %s although \
                              index %s leads with that column"
                             (T.name t) cname idx.T.idx_name)
                      end
                    end)
                  (T.indexes t))
          preds
    | None -> ());
    (match p with
    | P.Nl_join { pred = None; _ } ->
        add
          (Finding.warning "cross-join"
             "nested-loop join with no predicate: cartesian product")
    | P.Nl_join { pred = Some pr; outer; inner } ->
        if has_base_scan inner then begin
          let split = Reldb.Schema.arity (P.schema_of outer) in
          let cols = E.columns pr in
          let connects =
            List.exists (fun c -> c < split) cols
            && List.exists (fun c -> c >= split) cols
          in
          if connects then
            (* a range/theta join (the descendant-axis interval joins land
               here): quadratic but the best a single pass offers, so only
               worth a note *)
            add
              (Finding.info "nl-join-rescan"
                 "nested-loop range join re-reads its inner base table per \
                  outer row (no equi-predicate available)")
          else
            add
              (Finding.warning "nl-join-rescan"
                 "nested-loop join predicate does not connect its two sides; \
                  the inner base table is rescanned for every outer row")
        end
    | _ -> ());
    List.iter go (P.children p)
  in
  go plan;
  Finding.sort (List.rev !acc)
