(** Lint over compiled physical plans.

    Rules:
    - [seq-scan-with-index] (warning): a filtered sequential scan where a
      sargable conjunct matches the leading column of one of the table's
      indexes — the planner left an access path on the table.
    - [cross-join] (warning): a nested-loop join with no predicate.
    - [nl-join-rescan]: a nested-loop join whose inner side reads a base
      table — every outer row pays for the inner relation. A warning when
      the predicate does not even connect the two sides; an info note when
      it does (range/theta joins such as the descendant-axis interval join
      have no equi form, so the nested loop is the best single-pass plan). *)

val lint_plan : Reldb.Plan.t -> Finding.t list
