(** Schema-aware XPath static analysis: what a DTD proves about a query
    before any SQL runs.

    The schema-driven shredders of the paper's era used the DTD to decide
    both layout and what the translator could assume; this module recovers
    the query-side half for the DTD-lite subset. From a {!Xmllib.Dtd.t} it
    derives an element reachability graph with per-edge occurrence bounds
    (from [?]/[*]/[+]/seq/choice/mixed content models), then runs three
    passes over a parsed path:

    + {b satisfiability} — a step whose node test is unreachable from the
      inferred context set under its axis can match nothing in any valid
      document (undeclared element or attribute, [text()] under
      EMPTY-content elements, value comparison against an element that can
      never carry text). Flagged as an [Error] finding; evaluation
      short-circuits to a 0-row result without touching the database.
    + {b cardinality inference} — where the schema proves at-most-one match
      per context node, no-op [\[1\]]/[\[last()\]] predicates are dropped
      and the result is marked {e unique} so {!Ordered_xml.Translate_sql}
      can skip [DISTINCT].
    + {b axis strength reduction} — [descendant::a] becomes an explicit
      [child::] chain when every DTD path to [a] from the context has one
      fixed shape (a big win for LOCAL, whose descendant scans otherwise
      recurse in the middle tier), and [following::]/[preceding::] narrow
      to the sibling axes when the schema proves no matches outside the
      context's parent.

    Every rewrite is sound for {e all} documents valid under the DTD; the
    differential tests check rewritten and blind translations against
    {!Ordered_xml.Dom_eval} on DTD-sampled documents. *)

type card = Zero | One | Many
(** Occurrence cardinality lattice (upper bounds). *)

type graph
(** Element reachability graph derived from a DTD: possible document roots,
    reachable elements, per-edge child occurrence bounds, and global
    occurrence bounds per element. *)

val graph : ?roots:string list -> Xmllib.Dtd.t -> graph
(** Build the graph. [?roots] overrides the possible document root
    elements; the default is every declared element that appears in no
    other element's content model (falling back to all declared elements
    when that set is empty, e.g. for recursive or ANY-heavy DTDs). *)

val graph_roots : graph -> string list
val graph_reachable : graph -> string list
(** Elements reachable from the roots, sorted. *)

val occurrence : graph -> string -> card
(** Upper bound on how many instances of the element a single valid
    document can contain. *)

type result = {
  findings : Finding.t list;
  rewritten : Ordered_xml.Xpath_ast.path;
      (** the path after sound schema rewrites (equal to the input when
          nothing fired or the path is unsatisfiable) *)
  satisfiable : bool;
      (** [false] when no valid document can have results: translation
          should short-circuit to a 0-row plan *)
  unique : bool;
      (** the single-statement join over [rewritten] cannot produce
          duplicate result rows, so [DISTINCT] may be skipped *)
}

val enabled : bool ref
(** Global gate (default [true]). When [false], {!analyze} returns the
    path unchanged with no findings and {!eval} translates blind — the
    differential tests flip this to compare schema-aware and blind runs. *)

val analyze :
  ?roots:string list -> Xmllib.Dtd.t -> Ordered_xml.Xpath_ast.path -> result
(** Run the three passes on an absolute (or root-context) path. *)

val eval :
  ?roots:string list ->
  Xmllib.Dtd.t ->
  Reldb.Db.t ->
  doc:string ->
  Ordered_xml.Encoding.t ->
  Ordered_xml.Xpath_ast.path ->
  Ordered_xml.Translate.result
(** Schema-aware evaluation: analyze, short-circuit unsatisfiable paths to
    an empty result with zero SQL statements, otherwise evaluate the
    rewritten path with {!Ordered_xml.Translate.eval}. *)
