module S = Reldb.Sql_ast
module E = Reldb.Expr
module V = Reldb.Value
module Simplify = Reldb.Simplify

let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Surface-expression helpers                                          *)
(* ------------------------------------------------------------------ *)

let cmp_str = function
  | E.Eq -> "="
  | E.Ne -> "<>"
  | E.Lt -> "<"
  | E.Le -> "<="
  | E.Gt -> ">"
  | E.Ge -> ">="

let arith_str = function
  | E.Add -> "+"
  | E.Sub -> "-"
  | E.Mul -> "*"
  | E.Div -> "/"
  | E.Mod -> "%"

let rec render (e : S.sexpr) =
  match e with
  | S.E_const v -> V.to_sql_literal v
  | S.E_param i -> Printf.sprintf "?%d" (i + 1)
  | S.E_col (Some q, n) -> q ^ "." ^ n
  | S.E_col (None, n) -> n
  | S.E_cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (render a) (cmp_str op) (render b)
  | S.E_and (a, b) -> Printf.sprintf "(%s AND %s)" (render a) (render b)
  | S.E_or (a, b) -> Printf.sprintf "(%s OR %s)" (render a) (render b)
  | S.E_not a -> Printf.sprintf "NOT (%s)" (render a)
  | S.E_arith (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (render a) (arith_str op) (render b)
  | S.E_neg a -> "-" ^ render a
  | S.E_concat (a, b) -> Printf.sprintf "%s || %s" (render a) (render b)
  | S.E_is_null a -> render a ^ " IS NULL"
  | S.E_is_not_null a -> render a ^ " IS NOT NULL"
  | S.E_like (a, p) -> Printf.sprintf "%s LIKE '%s'" (render a) p
  | S.E_in (a, vs) ->
      Printf.sprintf "%s IN (%s)" (render a)
        (String.concat ", " (List.map V.to_sql_literal vs))
  | S.E_between (a, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (render a) (render lo) (render hi)
  | S.E_func (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map render args))
  | S.E_star -> "*"

let rec s_conjuncts e acc =
  match e with
  | S.E_and (a, b) -> s_conjuncts a (s_conjuncts b acc)
  | e -> e :: acc

let rec s_has_col = function
  (* A bound-at-runtime parameter is as opaque as a column: it silences the
     tautology/contradiction lints rather than triggering them. *)
  | S.E_col _ | S.E_param _ -> true
  | S.E_const _ | S.E_star -> false
  | S.E_cmp (_, a, b)
  | S.E_and (a, b)
  | S.E_or (a, b)
  | S.E_arith (_, a, b)
  | S.E_concat (a, b) ->
      s_has_col a || s_has_col b
  | S.E_between (a, b, c) -> s_has_col a || s_has_col b || s_has_col c
  | S.E_not a | S.E_neg a | S.E_is_null a | S.E_is_not_null a
  | S.E_like (a, _)
  | S.E_in (a, _) ->
      s_has_col a
  | S.E_func (_, args) -> List.exists s_has_col args

let rec s_cols e acc =
  match e with
  | S.E_col (q, n) -> (Option.map norm q, norm n) :: acc
  | S.E_const _ | S.E_param _ | S.E_star -> acc
  | S.E_cmp (_, a, b)
  | S.E_and (a, b)
  | S.E_or (a, b)
  | S.E_arith (_, a, b)
  | S.E_concat (a, b) ->
      s_cols a (s_cols b acc)
  | S.E_between (a, b, c) -> s_cols a (s_cols b (s_cols c acc))
  | S.E_not a | S.E_neg a | S.E_is_null a | S.E_is_not_null a
  | S.E_like (a, _)
  | S.E_in (a, _) ->
      s_cols a acc
  | S.E_func (_, args) -> List.fold_right s_cols args acc

let rec walk f e =
  f e;
  match e with
  | S.E_const _ | S.E_param _ | S.E_col _ | S.E_star -> ()
  | S.E_cmp (_, a, b)
  | S.E_and (a, b)
  | S.E_or (a, b)
  | S.E_arith (_, a, b)
  | S.E_concat (a, b) ->
      walk f a;
      walk f b
  | S.E_between (a, b, c) ->
      walk f a;
      walk f b;
      walk f c
  | S.E_not a | S.E_neg a | S.E_is_null a | S.E_is_not_null a
  | S.E_like (a, _)
  | S.E_in (a, _) ->
      walk f a
  | S.E_func (_, args) -> List.iter (walk f) args

let const_of = function
  | S.E_const v -> Some v
  | S.E_neg (S.E_const (V.Int n)) -> Some (V.Int (-n))
  | S.E_neg (S.E_const (V.Float f)) -> Some (V.Float (-.f))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Conversion to Expr for the Simplify core                            *)
(* ------------------------------------------------------------------ *)

(* Column references are interned to positions so the interval analysis can
   correlate conjuncts over the same column; anything it cannot model
   (function calls, [*]) becomes a fresh opaque column — sound, just weaker. *)
let make_converter () =
  let tbl : (string option * string, int) Hashtbl.t = Hashtbl.create 8 in
  let next = ref 0 in
  let fresh () =
    let i = !next in
    incr next;
    i
  in
  let intern key =
    match Hashtbl.find_opt tbl key with
    | Some i -> i
    | None ->
        let i = fresh () in
        Hashtbl.add tbl key i;
        i
  in
  let rec go (e : S.sexpr) : E.t =
    match e with
    | S.E_const v -> E.Const v
    | S.E_param _ -> E.Col (fresh ())  (* opaque to interval analysis *)
    | S.E_col (q, n) -> E.Col (intern (Option.map norm q, norm n))
    | S.E_cmp (op, a, b) -> E.Cmp (op, go a, go b)
    | S.E_and (a, b) -> E.And (go a, go b)
    | S.E_or (a, b) -> E.Or (go a, go b)
    | S.E_not a -> E.Not (go a)
    | S.E_arith (op, a, b) -> E.Arith (op, go a, go b)
    | S.E_neg a -> E.Neg (go a)
    | S.E_concat (a, b) -> E.Concat (go a, go b)
    | S.E_is_null a -> E.Is_null (go a)
    | S.E_is_not_null a -> E.Is_not_null (go a)
    | S.E_like (a, p) -> E.Like (go a, p)
    | S.E_in (a, vs) -> E.In_list (go a, vs)
    | S.E_between (a, lo, hi) ->
        let a' = go a in
        E.And (E.Cmp (E.Ge, a', go lo), E.Cmp (E.Le, a', go hi))
    | S.E_func _ | S.E_star -> E.Col (fresh ())
  in
  go

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

(* alias resolution for a column reference: a qualifier names its FROM
   alias; an unqualified name resolves when only one FROM table could own
   it (trivially with one table, via the catalog schemas otherwise) *)
let make_resolver ?catalog (from : (string * string option) list) =
  let aliases =
    List.map (fun (tn, al) -> norm (Option.value al ~default:tn)) from
  in
  fun q n ->
    match q with
    | Some q -> if List.mem q aliases then Some q else None
    | None -> (
        match from with
        | [ (tn, al) ] -> Some (norm (Option.value al ~default:tn))
        | _ -> (
            match catalog with
            | None -> None
            | Some cat -> (
                let owners =
                  List.filter_map
                    (fun (tn, al) ->
                      match Reldb.Catalog.find_table cat tn with
                      | None -> None
                      | Some t ->
                          Option.map
                            (fun _ -> norm (Option.value al ~default:tn))
                            (Reldb.Schema.find_opt (Reldb.Table.schema t) n))
                    from
                in
                match owners with [ a ] -> Some a | _ -> None)))

let lint_cartesian ~resolve (from : (string * string option) list) where add =
  let aliases =
    List.map (fun (tn, al) -> norm (Option.value al ~default:tn)) from
  in
  if List.length aliases >= 2 then begin
    let parent = Hashtbl.create 8 in
    List.iter (fun a -> Hashtbl.replace parent a a) aliases;
    let rec find a =
      let p = Hashtbl.find parent a in
      if p = a then a
      else begin
        let r = find p in
        Hashtbl.replace parent a r;
        r
      end
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    (* an atom is any predicate below the boolean connectives; every pair of
       aliases it mentions is connected — equality or range alike, since the
       descendant-axis joins of the translator are range joins *)
    let rec atoms e =
      match e with
      | S.E_and (a, b) | S.E_or (a, b) ->
          atoms a;
          atoms b
      | S.E_not a -> atoms a
      | e -> (
          let als =
            List.sort_uniq compare
              (List.filter_map (fun (q, n) -> resolve q n) (s_cols e []))
          in
          match als with
          | first :: rest -> List.iter (union first) rest
          | [] -> ())
    in
    Option.iter atoms where;
    let components = List.sort_uniq compare (List.map find aliases) in
    if List.length components > 1 then
      let groups =
        List.map
          (fun root ->
            String.concat ", " (List.filter (fun a -> find a = root) aliases))
          components
      in
      add
        (Finding.error "cartesian-product"
           "no predicate connects FROM groups {%s}: result is a cartesian \
            product"
           (String.concat "} {" groups))
  end

let lint_conjunct_semantics to_e where add =
  match where with
  | None -> ()
  | Some w ->
      List.iter
        (fun sc ->
          match Simplify.truth_of (Simplify.fold (to_e sc)) with
          | Simplify.True ->
              add
                (Finding.warning "tautology"
                   "conjunct %s is always true and can be dropped" (render sc))
          | _ -> ())
        (s_conjuncts w []);
      (match Simplify.simplify_conjuncts (E.conjuncts (to_e w)) with
      | Simplify.Contradiction ->
          add
            (Finding.warning "contradiction"
               "WHERE clause is always false: no row can satisfy it")
      | Simplify.Conjuncts _ -> ())

let lint_degenerate where add =
  match where with
  | None -> ()
  | Some w ->
      walk
        (fun e ->
          match e with
          | S.E_in (a, [ v ]) ->
              add
                (Finding.info "degenerate-in"
                   "IN with a single value: write %s = %s" (render a)
                   (V.to_sql_literal v))
          | S.E_in (a, vs) when vs <> [] ->
              let distinct = List.sort_uniq V.compare vs in
              if List.length distinct < List.length vs then
                add
                  (Finding.info "degenerate-in"
                     "IN list of %s contains duplicate values" (render a))
          | S.E_between (a, lo, hi) -> (
              match (const_of lo, const_of hi) with
              | Some l, Some h ->
                  let c = V.compare l h in
                  if c > 0 then
                    add
                      (Finding.warning "degenerate-between"
                         "%s is always false (lower bound above upper)"
                         (render e))
                  else if c = 0 then
                    add
                      (Finding.info "degenerate-between"
                         "%s is an equality in disguise: write %s = %s"
                         (render e) (render a) (V.to_sql_literal l))
              | _ -> ())
          | _ -> ())
        w

let lint_unsargable ?catalog ~resolve (from : (string * string option) list)
    where add =
  match (catalog, where) with
  | Some cat, Some w ->
      let table_of_alias alias =
        List.find_map
          (fun (tn, al) ->
            if norm (Option.value al ~default:tn) = alias then
              Reldb.Catalog.find_table cat tn
            else None)
          from
      in
      let check_side conj wrapped other =
        if s_has_col other then ()
        else
          match wrapped with
          | S.E_col _ | S.E_const _ -> ()
          | w when s_has_col w -> (
              match List.sort_uniq compare (s_cols w []) with
              | [ (q, n) ] -> (
                  match Option.bind (resolve q n) table_of_alias with
                  | None -> ()
                  | Some table -> (
                      match
                        Reldb.Schema.find_opt (Reldb.Table.schema table) n
                      with
                      | None -> ()
                      | Some pos -> (
                          let leading idx =
                            Array.length idx.Reldb.Table.key_cols > 0
                            && idx.Reldb.Table.key_cols.(0) = pos
                          in
                          match
                            List.find_opt leading (Reldb.Table.indexes table)
                          with
                          | Some idx ->
                              add
                                (Finding.warning "unsargable"
                                   "%s wraps column %s of %s, so index %s \
                                    cannot serve it; compare the bare column"
                                   (render conj) n
                                   (Reldb.Table.name table)
                                   idx.Reldb.Table.idx_name)
                          | None -> ())))
              | _ -> ())
          | _ -> ()
      in
      List.iter
        (fun conj ->
          match conj with
          | S.E_cmp (_, a, b) ->
              check_side conj a b;
              check_side conj b a
          | _ -> ())
        (s_conjuncts w [])
  | _ -> ()

let lint_distinct ?catalog (sel : S.select) add =
  if sel.S.distinct then
    if sel.S.group_by <> [] then begin
      let items =
        List.filter_map
          (function S.Item (e, _) -> Some e | S.Star -> None)
          sel.S.items
      in
      if
        List.for_all (fun g -> List.exists (fun i -> i = g) items)
          sel.S.group_by
      then
        add
          (Finding.warning "redundant-distinct"
             "DISTINCT is redundant: every GROUP BY key is projected, so \
              output rows are already unique")
    end
    else
      match (catalog, sel.S.from) with
      | Some cat, [ (tname, _) ] -> (
          match Reldb.Catalog.find_table cat tname with
          | None -> ()
          | Some table -> (
              let schema = Reldb.Table.schema table in
              let star =
                List.exists (function S.Star -> true | _ -> false) sel.S.items
              in
              let projected =
                if star then
                  List.init (Reldb.Schema.arity schema) (fun i -> i)
                else
                  List.filter_map
                    (function
                      | S.Item (S.E_col (_, n), _) ->
                          Reldb.Schema.find_opt schema n
                      | _ -> None)
                    sel.S.items
              in
              let covered idx =
                idx.Reldb.Table.unique
                && Array.for_all
                     (fun c -> List.mem c projected)
                     idx.Reldb.Table.key_cols
              in
              match List.find_opt covered (Reldb.Table.indexes table) with
              | Some idx ->
                  add
                    (Finding.warning "redundant-distinct"
                       "DISTINCT is redundant: the projection covers unique \
                        index %s of %s, so rows are already unique"
                       idx.Reldb.Table.idx_name tname)
              | None -> ()))
      | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let lint_select ?catalog (sel : S.select) =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let resolve = make_resolver ?catalog sel.S.from in
  let to_e = make_converter () in
  lint_cartesian ~resolve sel.S.from sel.S.where add;
  lint_conjunct_semantics to_e sel.S.where add;
  lint_degenerate sel.S.where add;
  lint_degenerate sel.S.having add;
  lint_unsargable ?catalog ~resolve sel.S.from sel.S.where add;
  lint_distinct ?catalog sel add;
  List.rev !acc

let lint_dml ?catalog ~table where =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let from = [ (table, None) ] in
  let resolve = make_resolver ?catalog from in
  let to_e = make_converter () in
  lint_conjunct_semantics to_e where add;
  lint_degenerate where add;
  lint_unsargable ?catalog ~resolve from where add;
  List.rev !acc

let lint_stmt ?catalog (stmt : S.stmt) =
  let findings =
    match stmt with
    | S.Select sel -> lint_select ?catalog sel
    | S.Union_all sels -> List.concat_map (lint_select ?catalog) sels
    | S.Update { table; where; _ } -> lint_dml ?catalog ~table where
    | S.Delete { table; where } -> lint_dml ?catalog ~table where
    | S.Insert _ | S.Create_table _ | S.Create_index _ | S.Drop_table _
    | S.Begin_txn | S.Commit_txn | S.Rollback_txn ->
        []
  in
  Finding.sort findings

(* ------------------------------------------------------------------ *)
(* XPath-level rules                                                   *)
(* ------------------------------------------------------------------ *)

module A = Ordered_xml.Xpath_ast

(* count() compares a non-negative integer, so degenerate bounds mirror the
   IN/BETWEEN rules: [count(p) >= 0] is a tautology, [count(p) < 0] a
   contradiction, and [count(p) > 0] is [p] (an existence test) in
   disguise. *)
let lint_count add (p : A.predicate) =
  match p with
  | A.P_count (pth, op, k) -> begin
      let txt = A.pred_to_string p in
      let always_true =
        match op with A.Ge -> k <= 0 | A.Gt -> k < 0 | A.Ne -> k < 0 | _ -> false
      in
      let always_false =
        match op with A.Lt -> k <= 0 | A.Le -> k < 0 | A.Eq -> k < 0 | _ -> false
      in
      if always_true then
        add
          (Finding.warning "degenerate-count"
             "[%s] always holds (count() is never negative) and can be \
              dropped"
             txt)
      else if always_false then
        add
          (Finding.warning "degenerate-count"
             "[%s] can never hold (count() is never negative): the \
              predicate filters out every node"
             txt)
      else
        match (op, k) with
        | A.Gt, 0 | A.Ge, 1 ->
            add
              (Finding.info "degenerate-count"
                 "[%s] is an existence test in disguise: write [%s]" txt
                 (A.to_string pth))
        | A.Eq, 0 ->
            add
              (Finding.info "degenerate-count"
                 "[%s] is a negated existence test: write [not(%s)]" txt
                 (A.to_string pth))
        | _ -> ()
    end
  | _ -> ()

let lint_xpath (path : A.path) =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  let rec walk_pred (p : A.predicate) =
    lint_count add p;
    match p with
    | A.P_exists pth | A.P_cmp (pth, _, _) | A.P_count (pth, _, _) ->
        walk_path pth
    | A.P_and (a, b) | A.P_or (a, b) ->
        walk_pred a;
        walk_pred b
    | A.P_not a -> walk_pred a
    | A.P_pos _ | A.P_last -> ()
  and walk_path (pth : A.path) =
    List.iter (fun (s : A.step) -> List.iter walk_pred s.A.preds) pth.A.steps
  in
  walk_path path;
  Finding.sort (List.rev !acc)
