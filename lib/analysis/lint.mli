(** SQL lint rules over the surface AST.

    Rules (rule name in brackets):
    - [cartesian-product] (error): two FROM tables with no predicate
      connecting them — every translated path query must chain its aliases.
    - [contradiction] (warning): the WHERE conjunction is unsatisfiable
      (constant folding + per-column interval analysis, e.g.
      [x > 5 AND x < 3]).
    - [tautology] (warning): a conjunct that is always true contributes
      nothing (e.g. [1 = 1]).
    - [unsargable] (warning, needs a catalog): a function or arithmetic
      expression wraps a column whose table has an index led by that column,
      defeating index selection.
    - [redundant-distinct] (warning): DISTINCT over output that is already
      unique (all GROUP BY keys projected, or a unique index key fully
      projected from a single table).
    - [degenerate-in] (info): [IN] with one value or duplicate values.
    - [degenerate-between] (warning/info): [BETWEEN lo AND hi] with
      [lo > hi] (always false) or [lo = hi] (an equality in disguise). *)

val lint_stmt : ?catalog:Reldb.Catalog.t -> Reldb.Sql_ast.stmt -> Finding.t list
(** Lint a parsed statement. The catalog, when given, enables the
    schema-aware rules (unsargable, redundant-distinct over unique indexes);
    without it only the purely syntactic/semantic rules run. SELECT (and each
    branch of UNION ALL), UPDATE and DELETE are analyzed; other statements
    yield no findings. *)

val render : Reldb.Sql_ast.sexpr -> string
(** SQL-ish rendering of a surface expression, used in messages. *)

val lint_xpath : Ordered_xml.Xpath_ast.path -> Finding.t list
(** XPath-level rules, run before translation. [degenerate-count]
    (warning/info) mirrors the IN/BETWEEN degenerate rules for [count()]
    predicates: [count(p) >= 0] is a tautology and [count(p) < 0] a
    contradiction (count is never negative); [count(p) > 0] and
    [count(p) = 0] are existence tests in disguise. Recurses into nested
    predicate paths. *)
