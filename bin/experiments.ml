(* Experiment harness: regenerates every table/figure of the evaluation
   (DESIGN.md section 6, EXPERIMENTS.md for the recorded results).

   Usage:  dune exec bin/experiments.exe -- [e1|e2|...|e9|e11|e13|all]
   Times come from the monotonic clock (Obs.Clock); phase breakdowns (E11)
   are derived from the library's own spans; "rows" are logical rows
   read/written in the storage engine. *)

module O = Ordered_xml

let encodings = [ O.Encoding.Global; O.Encoding.Local; O.Encoding.Dewey_enc ]

let time_ms f = snd (Obs.Clock.time_ms f)

let median_ms ?(runs = 5) f =
  let samples = List.init runs (fun _ -> time_ms (fun () -> ignore (f ()))) in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let header title =
  Printf.printf "\n=== %s ===\n" title

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  header "E1: dataset characteristics (XMark-style auction documents)";
  Printf.printf "%-6s %9s %9s %7s %6s %9s %11s %6s\n" "scale" "elements"
    "attrs" "texts" "depth" "avg-fan" "bytes" "tags";
  List.iter
    (fun scale ->
      let doc = O.Workload.dataset ~scale in
      let s = Xmllib.Stats.compute doc in
      Printf.printf "%-6d %9d %9d %7d %6d %9.2f %11d %6d\n" scale
        s.Xmllib.Stats.elements s.Xmllib.Stats.attributes s.Xmllib.Stats.texts
        s.Xmllib.Stats.max_depth s.Xmllib.Stats.avg_fanout
        s.Xmllib.Stats.serialized_bytes s.Xmllib.Stats.distinct_tags)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  header "E2: storage cost per encoding (scale 4)";
  let doc = O.Workload.dataset ~scale:4 in
  let db = Reldb.Db.create () in
  Printf.printf "%-11s %8s %10s %12s %14s %10s %11s\n" "encoding" "rows"
    "heap(B)" "order(B)" "avg-key(B)" "index(B)" "total(B)";
  List.iter
    (fun enc ->
      ignore (O.Shred.shred db ~doc:"e2" enc doc);
      let s = O.Storage.measure db ~doc:"e2" enc in
      Printf.printf "%-11s %8d %10d %12d %14.1f %10d %11d\n"
        (O.Encoding.name enc) s.O.Storage.rows s.O.Storage.heap_bytes
        s.O.Storage.order_bytes s.O.Storage.avg_key_bytes
        s.O.Storage.index_bytes s.O.Storage.total_bytes)
    (encodings @ [ O.Encoding.Global_gap ]);
  Printf.printf "\nDewey encoded-path length histogram (bytes -> rows):\n ";
  List.iter
    (fun (len, n) -> Printf.printf " %d->%d" len n)
    (O.Storage.dewey_path_length_histogram db ~doc:"e2");
  print_newline ()

let e2b () =
  header "E2b: order-key size vs document depth (treebank-style deep trees)";
  Printf.printf "%-7s %12s %14s %14s %12s\n" "depth" "global(B)"
    "dewey avg(B)" "dewey max(B)" "ordpath max";
  List.iter
    (fun depth ->
      let doc = Xmllib.Generator.deep ~depth ~branch:3 () in
      let db = Reldb.Db.create () in
      let sg =
        ignore (O.Shred.shred db ~doc:"g" O.Encoding.Global doc);
        O.Storage.measure db ~doc:"g" O.Encoding.Global
      in
      let sd =
        ignore (O.Shred.shred db ~doc:"w" O.Encoding.Dewey_enc doc);
        O.Storage.measure db ~doc:"w" O.Encoding.Dewey_enc
      in
      let so =
        ignore (O.Shred.shred db ~doc:"o" O.Encoding.Dewey_caret doc);
        O.Storage.measure db ~doc:"o" O.Encoding.Dewey_caret
      in
      Printf.printf "%-7d %12.1f %14.1f %14d %12d\n" depth
        sg.O.Storage.avg_key_bytes sd.O.Storage.avg_key_bytes
        sd.O.Storage.max_key_bytes so.O.Storage.max_key_bytes)
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  header "E3: ordered query performance, Q1-Q8 (scale 4, median ms / rows read)";
  let doc = O.Workload.dataset ~scale:4 in
  let db = Reldb.Db.create () in
  let stores =
    List.map (fun enc -> (enc, O.Api.Store.create db ~name:"e3" enc doc)) encodings
  in
  Printf.printf "%-4s %-38s %14s %14s %14s\n" "id" "query" "global" "local"
    "dewey";
  List.iter
    (fun (q : O.Workload.query) ->
      Printf.printf "%-4s %-38s" q.O.Workload.q_id q.O.Workload.q_label;
      List.iter
        (fun (_, store) ->
          match q.O.Workload.q_xpath with
          | Some xp ->
              Reldb.Db.reset_counters db;
              let ms = median_ms (fun () -> O.Api.Store.query store xp) in
              let rows = Reldb.Db.rows_read db / 5 in
              Printf.printf " %7.1f/%-6d" ms rows
          | None ->
              (* Q8: reconstruct the first open auction *)
              let id =
                List.hd (O.Api.Store.query_ids store O.Workload.q8_target)
              in
              Reldb.Db.reset_counters db;
              let ms = median_ms (fun () -> O.Api.Store.subtree store ~id) in
              let rows = Reldb.Db.rows_read db / 5 in
              Printf.printf " %7.1f/%-6d" ms rows)
        stores;
      print_newline ())
    O.Workload.queries

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  header "E4: insertion cost by position (container with 500 children)";
  Printf.printf "%-8s %22s %22s %22s   (rows renumbered / ms)\n" "" "front"
    "middle" "back";
  let run enc =
    Printf.printf "%-8s" (O.Encoding.name enc);
    List.iter
      (fun pos ->
        (* fresh store per data point *)
        let doc = Xmllib.Generator.flat ~tag:"item" ~count:500 () in
        let db = Reldb.Db.create () in
        let store = O.Api.Store.create db ~name:"e4" enc doc in
        let root = O.Api.Store.root_id store in
        let p = O.Workload.insertion_pos pos ~sibling_count:500 in
        let st, ms =
          Obs.Clock.time_ms (fun () ->
              O.Api.Store.insert_subtree store ~parent:root ~pos:p
                O.Workload.small_fragment)
        in
        Printf.printf " %12d / %6.1f" st.O.Update.rows_renumbered ms)
      O.Workload.positions;
    print_newline ()
  in
  List.iter run (encodings @ [ O.Encoding.Global_gap; O.Encoding.Dewey_caret ])

(* ------------------------------------------------------------------ E5 *)

let e5 () =
  header "E5: scalability with document size (median ms)";
  Printf.printf "%-6s %-11s %10s %10s %12s\n" "scale" "encoding" "Q2" "Q7"
    "mid-insert";
  List.iter
    (fun scale ->
      let doc = O.Workload.dataset ~scale in
      List.iter
        (fun enc ->
          let db = Reldb.Db.create () in
          let store = O.Api.Store.create db ~name:"e5" enc doc in
          let q n =
            match (List.nth O.Workload.queries n).O.Workload.q_xpath with
            | Some xp -> xp
            | None -> assert false
          in
          let ms_q2 = median_ms ~runs:3 (fun () -> O.Api.Store.query store (q 1)) in
          let ms_q7 = median_ms ~runs:3 (fun () -> O.Api.Store.query store (q 6)) in
          let container =
            List.hd (O.Api.Store.query_ids store O.Workload.container_path)
          in
          let n_kids = O.Api.Store.count store "/site/open_auctions/open_auction" in
          let ms_ins =
            time_ms (fun () ->
                ignore
                  (O.Api.Store.insert_subtree store ~parent:container
                     ~pos:(1 + (n_kids / 2)) O.Workload.small_fragment))
          in
          Printf.printf "%-6d %-11s %10.1f %10.1f %12.1f\n" scale
            (O.Encoding.name enc) ms_q2 ms_q7 ms_ins)
        encodings)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  header "E6: ablation - dense GLOBAL vs gap-based GLOBAL (100 random inserts)";
  Printf.printf "%-18s %16s %14s %10s\n" "variant" "rows renumbered"
    "rows written" "ms";
  let run label enc gap =
    let doc = Xmllib.Generator.flat ~tag:"item" ~count:300 () in
    let db = Reldb.Db.create () in
    let store = O.Api.Store.create ?gap db ~name:"e6" enc doc in
    let root = O.Api.Store.root_id store in
    let rng = Xmllib.Rng.create 11 in
    Reldb.Db.reset_counters db;
    let renum = ref 0 in
    let ms =
      time_ms (fun () ->
          for _ = 1 to 100 do
            let count = O.Api.Store.count store "/doc/item" in
            let pos = 1 + Xmllib.Rng.int rng (count + 1) in
            let st =
              O.Api.Store.insert_subtree store ~parent:root ~pos
                O.Workload.small_fragment
            in
            renum := !renum + st.O.Update.rows_renumbered
          done)
    in
    Printf.printf "%-18s %16d %14d %10.1f\n" label !renum
      (Reldb.Db.rows_written db) ms
  in
  run "global (dense)" O.Encoding.Global None;
  List.iter
    (fun g ->
      run (Printf.sprintf "global gap=%d" g) O.Encoding.Global_gap (Some g))
    [ 8; 32; 128 ];
  run "local" O.Encoding.Local None;
  run "dewey" O.Encoding.Dewey_enc None

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  header "E7: bulk shredding throughput (scale 4)";
  let doc = O.Workload.dataset ~scale:4 in
  let idx = O.Doc_index.build doc in
  let n = O.Doc_index.length idx in
  Printf.printf "%-11s %10s %12s\n" "encoding" "ms" "records/s";
  List.iter
    (fun enc ->
      let ms =
        median_ms ~runs:3 (fun () ->
            let db = Reldb.Db.create () in
            O.Shred.shred db ~doc:"e7" enc doc)
      in
      Printf.printf "%-11s %10.1f %12.0f\n" (O.Encoding.name enc) ms
        (float_of_int n /. ms *. 1000.0))
    (encodings @ [ O.Encoding.Global_gap ])

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  header "E8: ablation - DEWEY vs ORDPATH careting (hotspot insertions)";
  Printf.printf "%-10s %-10s %16s %10s %14s %14s\n" "workload" "encoding"
    "rows renumbered" "ms" "avg key (B)" "max key (B)";
  let run label enc pos_of =
    let doc = Xmllib.Generator.flat ~tag:"item" ~count:300 () in
    let db = Reldb.Db.create () in
    let store = O.Api.Store.create db ~name:"e8" enc doc in
    let root = O.Api.Store.root_id store in
    let renum = ref 0 in
    let ms =
      time_ms (fun () ->
          for i = 1 to 200 do
            let st =
              O.Api.Store.insert_subtree store ~parent:root ~pos:(pos_of i)
                O.Workload.small_fragment
            in
            renum := !renum + st.O.Update.rows_renumbered
          done)
    in
    let s = O.Api.Store.storage store in
    Printf.printf "%-10s %-10s %16d %10.1f %14.1f %14d\n" label
      (O.Encoding.name enc) !renum ms s.O.Storage.avg_key_bytes
      s.O.Storage.max_key_bytes
  in
  (* hotspot: always the same middle position *)
  run "hotspot" O.Encoding.Dewey_enc (fun _ -> 150);
  run "hotspot" O.Encoding.Dewey_caret (fun _ -> 150);
  (* front: always position 1 *)
  run "front" O.Encoding.Dewey_enc (fun _ -> 1);
  run "front" O.Encoding.Dewey_caret (fun _ -> 1);
  (* appends: the friendly case for both *)
  run "append" O.Encoding.Dewey_enc (fun i -> 300 + i);
  run "append" O.Encoding.Dewey_caret (fun i -> 300 + i)

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  header "E9: mixed read/write workloads (300 ops, scale 1; ms total)";
  Printf.printf "%-11s %12s %12s %12s\n" "encoding" "90R/10W" "50R/50W"
    "10R/90W";
  let read_queries =
    [
      "/site/open_auctions/open_auction/bidder[1]";
      "/site/people/person[address]/name";
      "/site/regions/africa/item[1]/following::item";
      "//closed_auction[price > 400]";
    ]
  in
  let run enc read_pct =
    let doc = O.Workload.dataset ~scale:1 in
    let db = Reldb.Db.create () in
    let store = O.Api.Store.create db ~name:"e9" enc doc in
    let rng = Xmllib.Rng.create (17 + read_pct) in
    let container =
      List.hd (O.Api.Store.query_ids store O.Workload.container_path)
    in
    time_ms (fun () ->
        for _ = 1 to 300 do
          if Xmllib.Rng.int rng 100 < read_pct then
            ignore
              (O.Api.Store.query store
                 (List.nth read_queries
                    (Xmllib.Rng.int rng (List.length read_queries))))
          else begin
            let n = O.Api.Store.count store "/site/open_auctions/open_auction" in
            if n > 4 && Xmllib.Rng.bool rng then
              let victim =
                List.hd
                  (O.Api.Store.query_ids store
                     (Printf.sprintf "/site/open_auctions/open_auction[%d]"
                        (1 + Xmllib.Rng.int rng n)))
              in
              ignore (O.Api.Store.delete_subtree store ~id:victim)
            else
              ignore
                (O.Api.Store.insert_subtree store ~parent:container
                   ~pos:(1 + Xmllib.Rng.int rng (n + 1))
                   O.Workload.small_fragment)
          end
        done)
  in
  List.iter
    (fun enc ->
      Printf.printf "%-11s %12.0f %12.0f %12.0f\n" (O.Encoding.name enc)
        (run enc 90) (run enc 50) (run enc 10))
    (encodings @ [ O.Encoding.Global_gap; O.Encoding.Dewey_caret ])

(* ------------------------------------------------------------------ E10 *)

let e11 () =
  header "E11: query/update phase breakdown from spans (scale 2; total ms per phase)";
  (* every phase figure below comes from the library's own spans
     (Obs.Span.collect), not from stopwatch calls around API entry points *)
  let phases_of spans names =
    let agg = Obs.Span.aggregate spans in
    List.map
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) agg with
        | Some (_, _, ms) -> ms
        | None -> 0.0)
      names
  in
  let doc = O.Workload.dataset ~scale:2 in
  let query_phases = [ "xpath-parse"; "translate"; "sql-parse"; "plan"; "exec" ] in
  Printf.printf "%-11s %-34s" "encoding" "query";
  List.iter (fun p -> Printf.printf " %11s" p) query_phases;
  print_newline ();
  let queries =
    [
      "/site/open_auctions/open_auction/bidder[1]";
      "/site/regions/africa/item[1]/following-sibling::item";
    ]
  in
  List.iter
    (fun enc ->
      let db = Reldb.Db.create () in
      let store = O.Api.Store.create db ~name:"e11" enc doc in
      List.iter
        (fun q ->
          let _, spans =
            Obs.Span.collect (fun () -> ignore (O.Api.Store.query store q))
          in
          Printf.printf "%-11s %-34s" (O.Encoding.name enc) q;
          List.iter (fun ms -> Printf.printf " %11.2f" ms)
            (phases_of spans query_phases);
          print_newline ())
        queries)
    encodings;
  let update_phases = [ "renumber"; "sql-parse"; "plan"; "exec" ] in
  Printf.printf "\n%-11s %-34s" "encoding" "update";
  List.iter (fun p -> Printf.printf " %11s" p) update_phases;
  print_newline ();
  List.iter
    (fun enc ->
      let db = Reldb.Db.create () in
      let store = O.Api.Store.create db ~name:"e11" enc doc in
      let container =
        List.hd (O.Api.Store.query_ids store O.Workload.container_path)
      in
      let _, spans =
        Obs.Span.collect (fun () ->
            ignore
              (O.Api.Store.insert_subtree store ~parent:container ~pos:1
                 O.Workload.small_fragment))
      in
      Printf.printf "%-11s %-34s" (O.Encoding.name enc) "front insert";
      List.iter (fun ms -> Printf.printf " %11.2f" ms)
        (phases_of spans update_phases);
      print_newline ())
    (encodings @ [ O.Encoding.Global_gap; O.Encoding.Dewey_caret ])

(* ----------------------------------------------------------------- E13 *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let with_tmp_db ?fsync f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oxq_e13_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir (Reldb.Db.open_dir ?fsync dir))

let e13 () =
  header "E13: WAL overhead per insert, recovery time vs log length";
  let create_stmt = "CREATE TABLE t (id INT NOT NULL, v TEXT)" in
  let insert i = Printf.sprintf "INSERT INTO t VALUES (%d, 'row %d')" i i in
  let run_inserts db n =
    time_ms (fun () ->
        for i = 1 to n do
          ignore (Reldb.Db.exec db (insert i))
        done)
  in
  (* per-insert cost: autocommit single-row INSERTs, each one WAL record *)
  let mem_n = 2000 in
  let mem_db = Reldb.Db.create () in
  ignore (Reldb.Db.exec mem_db create_stmt);
  let mem_ms = run_inserts mem_db mem_n in
  let mem_us = mem_ms *. 1000.0 /. float_of_int mem_n in
  Printf.printf "%-22s %10s %12s %10s\n" "configuration" "inserts" "us/insert"
    "overhead";
  Printf.printf "%-22s %10d %12.2f %10s\n" "in-memory" mem_n mem_us "1.0x";
  List.iter
    (fun (label, policy, n) ->
      with_tmp_db ~fsync:policy (fun _dir db ->
          ignore (Reldb.Db.exec db create_stmt);
          let ms = run_inserts db n in
          let us = ms *. 1000.0 /. float_of_int n in
          Printf.printf "%-22s %10d %12.2f %9.1fx\n" label n us (us /. mem_us);
          Reldb.Db.close db))
    [
      ("durable fsync=never", Reldb.Wal.Never, 2000);
      ("durable fsync=every32", Reldb.Wal.Every 32, 2000);
      ("durable fsync=always", Reldb.Wal.Always, 300);
    ];
  (* recovery time as the log grows, and after folding it into a checkpoint *)
  Printf.printf "\n%-14s %14s %14s %18s\n" "log (inserts)" "recovery ms"
    "wal bytes" "post-ckpt rec ms";
  List.iter
    (fun n ->
      with_tmp_db ~fsync:Reldb.Wal.Never (fun dir db ->
          ignore (Reldb.Db.exec db create_stmt);
          for i = 1 to n do
            ignore (Reldb.Db.exec db (insert i))
          done;
          let wal_bytes = Reldb.Db.wal_size db in
          Reldb.Db.close db;
          let db2 = Reldb.Db.open_dir dir in
          let replay_ms =
            match Reldb.Db.last_recovery db2 with
            | Some r -> r.Reldb.Db.rec_ms
            | None -> nan
          in
          Reldb.Db.checkpoint db2;
          Reldb.Db.close db2;
          let db3 = Reldb.Db.open_dir dir in
          let ckpt_ms =
            match Reldb.Db.last_recovery db3 with
            | Some r -> r.Reldb.Db.rec_ms
            | None -> nan
          in
          Reldb.Db.close db3;
          Printf.printf "%-14d %14.2f %14d %18.2f\n" n replay_ms wal_bytes
            ckpt_ms))
    [ 1000; 4000; 16000 ]

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  header "E14: schema-aware vs blind translation (XMark DTD, scale 4)";
  let dtd = Xmllib.Dtd.parse Xmllib.Generator.xmark_dtd in
  let doc = O.Workload.dataset ~scale:4 in
  let db = Reldb.Db.create () in
  let stores =
    List.map
      (fun enc -> (enc, O.Api.Store.create db ~name:"e14" enc doc))
      encodings
  in
  let parse1 q =
    match O.Xpath_parser.parse_union q with
    | [ p ] -> p
    | _ -> assert false
  in
  let ids (r : O.Translate.result) =
    List.map (fun (row : O.Node_row.t) -> row.O.Node_row.id) r.O.Translate.rows
  in
  let queries =
    [
      ("//bidder/increase", "descendant -> fixed child chain");
      ("//emailaddress", "descendant -> fixed child chain");
      ("/site/people/person/address[1]/city", "address? proves <=1: [1] dropped");
      ( "/site/open_auctions/open_auction[1]/following::open_auction",
        "following -> following-sibling" );
      ("//person/bidder", "unsatisfiable: 0-row plan, no SQL");
    ]
  in
  Printf.printf "%-11s %12s %12s %9s %9s\n" "encoding" "blind ms" "schema ms"
    "b-stmts" "s-stmts";
  List.iter
    (fun (q, note) ->
      let path = parse1 q in
      Printf.printf "-- %s  (%s)\n" q note;
      List.iter
        (fun (enc, _) ->
          (* the schema-aware timing includes the analysis itself *)
          let blind () = O.Translate.eval db ~doc:"e14" enc path in
          let schema () = Analysis.Schema_check.eval dtd db ~doc:"e14" enc path in
          let bres = blind () and sres = schema () in
          if ids bres <> ids sres then
            Printf.printf "   RESULT MISMATCH under %s!\n" (O.Encoding.name enc);
          let bms = median_ms ~runs:3 blind and sms = median_ms ~runs:3 schema in
          Printf.printf "%-11s %12.1f %12.1f %9d %9d\n" (O.Encoding.name enc)
            bms sms bres.O.Translate.statements sres.O.Translate.statements)
        stores)
    queries;
  (* DISTINCT elimination in single-statement mode: the schema proves the
     join produces no duplicate rows, so the sort/dedup pass is skipped *)
  let q = "/site/people/person[address]/emailaddress" in
  let path = parse1 q in
  let r = Analysis.Schema_check.analyze dtd path in
  Printf.printf "\nDISTINCT elimination: %s (unique=%b)\n" q
    r.Analysis.Schema_check.unique;
  Printf.printf "%-11s %14s %16s\n" "encoding" "DISTINCT ms" "no-DISTINCT ms";
  List.iter
    (fun (enc, _) ->
      if O.Translate_sql.eligible enc path then begin
        let d () = O.Translate_sql.eval db ~doc:"e14" enc path in
        let nd () =
          O.Translate_sql.eval ~unique:r.Analysis.Schema_check.unique db
            ~doc:"e14" enc r.Analysis.Schema_check.rewritten
        in
        if ids (d ()) <> ids (nd ()) then
          Printf.printf "   RESULT MISMATCH under %s!\n" (O.Encoding.name enc);
        Printf.printf "%-11s %14.2f %16.2f\n" (O.Encoding.name enc)
          (median_ms d) (median_ms nd)
      end)
    stores

let all =
  [ ("e1", e1); ("e2", e2); ("e2b", e2b); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e11", e11);
    ("e13", e13); ("e14", e14) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let targets =
    match args with
    | [] | [ "all" ] -> List.map fst all
    | ids -> ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (want e1..e14 or all)\n" id;
          exit 1)
    targets
