(* oxq — ordered-XML query tool.

   A small CLI over the library: load an XML file, shred it under a chosen
   order encoding, and run XPath queries (or dump the SQL they translate to,
   or reshape statistics). An in-process demonstration of the full stack.

     oxq query  file.xml '/a/b[1]' --encoding dewey
     oxq sql    file.xml '/a/b[last()]' --encoding global
     oxq stats  file.xml
     oxq tables file.xml --encoding local *)

module O = Ordered_xml

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* .sql files are engine dumps (see `oxq dump`); anything else is XML.
   With [--db DIR] the engine is durable: the first run shreds the input
   into DIR (checkpoint + write-ahead log) and later runs recover from DIR,
   ignoring the input file's contents. *)
let load_store ?db_dir path enc =
  match db_dir with
  | Some dir -> (
      let db = Reldb.Db.open_dir dir in
      match O.Api.Store.open_existing db ~name:"doc" enc with
      | store -> (db, store)
      | exception Reldb.Db.Sql_error _ ->
          let doc = Xmllib.Parser.parse_document (read_file path) in
          (db, O.Api.Store.create db ~name:"doc" enc doc))
  | None ->
      if Filename.check_suffix path ".sql" then
        let db = Reldb.Db.restore_from_file path in
        (db, O.Api.Store.open_existing db ~name:"doc" enc)
      else begin
        let doc = Xmllib.Parser.parse_document (read_file path) in
        let db = Reldb.Db.create () in
        (db, O.Api.Store.create db ~name:"doc" enc doc)
      end

let db_dir_opt =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"DIR"
        ~doc:
          "Open a durable database in $(docv) (created on first use): the \
           document is recovered from its checkpoint and write-ahead log \
           instead of being reshredded, and committed writes survive \
           crashes. The XML input only seeds $(docv) on the first run.")

let enc_arg =
  let parse s =
    match O.Encoding.of_name s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown encoding %s" s))
  in
  let print ppf e = Format.pp_print_string ppf (O.Encoding.name e) in
  Cmdliner.Arg.conv (parse, print)

let encoding =
  Cmdliner.Arg.(
    value
    & opt enc_arg O.Encoding.Dewey_enc
    & info [ "e"; "encoding" ] ~docv:"ENC"
        ~doc:"Order encoding: global, global-gap, local or dewey.")

let file =
  Cmdliner.Arg.(
    required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML input.")

let xpath =
  Cmdliner.Arg.(
    required & pos 1 (some string) None & info [] ~docv:"XPATH" ~doc:"Query.")

let wrap f =
  try
    f ();
    0
  with
  | Xmllib.Parser.Parse_error m
  | O.Xpath_parser.Parse_error m
  | O.Flwor.Parse_error m
  | O.Flwor.Eval_error m
  | Reldb.Db.Sql_error m ->
      Printf.eprintf "error: %s\n" m;
      1

let trace_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print the span tree of the run (load, query phases, engine \
           statements) after the results.")

(* ------------------------------------------------------------------ *)
(* Schema-aware analysis options                                       *)
(* ------------------------------------------------------------------ *)

let dtd_opt =
  Cmdliner.Arg.(
    value
    & opt (some file) None
    & info [ "dtd" ] ~docv:"DTD"
        ~doc:
          "DTD file: enable schema-aware analysis — unsatisfiable steps \
           short-circuit to 0-row plans, provably-singleton positional \
           predicates are dropped, and descendant/following axes are \
           strength-reduced where the schema fixes their shape.")

let root_opt =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"NAME"
        ~doc:
          "Document root element for schema analysis (default: inferred \
           from the DTD — elements no content model mentions).")

let load_dtd path =
  try Xmllib.Dtd.parse (read_file path)
  with Xmllib.Dtd.Parse_error m ->
    Printf.eprintf "DTD error: %s\n" m;
    exit 2

let schema_analyze dtd root path =
  let roots = Option.map (fun r -> [ r ]) root in
  Analysis.Schema_check.analyze ?roots dtd path

let query_cmd =
  let run enc path q trace db_dir dtd_path root =
    wrap (fun () ->
        let go () =
          let db, store = load_store ?db_dir path enc in
          Fun.protect ~finally:(fun () -> Reldb.Db.close db) @@ fun () ->
          match dtd_path with
          | None -> O.Api.Store.query_nodes store q
          | Some dp -> (
              let dtd = load_dtd dp in
              match Xmllib.Dtd.validate dtd (O.Api.Store.document store) with
              | Error msgs ->
                  Printf.eprintf
                    "warning: document does not satisfy the DTD (%d \
                     violation(s)); translating without schema analysis\n"
                    (List.length msgs);
                  O.Api.Store.query_nodes store q
              | Ok () ->
                  let sat =
                    List.filter_map
                      (fun p ->
                        let r = schema_analyze dtd root p in
                        if r.Analysis.Schema_check.satisfiable then
                          Some r.Analysis.Schema_check.rewritten
                        else None)
                      (O.Xpath_parser.parse_union q)
                  in
                  if sat = [] then []
                  else
                    let res = O.Translate.eval_union db ~doc:"doc" enc sat in
                    List.map
                      (fun (row : O.Node_row.t) ->
                        O.Api.Store.subtree store ~id:row.O.Node_row.id)
                      res.O.Translate.rows)
        in
        let nodes, spans =
          if trace then Obs.Span.collect go else (go (), [])
        in
        List.iter
          (fun node -> print_endline (Xmllib.Printer.node_to_string node))
          nodes;
        if trace then begin
          print_endline "-- trace:";
          print_string (Obs.Span.to_string spans)
        end)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "query" ~doc:"Evaluate an XPath query; print matches as XML.")
    Cmdliner.Term.(
      const run $ encoding $ file $ xpath $ trace_flag $ db_dir_opt
      $ dtd_opt $ root_opt)

let analyze_flag =
  Cmdliner.Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "Run EXPLAIN ANALYZE on the single-statement translation (when \
           the query is eligible): the physical plan annotated with actual \
           row counts, loop counts and per-operator time.")

let sql_cmd =
  let run enc path q analyze db_dir dtd_path root =
    wrap (fun () ->
        let db, store = load_store ?db_dir path enc in
        Fun.protect ~finally:(fun () -> Reldb.Db.close db) @@ fun () ->
        let r = O.Api.Store.query store q in
        Printf.printf "-- step-at-a-time: %d statement(s), %d result node(s)\n"
          r.O.Translate.statements
          (List.length r.O.Translate.rows);
        List.iter print_endline r.O.Translate.sql_log;
        (match O.Xpath_parser.parse_union q with
        | [ path ] when O.Translate_sql.eligible enc path ->
            let sql = O.Translate_sql.translate ~doc:"doc" enc path in
            Printf.printf "-- single-statement form:\n%s\n" sql;
            if analyze then
              Printf.printf "-- explain analyze:\n%s\n"
                (Reldb.Db.explain_analyze db sql)
        | _ ->
            if analyze then
              print_endline
                "-- explain analyze: query has no single-statement form");
        match dtd_path with
        | None -> ()
        | Some dp ->
            let dtd = load_dtd dp in
            List.iter
              (fun p ->
                let sr = schema_analyze dtd root p in
                Printf.printf "-- schema analysis: %s\n"
                  (O.Xpath_ast.to_string p);
                List.iter
                  (fun f ->
                    Printf.printf "  %s\n" (Analysis.Finding.to_string f))
                  sr.Analysis.Schema_check.findings;
                if not sr.Analysis.Schema_check.satisfiable then
                  print_endline
                    "  plan: unsatisfiable under the DTD; 0 rows, no SQL \
                     issued"
                else begin
                  let rw = sr.Analysis.Schema_check.rewritten in
                  if rw <> p then
                    Printf.printf "  rewritten: %s\n" (O.Xpath_ast.to_string rw);
                  if O.Translate_sql.eligible enc rw then
                    Printf.printf "-- schema-aware single-statement form:\n%s\n"
                      (O.Translate_sql.translate
                         ~unique:sr.Analysis.Schema_check.unique ~doc:"doc"
                         enc rw)
                end)
              (O.Xpath_parser.parse_union q))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sql" ~doc:"Show the SQL a query translates to.")
    Cmdliner.Term.(
      const run $ encoding $ file $ xpath $ analyze_flag $ db_dir_opt
      $ dtd_opt $ root_opt)

let stats_cmd =
  let run enc path =
    wrap (fun () ->
        let doc = Xmllib.Parser.parse_document (read_file path) in
        Format.printf "%a@." Xmllib.Stats.pp (Xmllib.Stats.compute doc);
        (* shred under the chosen encoding so the engine metrics below
           reflect a real load *)
        let db = Reldb.Db.create () in
        let store = O.Api.Store.create db ~name:"doc" enc doc in
        Format.printf "@.%a@." O.Storage.pp (O.Api.Store.storage store);
        let hits, misses, entries = Reldb.Db.plan_cache_stats db in
        Printf.printf "\nplan cache: %d hit(s), %d miss(es), %d cached plan(s)\n"
          hits misses entries;
        print_newline ();
        print_string (Obs.Report.to_text ()))
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "stats"
       ~doc:
         "Structural statistics of the document, storage cost under the \
          chosen encoding, and engine metrics for the load.")
    Cmdliner.Term.(const run $ encoding $ file)

let tables_cmd =
  let run enc path db_dir =
    wrap (fun () ->
        let db, store = load_store ?db_dir path enc in
        ignore store;
        let tname = O.Encoding.table_name ~doc:"doc" enc in
        print_string
          (Reldb.Db.render
             (Reldb.Db.exec db (Printf.sprintf "SELECT * FROM %s" tname)));
        print_newline ();
        Reldb.Db.close db)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "tables" ~doc:"Dump the shredded edge table.")
    Cmdliner.Term.(const run $ encoding $ file $ db_dir_opt)

let flwor_cmd =
  let q =
    Cmdliner.Arg.(
      required & pos 1 (some string) None & info [] ~docv:"FLWOR" ~doc:"Query.")
  in
  let run enc path q db_dir =
    wrap (fun () ->
        let db, store = load_store ?db_dir path enc in
        List.iter
          (fun n -> print_string (Xmllib.Printer.pretty ~indent:2 n))
          (O.Api.Store.flwor store q);
        Reldb.Db.close db)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "flwor"
       ~doc:"Run a FLWOR-lite publishing query (for/let/where/order/return).")
    Cmdliner.Term.(const run $ encoding $ file $ q $ db_dir_opt)

let validate_cmd =
  let dtd_file =
    Cmdliner.Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"DTD" ~doc:"DTD file (ELEMENT/ATTLIST declarations).")
  in
  let run path dtd_path =
    wrap (fun () ->
        let doc = Xmllib.Parser.parse_document (read_file path) in
        let dtd =
          try Xmllib.Dtd.parse (read_file dtd_path)
          with Xmllib.Dtd.Parse_error m ->
            Printf.eprintf "DTD error: %s\n" m;
            exit 1
        in
        match Xmllib.Dtd.validate dtd doc with
        | Ok () -> print_endline "valid"
        | Error msgs ->
            List.iter (fun m -> Printf.printf "invalid: %s\n" m) msgs;
            exit 1)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "validate" ~doc:"Validate a document against a DTD.")
    Cmdliner.Term.(const run $ file $ dtd_file)

let dump_cmd =
  let out =
    Cmdliner.Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.sql" ~doc:"Output SQL script.")
  in
  let run enc path out db_dir =
    wrap (fun () ->
        let db, _ = load_store ?db_dir path enc in
        Reldb.Db.dump_to_file db out;
        Printf.printf "wrote %s\n" out;
        Reldb.Db.close db)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "dump"
       ~doc:
         "Shred the document and write the whole database as a SQL script \
          (reload it by passing the .sql file to query/sql/tables).")
    Cmdliner.Term.(const run $ encoding $ file $ out $ db_dir_opt)

(* ------------------------------------------------------------------ *)
(* Static analysis (oxq lint)                                          *)
(* ------------------------------------------------------------------ *)

(* A small document shredded under every encoding gives the linter real
   schemas and indexes to check against (unsargable, redundant-distinct and
   plan rules are catalog-aware). *)
let lint_db () =
  let doc =
    Xmllib.Parser.parse_document
      "<doc><item k=\"1\">x</item><item k=\"2\">y</item></doc>"
  in
  let db = Reldb.Db.create () in
  List.iter
    (fun enc -> ignore (O.Api.Store.create db ~name:"doc" enc doc))
    O.Encoding.all;
  db

let print_findings indent fs =
  List.iter
    (fun f -> Printf.printf "%s%s\n" indent (Analysis.Finding.to_string f))
    fs

let lint_sql db stmt_text =
  let catalog = Reldb.Db.catalog db in
  match Reldb.Sql_parser.parse stmt_text with
  | exception Reldb.Sql_parser.Parse_error m ->
      [ Analysis.Finding.error "parse" "statement does not parse: %s" m ]
  | stmt ->
      let lint = Analysis.Lint.lint_stmt ~catalog stmt in
      let plan =
        match stmt with
        | Reldb.Sql_ast.Select sel -> (
            match Reldb.Planner.plan_select catalog sel with
            | exception Reldb.Planner.Plan_error _ -> []
            | plan -> Analysis.Plan_lint.lint_plan plan)
        | _ -> []
      in
      Analysis.Finding.sort (lint @ plan)

let lint_xpath db ~explicit_enc encodings paths =
  let catalog = Reldb.Db.catalog db in
  let any_error = ref false in
  List.iter
    (fun enc ->
      List.iter
        (fun path ->
          Printf.printf "-- %s: %s\n" (O.Encoding.name enc)
            (O.Xpath_ast.to_string path);
          let findings =
            if O.Translate_sql.eligible enc path then begin
              let sql, meta = O.Translate_sql.translate_meta ~doc:"doc" enc path in
              match Reldb.Sql_parser.parse sql with
              | exception Reldb.Sql_parser.Parse_error m ->
                  [
                    Analysis.Finding.error "parse-back"
                      "translated SQL does not parse back: %s" m;
                  ]
              | stmt ->
                  let lint = Analysis.Lint.lint_stmt ~catalog stmt in
                  let order = Analysis.Order_check.check_stmt enc ~meta stmt in
                  let plan =
                    match stmt with
                    | Reldb.Sql_ast.Select sel ->
                        Analysis.Plan_lint.lint_plan
                          (Reldb.Planner.plan_select catalog sel)
                    | _ -> []
                  in
                  Analysis.Finding.sort (lint @ order @ plan)
            end
            else begin
              (* outside the fragment: unsupported axes are contract
                 violations when the user pinned the encoding, otherwise
                 informational (the other encodings may still serve it) *)
              let severity =
                if explicit_enc then Analysis.Finding.Error
                else Analysis.Finding.Info
              in
              match Analysis.Order_check.check_axes ~severity enc path with
              | [] ->
                  let reason =
                    try
                      ignore (O.Translate_sql.translate ~doc:"doc" enc path);
                      "outside the single-statement fragment"
                    with O.Translate_sql.Not_single_statement m -> m
                  in
                  [
                    Analysis.Finding.info "fragment"
                      "no single-statement form: %s" reason;
                  ]
              | fs -> fs
            end
          in
          if findings = [] then print_endline "  clean"
          else begin
            print_findings "  " findings;
            if Analysis.Finding.has_errors findings then any_error := true
          end)
        paths)
    encodings;
  !any_error

let lint_cmd =
  let xpath_opt =
    Cmdliner.Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"XPATH"
          ~doc:"XPath query: lint its translation under each encoding.")
  in
  let sql_opt =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "sql" ] ~docv:"STMT"
          ~doc:"Lint a raw SQL statement instead of an XPath translation.")
  in
  let enc_opt =
    Cmdliner.Arg.(
      value
      & opt (some enc_arg) None
      & info [ "e"; "encoding" ] ~docv:"ENC"
          ~doc:
            "Restrict XPath linting to one encoding (default: all \
             encodings).")
  in
  let run enc_opt xpath_opt sql_opt dtd_path root =
    try
      match (xpath_opt, sql_opt) with
      | None, None | Some _, Some _ ->
          prerr_endline "error: pass exactly one of XPATH or --sql STMT";
          2
      | None, Some stmt_text ->
          let db = lint_db () in
          let findings = lint_sql db stmt_text in
          if findings = [] then begin
            print_endline "clean";
            0
          end
          else begin
            print_findings "" findings;
            if Analysis.Finding.has_errors findings then 1 else 0
          end
      | Some q, None ->
          let db = lint_db () in
          let encodings =
            match enc_opt with Some e -> [ e ] | None -> O.Encoding.all
          in
          let paths = O.Xpath_parser.parse_union q in
          let any_error = ref false in
          (* XPath-level rules, independent of encoding and DTD *)
          List.iter
            (fun p ->
              match Analysis.Lint.lint_xpath p with
              | [] -> ()
              | fs ->
                  Printf.printf "-- xpath: %s\n" (O.Xpath_ast.to_string p);
                  print_findings "  " fs;
                  if Analysis.Finding.has_errors fs then any_error := true)
            paths;
          (* schema analysis when a DTD is supplied: report findings once
             per path, then lint the rewritten (satisfiable) paths below *)
          let paths =
            match dtd_path with
            | None -> paths
            | Some dp ->
                let dtd = load_dtd dp in
                List.filter_map
                  (fun p ->
                    let r = schema_analyze dtd root p in
                    Printf.printf "-- schema: %s\n" (O.Xpath_ast.to_string p);
                    if r.Analysis.Schema_check.findings = [] then
                      print_endline "  clean"
                    else print_findings "  " r.Analysis.Schema_check.findings;
                    if Analysis.Finding.has_errors r.Analysis.Schema_check.findings
                    then any_error := true;
                    if not r.Analysis.Schema_check.satisfiable then None
                    else begin
                      let rw = r.Analysis.Schema_check.rewritten in
                      if rw <> p then
                        Printf.printf "  rewritten: %s\n"
                          (O.Xpath_ast.to_string rw);
                      Some rw
                    end)
                  paths
          in
          if lint_xpath db ~explicit_enc:(enc_opt <> None) encodings paths
          then any_error := true;
          if !any_error then 1 else 0
    with
    | O.Xpath_parser.Parse_error m | Reldb.Db.Sql_error m ->
        Printf.eprintf "error: %s\n" m;
        2
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "lint"
       ~doc:
         "Statically analyze a query: XPath-level rules, optional \
          DTD-driven schema analysis (satisfiability, cardinality, axis \
          strength reduction), SQL lint rules, order-correctness against \
          each encoding's document-order contract, and plan inspection. \
          Exit 1 when any error-severity finding fires.")
    Cmdliner.Term.(
      const run $ enc_opt $ xpath_opt $ sql_opt $ dtd_opt $ root_opt)

let () =
  let info =
    Cmdliner.Cmd.info "oxq" ~version:"1.0.0"
      ~doc:"Store and query ordered XML in a relational engine."
  in
  exit
    (Cmdliner.Cmd.eval'
       (Cmdliner.Cmd.group info
          [ query_cmd; sql_cmd; stats_cmd; tables_cmd; dump_cmd; flwor_cmd; validate_cmd; lint_cmd ]))
