(* Bench regression guard: time Q1 over the GLOBAL encoding and fail if the
   per-run latency regresses more than 3x over the checked-in baseline
   (bench/baseline.json). Fast enough to wire into `make check`; the full
   statistical suite stays in bench/main.ml. *)

module O = Ordered_xml

(* measure the engine, not the instrumentation *)
let () = Obs.set_enabled false

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 1)
    fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error m -> die "bench-smoke: %s" m in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* minimal scan for ["q1_global_us": <number>] — not a JSON parser, just
   enough to read the one checked-in figure without a dependency *)
let baseline_us path =
  let text = read_file path in
  let key = "\"q1_global_us\"" in
  let klen = String.length key and len = String.length text in
  let rec find i =
    if i + klen > len then die "%s: no %s key" path key
    else if String.sub text i klen = key then i + klen
    else find (i + 1)
  in
  let i = ref (find 0) in
  while !i < len && (text.[!i] = ':' || text.[!i] = ' ') do
    incr i
  done;
  let j = ref !i in
  while
    !j < len && (match text.[!j] with '0' .. '9' | '.' -> true | _ -> false)
  do
    incr j
  done;
  if !j = !i then die "%s: no number after %s" path key;
  float_of_string (String.sub text !i (!j - !i))

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let () =
  let baseline_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "bench/baseline.json"
  in
  let base = baseline_us baseline_path in
  let doc = O.Workload.dataset ~scale:1 in
  let db = Reldb.Db.create () in
  (* the guarded figure is the in-memory engine: opening a database without
     a directory must keep the WAL code out of the write and query paths *)
  if Reldb.Db.is_durable db then die "bench-smoke: Db.create is durable?";
  let store = O.Api.Store.create db ~name:"b" O.Encoding.Global doc in
  let q1 =
    match (List.hd O.Workload.queries).O.Workload.q_xpath with
    | Some xp -> xp
    | None -> die "bench-smoke: Q1 has no xpath"
  in
  (* warm-up also fills the plan cache, matching steady-state service *)
  for _ = 1 to 50 do
    ignore (O.Api.Store.query store q1)
  done;
  let runs = 2000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    ignore (O.Api.Store.query store q1)
  done;
  let per_run_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int runs in
  Printf.printf
    "bench-smoke: q1/global %.1f us/run (baseline %.1f us, limit %.1f us)\n"
    per_run_us base (3.0 *. base);
  if per_run_us > 3.0 *. base then
    die "bench-smoke: FAIL - Q1 latency regressed more than 3x over baseline";
  (* informational: the same query against a durable (WAL-backed) database.
     Reads are never logged, so this should track the in-memory figure; it
     is printed for the record but not guarded. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "oxq_bench_smoke_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
      let ddb = Reldb.Db.open_dir ~fsync:Reldb.Wal.Never dir in
      let dstore = O.Api.Store.create ddb ~name:"b" O.Encoding.Global doc in
      for _ = 1 to 50 do
        ignore (O.Api.Store.query dstore q1)
      done;
      let t0 = Unix.gettimeofday () in
      for _ = 1 to runs do
        ignore (O.Api.Store.query dstore q1)
      done;
      let dur_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int runs in
      Reldb.Db.close ddb;
      Printf.printf "bench-smoke: q1/global durable %.1f us/run (informational)\n"
        dur_us);
  print_endline "bench-smoke: OK"
