(* Bechamel benchmark suite: one Test per experiment table/figure
   (EXPERIMENTS.md / DESIGN.md section 6). `bin/experiments.exe` prints the
   paper-shaped tables with parameter sweeps; this executable provides
   statistically sound single-operation timings.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
module O = Ordered_xml

(* benchmarks measure the engine, not the instrumentation: switch spans,
   histograms and the slow-query path off for the whole process *)
let () = Obs.set_enabled false

let encodings = [ O.Encoding.Global; O.Encoding.Local; O.Encoding.Dewey_enc ]

(* shared stores over the scale-1 auction document *)
let doc = O.Workload.dataset ~scale:1
let db = Reldb.Db.create ()

let stores =
  List.map (fun enc -> (enc, O.Api.Store.create db ~name:"b" enc doc)) encodings

(* --- E3: the ordered query set (incl. the native DOM baseline) --------- *)

let native = O.Native_store.create doc

let query_tests =
  let per_query (q : O.Workload.query) =
    let tests =
      List.map
        (fun (enc, store) ->
          match q.O.Workload.q_xpath with
          | Some xp ->
              Test.make
                ~name:(O.Encoding.name enc)
                (Staged.stage (fun () -> ignore (O.Api.Store.query store xp)))
          | None ->
              let id = List.hd (O.Api.Store.query_ids store O.Workload.q8_target) in
              Test.make
                ~name:(O.Encoding.name enc)
                (Staged.stage (fun () -> ignore (O.Api.Store.subtree store ~id))))
        stores
    in
    let native_test =
      match q.O.Workload.q_xpath with
      | Some xp ->
          Test.make ~name:"native"
            (Staged.stage (fun () -> ignore (O.Native_store.query native xp)))
      | None ->
          Test.make ~name:"native"
            (Staged.stage (fun () ->
                 ignore (O.Native_store.query native O.Workload.q8_target)))
    in
    Test.make_grouped ~name:q.O.Workload.q_id (tests @ [ native_test ])
  in
  Test.make_grouped ~name:"e3-queries" (List.map per_query O.Workload.queries)

(* --- E4: insertion by position (steady state: insert then delete) ----- *)

let update_db = Reldb.Db.create ()

let update_stores =
  let flat = Xmllib.Generator.flat ~tag:"item" ~count:200 () in
  List.map
    (fun enc -> (enc, O.Api.Store.create update_db ~name:"u" enc flat))
    (encodings @ [ O.Encoding.Global_gap; O.Encoding.Dewey_caret ])

let insert_delete store pos =
  (* steady state: insert the fragment, then delete it again (the fragment
     tag differs from the container's items, so it is easy to find) *)
  let root = O.Api.Store.root_id store in
  ignore
    (O.Api.Store.insert_subtree store ~parent:root ~pos O.Workload.small_fragment);
  let victim = List.hd (O.Api.Store.query_ids store "/doc/bidder[1]") in
  ignore (O.Api.Store.delete_subtree store ~id:victim)

let native_flat = O.Native_store.create (Xmllib.Generator.flat ~tag:"item" ~count:200 ())

let native_insert_delete pos =
  O.Native_store.insert_subtree native_flat ~parent:0 ~pos O.Workload.small_fragment;
  let victim = List.hd (O.Native_store.query native_flat "/doc/bidder[1]") in
  O.Native_store.delete_subtree native_flat ~id:victim

let update_tests =
  let per_pos pos =
    Test.make_grouped
      ~name:(O.Workload.position_name pos)
      (List.map
         (fun (enc, store) ->
           Test.make
             ~name:(O.Encoding.name enc)
             (Staged.stage (fun () ->
                  insert_delete store
                    (O.Workload.insertion_pos pos ~sibling_count:200))))
         update_stores
      @ [
          Test.make ~name:"native"
            (Staged.stage (fun () ->
                 native_insert_delete
                   (O.Workload.insertion_pos pos ~sibling_count:200)));
        ])
  in
  Test.make_grouped ~name:"e4-updates" (List.map per_pos O.Workload.positions)

(* --- E5: scaling (Q7, the document-order query) ------------------------ *)

let scaling_tests =
  let per_scale scale =
    let sdb = Reldb.Db.create () in
    let sdoc = O.Workload.dataset ~scale in
    let sstores =
      List.map
        (fun enc -> (enc, O.Api.Store.create sdb ~name:"s" enc sdoc))
        encodings
    in
    let xp =
      match (List.nth O.Workload.queries 6).O.Workload.q_xpath with
      | Some xp -> xp
      | None -> assert false
    in
    Test.make_grouped
      ~name:(Printf.sprintf "scale%d" scale)
      (List.map
         (fun (enc, store) ->
           Test.make
             ~name:(O.Encoding.name enc)
             (Staged.stage (fun () -> ignore (O.Api.Store.query store xp))))
         sstores)
  in
  Test.make_grouped ~name:"e5-scaling-q7" (List.map per_scale [ 1; 2; 4 ])

(* --- E6: ablation, dense vs gapped global ------------------------------ *)

let ablation_tests =
  let mk name enc gap =
    let adb = Reldb.Db.create () in
    let flat = Xmllib.Generator.flat ~tag:"item" ~count:200 () in
    let store = O.Api.Store.create ?gap adb ~name:"a" enc flat in
    Test.make ~name (Staged.stage (fun () -> insert_delete store 50))
  in
  Test.make_grouped ~name:"e6-ablation-gap"
    [
      mk "dense" O.Encoding.Global None;
      mk "gap32" O.Encoding.Global_gap (Some 32);
      mk "gap128" O.Encoding.Global_gap (Some 128);
    ]

(* --- E3b: step-at-a-time vs single-statement translation ---------------- *)

let single_statement_tests =
  let queries =
    [
      ("q1-path", "/site/open_auctions/open_auction");
      ("q6-valuepred", "//person[profile/@income > 50000]/name");
      ("q7-following", "/site/regions/africa/item/following::item");
    ]
  in
  let store = List.assoc O.Encoding.Global stores in
  Test.make_grouped ~name:"e3b-translation-mode"
    (List.concat_map
       (fun (name, xp) ->
         let path = O.Xpath_parser.parse xp in
         [
           Test.make ~name:(name ^ "/steps")
             (Staged.stage (fun () -> ignore (O.Api.Store.query store xp)));
           Test.make ~name:(name ^ "/single")
             (Staged.stage (fun () ->
                  ignore (O.Translate_sql.eval db ~doc:"b" O.Encoding.Global path)));
         ])
       queries)

(* --- E8: ablation, dewey vs ordpath careting --------------------------- *)

let caret_ablation_tests =
  let mk name enc =
    let adb = Reldb.Db.create () in
    let flat = Xmllib.Generator.flat ~tag:"item" ~count:200 () in
    let store = O.Api.Store.create adb ~name:"c" enc flat in
    Test.make ~name (Staged.stage (fun () -> insert_delete store 50))
  in
  Test.make_grouped ~name:"e8-ablation-caret"
    [ mk "dewey" O.Encoding.Dewey_enc; mk "ordpath" O.Encoding.Dewey_caret ]

(* --- E9: steady-state mixed operation (one ordered read + one
   random-position insert/delete pair) ------------------------------------ *)

let mixed_tests =
  let mk enc =
    let mdb = Reldb.Db.create () in
    let store =
      O.Api.Store.create mdb ~name:"m" enc (O.Workload.dataset ~scale:1)
    in
    let container =
      List.hd (O.Api.Store.query_ids store O.Workload.container_path)
    in
    let rng = Xmllib.Rng.create 5 in
    Test.make
      ~name:(O.Encoding.name enc)
      (Staged.stage (fun () ->
           ignore
             (O.Api.Store.query store
                "/site/open_auctions/open_auction/bidder[1]");
           let n = O.Api.Store.count store "/site/open_auctions/open_auction" in
           ignore
             (O.Api.Store.insert_subtree store ~parent:container
                ~pos:(1 + Xmllib.Rng.int rng n)
                O.Workload.small_fragment);
           (* delete the fragment we just inserted to stay steady-state *)
           let v =
             List.hd
               (O.Api.Store.query_ids store "/site/open_auctions/bidder[1]")
           in
           ignore (O.Api.Store.delete_subtree store ~id:v)))
  in
  Test.make_grouped ~name:"e9-mixed"
    (List.map mk (encodings @ [ O.Encoding.Global_gap; O.Encoding.Dewey_caret ]))

(* --- E7: shredding throughput ------------------------------------------ *)

let shred_tests =
  let xml_text = Xmllib.Printer.document_to_string doc in
  Test.make_grouped ~name:"e7-shred"
    (List.map
       (fun enc ->
         Test.make
           ~name:(O.Encoding.name enc)
           (Staged.stage (fun () ->
                let sdb = Reldb.Db.create () in
                ignore (O.Shred.shred sdb ~doc:"sh" enc doc))))
       encodings
    @ [
        Test.make ~name:"dewey-streaming"
          (Staged.stage (fun () ->
               let sdb = Reldb.Db.create () in
               ignore
                 (O.Shred.shred_stream sdb ~doc:"sh" O.Encoding.Dewey_enc
                    xml_text)));
      ])

(* --- E2: storage accounting (measured once, printed, not timed) -------- *)

let print_storage () =
  print_endline "e2-storage (scale 1):";
  List.iter
    (fun ((_ : O.Encoding.t), store) ->
      print_endline
        ("  " ^ Format.asprintf "%a" O.Storage.pp (O.Api.Store.storage store)))
    stores

(* --- harness ------------------------------------------------------------ *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let print_results results =
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          if ns > 1_000_000.0 then
            Printf.printf "  %-44s %10.2f ms/run\n" name (ns /. 1e6)
          else Printf.printf "  %-44s %10.1f us/run\n" name (ns /. 1e3)
      | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
    rows

let () =
  print_storage ();
  List.iter
    (fun tests ->
      Printf.printf "\n%s:\n%!" (Test.name tests);
      print_results (benchmark tests))
    [
      query_tests; single_statement_tests; update_tests; scaling_tests;
      ablation_tests; caret_ablation_tests; mixed_tests; shred_tests;
    ];
  print_endline "\nbench: done"
