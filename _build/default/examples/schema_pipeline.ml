(* Schema-driven pipeline: parse a DTD, sample random valid documents from
   it, validate, shred them under every encoding, and verify the stores'
   structural invariants — the full contract chain from schema to storage.

   Run with: dune exec examples/schema_pipeline.exe *)

module O = Ordered_xml
module D = Xmllib.Dtd

let order_dtd =
  {|
  <!ELEMENT orders (order+)>
  <!ELEMENT order (customer, line+, note?)>
  <!ATTLIST order id CDATA #REQUIRED status CDATA "open">
  <!ELEMENT customer (#PCDATA)>
  <!ELEMENT line (sku, qty, (giftwrap | discount)?)>
  <!ELEMENT sku (#PCDATA)>
  <!ELEMENT qty (#PCDATA)>
  <!ELEMENT giftwrap EMPTY>
  <!ELEMENT discount (#PCDATA)>
  <!ELEMENT note (#PCDATA | sku)*>
  |}

let () =
  let dtd = D.parse order_dtd in
  Printf.printf "DTD declares %d elements\n" (List.length (D.element_names dtd));

  (* sample a batch of random valid documents *)
  let rng = Xmllib.Rng.create 2026 in
  let docs = List.init 5 (fun _ -> D.sample dtd ~root:"orders" rng) in
  List.iteri
    (fun i doc ->
      let ok = D.validate dtd doc = Ok () in
      let stats = Xmllib.Stats.compute doc in
      Printf.printf "sample %d: %3d elements, valid: %b\n" i
        stats.Xmllib.Stats.elements ok)
    docs;

  (* shred the largest sample under every encoding and audit the stores *)
  let doc =
    List.fold_left
      (fun best d ->
        if
          (Xmllib.Stats.compute d).Xmllib.Stats.elements
          > (Xmllib.Stats.compute best).Xmllib.Stats.elements
        then d
        else best)
      (List.hd docs) docs
  in
  let db = Reldb.Db.create () in
  print_newline ();
  List.iter
    (fun enc ->
      let store = O.Api.Store.create db ~name:"orders" enc doc in
      let orders = O.Api.Store.count store "/orders/order" in
      let audited =
        match O.Api.Store.check store with Ok () -> "invariants OK" | Error m -> String.concat "; " m
      in
      Printf.printf "%-11s %d orders, roundtrip %b, %s\n" (O.Encoding.name enc)
        orders
        (Xmllib.Types.equal_document doc (O.Api.Store.document store))
        audited;
      O.Api.Store.drop store)
    O.Encoding.all;

  (* a validating editor: reject updates that would break the schema *)
  print_newline ();
  let store = O.Api.Store.create db ~name:"orders" O.Encoding.Dewey_caret doc in
  let try_insert label fragment =
    let order = List.hd (O.Api.Store.query_ids store "/orders/order[1]") in
    (* insert right after the last <line>, keeping (customer, line+, note?) *)
    let pos = 1 + 1 + O.Api.Store.count store "/orders/order[1]/line" in
    O.Api.Store.atomically store (fun () ->
        ignore (O.Api.Store.insert_subtree store ~parent:order ~pos fragment);
        match D.validate dtd (O.Api.Store.document store) with
        | Ok () -> Printf.printf "%-28s accepted\n" label
        | Error (m :: _) ->
            Printf.printf "%-28s rejected (%s)\n" label m;
            failwith "rolled back"
        | Error [] -> assert false)
  in
  let line =
    Xmllib.Types.element "line"
      [
        Xmllib.Types.element "sku" [ Xmllib.Types.text "A-1" ];
        Xmllib.Types.element "qty" [ Xmllib.Types.text "2" ];
      ]
  in
  (try try_insert "append a valid <line>" line with Failure _ -> ());
  (try try_insert "append a bogus <pallet>" (Xmllib.Types.element "pallet" [])
   with Failure _ -> ());
  Printf.printf "store still valid after the rejected edit: %b\n"
    (D.validate dtd (O.Api.Store.document store) = Ok ())
