(* The paper's motivating scenario: an auction site (XMark-style data) whose
   XML is stored shredded in an RDBMS. Runs the ordered query workload under
   all three order encodings and shows how the same XPath turns into very
   different SQL access paths.

   Run with: dune exec examples/auction_site.exe *)

module O = Ordered_xml

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let () =
  let doc = O.Workload.dataset ~scale:4 in
  let stats = Xmllib.Stats.compute doc in
  Printf.printf "Auction document: %d elements, %d attributes, depth %d\n\n"
    stats.Xmllib.Stats.elements stats.Xmllib.Stats.attributes
    stats.Xmllib.Stats.max_depth;

  let db = Reldb.Db.create () in
  let encodings = [ O.Encoding.Global; O.Encoding.Local; O.Encoding.Dewey_enc ] in
  let stores =
    List.map
      (fun enc ->
        let (store : O.Api.Store.t), ms =
          time (fun () -> O.Api.Store.create db ~name:"auction" enc doc)
        in
        Printf.printf "loaded %-8s in %6.1f ms\n" (O.Encoding.name enc) ms;
        (enc, store))
      encodings
  in

  (* ordered queries the site needs: latest bid, bid history, auction pages *)
  let queries =
    [
      ("newest bid of each auction", "/site/open_auctions/open_auction/bidder[last()]/increase");
      ("first bid of each auction", "/site/open_auctions/open_auction/bidder[1]/increase");
      ("bids after the opening bid", "/site/open_auctions/open_auction/bidder[1]/following-sibling::bidder");
      ("rich bidders' names", "//person[profile/@income > 80000]/name");
      ("items after the first African item", "/site/regions/africa/item[1]/following::item");
    ]
  in
  Printf.printf "\n%-38s %10s %10s %10s  (ms, rows read)\n" "query"
    "global" "local" "dewey";
  List.iter
    (fun (label, xpath) ->
      Printf.printf "%-38s" label;
      List.iter
        (fun (_, store) ->
          Reldb.Db.reset_counters db;
          let result, ms = time (fun () -> O.Api.Store.query store xpath) in
          Printf.printf " %6.1f/%-6d" ms (Reldb.Db.rows_read db);
          ignore result)
        stores;
      print_newline ())
    queries;

  (* the same XPath, three different SQL shapes *)
  let xpath = "/site/open_auctions/open_auction[2]/bidder[last()]" in
  Printf.printf "\nSQL issued for %s:\n" xpath;
  List.iter
    (fun (enc, store) ->
      let r = O.Api.Store.query store xpath in
      Printf.printf "\n-- %s (%d statements)\n" (O.Encoding.name enc)
        r.O.Translate.statements;
      List.iter
        (fun sql ->
          Printf.printf "   %s\n"
            (if String.length sql > 120 then String.sub sql 0 117 ^ "..." else sql))
        r.O.Translate.sql_log)
    stores;

  (* a live auction: bids arrive as appends — cheap everywhere; an auction
     withdrawn from the middle shows the encodings diverge *)
  Printf.printf "\nUpdate costs (rows renumbered):\n";
  Printf.printf "%-34s %8s %8s %8s\n" "operation" "global" "local" "dewey";
  let bid = O.Workload.small_fragment in
  Printf.printf "%-34s" "append a bid to an auction";
  List.iter
    (fun (_, store) ->
      let auction =
        List.hd (O.Api.Store.query_ids store "/site/open_auctions/open_auction[5]")
      in
      let st = O.Api.Store.append_child store ~parent:auction bid in
      Printf.printf " %8d" st.O.Update.rows_renumbered)
    stores;
  print_newline ();
  Printf.printf "%-34s" "insert an auction at the front";
  List.iter
    (fun (_, store) ->
      let container =
        List.hd (O.Api.Store.query_ids store "/site/open_auctions")
      in
      let st =
        O.Api.Store.insert_subtree store ~parent:container ~pos:1
          (O.Workload.update_fragment ~seed:7)
      in
      Printf.printf " %8d" st.O.Update.rows_renumbered)
    stores;
  print_newline ();

  (* all three stores must still agree on the document *)
  let docs = List.map (fun (_, s) -> O.Api.Store.document s) stores in
  let all_equal =
    match docs with
    | d :: rest -> List.for_all (Xmllib.Types.equal_document d) rest
    | [] -> true
  in
  Printf.printf "\nencodings agree after updates: %b\n" all_equal
