(* Quickstart: store an ordered XML document in the relational engine,
   query it with XPath, update it, and get the document back — all through
   the public API.

   Run with: dune exec examples/quickstart.exe *)

module O = Ordered_xml
module T = Xmllib.Types

let catalog_xml =
  {|<catalog>
  <book isbn="0201896834" year="1997">
    <title>The Art of Computer Programming, Vol. 1</title>
    <author>Donald E. Knuth</author>
    <price>79.99</price>
  </book>
  <book isbn="0262033844" year="2009">
    <title>Introduction to Algorithms</title>
    <author>Thomas H. Cormen</author>
    <price>94.50</price>
  </book>
  <book isbn="0122386610" year="2001">
    <title>Database Systems: The Complete Book</title>
    <author>Hector Garcia-Molina</author>
    <price>58.00</price>
  </book>
</catalog>|}

let () =
  (* 1. parse *)
  let doc = Xmllib.Parser.parse_document catalog_xml in

  (* 2. shred into a relational database under the Dewey order encoding *)
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create db ~name:"catalog" O.Encoding.Dewey_enc doc in
  Printf.printf "Shredded %d nodes into table %s\n\n"
    (Reldb.Table.row_count (Reldb.Db.table db "catalog_dewey"))
    "catalog_dewey";

  (* 3. ordered XPath queries run as SQL over the shredded relations *)
  let show q =
    Printf.printf "%-45s -> %s\n" q
      (String.concat " | " (O.Api.Store.query_values store q))
  in
  show "/catalog/book[1]/title";
  show "/catalog/book[last()]/title";
  show "/catalog/book[price > 60]/title";
  show "/catalog/book[@year = '2009']/author";
  show "/catalog/book[1]/following-sibling::book/title";

  (* peek behind the curtain: the SQL a query turns into *)
  let result = O.Api.Store.query store "/catalog/book[2]/title" in
  Printf.printf "\n/catalog/book[2]/title issued %d SQL statements:\n"
    result.O.Translate.statements;
  List.iter (fun sql -> Printf.printf "  %s\n" sql) result.O.Translate.sql_log;

  (* 4. order-preserving update: insert a new book between #1 and #2 *)
  let new_book =
    T.element "book"
      ~attrs:[ T.attr "isbn" "0596514921"; T.attr "year" "2008" ]
      [
        T.element "title" [ T.text "Real World Haskell" ];
        T.element "author" [ T.text "Bryan O'Sullivan" ];
        T.element "price" [ T.text "49.99" ];
      ]
  in
  let root = O.Api.Store.root_id store in
  let stats = O.Api.Store.insert_subtree store ~parent:root ~pos:2 new_book in
  Printf.printf
    "\nInserted %d rows at position 2 (renumbered %d existing rows)\n"
    stats.O.Update.rows_inserted stats.O.Update.rows_renumbered;
  show "/catalog/book[2]/title";

  (* 5. reconstruct the whole (ordered!) document from the relations *)
  let doc' = O.Api.Store.document store in
  Printf.printf "\nReconstructed document:\n%s\n"
    (Xmllib.Printer.pretty (T.Element doc'.T.root))
