(* An update-heavy scenario: a structured document being edited — sections
   and paragraphs inserted at arbitrary positions, like a CMS backed by a
   relational store. This is where the choice of order encoding dominates,
   and where the gap-based GLOBAL variant earns its ablation.

   Run with: dune exec examples/document_editor.exe *)

module O = Ordered_xml
module T = Xmllib.Types

let para i =
  T.element "para"
    [ T.text (Printf.sprintf "Paragraph %d: %s" i (Xmllib.Generator.words ~seed:i 12)) ]

let initial_doc =
  T.doc_of_node
    (T.element "article"
       [
         T.element "title" [ T.text "Storing ordered trees in relations" ];
         T.element "section"
           ~attrs:[ T.attr "id" "intro" ]
           [ T.element "head" [ T.text "Introduction" ]; para 1; para 2 ];
         T.element "section"
           ~attrs:[ T.attr "id" "body" ]
           (T.element "head" [ T.text "Main matter" ]
           :: List.init 30 (fun i -> para (10 + i)));
         T.element "section"
           ~attrs:[ T.attr "id" "conc" ]
           [ T.element "head" [ T.text "Conclusions" ]; para 99 ];
       ])

let () =
  let db = Reldb.Db.create () in
  let stores =
    List.map
      (fun enc -> (enc, O.Api.Store.create db ~name:"art" enc initial_doc))
      O.Encoding.all
  in

  (* an editing session: the author keeps inserting paragraphs at the top
     of the middle section (the worst case for positional encodings) *)
  let edits = 40 in
  Printf.printf "Editing session: %d paragraph insertions at section start\n\n"
    edits;
  Printf.printf "%-12s %14s %14s %12s\n" "encoding" "rows renumbered"
    "rows written" "ms";
  List.iter
    (fun (enc, store) ->
      Reldb.Db.reset_counters db;
      let t0 = Unix.gettimeofday () in
      let renum = ref 0 in
      for i = 1 to edits do
        let section =
          List.hd (O.Api.Store.query_ids store "/article/section[2]")
        in
        (* position 2: right after the <head> *)
        let st =
          O.Api.Store.insert_subtree store ~parent:section ~pos:2 (para (1000 + i))
        in
        renum := !renum + st.O.Update.rows_renumbered
      done;
      let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      Printf.printf "%-12s %14d %14d %12.1f\n" (O.Encoding.name enc) !renum
        (Reldb.Db.rows_written db) ms)
    stores;

  (* the ordered reading view still works everywhere *)
  Printf.printf "\nSection 2 now starts with:\n";
  List.iter
    (fun (enc, store) ->
      let first_two =
        O.Api.Store.query_values store
          "/article/section[2]/para[position() <= 2]"
      in
      Printf.printf "  %-12s %s\n" (O.Encoding.name enc)
        (String.concat " / "
           (List.map
              (fun s -> String.sub s 0 (min 24 (String.length s)))
              first_two)))
    stores;

  (* undo: delete what we inserted; check the documents converge *)
  List.iter
    (fun (_, store) ->
      for _ = 1 to edits do
        let victim =
          List.hd (O.Api.Store.query_ids store "/article/section[2]/para[1]")
        in
        ignore (O.Api.Store.delete_subtree store ~id:victim)
      done)
    stores;
  let docs = List.map (fun (_, s) -> O.Api.Store.document s) stores in
  let same =
    match docs with
    | d :: rest -> List.for_all (T.equal_document d) rest
    | [] -> true
  in
  Printf.printf "\nafter undo, all encodings agree: %b\n" same;

  (* storage: what each encoding pays per row *)
  Printf.printf "\nStorage after the session:\n";
  List.iter
    (fun (enc, store) ->
      let s = O.Api.Store.storage store in
      Printf.printf "  %s\n" (Format.asprintf "%a" O.Storage.pp s);
      ignore enc)
    stores
