(* Streaming ingest: load XML into the relational store in one SAX pass —
   no DOM — then keep it current with bulk (forest) insertions, and persist
   the whole database as a SQL script.

   Every order encoding supports one-pass loading because all three are
   stack-computable (preorder interval counters, sibling counters, a Dewey
   component stack); this example uses the ORDPATH variant so the feed of
   incoming auctions never renumbers existing rows.

   Run with: dune exec examples/streaming_load.exe *)

module O = Ordered_xml

let () =
  (* pretend this arrived over the wire *)
  let xml =
    Xmllib.Printer.document_to_string (O.Workload.dataset ~scale:2)
  in
  Printf.printf "incoming document: %d bytes\n" (String.length xml);

  let db = Reldb.Db.create () in
  let t0 = Unix.gettimeofday () in
  let records = O.Shred.shred_stream db ~doc:"feed" O.Encoding.Dewey_caret xml in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  Printf.printf "streamed %d records into feed_ordpath in %.1f ms (%.0f rec/s)\n"
    records ms
    (float_of_int records /. ms *. 1000.0);

  let store = O.Api.Store.open_existing db ~name:"feed" O.Encoding.Dewey_caret in
  Printf.printf "open auctions: %d\n"
    (O.Api.Store.count store "/site/open_auctions/open_auction");

  (* a batch of new auctions arrives: insert them all at the front of the
     list with one bulk operation *)
  let batch =
    List.init 5 (fun i -> O.Workload.update_fragment ~seed:(100 + i))
  in
  let container = List.hd (O.Api.Store.query_ids store "/site/open_auctions") in
  let st = O.Api.Store.insert_forest store ~parent:container ~pos:1 batch in
  Printf.printf
    "bulk-inserted %d rows as 5 new auctions; existing rows renumbered: %d\n"
    st.O.Update.rows_inserted st.O.Update.rows_renumbered;
  Printf.printf "newest auction's first bid: %s\n"
    (match
       O.Api.Store.query_values store
         "/site/open_auctions/open_auction[1]/bidder[1]/increase"
     with
    | v :: _ -> v
    | [] -> "(none)");

  (* ordered semantics survived the bulk insert *)
  Printf.printf "auctions now: %d (first five are the new batch: %b)\n"
    (O.Api.Store.count store "/site/open_auctions/open_auction")
    (O.Api.Store.count store
       "/site/open_auctions/open_auction[position() <= 5][bidder]"
    = 5);

  (* persist everything as a SQL script and prove it reloads *)
  let path = Filename.temp_file "feed" ".sql" in
  Reldb.Db.dump_to_file db path;
  let db2 = Reldb.Db.restore_from_file path in
  let store2 = O.Api.Store.open_existing db2 ~name:"feed" O.Encoding.Dewey_caret in
  Printf.printf "dumped to %s (%d bytes); reload agrees: %b\n" path
    (let ic = open_in_bin path in
     let n = in_channel_length ic in
     close_in ic;
     n)
    (Xmllib.Types.equal_document
       (O.Api.Store.document store)
       (O.Api.Store.document store2));
  Sys.remove path
