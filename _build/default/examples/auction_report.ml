(* Publishing: turn relational-stored XML back into *new* XML with FLWOR
   queries — the XPERANTO/SilkRoute-style workload the paper's shredding
   architecture was built to serve. Every for/where/order clause below runs
   as SQL over the order-encoded tables.

   Run with: dune exec examples/auction_report.exe *)

module O = Ordered_xml

let () =
  let doc = O.Workload.dataset ~scale:2 in
  let db = Reldb.Db.create () in
  let store = O.Api.Store.create db ~name:"site" O.Encoding.Global doc in
  ignore store;

  let report query =
    let nodes = O.Flwor.run db ~doc:"site" O.Encoding.Global query in
    Printf.printf "-- %d result nodes\n" (List.length nodes);
    List.iteri
      (fun i n ->
        if i < 5 then print_string (Xmllib.Printer.pretty ~indent:1 n))
      nodes;
    if List.length nodes > 5 then
      Printf.printf " ... (%d more)\n" (List.length nodes - 5);
    print_newline ()
  in

  print_endline "=== expensive closed sales, highest first ===";
  report
    "for $a in /site/closed_auctions/closed_auction \
     where $a/price > 400 \
     order by $a/price descending \
     return <sale price=\"{$a/price/text()}\" buyer=\"{$a/buyer/@person}\" \
     item=\"{$a/itemref/@item}\"/>";

  print_endline "=== auction activity: last bid of every contested auction ===";
  report
    "for $a in /site/open_auctions/open_auction \
     for $b in $a/bidder[last()] \
     where $a/bidder[2] \
     return <active id=\"{$a/@id}\"><final>{$b/increase/text()}</final>\
     <opened>{$a/initial/text()}</opened></active>";

  print_endline "=== affluent people and where they live ===";
  report
    "for $p in /site/people/person \
     where $p/profile/@income >= 90000 and $p/address \
     order by $p/name \
     return <vip name=\"{$p/name/text()}\" income=\"{$p/profile/@income}\">\
     {$p/address/city}</vip>";

  (* the same report is identical under every order encoding *)
  let q =
    "for $a in /site/closed_auctions/closed_auction where $a/price > 400 \
     order by $a/price descending return <p>{$a/price/text()}</p>"
  in
  let renders =
    List.map
      (fun enc ->
        let name = "alt_" ^ O.Encoding.table_name ~doc:"x" enc in
        ignore (O.Api.Store.create db ~name enc doc);
        String.concat ""
          (List.map Xmllib.Printer.node_to_string
             (O.Flwor.run db ~doc:name enc q)))
      [ O.Encoding.Local; O.Encoding.Dewey_enc ]
  in
  let base =
    String.concat ""
      (List.map Xmllib.Printer.node_to_string
         (O.Flwor.run db ~doc:"site" O.Encoding.Global q))
  in
  Printf.printf "all encodings produce the identical report: %b\n"
    (List.for_all (String.equal base) renders)
