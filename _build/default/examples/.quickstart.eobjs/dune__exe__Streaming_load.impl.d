examples/streaming_load.ml: Filename List Ordered_xml Printf Reldb String Sys Unix Xmllib
