examples/streaming_load.mli:
