examples/auction_site.ml: List Ordered_xml Printf Reldb String Unix Xmllib
