examples/quickstart.mli:
