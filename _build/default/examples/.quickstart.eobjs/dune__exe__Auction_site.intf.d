examples/auction_site.mli:
