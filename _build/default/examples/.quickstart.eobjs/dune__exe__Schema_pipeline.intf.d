examples/schema_pipeline.mli:
