examples/schema_pipeline.ml: List Ordered_xml Printf Reldb String Xmllib
