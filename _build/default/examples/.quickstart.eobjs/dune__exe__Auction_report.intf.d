examples/auction_report.mli:
