examples/document_editor.mli:
