examples/auction_report.ml: List Ordered_xml Printf Reldb String Xmllib
