examples/quickstart.ml: List Ordered_xml Printf Reldb String Xmllib
