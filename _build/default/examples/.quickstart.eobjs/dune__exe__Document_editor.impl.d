examples/document_editor.ml: Format List Ordered_xml Printf Reldb String Unix Xmllib
