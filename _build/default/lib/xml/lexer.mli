(** Tokenizer for XML 1.0 documents (the subset the experiments require:
    elements, attributes, character data, CDATA sections, comments,
    processing instructions, the XML declaration, and a skipped DOCTYPE).

    Entity references ([&lt; &gt; &amp; &apos; &quot;]) and numeric character
    references ([&#n;], [&#xn;]) are decoded in character data and attribute
    values. *)

type position = { line : int; col : int; offset : int }

exception Error of position * string
(** Raised on malformed input, with the position of the offending byte. *)

type token =
  | Start_tag of {
      name : string;
      attrs : (string * string) list;
      self_closing : bool;
    }
  | End_tag of string
  | Chars of string  (** decoded character data (also used for CDATA) *)
  | Comment_tok of string
  | Pi_tok of { target : string; data : string }
  | Decl_tok  (** the [<?xml ...?>] declaration *)
  | Doctype_tok  (** a DOCTYPE declaration, contents skipped *)
  | Eof

type t

val create : string -> t
(** Tokenizer over a complete document held in memory. *)

val next : t -> token
(** Next token; returns {!Eof} at end of input and forever after. *)

val position : t -> position
(** Current position (start of the token about to be read). *)

val decode_entities : string -> string
(** Decode entity and character references in a string.
    @raise Error on an unknown or unterminated reference. *)
