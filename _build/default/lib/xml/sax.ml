type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

exception Error of string

let fail (pos : Lexer.position) msg =
  raise (Error (Printf.sprintf "line %d, column %d: %s" pos.line pos.col msg))

let is_blank s =
  let ok = ref true in
  String.iter
    (fun c -> match c with ' ' | '\t' | '\r' | '\n' -> () | _ -> ok := false)
    s;
  !ok

let fold ?(keep_ws = false) src ~init ~f =
  let lx = Lexer.create src in
  let acc = ref init in
  let emit ev = acc := f !acc ev in
  let stack = ref [] in
  let seen_root = ref false in
  let rec go () =
    let pos = Lexer.position lx in
    match Lexer.next lx with
    | Lexer.Eof ->
        (match !stack with
        | [] -> if not !seen_root then fail pos "empty document"
        | tag :: _ -> fail pos (Printf.sprintf "unclosed element <%s>" tag))
    | Lexer.Decl_tok | Lexer.Doctype_tok ->
        if !stack <> [] || !seen_root then fail pos "misplaced declaration";
        go ()
    | Lexer.Chars s ->
        if !stack = [] then begin
          if not (is_blank s) then fail pos "text outside the document root"
        end
        else if keep_ws || not (is_blank s) then emit (Text s);
        go ()
    | Lexer.Comment_tok s ->
        emit (Comment s);
        go ()
    | Lexer.Pi_tok { target; data } ->
        emit (Pi { target; data });
        go ()
    | Lexer.Start_tag { name; attrs; self_closing } ->
        if !stack = [] && !seen_root then fail pos "content after document root";
        seen_root := true;
        emit (Start_element { tag = name; attrs });
        if self_closing then emit (End_element name)
        else stack := name :: !stack;
        go ()
    | Lexer.End_tag name -> (
        match !stack with
        | top :: rest when top = name ->
            emit (End_element name);
            stack := rest;
            go ()
        | top :: _ ->
            fail pos
              (Printf.sprintf "mismatched end tag: expected </%s>, got </%s>"
                 top name)
        | [] -> fail pos (Printf.sprintf "stray end tag </%s>" name))
  in
  (try go () with Lexer.Error (pos, msg) -> fail pos msg);
  !acc

let iter ?keep_ws src f = fold ?keep_ws src ~init:() ~f:(fun () ev -> f ev)

let count_events src = fold src ~init:0 ~f:(fun n _ -> n + 1)
