exception Parse_error of string

let fail_at (pos : Lexer.position) msg =
  raise
    (Parse_error (Printf.sprintf "line %d, column %d: %s" pos.line pos.col msg))

let is_blank s =
  let ok = ref true in
  String.iter
    (fun c -> match c with ' ' | '\t' | '\r' | '\n' -> () | _ -> ok := false)
    s;
  !ok

(* Parse a sequence of sibling nodes until we hit [End_tag] or [Eof]. Returns
   the children (in order) and the terminator. *)
let rec parse_siblings lx ~keep_ws acc =
  let pos = Lexer.position lx in
  match Lexer.next lx with
  | Lexer.Eof -> (List.rev acc, `Eof)
  | Lexer.End_tag name -> (List.rev acc, `End (name, pos))
  | Lexer.Chars s ->
      if (not keep_ws) && is_blank s then parse_siblings lx ~keep_ws acc
      else parse_siblings lx ~keep_ws (Types.Text s :: acc)
  | Lexer.Comment_tok s -> parse_siblings lx ~keep_ws (Types.Comment s :: acc)
  | Lexer.Pi_tok { target; data } ->
      parse_siblings lx ~keep_ws (Types.Pi { target; data } :: acc)
  | Lexer.Decl_tok -> fail_at pos "XML declaration not at document start"
  | Lexer.Doctype_tok -> fail_at pos "DOCTYPE not allowed here"
  | Lexer.Start_tag { name; attrs; self_closing } ->
      let node = parse_element lx ~keep_ws ~name ~attrs ~self_closing ~pos in
      parse_siblings lx ~keep_ws (node :: acc)

and parse_element lx ~keep_ws ~name ~attrs ~self_closing ~pos =
  let attrs =
    List.map (fun (n, v) -> { Types.attr_name = n; attr_value = v }) attrs
  in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (a : Types.attribute) ->
      if Hashtbl.mem seen a.attr_name then
        fail_at pos (Printf.sprintf "duplicate attribute %s" a.attr_name);
      Hashtbl.add seen a.attr_name ())
    attrs;
  if self_closing then Types.Element { tag = name; attrs; children = [] }
  else
    match parse_siblings lx ~keep_ws [] with
    | children, `End (close, _) when close = name ->
        Types.Element { tag = name; attrs; children }
    | _, `End (close, cpos) ->
        fail_at cpos
          (Printf.sprintf "mismatched end tag: expected </%s>, got </%s>" name
             close)
    | _, `Eof -> fail_at pos (Printf.sprintf "unclosed element <%s>" name)

let parse_prolog lx =
  (* Returns whether an XML declaration was present; skips DOCTYPE/comments/PIs
     before the root element and hands back the first real token. *)
  let decl = ref false in
  let rec go first =
    let pos = Lexer.position lx in
    match Lexer.next lx with
    | Lexer.Decl_tok ->
        if not first then fail_at pos "misplaced XML declaration";
        decl := true;
        go false
    | Lexer.Doctype_tok | Lexer.Comment_tok _ | Lexer.Pi_tok _ -> go false
    | Lexer.Chars s when is_blank s -> go false
    | tok -> (tok, pos)
  in
  let tok, pos = go true in
  (!decl, tok, pos)

let parse_doc ~keep_ws src =
  let lx = Lexer.create src in
  try
    let decl, tok, pos = parse_prolog lx in
    match tok with
    | Lexer.Start_tag { name; attrs; self_closing } -> begin
        let node = parse_element lx ~keep_ws ~name ~attrs ~self_closing ~pos in
        (* only trailing misc allowed *)
        let rec check_epilog () =
          let pos = Lexer.position lx in
          match Lexer.next lx with
          | Lexer.Eof -> ()
          | Lexer.Comment_tok _ | Lexer.Pi_tok _ -> check_epilog ()
          | Lexer.Chars s when is_blank s -> check_epilog ()
          | _ -> fail_at pos "content after document root"
        in
        check_epilog ();
        match node with
        | Types.Element root -> { Types.decl; root }
        | Types.Text _ | Types.Comment _ | Types.Pi _ -> assert false
      end
    | Lexer.Eof -> raise (Parse_error "empty document")
    | _ -> fail_at pos "expected root element"
  with Lexer.Error (pos, msg) -> fail_at pos msg

let parse_document src = parse_doc ~keep_ws:false src
let parse_document_ws src = parse_doc ~keep_ws:true src

let parse_fragment src =
  let lx = Lexer.create src in
  try
    match parse_siblings lx ~keep_ws:false [] with
    | nodes, `Eof -> nodes
    | _, `End (name, pos) ->
        fail_at pos (Printf.sprintf "unexpected end tag </%s>" name)
  with Lexer.Error (pos, msg) -> fail_at pos msg
