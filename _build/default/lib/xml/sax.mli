(** Streaming (SAX-style) traversal: parse events off the wire without
    building a DOM. The streaming shredder uses this to load documents in
    one pass — possible for every order encoding precisely because all
    three can be computed with a stack (preorder counters, sibling
    counters, Dewey component stack). *)

type event =
  | Start_element of { tag : string; attrs : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

exception Error of string
(** Malformed input; message includes position. *)

val fold :
  ?keep_ws:bool -> string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Run the event stream over a complete document, checking
    well-formedness (matching tags, single root). [keep_ws] as in
    {!Parser.parse_document_ws}; default false. *)

val iter : ?keep_ws:bool -> string -> (event -> unit) -> unit

val count_events : string -> int
(** Number of events in the document (a cheap smoke check). *)
