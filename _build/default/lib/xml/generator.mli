(** Synthetic XML document generators.

    The paper evaluated on benchmark-style auction data; the original corpora
    are not redistributable here, so {!xmark} generates documents following
    the XMark auction schema (site / regions / categories / people /
    open_auctions / closed_auctions) with the same structural profile:
    moderate depth (~8), high fanout at container elements, mixed text and
    attributes, and order-significant [bidder] lists. *)

val xmark : ?seed:int -> scale:int -> unit -> Types.document
(** An auction document. [scale] linearly controls entity counts
    (scale 1 ~ 2500 nodes). Deterministic for a given [(seed, scale)]. *)

val random_tree :
  ?seed:int ->
  ?tags:string array ->
  max_depth:int ->
  max_fanout:int ->
  unit ->
  Types.document
(** Random document for property-based tests: random shape, random tags,
    random attributes and text, guaranteed well-formed. *)

val flat : ?payload_children:int -> tag:string -> count:int -> unit -> Types.document
(** [<doc>] with [count] children named [tag], each carrying
    [payload_children] small children — the shape used by the update
    experiments (many ordered siblings). Item texts record their creation
    rank so order violations are observable. *)

val deep : ?payload:int -> depth:int -> branch:int -> unit -> Types.document
(** Treebank-style deep recursive structure: a chain of [depth] nested
    levels, each with [branch] children of which one recurses; [payload]
    small leaves per level. Exercises key-length growth in path-based
    encodings. *)

val words : ?seed:int -> int -> string
(** [words n] is a deterministic sentence of [n] lorem-style words. *)

val xmark_dtd : string
(** The DTD the {!xmark} generator conforms to (checked by the test suite);
    parse it with {!Dtd.parse}. *)
