(** Structural statistics of a document — the numbers reported in dataset
    characteristics tables (experiment E1). *)

type t = {
  elements : int;
  attributes : int;
  texts : int;
  others : int;  (** comments + processing instructions *)
  max_depth : int;
  max_fanout : int;
  avg_fanout : float;  (** average children per non-leaf element *)
  text_bytes : int;
  serialized_bytes : int;
  distinct_tags : int;
}

val compute : Types.document -> t

val tag_histogram : Types.document -> (string * int) list
(** Tag name -> element count, sorted by decreasing count. *)

val pp : Format.formatter -> t -> unit
