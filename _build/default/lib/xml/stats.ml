type t = {
  elements : int;
  attributes : int;
  texts : int;
  others : int;
  max_depth : int;
  max_fanout : int;
  avg_fanout : float;
  text_bytes : int;
  serialized_bytes : int;
  distinct_tags : int;
}

let compute (d : Types.document) =
  let elements = ref 0
  and attributes = ref 0
  and texts = ref 0
  and others = ref 0
  and max_fanout = ref 0
  and nonleaf = ref 0
  and child_sum = ref 0
  and text_bytes = ref 0 in
  let tags = Hashtbl.create 64 in
  let root = Types.Element d.root in
  Types.iter
    (fun n ->
      match n with
      | Types.Element e ->
          incr elements;
          attributes := !attributes + List.length e.attrs;
          Hashtbl.replace tags e.tag ();
          let fanout = List.length e.children in
          if fanout > 0 then begin
            incr nonleaf;
            child_sum := !child_sum + fanout;
            if fanout > !max_fanout then max_fanout := fanout
          end
      | Types.Text s ->
          incr texts;
          text_bytes := !text_bytes + String.length s
      | Types.Comment _ | Types.Pi _ -> incr others)
    root;
  {
    elements = !elements;
    attributes = !attributes;
    texts = !texts;
    others = !others;
    max_depth = Types.depth root;
    max_fanout = !max_fanout;
    avg_fanout =
      (if !nonleaf = 0 then 0.0
       else float_of_int !child_sum /. float_of_int !nonleaf);
    text_bytes = !text_bytes;
    serialized_bytes = String.length (Printer.document_to_string d);
    distinct_tags = Hashtbl.length tags;
  }

let tag_histogram (d : Types.document) =
  let tags = Hashtbl.create 64 in
  Types.iter
    (fun n ->
      match n with
      | Types.Element e ->
          Hashtbl.replace tags e.tag
            (1 + (try Hashtbl.find tags e.tag with Not_found -> 0))
      | Types.Text _ | Types.Comment _ | Types.Pi _ -> ())
    (Types.Element d.root);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tags []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp ppf t =
  Format.fprintf ppf
    "elements=%d attrs=%d texts=%d others=%d depth=%d max_fanout=%d \
     avg_fanout=%.2f text_bytes=%d serialized_bytes=%d distinct_tags=%d"
    t.elements t.attributes t.texts t.others t.max_depth t.max_fanout
    t.avg_fanout t.text_bytes t.serialized_bytes t.distinct_tags
