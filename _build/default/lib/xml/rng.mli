(** Deterministic pseudo-random number generator (splitmix64).

    Every generator and workload takes an explicit [Rng.t] so that all
    datasets and experiments are reproducible bit-for-bit from a seed. *)

type t

val create : int -> t
(** Seeded generator. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
