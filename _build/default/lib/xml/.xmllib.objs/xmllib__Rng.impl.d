lib/xml/rng.ml: Array Int64
