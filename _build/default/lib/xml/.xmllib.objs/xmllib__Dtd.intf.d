lib/xml/dtd.mli: Rng Types
