lib/xml/sax.mli:
