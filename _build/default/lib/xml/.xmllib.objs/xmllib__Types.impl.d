lib/xml/types.ml: Format List String
