lib/xml/stats.ml: Format Hashtbl List Printer String Types
