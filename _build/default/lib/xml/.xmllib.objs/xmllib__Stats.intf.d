lib/xml/stats.mli: Format Types
