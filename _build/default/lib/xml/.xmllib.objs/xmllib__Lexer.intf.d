lib/xml/lexer.mli:
