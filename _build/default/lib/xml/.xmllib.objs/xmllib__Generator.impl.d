lib/xml/generator.ml: Buffer List Printf Rng Types
