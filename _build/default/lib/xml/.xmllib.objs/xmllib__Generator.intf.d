lib/xml/generator.mli: Types
