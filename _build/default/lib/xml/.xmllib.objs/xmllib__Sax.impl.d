lib/xml/sax.ml: Lexer Printf String
