lib/xml/dtd.ml: Generator Hashtbl List Option Printf Rng String Types
