lib/xml/rng.mli:
