lib/xml/parser.ml: Hashtbl Lexer List Printf String Types
