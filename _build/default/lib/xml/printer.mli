(** XML serialization. *)

val escape_text : string -> string
(** Escape [& < >] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and the double quote for double-quoted
    attribute values. *)

val node_to_string : Types.node -> string
(** Compact serialization (no added whitespace). Empty elements are written
    self-closed ([<a/>]). *)

val document_to_string : Types.document -> string
(** Serialize the document, emitting an XML declaration when the document
    carries one. *)

val pretty : ?indent:int -> Types.node -> string
(** Indented rendering for humans. Text nodes inhibit indentation of their
    siblings so mixed content round-trips visually intact. *)
