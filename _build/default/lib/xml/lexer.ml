type position = { line : int; col : int; offset : int }

exception Error of position * string

type token =
  | Start_tag of {
      name : string;
      attrs : (string * string) list;
      self_closing : bool;
    }
  | End_tag of string
  | Chars of string
  | Comment_tok of string
  | Pi_tok of { target : string; data : string }
  | Decl_tok
  | Doctype_tok
  | Eof

type t = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let create src = { src; pos = 0; line = 1; bol = 0 }

let position t = { line = t.line; col = t.pos - t.bol + 1; offset = t.pos }

let error t msg = raise (Error (position t, msg))

let error_exn t msg = Error (position t, msg)

let at_end t = t.pos >= String.length t.src

let peek t = if at_end t then '\000' else t.src.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.src then '\000' else t.src.[t.pos + 1]

let advance t =
  (if not (at_end t) then
     let c = t.src.[t.pos] in
     t.pos <- t.pos + 1;
     if c = '\n' then begin
       t.line <- t.line + 1;
       t.bol <- t.pos
     end)

let skip_ws t =
  while (not (at_end t)) && (match peek t with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
    advance t
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_name t =
  if not (is_name_start (peek t)) then error t "expected a name";
  let start = t.pos in
  while (not (at_end t)) && is_name_char (peek t) do
    advance t
  done;
  String.sub t.src start (t.pos - start)

(* Decoding of entity/character references, shared with attribute parsing. *)

let decode_ref_at src pos ~err =
  (* [pos] points at '&'; returns (decoded, next_pos); [err] builds the
     exception to raise on malformed references. *)
  let err msg = raise (err msg) in
  let n = String.length src in
  let semi =
    let rec find i =
      if i >= n then err "unterminated entity reference"
      else if src.[i] = ';' then i
      else find (i + 1)
    in
    find (pos + 1)
  in
  let body = String.sub src (pos + 1) (semi - pos - 1) in
  let decoded =
    match body with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | _ ->
        if String.length body > 1 && body.[0] = '#' then begin
          let code =
            try
              if body.[1] = 'x' || body.[1] = 'X' then
                int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
              else int_of_string (String.sub body 1 (String.length body - 1))
            with Failure _ -> err ("bad character reference &" ^ body ^ ";")
          in
          if code < 0 || code > 0x10FFFF then
            err ("character reference out of range &" ^ body ^ ";");
          (* UTF-8 encode *)
          let b = Buffer.create 4 in
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code < 0x10000 then begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end;
          Buffer.contents b
        end
        else err ("unknown entity &" ^ body ^ ";")
  in
  (decoded, semi + 1)

let decode_entities s =
  match String.index_opt s '&' with
  | None -> s
  | Some _ ->
      let err msg = Error ({ line = 0; col = 0; offset = 0 }, msg) in
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let rec go i =
        if i >= n then Buffer.contents buf
        else if s.[i] = '&' then begin
          let decoded, next = decode_ref_at s i ~err in
          Buffer.add_string buf decoded;
          go next
        end
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
      in
      go 0

let read_quoted_value t =
  let quote = peek t in
  if quote <> '"' && quote <> '\'' then error t "expected quoted attribute value";
  advance t;
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end t then error t "unterminated attribute value"
    else
      let c = peek t in
      if c = quote then advance t
      else if c = '<' then error t "'<' in attribute value"
      else if c = '&' then begin
        let decoded, next = decode_ref_at t.src t.pos ~err:(error_exn t) in
        Buffer.add_string buf decoded;
        t.pos <- next;
        go ()
      end
      else begin
        Buffer.add_char buf c;
        advance t;
        go ()
      end
  in
  go ();
  Buffer.contents buf

let read_attrs t =
  let rec go acc =
    skip_ws t;
    match peek t with
    | '>' | '/' | '?' -> List.rev acc
    | c when is_name_start c ->
        let name = read_name t in
        skip_ws t;
        if peek t <> '=' then error t "expected '=' after attribute name";
        advance t;
        skip_ws t;
        let value = read_quoted_value t in
        go ((name, value) :: acc)
    | _ -> error t "malformed tag"
  in
  go []

let expect_str t s =
  let n = String.length s in
  if t.pos + n > String.length t.src || String.sub t.src t.pos n <> s then
    error t (Printf.sprintf "expected %S" s);
  for _ = 1 to n do
    advance t
  done

let read_until t close =
  (* Scan forward for the closing delimiter; returns content before it. *)
  let n = String.length t.src and cn = String.length close in
  let rec find i =
    if i + cn > n then error t (Printf.sprintf "missing %S" close)
    else if String.sub t.src i cn = close then i
    else find (i + 1)
  in
  let stop = find t.pos in
  let content = String.sub t.src t.pos (stop - t.pos) in
  while t.pos < stop + cn do
    advance t
  done;
  content

let read_markup t =
  (* [t.pos] points at '<' *)
  advance t;
  match peek t with
  | '/' ->
      advance t;
      let name = read_name t in
      skip_ws t;
      if peek t <> '>' then error t "malformed end tag";
      advance t;
      End_tag name
  | '?' ->
      advance t;
      let target = read_name t in
      if String.lowercase_ascii target = "xml" then begin
        let _ = read_until t "?>" in
        Decl_tok
      end
      else begin
        skip_ws t;
        let data = read_until t "?>" in
        Pi_tok { target; data }
      end
  | '!' ->
      advance t;
      if peek t = '-' && peek2 t = '-' then begin
        advance t;
        advance t;
        let content = read_until t "-->" in
        Comment_tok content
      end
      else if peek t = '[' then begin
        expect_str t "[CDATA[";
        let content = read_until t "]]>" in
        Chars content
      end
      else begin
        (* DOCTYPE: skip to matching '>' accounting for an internal subset *)
        let name = read_name t in
        if String.uppercase_ascii name <> "DOCTYPE" then
          error t "unsupported '<!' construct";
        let depth = ref 0 in
        let rec skip () =
          if at_end t then error t "unterminated DOCTYPE"
          else
            match peek t with
            | '[' ->
                incr depth;
                advance t;
                skip ()
            | ']' ->
                decr depth;
                advance t;
                skip ()
            | '>' when !depth = 0 -> advance t
            | _ ->
                advance t;
                skip ()
        in
        skip ();
        Doctype_tok
      end
  | c when is_name_start c ->
      let name = read_name t in
      let attrs = read_attrs t in
      skip_ws t;
      if peek t = '/' then begin
        advance t;
        if peek t <> '>' then error t "malformed self-closing tag";
        advance t;
        Start_tag { name; attrs; self_closing = true }
      end
      else if peek t = '>' then begin
        advance t;
        Start_tag { name; attrs; self_closing = false }
      end
      else error t "malformed start tag"
  | _ -> error t "malformed markup"

let read_chars t =
  let buf = Buffer.create 32 in
  let rec go () =
    if at_end t then ()
    else
      match peek t with
      | '<' -> ()
      | '&' ->
          let decoded, next = decode_ref_at t.src t.pos ~err:(error_exn t) in
          Buffer.add_string buf decoded;
          t.pos <- next;
          go ()
      | c ->
          Buffer.add_char buf c;
          advance t;
          go ()
  in
  go ();
  Chars (Buffer.contents buf)

let next t =
  if at_end t then Eof
  else if peek t = '<' then read_markup t
  else read_chars t
