let word_pool =
  [|
    "auction"; "bid"; "seller"; "gold"; "silver"; "market"; "price"; "rare";
    "vintage"; "classic"; "mint"; "boxed"; "shipping"; "reserve"; "lot";
    "antique"; "modern"; "signed"; "edition"; "limited"; "original"; "quality";
    "condition"; "offer"; "deal"; "trade"; "value"; "estimate"; "catalog";
    "collector"; "history"; "provenance"; "certified"; "appraised"; "european";
    "asian"; "african"; "american"; "australian"; "item"; "listing";
  |]

let words_rng rng n =
  let buf = Buffer.create (n * 8) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Rng.pick rng word_pool)
  done;
  Buffer.contents buf

let words ?(seed = 17) n = words_rng (Rng.create seed) n

let el ?attrs tag children = Types.element ?attrs tag children
let txt s = Types.text s
let leaf tag s = el tag [ txt s ]
let attr = Types.attr

let person_ref rng n_people = Printf.sprintf "person%d" (Rng.int rng n_people)

let make_person rng i =
  let name = Printf.sprintf "%s %s" (Rng.pick rng word_pool) (Rng.pick rng word_pool) in
  let optional =
    List.concat
      [
        (if Rng.bool rng then
           [ leaf "phone" (Printf.sprintf "+%d (%d) %d" (Rng.int_in rng 1 99)
                (Rng.int_in rng 100 999) (Rng.int_in rng 1000000 9999999)) ]
         else []);
        (if Rng.bool rng then
           [
             el "address"
               [
                 leaf "street" (Printf.sprintf "%d %s St" (Rng.int_in rng 1 99) (Rng.pick rng word_pool));
                 leaf "city" (Rng.pick rng word_pool);
                 leaf "country" (Rng.pick rng word_pool);
               ];
           ]
         else []);
        (if Rng.bool rng then
           [
             el "profile"
               ~attrs:[ attr "income" (string_of_int (Rng.int_in rng 9000 120000)) ]
               [
                 leaf "education" (Rng.pick rng [| "High School"; "College"; "Graduate School"; "Other" |]);
                 leaf "interest" (words_rng rng 3);
               ];
           ]
         else []);
      ]
  in
  el "person"
    ~attrs:[ attr "id" (Printf.sprintf "person%d" i) ]
    (leaf "name" name
    :: leaf "emailaddress" (Printf.sprintf "mailto:%s@%s.example" (Rng.pick rng word_pool) (Rng.pick rng word_pool))
    :: optional)

let make_item rng i region =
  el "item"
    ~attrs:[ attr "id" (Printf.sprintf "item%d" i) ]
    [
      leaf "location" region;
      leaf "quantity" (string_of_int (Rng.int_in rng 1 10));
      leaf "name" (words_rng rng 2);
      el "payment" [ txt (Rng.pick rng [| "Cash"; "Creditcard"; "Money order" |]) ];
      el "description" [ el "text" [ txt (words_rng rng (Rng.int_in rng 5 30)) ] ];
      leaf "shipping" (Rng.pick rng [| "Will ship internationally"; "Buyer pays fixed shipping charges" |]);
    ]

let make_bidder rng ~n_people ~seq =
  el "bidder"
    [
      leaf "date" (Printf.sprintf "%02d/%02d/2001" (Rng.int_in rng 1 12) (Rng.int_in rng 1 28));
      leaf "time" (Printf.sprintf "%02d:%02d:%02d" (Rng.int rng 24) (Rng.int rng 60) (Rng.int rng 60));
      el "personref" ~attrs:[ attr "person" (person_ref rng n_people) ] [];
      leaf "increase" (Printf.sprintf "%d.%02d" (Rng.int_in rng 1 50 * (1 + (seq / 4))) (Rng.int rng 100));
    ]

let make_open_auction rng i ~n_people ~n_items =
  let n_bidders = Rng.int_in rng 1 10 in
  let bidders = List.init n_bidders (fun seq -> make_bidder rng ~n_people ~seq) in
  el "open_auction"
    ~attrs:[ attr "id" (Printf.sprintf "open_auction%d" i) ]
    (List.concat
       [
         [
           leaf "initial" (Printf.sprintf "%d.%02d" (Rng.int_in rng 1 200) (Rng.int rng 100));
           leaf "reserve" (Printf.sprintf "%d.%02d" (Rng.int_in rng 10 400) (Rng.int rng 100));
         ];
         bidders;
         [
           leaf "current" (Printf.sprintf "%d.%02d" (Rng.int_in rng 10 999) (Rng.int rng 100));
           el "itemref" ~attrs:[ attr "item" (Printf.sprintf "item%d" (Rng.int rng n_items)) ] [];
           el "seller" ~attrs:[ attr "person" (person_ref rng n_people) ] [];
           el "annotation"
             [
               el "author" ~attrs:[ attr "person" (person_ref rng n_people) ] [];
               el "description" [ el "text" [ txt (words_rng rng (Rng.int_in rng 4 20)) ] ];
             ];
           leaf "quantity" (string_of_int (Rng.int_in rng 1 5));
           leaf "type" (Rng.pick rng [| "Regular"; "Featured"; "Dutch" |]);
           el "interval" [];
         ];
       ])

let make_closed_auction rng ~n_people ~n_items =
  el "closed_auction"
    [
      el "seller" ~attrs:[ attr "person" (person_ref rng n_people) ] [];
      el "buyer" ~attrs:[ attr "person" (person_ref rng n_people) ] [];
      el "itemref" ~attrs:[ attr "item" (Printf.sprintf "item%d" (Rng.int rng n_items)) ] [];
      leaf "price" (Printf.sprintf "%d.%02d" (Rng.int_in rng 5 999) (Rng.int rng 100));
      leaf "date" (Printf.sprintf "%02d/%02d/2001" (Rng.int_in rng 1 12) (Rng.int_in rng 1 28));
      leaf "quantity" (string_of_int (Rng.int_in rng 1 5));
      leaf "type" (Rng.pick rng [| "Regular"; "Featured"; "Dutch" |]);
    ]

let make_category rng i =
  el "category"
    ~attrs:[ attr "id" (Printf.sprintf "category%d" i) ]
    [
      leaf "name" (words_rng rng 1);
      el "description" [ el "text" [ txt (words_rng rng (Rng.int_in rng 3 12)) ] ];
    ]

let xmark ?(seed = 42) ~scale () =
  if scale <= 0 then invalid_arg "Generator.xmark: scale must be positive";
  let rng = Rng.create (seed * 1_000_003) in
  let n_people = 25 * scale
  and n_open = 12 * scale
  and n_closed = 6 * scale
  and n_categories = 10 * scale
  and n_items_per_region = 10 * scale in
  let regions = [ "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" ] in
  let n_items = n_items_per_region * List.length regions in
  let item_counter = ref 0 in
  let region_el name =
    el name
      (List.init n_items_per_region (fun _ ->
           let i = !item_counter in
           incr item_counter;
           make_item rng i name))
  in
  let root =
    el "site"
      [
        el "regions" (List.map region_el regions);
        el "categories" (List.init n_categories (make_category rng));
        el "people" (List.init n_people (make_person rng));
        el "open_auctions"
          (List.init n_open (fun i -> make_open_auction rng i ~n_people ~n_items));
        el "closed_auctions"
          (List.init n_closed (fun _ -> make_closed_auction rng ~n_people ~n_items));
      ]
  in
  match root with
  | Types.Element e -> { Types.decl = false; root = e }
  | Types.Text _ | Types.Comment _ | Types.Pi _ -> assert false

let default_tags = [| "a"; "b"; "c"; "d"; "e"; "item"; "list"; "entry" |]

let random_tree ?(seed = 7) ?(tags = default_tags) ~max_depth ~max_fanout () =
  if max_depth < 1 then invalid_arg "Generator.random_tree: max_depth >= 1";
  let rng = Rng.create (seed * 7_368_787) in
  let rec make_node depth =
    let can_recurse = depth < max_depth in
    match Rng.int rng 10 with
    | 0 ->
        (* half the text nodes carry numbers so value predicates bite *)
        if Rng.bool rng then txt (words_rng rng (Rng.int_in rng 1 4))
        else
          txt
            (Printf.sprintf "%d%s" (Rng.int rng 100)
               (if Rng.bool rng then "" else Printf.sprintf ".%d" (Rng.int rng 10)))
    | 1 -> Types.Comment (words_rng rng 2)
    | 2 when Rng.bool rng -> Types.Pi { target = "proc"; data = words_rng rng 1 }
    | _ ->
        let fanout = if can_recurse then Rng.int rng (max_fanout + 1) else 0 in
        let attrs =
          List.init (Rng.int rng 3) (fun i ->
              attr
                (Printf.sprintf "k%d" i)
                (if Rng.bool rng then Rng.pick rng word_pool
                 else string_of_int (Rng.int rng 50)))
        in
        el (Rng.pick rng tags) ~attrs (List.init fanout (fun _ -> make_node (depth + 1)))
  in
  let fanout = 1 + Rng.int rng max_fanout in
  let root = el "root" (List.init fanout (fun _ -> make_node 2)) in
  Types.normalize root |> Types.doc_of_node

let deep ?(payload = 1) ~depth ~branch () =
  if depth < 1 then invalid_arg "Generator.deep: depth >= 1";
  let rec level d =
    let leaves =
      List.init payload (fun i -> leaf "w" (Printf.sprintf "%d-%d" d i))
    in
    if d >= depth then el "np" ~attrs:[ attr "lvl" (string_of_int d) ] leaves
    else
      el "vp"
        ~attrs:[ attr "lvl" (string_of_int d) ]
        (leaves
        @ List.init (max 0 (branch - 1)) (fun i ->
              el "nn" [ txt (Printf.sprintf "b%d" i) ])
        @ [ level (d + 1) ])
  in
  Types.doc_of_node (el "s" [ level 1 ])

let flat ?(payload_children = 2) ~tag ~count () =
  let child i =
    el tag
      ~attrs:[ attr "rank" (string_of_int i) ]
      (List.init payload_children (fun j ->
           leaf (Printf.sprintf "f%d" j) (Printf.sprintf "%d-%d" i j)))
  in
  Types.doc_of_node (el "doc" (List.init count child))

let xmark_dtd =
  {|
  <!ELEMENT site (regions, categories, people, open_auctions, closed_auctions)>
  <!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
  <!ELEMENT africa (item*)> <!ELEMENT asia (item*)> <!ELEMENT australia (item*)>
  <!ELEMENT europe (item*)> <!ELEMENT namerica (item*)> <!ELEMENT samerica (item*)>
  <!ELEMENT item (location, quantity, name, payment, description, shipping)>
  <!ATTLIST item id CDATA #REQUIRED>
  <!ELEMENT location (#PCDATA)> <!ELEMENT quantity (#PCDATA)>
  <!ELEMENT type (#PCDATA)>
  <!ELEMENT name (#PCDATA)> <!ELEMENT payment (#PCDATA)>
  <!ELEMENT description (text)> <!ELEMENT text (#PCDATA)>
  <!ELEMENT shipping (#PCDATA)>
  <!ELEMENT categories (category*)>
  <!ELEMENT category (name, description)>
  <!ATTLIST category id CDATA #REQUIRED>
  <!ELEMENT people (person*)>
  <!ELEMENT person (name, emailaddress, phone?, address?, profile?)>
  <!ATTLIST person id CDATA #REQUIRED>
  <!ELEMENT emailaddress (#PCDATA)> <!ELEMENT phone (#PCDATA)>
  <!ELEMENT address (street, city, country)>
  <!ELEMENT street (#PCDATA)> <!ELEMENT city (#PCDATA)> <!ELEMENT country (#PCDATA)>
  <!ELEMENT profile (education, interest)>
  <!ATTLIST profile income CDATA #REQUIRED>
  <!ELEMENT education (#PCDATA)> <!ELEMENT interest (#PCDATA)>
  <!ELEMENT open_auctions (open_auction*)>
  <!ELEMENT open_auction (initial, reserve, bidder+, current, itemref, seller, annotation, quantity, type, interval)>
  <!ATTLIST open_auction id CDATA #REQUIRED>
  <!ELEMENT initial (#PCDATA)> <!ELEMENT reserve (#PCDATA)>
  <!ELEMENT bidder (date, time, personref, increase)>
  <!ELEMENT date (#PCDATA)> <!ELEMENT time (#PCDATA)>
  <!ELEMENT personref EMPTY> <!ATTLIST personref person CDATA #REQUIRED>
  <!ELEMENT increase (#PCDATA)> <!ELEMENT current (#PCDATA)>
  <!ELEMENT itemref EMPTY> <!ATTLIST itemref item CDATA #REQUIRED>
  <!ELEMENT seller EMPTY> <!ATTLIST seller person CDATA #REQUIRED>
  <!ELEMENT annotation (author, description)>
  <!ELEMENT author EMPTY> <!ATTLIST author person CDATA #REQUIRED>
  <!ELEMENT interval EMPTY>
  <!ELEMENT closed_auctions (closed_auction*)>
  <!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type)>
  <!ELEMENT buyer EMPTY> <!ATTLIST buyer person CDATA #REQUIRED>
  <!ELEMENT price (#PCDATA)>
  |}
