(** Well-formedness-checking XML parser producing a {!Types.document}. *)

exception Parse_error of string
(** Raised on malformed documents; the message includes line/column. *)

val parse_document : string -> Types.document
(** Parse a complete document. Whitespace-only text between elements is kept
    only when [keep_ws] below is used; this entry point drops
    whitespace-only text nodes that sit between two pieces of markup, which is
    the convention used by the shredding experiments (data-centric XML). *)

val parse_document_ws : string -> Types.document
(** Like {!parse_document} but preserves whitespace-only text nodes
    (document-centric mode). *)

val parse_fragment : string -> Types.node list
(** Parse a sequence of nodes without requiring a single root element.
    Whitespace-only text between nodes is dropped. *)
