(** DOM-style data model for ordered XML.

    The model keeps everything the order-encoding experiments need: elements
    with attributes, text, comments and processing instructions, all in
    document order. Attributes are unordered per the XML spec but are kept in
    source order so that round-trips are byte-stable. *)

type name = string
(** Element/attribute names. Namespaces are kept as literal prefixes
    ([ns:local]); the 2002 paper does not exercise namespace semantics. *)

type attribute = { attr_name : name; attr_value : string }

(** A node in document order. *)
type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = {
  tag : name;
  attrs : attribute list;
  children : node list;
}

type document = {
  decl : bool;  (** whether the document carried an [<?xml ...?>] declaration *)
  root : element;
}

val element : ?attrs:attribute list -> name -> node list -> node
(** [element ~attrs tag children] builds an element node. *)

val text : string -> node
(** [text s] builds a text node. *)

val attr : name -> string -> attribute

val doc : element -> document
(** Document with no XML declaration around [root]. *)

val doc_of_node : node -> document
(** @raise Invalid_argument if the node is not an element. *)

val tag_of : node -> name option
(** Element tag, [None] for non-elements. *)

val children_of : node -> node list
(** Children of an element, [[]] for leaves. *)

val attributes_of : node -> attribute list

val attribute_value : node -> name -> string option
(** Value of the named attribute on an element node. *)

val text_content : node -> string
(** Concatenation of all descendant text, in document order. *)

val equal_node : node -> node -> bool
(** Structural equality. Adjacent text nodes are NOT merged; compare
    normalized documents (see {!normalize}) for logical equality. *)

val equal_document : document -> document -> bool

val normalize : node -> node
(** Merge adjacent text children and drop empty text nodes, recursively.
    The parser never produces adjacent text nodes, but generated or edited
    trees may. *)

val node_count : node -> int
(** Total number of nodes in the subtree, counting the root and attributes. *)

val depth : node -> int
(** Length of the longest root-to-leaf path; a lone leaf has depth 1. *)

val fold : ('a -> node -> 'a) -> 'a -> node -> 'a
(** Preorder (document-order) fold over the subtree, attributes excluded. *)

val iter : (node -> unit) -> node -> unit
(** Preorder iteration, attributes excluded. *)

val pp_node : Format.formatter -> node -> unit
(** Debug printer (compact, not XML serialization; see {!Printer}). *)
