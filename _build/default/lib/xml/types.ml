type name = string

type attribute = { attr_name : name; attr_value : string }

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

and element = { tag : name; attrs : attribute list; children : node list }

type document = { decl : bool; root : element }

let element ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s
let attr attr_name attr_value = { attr_name; attr_value }
let doc root = { decl = false; root }

let doc_of_node = function
  | Element e -> { decl = false; root = e }
  | Text _ | Comment _ | Pi _ ->
      invalid_arg "Types.doc_of_node: root must be an element"

let tag_of = function
  | Element e -> Some e.tag
  | Text _ | Comment _ | Pi _ -> None

let children_of = function
  | Element e -> e.children
  | Text _ | Comment _ | Pi _ -> []

let attributes_of = function
  | Element e -> e.attrs
  | Text _ | Comment _ | Pi _ -> []

let attribute_value n name =
  let rec find = function
    | [] -> None
    | a :: rest -> if a.attr_name = name then Some a.attr_value else find rest
  in
  find (attributes_of n)

let rec text_content = function
  | Text s -> s
  | Comment _ | Pi _ -> ""
  | Element e -> String.concat "" (List.map text_content e.children)

let rec equal_node a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> String.equal x.target y.target && String.equal x.data y.data
  | Element x, Element y ->
      String.equal x.tag y.tag && x.attrs = y.attrs
      && List.length x.children = List.length y.children
      && List.for_all2 equal_node x.children y.children
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

let equal_document a b = a.decl = b.decl && equal_node (Element a.root) (Element b.root)

let rec normalize n =
  match n with
  | Text _ | Comment _ | Pi _ -> n
  | Element e ->
      let children = List.map normalize e.children in
      (* merge runs of text nodes and drop empties *)
      let rec merge = function
        | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
        | Text "" :: rest -> merge rest
        | x :: rest -> x :: merge rest
        | [] -> []
      in
      Element { e with children = merge children }

let rec node_count = function
  | Text _ | Comment _ | Pi _ -> 1
  | Element e ->
      1 + List.length e.attrs
      + List.fold_left (fun acc c -> acc + node_count c) 0 e.children

let rec depth = function
  | Text _ | Comment _ | Pi _ -> 1
  | Element e ->
      1 + List.fold_left (fun acc c -> max acc (depth c)) 0 e.children

let rec fold f acc n =
  let acc = f acc n in
  match n with
  | Text _ | Comment _ | Pi _ -> acc
  | Element e -> List.fold_left (fold f) acc e.children

let iter f n = fold (fun () x -> f x) () n

let rec pp_node ppf = function
  | Text s -> Format.fprintf ppf "Text %S" s
  | Comment s -> Format.fprintf ppf "Comment %S" s
  | Pi { target; data } -> Format.fprintf ppf "Pi(%s,%S)" target data
  | Element e ->
      Format.fprintf ppf "@[<hv 2>%s%a[%a]@]" e.tag
        (fun ppf attrs ->
          List.iter
            (fun a -> Format.fprintf ppf "@@%s=%S" a.attr_name a.attr_value)
            attrs)
        e.attrs
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_node)
        e.children
