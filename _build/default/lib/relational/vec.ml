type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t x =
  let cap = Array.length t.data in
  let ncap = max 8 (cap * 2) in
  let nd = Array.make ncap x in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t x =
  if t.len >= Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_seq t =
  let rec go i () =
    if i >= t.len then Seq.Nil else Seq.Cons ((i, t.data.(i)), go (i + 1))
  in
  go 0
