(** In-memory B+-tree over composite {!Tuple.t} keys.

    Keys are unique within a tree; the {!Index} layer makes non-unique index
    entries unique by appending the row id to the key. Leaves are linked for
    ordered range scans — the access path every order encoding depends on
    (document-order scans, Dewey prefix ranges, sibling ranges).

    Deletion is lazy with respect to structure: entries are removed from
    leaves but leaves are not rebalanced. Under the shred/renumber workloads
    deleted slots are immediately reused by reinserted keys, so occupancy
    stays high; {!stats} exposes occupancy so tests can check this. *)

type t

exception Duplicate_key

val create : ?branching:int -> unit -> t
(** [branching] is the max entries per node (default 64, minimum 4). *)

val insert : t -> Tuple.t -> int -> unit
(** @raise Duplicate_key if the key is already present. *)

val replace : t -> Tuple.t -> int -> unit
(** Insert or overwrite. *)

val find : t -> Tuple.t -> int option

val delete : t -> Tuple.t -> bool
(** [true] if the key was present. *)

val length : t -> int

type bound = Unbounded | Incl of Tuple.t | Excl of Tuple.t

val range : t -> lo:bound -> hi:bound -> (Tuple.t * int) Seq.t
(** Entries between [lo] and [hi] in ascending key order, lazily produced so
    consumers can stop early.

    Bounds use {e truncated-prefix} semantics: a bound key may be shorter
    than the stored keys, and a stored key is compared against the bound on
    the bound's arity only. So with a composite key [(parent, pos, rowid)],
    [lo = Incl [p]] starts at the first entry whose [parent] is [>= p], and
    [hi = Incl [p; 5]] keeps every entry with [parent = p] and [pos <= 5]
    regardless of its [rowid]. [Excl] makes the truncated comparison strict.
    This is exactly what SQL range predicates over an index prefix need.
    Behaviour is unspecified if the tree is mutated during consumption. *)

val range_desc : t -> lo:bound -> hi:bound -> (Tuple.t * int) Seq.t
(** Same entries in descending order (materializes the range internally). *)

val prefix : t -> Tuple.t -> (Tuple.t * int) Seq.t
(** All entries whose key starts with the given prefix (a prefix compares
    smaller than its extensions, so this is the range
    [prefix <= k < next-sibling-of-prefix]). *)

val to_seq : t -> (Tuple.t * int) Seq.t
(** All entries in key order. *)

type stats = { entries : int; leaves : int; depth : int; occupancy : float }

val stats : t -> stats

val check_invariants : t -> (unit, string) result
(** Structural check used by the test suite: key ordering within and across
    leaves, separator consistency, depth uniformity. *)
