lib/relational/exec.ml: Array Btree Expr Hashtbl List Plan Seq Table Tuple Value
