lib/relational/table.mli: Btree Schema Seq Tuple
