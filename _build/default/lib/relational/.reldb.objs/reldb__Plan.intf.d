lib/relational/plan.mli: Btree Expr Format Schema Table
