lib/relational/catalog.ml: Hashtbl Printf String Table
