lib/relational/sql_ast.ml: Expr Value
