lib/relational/sql_lexer.ml: Buffer Char List Printf String
