lib/relational/vec.mli: Seq
