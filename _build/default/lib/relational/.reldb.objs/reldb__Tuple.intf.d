lib/relational/tuple.mli: Value
