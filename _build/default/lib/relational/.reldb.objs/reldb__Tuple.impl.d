lib/relational/tuple.ml: Array Stdlib String Value
