lib/relational/db.mli: Catalog Schema Table Tuple
