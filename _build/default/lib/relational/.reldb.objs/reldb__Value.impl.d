lib/relational/value.ml: Buffer Char Format Hashtbl Printf Stdlib String
