lib/relational/vec.ml: Array Seq
