lib/relational/sql_parser.ml: Expr List Printf Sql_ast Sql_lexer String Value
