lib/relational/catalog.mli: Schema Table
