lib/relational/btree.mli: Seq Tuple
