lib/relational/expr.mli: Format Tuple Value
