lib/relational/exec.mli: Plan Seq Tuple
