lib/relational/table.ml: Array Btree List Printf Schema Seq String Tuple Value Vec
