lib/relational/expr.ml: Array Float Format List Option Printf Stdlib String Value
