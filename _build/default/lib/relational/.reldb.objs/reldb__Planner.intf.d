lib/relational/planner.mli: Catalog Expr Plan Seq Sql_ast Table Tuple
