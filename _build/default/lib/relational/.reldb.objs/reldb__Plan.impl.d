lib/relational/plan.ml: Array Btree Expr Format List Option Schema String Table Tuple Value
