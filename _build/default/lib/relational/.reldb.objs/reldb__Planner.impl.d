lib/relational/planner.ml: Array Btree Catalog Expr Format List Option Plan Printf Schema Seq Sql_ast String Table Tuple Value
