lib/relational/db.ml: Array Buffer Catalog Exec Expr Format Fun List Plan Planner Printf Schema Seq Sql_ast Sql_parser String Table Tuple Value
