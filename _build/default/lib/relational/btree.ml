exception Duplicate_key

type node = Leaf of leaf | Internal of internal

and leaf = {
  mutable keys : Tuple.t array;
  mutable vals : int array;
  mutable next : leaf option;
}

and internal = {
  (* children.(i) covers keys k with seps.(i-1) <= k < seps.(i) *)
  mutable seps : Tuple.t array;
  mutable children : node array;
}

type t = { mutable root : node; branching : int; mutable count : int }

type bound = Unbounded | Incl of Tuple.t | Excl of Tuple.t

let create ?(branching = 64) () =
  let branching = max 4 branching in
  { root = Leaf { keys = [||]; vals = [||]; next = None }; branching; count = 0 }

let length t = t.count

(* position of first key >= k, in a sorted key array *)
let lower_bound keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Tuple.compare_key keys.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* child index for key [k] in an internal node *)
let child_index (n : internal) k =
  (* first i with k < seps.(i); all seps <= k -> last child *)
  let lo = ref 0 and hi = ref (Array.length n.seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Tuple.compare_key n.seps.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.sub arr 0 (n - 1) in
  Array.blit arr (i + 1) out i (n - 1 - i);
  out

let rec find_leaf node k =
  match node with
  | Leaf l -> l
  | Internal n -> find_leaf n.children.(child_index n k) k

let find t k =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && Tuple.compare_key l.keys.(i) k = 0 then
    Some l.vals.(i)
  else None

(* insert into subtree; returns Some (separator, right sibling) on split *)
let rec insert_node t node k v ~replace_existing =
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && Tuple.compare_key l.keys.(i) k = 0 then begin
        if replace_existing then begin
          l.vals.(i) <- v;
          None
        end
        else raise Duplicate_key
      end
      else begin
        l.keys <- array_insert l.keys i k;
        l.vals <- array_insert l.vals i v;
        t.count <- t.count + 1;
        if Array.length l.keys > t.branching then begin
          let n = Array.length l.keys in
          let mid = n / 2 in
          let right =
            {
              keys = Array.sub l.keys mid (n - mid);
              vals = Array.sub l.vals mid (n - mid);
              next = l.next;
            }
          in
          l.keys <- Array.sub l.keys 0 mid;
          l.vals <- Array.sub l.vals 0 mid;
          l.next <- Some right;
          Some (right.keys.(0), Leaf right)
        end
        else None
      end
  | Internal n -> (
      let ci = child_index n k in
      match insert_node t n.children.(ci) k v ~replace_existing with
      | None -> None
      | Some (sep, right) ->
          n.seps <- array_insert n.seps ci sep;
          n.children <- array_insert n.children (ci + 1) right;
          if Array.length n.children > t.branching then begin
            let nc = Array.length n.children in
            let mid = nc / 2 in
            (* separator promoted to parent is seps.(mid-1) *)
            let promoted = n.seps.(mid - 1) in
            let right =
              {
                seps = Array.sub n.seps mid (Array.length n.seps - mid);
                children = Array.sub n.children mid (nc - mid);
              }
            in
            n.seps <- Array.sub n.seps 0 (mid - 1);
            n.children <- Array.sub n.children 0 mid;
            Some (promoted, Internal right)
          end
          else None)

let insert_gen t k v ~replace_existing =
  match insert_node t t.root k v ~replace_existing with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] }

let insert t k v = insert_gen t k v ~replace_existing:false
let replace t k v = insert_gen t k v ~replace_existing:true

let delete t k =
  let l = find_leaf t.root k in
  let i = lower_bound l.keys k in
  if i < Array.length l.keys && Tuple.compare_key l.keys.(i) k = 0 then begin
    l.keys <- array_remove l.keys i;
    l.vals <- array_remove l.vals i;
    t.count <- t.count - 1;
    true
  end
  else false

let leftmost_leaf t =
  let rec go = function
    | Leaf l -> l
    | Internal n -> go n.children.(0)
  in
  go t.root

(* Compare a stored key against a (possibly shorter) bound key on the bound's
   arity only. A stored key shorter than the bound falls back to full
   comparison (cannot happen for well-formed index keys). *)
let compare_trunc k b =
  let lb = Array.length b in
  if Array.length k <= lb then Tuple.compare_key k b
  else Tuple.compare_key (Array.sub k 0 lb) b

let start_leaf t = function
  | Unbounded -> (leftmost_leaf t, 0)
  | Incl k | Excl k ->
      let l = find_leaf t.root k in
      (l, lower_bound l.keys k)

let within_hi hi k =
  match hi with
  | Unbounded -> true
  | Incl h -> compare_trunc k h <= 0
  | Excl h -> compare_trunc k h < 0

let range t ~lo ~hi =
  (* Seek with the full-key comparison: for [Incl b] the first qualifying key
     (truncated-compare >= b) is exactly the first key >= b under full
     comparison, because a prefix sorts before all its extensions. For
     [Excl b] we additionally skip the extensions of [b] themselves. *)
  let leaf0, i0 = start_leaf t lo in
  let rec seq (l : leaf) i () =
    if i >= Array.length l.keys then
      match l.next with None -> Seq.Nil | Some nxt -> seq nxt 0 ()
    else
      let k = l.keys.(i) in
      if within_hi hi k then Seq.Cons ((k, l.vals.(i)), seq l (i + 1))
      else Seq.Nil
  in
  let base = seq leaf0 i0 in
  match lo with
  | Excl b -> Seq.drop_while (fun (k, _) -> compare_trunc k b = 0) base
  | Unbounded | Incl _ -> base

let range_desc t ~lo ~hi =
  let items = List.of_seq (range t ~lo ~hi) in
  List.to_seq (List.rev items)

let prefix t p = range t ~lo:(Incl p) ~hi:(Incl p)

let to_seq t = range t ~lo:Unbounded ~hi:Unbounded

type stats = { entries : int; leaves : int; depth : int; occupancy : float }

let stats t =
  let leaves = ref 0 and slots = ref 0 in
  let rec depth = function
    | Leaf _ -> 1
    | Internal n -> 1 + depth n.children.(0)
  in
  let rec walk = function
    | Leaf l ->
        incr leaves;
        slots := !slots + Array.length l.keys
    | Internal n -> Array.iter walk n.children
  in
  walk t.root;
  {
    entries = t.count;
    leaves = !leaves;
    depth = depth t.root;
    occupancy =
      (if !leaves = 0 then 0.0
       else float_of_int !slots /. float_of_int (!leaves * t.branching));
  }

let check_invariants t =
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* uniform depth *)
  let rec depths acc = function
    | Leaf _ -> acc :: []
    | Internal n ->
        List.concat_map (depths (acc + 1)) (Array.to_list n.children)
  in
  (match depths 0 t.root with
  | [] -> ()
  | d :: rest -> if List.exists (fun x -> x <> d) rest then fail "non-uniform depth");
  (* key bounds per subtree *)
  let rec check lo hi node =
    let in_bounds k =
      (match lo with None -> true | Some b -> Tuple.compare_key b k <= 0)
      && match hi with None -> true | Some b -> Tuple.compare_key k b < 0
    in
    match node with
    | Leaf l ->
        Array.iteri
          (fun i k ->
            if not (in_bounds k) then fail "leaf key out of separator bounds";
            if i > 0 && Tuple.compare_key l.keys.(i - 1) k >= 0 then
              fail "leaf keys not strictly ascending")
          l.keys
    | Internal n ->
        if Array.length n.children <> Array.length n.seps + 1 then
          fail "internal node arity mismatch";
        Array.iteri
          (fun i sep ->
            if not (in_bounds sep) then fail "separator out of bounds";
            if i > 0 && Tuple.compare_key n.seps.(i - 1) sep >= 0 then
              fail "separators not ascending")
          n.seps;
        Array.iteri
          (fun i child ->
            let lo' = if i = 0 then lo else Some n.seps.(i - 1) in
            let hi' = if i = Array.length n.seps then hi else Some n.seps.(i) in
            check lo' hi' child)
          n.children
  in
  check None None t.root;
  (* linked-leaf chain must be globally sorted and complete *)
  let chain = List.of_seq (to_seq t) in
  if List.length chain <> t.count then fail "count mismatch with leaf chain";
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if Tuple.compare_key a b >= 0 then fail "leaf chain out of order";
        sorted rest
    | [ _ ] | [] -> ()
  in
  sorted chain;
  match !err with None -> Ok () | Some msg -> Error msg
