(** Growable array (OCaml 5.1 has no stdlib Dynarray). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the index of the new element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_seq : 'a t -> (int * 'a) Seq.t
