(** Tuples are flat arrays of values; helpers for keys and ordering. *)

type t = Value.t array

val key : int array -> t -> t
(** Project the given column positions into a key. *)

val compare_key : t -> t -> int
(** Lexicographic comparison of two keys (or whole tuples). A shorter key
    that is a prefix of a longer one compares smaller, which is what B+-tree
    prefix scans rely on. *)

val equal : t -> t -> bool

val hash_key : t -> int

val concat : t -> t -> t

val to_string : t -> string
(** Pipe-separated rendering used by tests and the experiment harness. *)

val size_bytes : t -> int
