(** Plan execution. Pipelining operators produce rows lazily; Sort, hash
    builds, Distinct and Aggregate materialize as relational engines do. *)

exception Exec_error of string

val run : Plan.t -> Tuple.t Seq.t
(** Evaluate the plan. The sequence may be consumed once. *)

val run_list : Plan.t -> Tuple.t list
(** Convenience: fully materialize the result. *)

val row_count : Plan.t -> int
(** Consume the plan counting rows. *)
