type order = Asc | Desc

type agg =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Min of Expr.t
  | Max of Expr.t
  | Avg of Expr.t

type t =
  | Seq_scan of Table.t
  | Index_scan of {
      table : Table.t;
      index : Table.index;
      lo : Btree.bound;
      hi : Btree.bound;
      reverse : bool;
    }
  | Filter of Expr.t * t
  | Project of (Expr.t * string) array * t
  | Nl_join of { outer : t; inner : t; pred : Expr.t option }
  | Hash_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }
  | Merge_join of {
      left : t;
      right : t;
      left_key : int array;
      right_key : int array;
      residual : Expr.t option;
    }
  | Sort of { input : t; keys : (Expr.t * order) list }
  | Distinct of t
  | Aggregate of {
      input : t;
      group_by : (Expr.t * string) array;
      aggs : (agg * string) array;
    }
  | Limit of { input : t; limit : int option; offset : int }
  | Union_all of t list

let expr_type schema (e : Expr.t) : Value.ty =
  let rec go = function
    | Expr.Const v -> Option.value (Value.type_of v) ~default:Value.Ttext
    | Expr.Col i ->
        if i < Array.length schema then schema.(i).Schema.col_type
        else Value.Ttext
    | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ | Expr.Is_null _
    | Expr.Is_not_null _ | Expr.Like _ | Expr.In_list _ ->
        Value.Tint
    | Expr.Arith (_, a, b) -> begin
        match (go a, go b) with
        | Value.Tint, Value.Tint -> Value.Tint
        | _ -> Value.Tfloat
      end
    | Expr.Neg a -> go a
    | Expr.Concat _ -> Value.Ttext
    | Expr.Func ((Expr.Length | Expr.Abs), _) -> Value.Tint
    | Expr.Func ((Expr.Lower | Expr.Upper | Expr.Substr), _) -> Value.Ttext
  in
  go e

let rec schema_of = function
  | Seq_scan t | Index_scan { table = t; _ } -> Table.schema t
  | Filter (_, p) | Distinct p -> schema_of p
  | Project (cols, p) ->
      let input = schema_of p in
      Array.map
        (fun (e, name) -> Schema.column name (expr_type input e))
        cols
  | Nl_join { outer; inner; _ } ->
      Schema.concat (schema_of outer) (schema_of inner)
  | Hash_join { left; right; _ } | Merge_join { left; right; _ } ->
      Schema.concat (schema_of left) (schema_of right)
  | Sort { input; _ } | Limit { input; _ } -> schema_of input
  | Union_all [] -> [||]
  | Union_all (p :: _) -> schema_of p
  | Aggregate { input; group_by; aggs } ->
      let ischema = schema_of input in
      let groups =
        Array.map (fun (e, name) -> Schema.column name (expr_type ischema e)) group_by
      in
      let aggcols =
        Array.map
          (fun (agg, name) ->
            let ty =
              match agg with
              | Count_star | Count _ -> Value.Tint
              | Avg _ -> Value.Tfloat
              | Sum e | Min e | Max e -> expr_type ischema e
            in
            Schema.column name ty)
          aggs
      in
      Array.append groups aggcols

let agg_name = function
  | Count_star -> "COUNT(*)"
  | Count _ -> "COUNT"
  | Sum _ -> "SUM"
  | Min _ -> "MIN"
  | Max _ -> "MAX"
  | Avg _ -> "AVG"

let bound_str = function
  | Btree.Unbounded -> "-inf"
  | Btree.Incl k -> "[" ^ Tuple.to_string k
  | Btree.Excl k -> "(" ^ Tuple.to_string k

let rec pp_indent ppf (level, p) =
  let pad = String.make (level * 2) ' ' in
  let child c = pp_indent ppf (level + 1, c) in
  match p with
  | Seq_scan t -> Format.fprintf ppf "%sSeqScan %s@." pad (Table.name t)
  | Index_scan { table; index; lo; hi; reverse } ->
      Format.fprintf ppf "%sIndexScan %s.%s %s .. %s%s@." pad (Table.name table)
        index.Table.idx_name (bound_str lo) (bound_str hi)
        (if reverse then " DESC" else "")
  | Filter (e, p) ->
      Format.fprintf ppf "%sFilter %a@." pad Expr.pp e;
      child p
  | Project (cols, p) ->
      Format.fprintf ppf "%sProject [%s]@." pad
        (String.concat ", " (Array.to_list (Array.map snd cols)));
      child p
  | Nl_join { outer; inner; pred } ->
      Format.fprintf ppf "%sNestedLoopJoin%s@." pad
        (match pred with
        | None -> ""
        | Some e -> Format.asprintf " on %a" Expr.pp e);
      child outer;
      child inner
  | Hash_join { left; right; left_key; right_key; _ } ->
      Format.fprintf ppf "%sHashJoin build(%s) probe(%s)@." pad
        (String.concat "," (Array.to_list (Array.map string_of_int left_key)))
        (String.concat "," (Array.to_list (Array.map string_of_int right_key)));
      child left;
      child right
  | Merge_join { left; right; _ } ->
      Format.fprintf ppf "%sMergeJoin@." pad;
      child left;
      child right
  | Sort { input; keys } ->
      Format.fprintf ppf "%sSort [%s]@." pad
        (String.concat ", "
           (List.map
              (fun (e, o) ->
                Format.asprintf "%a %s" Expr.pp e
                  (match o with Asc -> "ASC" | Desc -> "DESC"))
              keys));
      child input
  | Distinct p ->
      Format.fprintf ppf "%sDistinct@." pad;
      child p
  | Aggregate { input; group_by; aggs } ->
      Format.fprintf ppf "%sAggregate groups=[%s] aggs=[%s]@." pad
        (String.concat ", " (Array.to_list (Array.map snd group_by)))
        (String.concat ", "
           (Array.to_list (Array.map (fun (a, _) -> agg_name a) aggs)));
      child input
  | Limit { input; limit; offset } ->
      Format.fprintf ppf "%sLimit %s offset %d@." pad
        (match limit with None -> "ALL" | Some n -> string_of_int n)
        offset;
      child input
  | Union_all branches ->
      Format.fprintf ppf "%sUnionAll@." pad;
      List.iter child branches

let pp ppf p = pp_indent ppf (0, p)
