(** Table and result-set schemas. *)

type column = { col_name : string; col_type : Value.ty; nullable : bool }

type t = column array

val column : ?nullable:bool -> string -> Value.ty -> column
(** Columns are nullable by default. *)

val make : (string * Value.ty) list -> t
(** Nullable columns with the given names/types. *)

val arity : t -> int

val find : t -> string -> int
(** Position of the named column (case-insensitive).
    @raise Not_found if absent. *)

val find_opt : t -> string -> int option

val names : t -> string list

val concat : t -> t -> t
(** Schema of a join result. *)

val rename_prefix : string -> t -> t
(** Qualify every column name with ["alias."]. *)

val check_tuple : t -> Value.t array -> (unit, string) result
(** Validate arity, types and null constraints of a tuple against the
    schema. *)

val pp : Format.formatter -> t -> unit
