(** Query planner: name resolution, predicate pushdown, index selection and
    join ordering.

    The planner is rule-based in the style of early relational optimizers:
    single-table conjuncts are pushed to the table's access path; an index is
    chosen when conjuncts bind a prefix of its key (equalities, then at most
    one range); joins are ordered greedily so that every join after the first
    is an equi (hash) join whenever the WHERE clause permits; a final Sort is
    elided when a chosen index already delivers the requested order. *)

exception Plan_error of string

val plan_select : Catalog.t -> Sql_ast.select -> Plan.t
(** @raise Plan_error on unknown tables/columns, ambiguous references, or
    unsupported constructs. *)

val resolve_expr_for_table : Table.t -> Sql_ast.sexpr -> Expr.t
(** Resolve an expression against a single table's schema (used by UPDATE and
    DELETE). Aggregates are rejected. *)

val table_candidates : Table.t -> Expr.t option -> (int * Tuple.t) Seq.t
(** Rows (with ids) of the table satisfying the predicate, going through the
    best available index. Used by UPDATE/DELETE; the caller must materialize
    the sequence before mutating the table. *)

val access_path_description : Table.t -> Expr.t option -> string
(** Human-readable description of the access path {!table_candidates} would
    pick, for tests and EXPLAIN output. *)
