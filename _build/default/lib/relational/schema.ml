type column = { col_name : string; col_type : Value.ty; nullable : bool }

type t = column array

let column ?(nullable = true) col_name col_type = { col_name; col_type; nullable }

let make cols =
  Array.of_list (List.map (fun (n, ty) -> column n ty) cols)

let arity = Array.length

let norm = String.lowercase_ascii

let find_opt t name =
  let name = norm name in
  let n = Array.length t in
  let rec go i =
    if i >= n then None
    else if norm t.(i).col_name = name then Some i
    else go (i + 1)
  in
  go 0

let find t name =
  match find_opt t name with Some i -> i | None -> raise Not_found

let names t = Array.to_list (Array.map (fun c -> c.col_name) t)

let concat = Array.append

let rename_prefix alias t =
  Array.map (fun c -> { c with col_name = alias ^ "." ^ c.col_name }) t

let check_tuple t tuple =
  if Array.length tuple <> Array.length t then
    Error
      (Printf.sprintf "arity mismatch: schema has %d columns, tuple has %d"
         (Array.length t) (Array.length tuple))
  else begin
    let bad = ref None in
    Array.iteri
      (fun i v ->
        if !bad = None then
          match (Value.type_of v, t.(i)) with
          | None, { nullable = false; col_name; _ } ->
              bad := Some (Printf.sprintf "column %s is NOT NULL" col_name)
          | None, _ -> ()
          | Some vt, { col_type; col_name; _ } when vt <> col_type ->
              bad :=
                Some
                  (Printf.sprintf "column %s expects %s, got %s" col_name
                     (Value.ty_name col_type) (Value.ty_name vt))
          | Some _, _ -> ())
      tuple;
    match !bad with None -> Ok () | Some msg -> Error msg
  end

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c ->
               Printf.sprintf "%s %s%s" c.col_name (Value.ty_name c.col_type)
                 (if c.nullable then "" else " NOT NULL"))
             t)))
