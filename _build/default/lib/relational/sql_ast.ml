(* Surface syntax produced by the SQL parser. Column references are by name;
   the planner resolves them to positions. *)

type sexpr =
  | E_const of Value.t
  | E_col of string option * string  (* qualifier (table alias), column *)
  | E_cmp of Expr.cmp * sexpr * sexpr
  | E_and of sexpr * sexpr
  | E_or of sexpr * sexpr
  | E_not of sexpr
  | E_arith of Expr.arith * sexpr * sexpr
  | E_neg of sexpr
  | E_concat of sexpr * sexpr
  | E_is_null of sexpr
  | E_is_not_null of sexpr
  | E_like of sexpr * string
  | E_in of sexpr * Value.t list
  | E_between of sexpr * sexpr * sexpr
  | E_func of string * sexpr list  (* scalar or aggregate; resolved later *)
  | E_star  (* only valid inside COUNT( * ) *)

type order_dir = Asc | Desc

type select_item = Item of sexpr * string option  (* expr AS alias *) | Star

type select = {
  distinct : bool;
  items : select_item list;
  from : (string * string option) list;  (* table name, alias *)
  where : sexpr option;
  group_by : sexpr list;
  having : sexpr option;
  order_by : (sexpr * order_dir) list;
  limit : int option;
  offset : int option;
}

type column_def = { cd_name : string; cd_type : Value.ty; cd_not_null : bool }

type stmt =
  | Select of select
  | Union_all of select list  (* SELECT ... UNION ALL SELECT ... *)
  | Insert of { table : string; columns : string list option; values : sexpr list list }
  | Update of { table : string; sets : (string * sexpr) list; where : sexpr option }
  | Delete of { table : string; where : sexpr option }
  | Create_table of { name : string; columns : column_def list }
  | Create_index of {
      name : string;
      table : string;
      columns : string list;
      unique : bool;
    }
  | Drop_table of string
  | Begin_txn
  | Commit_txn
  | Rollback_txn
