(** Runtime values of the relational engine.

    [Bytes] is a distinct type from [Str] because the Dewey order encoding
    stores binary order-preserving keys: they compare bytewise and are
    rendered in hex rather than as text. *)

type ty = Tint | Tfloat | Ttext | Tbytes

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bytes of string

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string
(** SQL name of the type: INT, FLOAT, TEXT, BYTES. *)

val ty_of_name : string -> ty option
(** Case-insensitive parse of a SQL type name. *)

val compare : t -> t -> int
(** Total order used by indexes and sorting: [Null] sorts first, values of
    different types sort by type tag, ints and floats compare numerically
    with each other. *)

val equal : t -> t -> bool
(** Equality consistent with {!compare} (so [Int 1] equals [Float 1.0]). *)

val hash : t -> int
(** Hash consistent with {!equal}. *)

val is_null : t -> bool

val to_string : t -> string
(** Rendering for result tables: NULL, 42, 4.2, abc, 0x0102. *)

val to_sql_literal : t -> string
(** Rendering that the SQL parser accepts back: strings are quoted and
    escaped, bytes use [X'...'] notation. *)

val size_bytes : t -> int
(** Approximate storage footprint in bytes, used by the storage experiment. *)

val pp : Format.formatter -> t -> unit
