(** Recursive-descent parser for the SQL dialect described in the README:
    single-block SELECT (joins expressed in the FROM/WHERE clauses, GROUP BY,
    ORDER BY, LIMIT/OFFSET), INSERT .. VALUES, UPDATE, DELETE, CREATE TABLE,
    CREATE [UNIQUE] INDEX, DROP TABLE. *)

exception Parse_error of string

val parse : string -> Sql_ast.stmt
(** Parse a single statement (a trailing [;] is allowed). *)

val parse_expr : string -> Sql_ast.sexpr
(** Parse a standalone scalar expression (used by tests). *)
