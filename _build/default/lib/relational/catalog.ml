type t = (string, Table.t) Hashtbl.t

exception Catalog_error of string

let create () = Hashtbl.create 16

let norm = String.lowercase_ascii

let find_table t name = Hashtbl.find_opt t (norm name)

let create_table t name schema =
  if Hashtbl.mem t (norm name) then
    raise (Catalog_error (Printf.sprintf "table %s already exists" name));
  let tbl = Table.create name schema in
  Hashtbl.add t (norm name) tbl;
  tbl

let drop_table t name =
  if not (Hashtbl.mem t (norm name)) then
    raise (Catalog_error (Printf.sprintf "no such table %s" name));
  Hashtbl.remove t (norm name)

let get_table t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> raise (Catalog_error (Printf.sprintf "no such table %s" name))

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t []
