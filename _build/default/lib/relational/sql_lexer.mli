(** SQL tokenizer. Keywords are case-insensitive; identifiers may be quoted
    with double quotes; strings use single quotes with [''] escapes; byte
    literals use [X'0a0b'] notation. *)

type token =
  | Ident of string
  | Kw of string  (** uppercased keyword or bare word *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bytes_lit of string
  | Sym of string  (** punctuation / operators: ( ) , . = <> <= ... || * *)
  | Eof

exception Error of string

val tokenize : string -> token list
(** @raise Error on unterminated strings or stray characters. *)
