type t = Value.t array

let key cols tuple = Array.map (fun i -> tuple.(i)) cols

let compare_key a b =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i >= n then Stdlib.compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare_key a b = 0

let hash_key t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let concat = Array.append

let to_string t =
  String.concat "|" (Array.to_list (Array.map Value.to_string t))

let size_bytes t = Array.fold_left (fun acc v -> acc + Value.size_bytes v) 8 t
