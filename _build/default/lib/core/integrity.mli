(** Structural integrity checking: every order encoding is a contract over
    the edge table, and this module verifies it — the invariants the update
    paths must preserve and the query translations rely on.

    Checked for every encoding: exactly one root (NULL parent), parents
    exist and are elements, kind codes are valid, attribute rows hang off
    elements. Per encoding:

    - GLOBAL: [g_order < g_end] per row, child intervals strictly inside
      their parent's, sibling intervals disjoint;
    - LOCAL: sibling ranks dense (1..n) per parent, attribute ranks
      contiguous (-m..-1);
    - DEWEY / ORDPATH: each node's path strictly extends its parent's path
      (attributes via the reserved 0 level), paths unique, and
      [depth = parent depth + 1]. *)

val check : Reldb.Db.t -> doc:string -> Encoding.t -> (unit, string list) result
(** [Ok ()] or the list of violated invariants (at most one message per
    kind of violation, with an offending row id). *)

val check_exn : Reldb.Db.t -> doc:string -> Encoding.t -> unit
(** @raise Failure with the concatenated messages. *)
