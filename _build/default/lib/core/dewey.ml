type t = int array

let root = [| 1 |]

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i >= n then Stdlib.compare la lb
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let parent p =
  if Array.length p <= 1 then None else Some (Array.sub p 0 (Array.length p - 1))

let depth = Array.length

let child p k = Array.append p [| k |]

let last p =
  if Array.length p = 0 then invalid_arg "Dewey.last: empty path"
  else p.(Array.length p - 1)

let with_last p k =
  if Array.length p = 0 then invalid_arg "Dewey.with_last: empty path";
  let out = Array.copy p in
  out.(Array.length out - 1) <- k;
  out

let is_strict_prefix a d =
  let la = Array.length a in
  la < Array.length d
  &&
  let rec go i = i >= la || (a.(i) = d.(i) && go (i + 1)) in
  go 0

let to_string p =
  String.concat "." (Array.to_list (Array.map string_of_int p))

let of_string s =
  if s = "" then invalid_arg "Dewey.of_string: empty";
  let parts = String.split_on_char '.' s in
  Array.of_list
    (List.map
       (fun part ->
         match int_of_string_opt part with
         | Some v when v >= 0 -> v
         | Some _ | None -> invalid_arg "Dewey.of_string: bad component")
       parts)

(* Component encoding classes (first byte determines total length):
     1 byte : 0x00..0x7F                  c in [0, 0x80)
     2 bytes: 0x80..0xBF + 1              c in [0x80, 0x80 + 0x4000)
     3 bytes: 0xC0..0xDF + 2              c in [0x4080, 0x4080 + 0x200000)
     4 bytes: 0xE0..0xEF + 3              c in [0x204080, 0x204080 + 0x10000000)
   Longer classes start at strictly higher first bytes and every class is
   prefix-free, so bytewise comparison equals numeric comparison. *)

let base2 = 0x80
let base3 = base2 + 0x4000
let base4 = base3 + 0x200000
let max_component = base4 + 0x10000000 - 1

let add_component buf c =
  if c < 0 then invalid_arg "Dewey.encode: negative component";
  if c < base2 then Buffer.add_char buf (Char.chr c)
  else if c < base3 then begin
    let v = c - base2 in
    Buffer.add_char buf (Char.chr (0x80 lor (v lsr 8)));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  end
  else if c < base4 then begin
    let v = c - base3 in
    Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 16)));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  end
  else if c <= max_component then begin
    let v = c - base4 in
    Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 24)));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))
  end
  else invalid_arg "Dewey.encode: component too large"

let encode p =
  let buf = Buffer.create (Array.length p * 2) in
  Array.iter (add_component buf) p;
  Buffer.contents buf

let encode_component c =
  let buf = Buffer.create 4 in
  add_component buf c;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let b0 = Char.code s.[!i] in
    let need k =
      if !i + k > n then invalid_arg "Dewey.decode: truncated component"
    in
    let byte k = Char.code s.[!i + k] in
    if b0 < 0x80 then begin
      out := b0 :: !out;
      i := !i + 1
    end
    else if b0 < 0xC0 then begin
      need 2;
      out := (base2 + (((b0 land 0x3F) lsl 8) lor byte 1)) :: !out;
      i := !i + 2
    end
    else if b0 < 0xE0 then begin
      need 3;
      out := (base3 + (((b0 land 0x1F) lsl 16) lor (byte 1 lsl 8) lor byte 2)) :: !out;
      i := !i + 3
    end
    else if b0 < 0xF0 then begin
      need 4;
      out :=
        (base4
        + (((b0 land 0x0F) lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3))
        :: !out;
      i := !i + 4
    end
    else invalid_arg "Dewey.decode: invalid lead byte"
  done;
  Array.of_list (List.rev !out)

let prefix_upper_bound enc =
  (* increment the byte string as a big-endian number, dropping trailing
     0xFF bytes; valid encodings never consist solely of 0xFF bytes because
     lead bytes are < 0xF0 *)
  let n = String.length enc in
  let rec go i =
    if i < 0 then invalid_arg "Dewey.prefix_upper_bound: all 0xFF"
    else if enc.[i] = '\xFF' then go (i - 1)
    else begin
      let b = Bytes.of_string (String.sub enc 0 (i + 1)) in
      Bytes.set b i (Char.chr (Char.code enc.[i] + 1));
      Bytes.to_string b
    end
  in
  if n = 0 then invalid_arg "Dewey.prefix_upper_bound: empty" else go (n - 1)
