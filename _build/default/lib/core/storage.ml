module V = Reldb.Value

type t = {
  encoding : Encoding.t;
  rows : int;
  heap_bytes : int;
  order_bytes : int;
  index_entries : int;
  index_bytes : int;
  total_bytes : int;
  avg_key_bytes : float;
  max_key_bytes : int;
}

let order_cols = function
  | Encoding.Global | Encoding.Global_gap -> [ Encoding.col_g_order; Encoding.col_g_end ]
  | Encoding.Local -> [ Encoding.col_l_order ]
  | Encoding.Dewey_enc | Encoding.Dewey_caret -> [ Encoding.col_depth; Encoding.col_path ]

let measure db ~doc enc =
  let table = Reldb.Db.table db (Encoding.table_name ~doc enc) in
  let rows = Reldb.Table.row_count table in
  let heap_bytes = Reldb.Table.size_bytes table in
  let ocols = order_cols enc in
  let order_bytes = ref 0 and max_key = ref 0 in
  Seq.iter
    (fun (_, tu) ->
      let b =
        List.fold_left (fun acc c -> acc + V.size_bytes tu.(c)) 0 ocols
      in
      order_bytes := !order_bytes + b;
      if b > !max_key then max_key := b)
    (Reldb.Table.scan table);
  let index_entries = ref 0 and index_bytes = ref 0 in
  List.iter
    (fun (idx : Reldb.Table.index) ->
      Seq.iter
        (fun (key, _) ->
          incr index_entries;
          index_bytes := !index_bytes + Reldb.Tuple.size_bytes key)
        (Reldb.Btree.to_seq idx.Reldb.Table.tree))
    (Reldb.Table.indexes table);
  {
    encoding = enc;
    rows;
    heap_bytes;
    order_bytes = !order_bytes;
    index_entries = !index_entries;
    index_bytes = !index_bytes;
    total_bytes = heap_bytes + !index_bytes;
    avg_key_bytes =
      (if rows = 0 then 0.0 else float_of_int !order_bytes /. float_of_int rows);
    max_key_bytes = !max_key;
  }

let pp ppf t =
  Format.fprintf ppf
    "%-10s rows=%d heap=%dB order=%dB (avg %.1fB/row, max %dB) index \
     entries=%d index=%dB total=%dB"
    (Encoding.name t.encoding) t.rows t.heap_bytes t.order_bytes
    t.avg_key_bytes t.max_key_bytes t.index_entries t.index_bytes t.total_bytes

let dewey_path_length_histogram db ~doc =
  match
    Reldb.Catalog.find_table (Reldb.Db.catalog db)
      (Encoding.table_name ~doc Encoding.Dewey_enc)
  with
  | None -> []
  | Some table ->
      let hist = Hashtbl.create 16 in
      Seq.iter
        (fun (_, tu) ->
          match tu.(Encoding.col_path) with
          | V.Bytes p ->
              let len = String.length p in
              Hashtbl.replace hist len
                (1 + (try Hashtbl.find hist len with Not_found -> 0))
          | _ -> ())
        (Reldb.Table.scan table);
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
      |> List.sort compare
