module A = Xpath_ast
module V = Reldb.Value

let log_src = Logs.Src.create "ordered_xml.translate" ~doc:"XPath-to-SQL translation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  rows : Node_row.t list;
  statements : int;
  sql_log : string list;
}

exception Unsupported of string

type state = {
  db : Reldb.Db.t;
  enc : Encoding.t;
  tname : string;
  mutable nstmt : int;
  mutable log : string list;  (* reversed *)
}

let run_sql st sql =
  st.nstmt <- st.nstmt + 1;
  st.log <- sql :: st.log;
  Log.debug (fun m -> m "%s" sql);
  Reldb.Db.query st.db sql

(* Queries return (ctx id, edge row): column 0 is the context id. *)
let tagged_rows st sql =
  List.map
    (fun tu ->
      let ctx =
        match tu.(0) with
        | V.Int i -> i
        | v -> invalid_arg ("Translate: bad ctx id " ^ V.to_string v)
      in
      (ctx, Node_row.of_tuple st.enc (Array.sub tu 1 (Array.length tu - 1))))
    (run_sql st sql)

let plain_rows st sql = List.map (Node_row.of_tuple st.enc) (run_sql st sql)

(* ------------------------------------------------------------------ *)
(* SQL fragments                                                       *)
(* ------------------------------------------------------------------ *)

let test_cond axis (test : A.node_test) =
  match (axis, test) with
  | A.Attribute, A.Name n ->
      Printf.sprintf "e.kind = 2 AND e.tag = %s" (V.to_sql_literal (V.Str n))
  | A.Attribute, (A.Any_name | A.Node_test) -> "e.kind = 2"
  | A.Attribute, (A.Text_test | A.Comment_test) -> "e.kind = 9" (* empty *)
  | _, A.Name n ->
      Printf.sprintf "e.kind = 0 AND e.tag = %s" (V.to_sql_literal (V.Str n))
  | _, A.Any_name -> "e.kind = 0"
  | _, A.Text_test -> "e.kind = 1"
  | _, A.Comment_test -> "e.kind = 3"
  | _, A.Node_test -> "e.kind <> 2"

(* Accessors into the context: either column references of a bound context
   table or literals for a single inlined context row. *)
type ctx_ref = {
  r_id : string;
  r_parent : string;
  r_ord : string;  (* g_order / l_order / path *)
  r_end : string;  (* g_end *)
  r_ub : string;  (* dewey path upper bound *)
}

let ctx_ref_table = function
  | Encoding.Global | Encoding.Global_gap ->
      { r_id = "c.id"; r_parent = "c.parent"; r_ord = "c.g_order"; r_end = "c.g_end"; r_ub = "" }
  | Encoding.Local ->
      { r_id = "c.id"; r_parent = "c.parent"; r_ord = "c.l_order"; r_end = ""; r_ub = "" }
  | Encoding.Dewey_enc | Encoding.Dewey_caret ->
      { r_id = "c.id"; r_parent = "c.parent"; r_ord = "c.path"; r_end = ""; r_ub = "c.path_ub" }

let ctx_ref_literal (r : Node_row.t) =
  let parent =
    match r.Node_row.parent with Some p -> string_of_int p | None -> "NULL"
  in
  match r.Node_row.ord with
  | Node_row.Og (o, e) ->
      {
        r_id = string_of_int r.Node_row.id;
        r_parent = parent;
        r_ord = string_of_int o;
        r_end = string_of_int e;
        r_ub = "";
      }
  | Node_row.Ol o ->
      {
        r_id = string_of_int r.Node_row.id;
        r_parent = parent;
        r_ord = string_of_int o;
        r_end = "";
        r_ub = "";
      }
  | Node_row.Od p ->
      {
        r_id = string_of_int r.Node_row.id;
        r_parent = parent;
        r_ord = V.to_sql_literal (V.Bytes p);
        r_end = "";
        r_ub = V.to_sql_literal (V.Bytes (Dewey.prefix_upper_bound p));
      }

let ctx_cols = function
  | Encoding.Global | Encoding.Global_gap ->
      [ ("id", V.Tint); ("parent", V.Tint); ("g_order", V.Tint); ("g_end", V.Tint) ]
  | Encoding.Local -> [ ("id", V.Tint); ("parent", V.Tint); ("l_order", V.Tint) ]
  | Encoding.Dewey_enc | Encoding.Dewey_caret ->
      [ ("id", V.Tint); ("parent", V.Tint); ("path", V.Tbytes); ("path_ub", V.Tbytes) ]

let ctx_tuple enc (r : Node_row.t) =
  let parent =
    match r.Node_row.parent with Some p -> V.Int p | None -> V.Null
  in
  match (enc, r.Node_row.ord) with
  | (Encoding.Global | Encoding.Global_gap), Node_row.Og (o, e) ->
      [| V.Int r.Node_row.id; parent; V.Int o; V.Int e |]
  | Encoding.Local, Node_row.Ol o -> [| V.Int r.Node_row.id; parent; V.Int o |]
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), Node_row.Od p ->
      [|
        V.Int r.Node_row.id; parent; V.Bytes p;
        V.Bytes (Dewey.prefix_upper_bound p);
      |]
  | _ -> invalid_arg "Translate.ctx_tuple: row/encoding mismatch"

(* WHERE fragment implementing the axis from a context reference; [None]
   when the axis is not SQL-expressible under the encoding and must be
   handled by the middle tier (LOCAL document-order axes). *)
let axis_cond enc (cr : ctx_ref) (axis : A.axis) =
  match (enc, axis) with
  | _, A.Child ->
      Some (Printf.sprintf "e.parent = %s AND e.kind <> 2" cr.r_id)
  | _, A.Attribute -> Some (Printf.sprintf "e.parent = %s" cr.r_id)
  | _, A.Parent -> Some (Printf.sprintf "e.id = %s" cr.r_parent)
  | (Encoding.Global | Encoding.Global_gap), A.Descendant ->
      Some
        (Printf.sprintf
           "e.g_order > %s AND e.g_order < %s AND e.kind <> 2" cr.r_ord cr.r_end)
  | (Encoding.Global | Encoding.Global_gap), A.Following_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.g_order > %s AND e.kind <> 2" cr.r_parent cr.r_ord)
  | (Encoding.Global | Encoding.Global_gap), A.Preceding_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.g_order < %s AND e.kind <> 2" cr.r_parent cr.r_ord)
  | (Encoding.Global | Encoding.Global_gap), A.Following ->
      Some (Printf.sprintf "e.g_order > %s AND e.kind <> 2" cr.r_end)
  | (Encoding.Global | Encoding.Global_gap), A.Preceding ->
      Some (Printf.sprintf "e.g_end < %s AND e.kind <> 2" cr.r_ord)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), A.Descendant ->
      Some
        (Printf.sprintf "e.path > %s AND e.path < %s AND e.kind <> 2" cr.r_ord
           cr.r_ub)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), A.Following_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.path > %s AND e.kind <> 2" cr.r_parent cr.r_ord)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), A.Preceding_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.path < %s AND e.kind <> 2" cr.r_parent cr.r_ord)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), A.Following ->
      Some (Printf.sprintf "e.path >= %s AND e.kind <> 2" cr.r_ub)
  | (Encoding.Dewey_enc | Encoding.Dewey_caret), A.Preceding ->
      (* ancestors (path prefixes) are filtered in the middle tier *)
      Some (Printf.sprintf "e.path < %s AND e.kind <> 2" cr.r_ord)
  | Encoding.Local, A.Following_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.l_order > %s AND e.l_order > 0" cr.r_parent cr.r_ord)
  | Encoding.Local, A.Preceding_sibling ->
      Some
        (Printf.sprintf
           "e.parent = %s AND e.l_order < %s AND e.l_order > 0" cr.r_parent cr.r_ord)
  | (Encoding.Global | Encoding.Global_gap), A.Ancestor ->
      (* strict interval containment *)
      Some
        (Printf.sprintf "e.g_order < %s AND e.g_end > %s" cr.r_ord cr.r_end)
  | Encoding.Local, (A.Descendant | A.Following | A.Preceding) -> None
  | (Encoding.Local | Encoding.Dewey_enc | Encoding.Dewey_caret), A.Ancestor -> None
  | _, (A.Self | A.Descendant_or_self | A.Ancestor_or_self) -> None

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

let inline_threshold = 4

(* Run the axis+test SQL for every context row, tagging results with the
   producing context id. *)
let sql_candidates st ctx_rows axis test =
  let tc = test_cond axis test in
  if List.length ctx_rows <= inline_threshold then
    List.concat_map
      (fun r ->
        match axis_cond st.enc (ctx_ref_literal r) axis with
        | None -> assert false
        | Some cond ->
            let sql =
              Printf.sprintf "SELECT %s FROM %s e WHERE %s AND %s"
                (Node_row.select_list st.enc "e")
                st.tname cond tc
            in
            List.map (fun row -> (r.Node_row.id, row)) (plain_rows st sql))
      ctx_rows
  else begin
    let cols = ctx_cols st.enc in
    let rows = List.map (ctx_tuple st.enc) ctx_rows in
    Temp.with_ctx st.db ~cols ~rows (fun ctx ->
        match axis_cond st.enc (ctx_ref_table st.enc) axis with
        | None -> assert false
        | Some cond ->
            let sql =
              Printf.sprintf "SELECT c.id, %s FROM %s e, %s c WHERE %s AND %s"
                (Node_row.select_list st.enc "e")
                st.tname ctx cond tc
            in
            tagged_rows st sql)
  end

let test_passes axis (test : A.node_test) (r : Node_row.t) =
  let k = r.Node_row.kind in
  match (axis, test) with
  | A.Attribute, A.Name n -> k = Doc_index.Attr && r.Node_row.tag = n
  | A.Attribute, (A.Any_name | A.Node_test) -> k = Doc_index.Attr
  | A.Attribute, (A.Text_test | A.Comment_test) -> false
  | _, A.Name n -> k = Doc_index.Elem && r.Node_row.tag = n
  | _, A.Any_name -> k = Doc_index.Elem
  | _, A.Text_test -> k = Doc_index.Text_node
  | _, A.Comment_test -> k = Doc_index.Comment_node
  | _, A.Node_test -> k <> Doc_index.Attr

(* ---- LOCAL middle-tier machinery --------------------------------- *)

(* Fetch the whole edge table and compute document order: the operation the
   LOCAL encoding cannot push into SQL. Returns (rank, subtree_end_rank,
   ancestors) per id, plus rows in document order. *)
type local_world = {
  w_rows : Node_row.t array;  (* document order, attrs included *)
  w_rank : (int, int) Hashtbl.t;  (* id -> doc-order rank *)
  w_end : (int, int) Hashtbl.t;  (* id -> rank of last record in subtree *)
  w_anc : (int, int list) Hashtbl.t;  (* id -> strict ancestors *)
}

let local_world st =
  let all =
    plain_rows st
      (Printf.sprintf "SELECT %s FROM %s e" (Node_row.select_list st.enc "e")
         st.tname)
  in
  let kids : (int, Node_row.t list ref) Hashtbl.t = Hashtbl.create 256 in
  let root = ref None in
  List.iter
    (fun (r : Node_row.t) ->
      match r.Node_row.parent with
      | None -> root := Some r
      | Some p -> (
          match Hashtbl.find_opt kids p with
          | Some cell -> cell := r :: !cell
          | None -> Hashtbl.add kids p (ref [ r ])))
    all;
  let n = List.length all in
  let w_rows = Array.make n (List.hd all) in
  let w_rank = Hashtbl.create n
  and w_end = Hashtbl.create n
  and w_anc = Hashtbl.create n in
  let counter = ref 0 in
  let rec go ancs (r : Node_row.t) =
    let rank = !counter in
    incr counter;
    w_rows.(rank) <- r;
    Hashtbl.replace w_rank r.Node_row.id rank;
    Hashtbl.replace w_anc r.Node_row.id ancs;
    let children =
      match Hashtbl.find_opt kids r.Node_row.id with
      | None -> []
      | Some cell -> List.sort Node_row.compare_ord !cell
    in
    List.iter (go (r.Node_row.id :: ancs)) children;
    Hashtbl.replace w_end r.Node_row.id (!counter - 1)
  in
  (match !root with
  | Some r -> go [] r
  | None -> raise (Unsupported "document has no root row"));
  { w_rows; w_rank; w_end; w_anc }

(* Fetch rows by id. Small sets go through the unique id index as point
   queries (one statement each, one row read each); large sets are bound
   into a context table and joined. *)
let by_id_inline_threshold = 64

let fetch_by_ids st ids =
  let ids = List.sort_uniq compare ids in
  if List.length ids <= by_id_inline_threshold then
    List.concat_map
      (fun id ->
        plain_rows st
          (Printf.sprintf "SELECT %s FROM %s e WHERE e.id = %d"
             (Node_row.select_list st.enc "e") st.tname id))
      ids
  else
    Temp.with_ctx st.db ~cols:[ ("id", V.Tint) ]
      ~rows:(List.map (fun i -> [| V.Int i |]) ids)
      (fun ctx ->
        plain_rows st
          (Printf.sprintf "SELECT %s FROM %s e, %s c WHERE e.id = c.id"
             (Node_row.select_list st.enc "e")
             st.tname ctx))

(* Document-order sort keys for LOCAL rows: walk parent chains, batched one
   round of point lookups (or one join) per level. The key is the root path
   of sibling positions. *)
let local_order_keys st (rows : Node_row.t list) =
  let info : (int, int option * int) Hashtbl.t = Hashtbl.create 64 in
  let record (r : Node_row.t) =
    let o = match r.Node_row.ord with Node_row.Ol o -> o | _ -> 0 in
    Hashtbl.replace info r.Node_row.id (r.Node_row.parent, o)
  in
  List.iter record rows;
  let missing () =
    Hashtbl.fold
      (fun _ (parent, _) acc ->
        match parent with
        | Some p when not (Hashtbl.mem info p) -> p :: acc
        | _ -> acc)
      info []
    |> List.sort_uniq compare
  in
  let rec fill () =
    match missing () with
    | [] -> ()
    | ids ->
        List.iter record (fetch_by_ids st ids);
        fill ()
  in
  fill ();
  let memo : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let rec key id =
    match Hashtbl.find_opt memo id with
    | Some k -> k
    | None ->
        let k =
          match Hashtbl.find_opt info id with
          | None -> []
          | Some (None, o) -> [ o ]
          | Some (Some p, o) -> key p @ [ o ]
        in
        Hashtbl.replace memo id k;
        k
  in
  fun (r : Node_row.t) -> key r.Node_row.id

(* LOCAL descendants via BFS, threading sibling-position keys for ordering.
   Returns (ctx id, row, key-relative-to-ctx). *)
let local_descendants st ctx_rows =
  let result = ref [] in
  (* frontier: (origin ctx id, row, key) *)
  let frontier =
    ref (List.map (fun (r : Node_row.t) -> (r.Node_row.id, r, [])) ctx_rows)
  in
  while !frontier <> [] do
    (* fetch children of all frontier rows in one statement *)
    let distinct =
      List.sort_uniq compare
        (List.map (fun (_, r, _) -> r.Node_row.id) !frontier)
    in
    let children =
      if List.length distinct <= inline_threshold then
        List.concat_map
          (fun id ->
            List.map
              (fun row -> (id, row))
              (plain_rows st
                 (Printf.sprintf
                    "SELECT %s FROM %s e WHERE e.parent = %d AND e.kind <> 2"
                    (Node_row.select_list st.enc "e")
                    st.tname id)))
          distinct
      else
        let ctx_tuples = List.map (fun i -> [| V.Int i |]) distinct in
        Temp.with_ctx st.db ~cols:[ ("id", V.Tint) ] ~rows:ctx_tuples (fun ctx ->
            tagged_rows st
              (Printf.sprintf
                 "SELECT c.id, %s FROM %s e, %s c WHERE e.parent = c.id AND \
                  e.kind <> 2"
                 (Node_row.select_list st.enc "e")
                 st.tname ctx))
    in
    let by_parent : (int, (int * Node_row.t) list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (p, row) ->
        Hashtbl.replace by_parent p
          ((p, row) :: (try Hashtbl.find by_parent p with Not_found -> [])))
      children;
    let next = ref [] in
    List.iter
      (fun (origin, (r : Node_row.t), key) ->
        match Hashtbl.find_opt by_parent r.Node_row.id with
        | None -> ()
        | Some kids ->
            List.iter
              (fun (_, (kid : Node_row.t)) ->
                let o =
                  match kid.Node_row.ord with Node_row.Ol o -> o | _ -> 0
                in
                let entry = (origin, kid, key @ [ o ]) in
                result := entry :: !result;
                next := entry :: !next)
              kids)
      !frontier;
    frontier := !next
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Step evaluation                                                     *)
(* ------------------------------------------------------------------ *)

module IdSet = Set.Make (Int)

let dedup_rows rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (r : Node_row.t) ->
      if Hashtbl.mem seen r.Node_row.id then false
      else begin
        Hashtbl.add seen r.Node_row.id ();
        true
      end)
    rows

let dedup_pairs pairs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (o, (r : Node_row.t)) ->
      if Hashtbl.mem seen (o, r.Node_row.id) then false
      else begin
        Hashtbl.add seen (o, r.Node_row.id) ();
        true
      end)
    pairs

let is_reverse_axis = function
  | A.Preceding | A.Preceding_sibling | A.Ancestor | A.Ancestor_or_self -> true
  | _ -> false

(* Candidates for one step from a deduplicated context row list. Returns
   (ctx id, row) pairs plus an optional doc-order key function used to sort
   groups when the row's own ord is not a document order (LOCAL descendants). *)
let rec step_candidates st ctx_rows (step : A.step) :
    (int * Node_row.t) list * (Node_row.t -> int list) option =
  let self_pairs () =
    List.filter_map
      (fun (r : Node_row.t) ->
        if test_passes step.A.axis step.A.test r then Some (r.Node_row.id, r)
        else None)
      ctx_rows
  in
  match step.A.axis with
  | A.Self -> (self_pairs (), None)
  | A.Ancestor_or_self ->
      let self =
        List.filter_map
          (fun (r : Node_row.t) ->
            if test_passes A.Child step.A.test r then Some (r.Node_row.id, r)
            else None)
          ctx_rows
      in
      let anc, keys =
        step_candidates st ctx_rows { step with A.axis = A.Ancestor }
      in
      (* reverse-axis sorting puts self before its ancestors; LOCAL needs
         the key function to cover the self rows too *)
      let keys =
        match st.enc with
        | Encoding.Local ->
            Some (local_order_keys st (List.map snd (self @ anc)))
        | _ -> keys
      in
      (self @ anc, keys)
  | A.Ancestor when st.enc = Encoding.Dewey_enc || st.enc = Encoding.Dewey_caret ->
      (* every ancestor's path is a proper prefix of the context's path;
         fetch each prefix with a point query on the unique path index
         (prefixes that are no node — carets — simply return nothing) *)
      let pairs =
        List.concat_map
          (fun (c : Node_row.t) ->
            let path = Node_row.dewey c in
            let prefixes =
              List.init
                (max 0 (Array.length path - 1))
                (fun i -> Array.sub path 0 (i + 1))
            in
            List.concat_map
              (fun prefix ->
                let rows =
                  plain_rows st
                    (Printf.sprintf "SELECT %s FROM %s e WHERE e.path = %s"
                       (Node_row.select_list st.enc "e")
                       st.tname
                       (V.to_sql_literal (V.Bytes (Dewey.encode prefix))))
                in
                List.filter_map
                  (fun row ->
                    if test_passes step.A.axis step.A.test row then
                      Some (c.Node_row.id, row)
                    else None)
                  rows)
              prefixes)
          ctx_rows
      in
      (pairs, None)
  | A.Ancestor when st.enc = Encoding.Local ->
      (* walk parent chains, one batched round of point lookups per level *)
      let cache : (int, Node_row.t) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (r : Node_row.t) -> Hashtbl.replace cache r.Node_row.id r)
        ctx_rows;
      let rec chains frontier acc =
        (* frontier: (ctx id, parent id to resolve) *)
        let missing =
          List.filter_map
            (fun (_, pid) ->
              if Hashtbl.mem cache pid then None else Some pid)
            frontier
          |> List.sort_uniq compare
        in
        List.iter
          (fun (r : Node_row.t) -> Hashtbl.replace cache r.Node_row.id r)
          (if missing = [] then [] else fetch_by_ids st missing);
        let acc, next =
          List.fold_left
            (fun (acc, next) (ctx, pid) ->
              match Hashtbl.find_opt cache pid with
              | None -> (acc, next)
              | Some row ->
                  let next =
                    match row.Node_row.parent with
                    | Some gp -> (ctx, gp) :: next
                    | None -> next
                  in
                  ((ctx, row) :: acc, next))
            (acc, []) frontier
        in
        if next = [] then acc else chains next acc
      in
      let frontier =
        List.filter_map
          (fun (c : Node_row.t) ->
            Option.map (fun p -> (c.Node_row.id, p)) c.Node_row.parent)
          ctx_rows
      in
      let all = chains frontier [] in
      let pairs =
        List.filter (fun (_, row) -> test_passes step.A.axis step.A.test row) all
      in
      let keyfn = local_order_keys st (List.map snd pairs) in
      (pairs, Some keyfn)
  | A.Descendant_or_self ->
      let self =
        List.filter_map
          (fun (r : Node_row.t) ->
            if test_passes A.Child step.A.test r then Some (r.Node_row.id, r)
            else None)
          ctx_rows
      in
      let desc, keys =
        step_candidates st ctx_rows { step with A.axis = A.Descendant }
      in
      (* self sorts before its descendants under both ord and key sorting *)
      (self @ desc, keys)
  | A.Descendant when st.enc = Encoding.Local ->
      let entries = local_descendants st ctx_rows in
      let pairs =
        List.filter_map
          (fun (origin, row, _key) ->
            if test_passes step.A.axis step.A.test row then Some (origin, row)
            else None)
          entries
      in
      (* positional predicates need each group in document order; relative
         BFS keys are ambiguous when a row descends from several context
         nodes, so compute absolute root-path keys (more parent-chain SQL —
         the honest LOCAL cost) *)
      let keyfn = local_order_keys st (dedup_rows (List.map snd pairs)) in
      (pairs, Some keyfn)
  | (A.Following | A.Preceding) when st.enc = Encoding.Local ->
      let w = local_world st in
      let pairs =
        List.concat_map
          (fun (c : Node_row.t) ->
            match Hashtbl.find_opt w.w_rank c.Node_row.id with
            | None -> []
            | Some rank ->
                let stop = Hashtbl.find w.w_end c.Node_row.id in
                let ancs =
                  match Hashtbl.find_opt w.w_anc c.Node_row.id with
                  | Some a -> a
                  | None -> []
                in
                let out = ref [] in
                (match step.A.axis with
                | A.Following ->
                    for j = Array.length w.w_rows - 1 downto stop + 1 do
                      let r = w.w_rows.(j) in
                      if
                        r.Node_row.kind <> Doc_index.Attr
                        && test_passes step.A.axis step.A.test r
                      then out := (c.Node_row.id, r) :: !out
                    done
                | _ ->
                    (* preceding: before in doc order, not an ancestor *)
                    for j = 0 to rank - 1 do
                      let r = w.w_rows.(j) in
                      if
                        r.Node_row.kind <> Doc_index.Attr
                        && (not (List.mem r.Node_row.id ancs))
                        && test_passes step.A.axis step.A.test r
                      then out := (c.Node_row.id, r) :: !out
                    done;
                    out := List.rev !out);
                !out)
          ctx_rows
      in
      let keyfn (r : Node_row.t) =
        match Hashtbl.find_opt w.w_rank r.Node_row.id with
        | Some rank -> [ rank ]
        | None -> []
      in
      (pairs, Some keyfn)
  | axis ->
      (* SQL-expressible axes *)
      let ctx_rows =
        (* sibling and document-order axes are empty from attribute nodes,
           except following/preceding which are well-defined *)
        match axis with
        | A.Following_sibling | A.Preceding_sibling ->
            List.filter
              (fun (r : Node_row.t) -> r.Node_row.kind <> Doc_index.Attr)
              ctx_rows
        | _ -> ctx_rows
      in
      if ctx_rows = [] then ([], None)
      else begin
        let pairs = sql_candidates st ctx_rows axis step.A.test in
        (* DEWEY preceding fetched ancestors too: drop path prefixes of ctx *)
        let pairs =
          if (st.enc = Encoding.Dewey_enc || st.enc = Encoding.Dewey_caret)
             && axis = A.Preceding
          then begin
            let ctx_path =
              List.fold_left
                (fun m (r : Node_row.t) ->
                  match r.Node_row.ord with
                  | Node_row.Od p -> (r.Node_row.id, p) :: m
                  | _ -> m)
                [] ctx_rows
            in
            List.filter
              (fun (ctx, (r : Node_row.t)) ->
                match (List.assoc_opt ctx ctx_path, r.Node_row.ord) with
                | Some cp, Node_row.Od rp ->
                    not
                      (String.length rp < String.length cp
                      && String.sub cp 0 (String.length rp) = rp)
                | _ -> true)
              pairs
          end
          else pairs
        in
        (pairs, None)
      end

(* ---- predicates --------------------------------------------------- *)

let number_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let cmp_op (op : A.cmp) c =
  match op with
  | A.Eq -> c = 0
  | A.Ne -> c <> 0
  | A.Lt -> c < 0
  | A.Le -> c <= 0
  | A.Gt -> c > 0
  | A.Ge -> c >= 0

let num_cmp op a b =
  if Float.is_nan a || Float.is_nan b then false
  else cmp_op op (Stdlib.compare a b)

let value_matches (op : A.cmp) (lit : A.literal) sv =
  match lit with
  | A.L_num f -> num_cmp op (number_of_string sv) f
  | A.L_str s -> begin
      match op with
      | A.Eq | A.Ne -> cmp_op op (String.compare sv s)
      | A.Lt | A.Le | A.Gt | A.Ge ->
          num_cmp op (number_of_string sv) (number_of_string s)
    end

(* Evaluate a relative path from origin rows; returns (origin id, row). *)
let rec eval_rel st (origins : Node_row.t list) (steps : A.step list) :
    (int * Node_row.t) list =
  let start = List.map (fun (r : Node_row.t) -> (r.Node_row.id, r)) origins in
  List.fold_left (fun pairs step -> eval_one_step st pairs step) start steps

(* One step over (origin, ctx row) pairs: dedupe contexts, fetch candidates,
   order per group, apply predicates, rebind to origins. *)
and eval_one_step st pairs (step : A.step) =
  let ctx_rows = dedup_rows (List.map snd pairs) in
  (* ctx id -> origins *)
  let origins_of : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (o, (r : Node_row.t)) ->
      let cur = try Hashtbl.find origins_of r.Node_row.id with Not_found -> [] in
      if not (List.mem o cur) then Hashtbl.replace origins_of r.Node_row.id (o :: cur))
    pairs;
  let cands, keyfn = step_candidates st ctx_rows step in
  (* group by ctx id, preserving candidate order *)
  let group_order = ref [] in
  let groups : (int, (int * Node_row.t) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ctx, row) ->
      match Hashtbl.find_opt groups ctx with
      | Some cell -> cell := (ctx, row) :: !cell
      | None ->
          group_order := ctx :: !group_order;
          Hashtbl.add groups ctx (ref [ (ctx, row) ]))
    cands;
  let reverse = is_reverse_axis step.A.axis in
  let sort_group rows =
    let cmp (_, a) (_, b) =
      match keyfn with
      | Some key -> Stdlib.compare (key a) (key b)
      | None -> Node_row.compare_ord a b
    in
    let sorted = List.stable_sort cmp rows in
    if reverse then List.rev sorted else sorted
  in
  (* batched evaluation of path sub-predicates over all candidates *)
  let all_cand_rows = dedup_rows (List.map snd cands) in
  let path_sets = eval_path_preds st all_cand_rows step.A.preds in
  let out = ref [] in
  List.iter
    (fun ctx ->
      let rows = sort_group (List.rev !(Hashtbl.find groups ctx)) in
      let rows = List.map snd rows in
      let filtered =
        List.fold_left
          (fun rows p -> apply_pred st path_sets rows p)
          rows step.A.preds
      in
      let origins = try Hashtbl.find origins_of ctx with Not_found -> [] in
      List.iter
        (fun (r : Node_row.t) ->
          List.iter (fun o -> out := (o, r) :: !out) origins)
        filtered)
    (List.rev !group_order);
  dedup_pairs (List.rev !out)

(* Evaluate all P_exists / P_cmp subterms of the predicates, batched over
   every candidate row; returns an assoc list keyed by physical identity. *)
and eval_path_preds st cand_rows preds =
  let sets = ref [] in
  let rec walk (p : A.predicate) =
    match p with
    | A.P_exists path ->
        let sat = eval_exists st cand_rows path in
        sets := (Obj.repr p, sat) :: !sets
    | A.P_cmp (path, op, lit) ->
        let sat = eval_cmp st cand_rows path op lit in
        sets := (Obj.repr p, sat) :: !sets
    | A.P_count (path, op, k) ->
        let sat = eval_count st cand_rows path op k in
        sets := (Obj.repr p, sat) :: !sets
    | A.P_and (a, b) | A.P_or (a, b) ->
        walk a;
        walk b
    | A.P_not a -> walk a
    | A.P_pos _ | A.P_last -> ()
  in
  List.iter walk preds;
  !sets

and eval_exists st origins (path : A.path) =
  let pairs = eval_rel st origins path.A.steps in
  List.fold_left (fun s (o, _) -> IdSet.add o s) IdSet.empty pairs

and eval_count st origins (path : A.path) op k =
  let pairs = eval_rel st origins path.A.steps in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun ((o, _) : int * Node_row.t) ->
      Hashtbl.replace counts o (1 + Option.value (Hashtbl.find_opt counts o) ~default:0))
    pairs;
  List.fold_left
    (fun s (r : Node_row.t) ->
      let n = Option.value (Hashtbl.find_opt counts r.Node_row.id) ~default:0 in
      if cmp_op op (Stdlib.compare n k) then IdSet.add r.Node_row.id s else s)
    IdSet.empty origins

and eval_cmp st origins (path : A.path) op lit =
  let pairs = eval_rel st origins path.A.steps in
  (* element results compare via their text children (data-centric
     string-value; see interface documentation) *)
  let elems, direct =
    List.partition
      (fun ((_, r) : int * Node_row.t) -> r.Node_row.kind = Doc_index.Elem)
      pairs
  in
  let sat = ref IdSet.empty in
  List.iter
    (fun ((o, r) : int * Node_row.t) ->
      if value_matches op lit r.Node_row.value then sat := IdSet.add o !sat)
    direct;
  if elems <> [] then begin
    let elem_rows = dedup_rows (List.map snd elems) in
    let text_step = { A.axis = A.Child; test = A.Text_test; preds = [] } in
    let texts = eval_one_step st (List.map (fun (r : Node_row.t) -> (r.Node_row.id, r)) elem_rows) text_step in
    (* element id -> passes? *)
    let elem_pass = Hashtbl.create 16 in
    List.iter
      (fun ((eid, (t : Node_row.t)) : int * Node_row.t) ->
        if value_matches op lit t.Node_row.value then
          Hashtbl.replace elem_pass eid ())
      texts;
    List.iter
      (fun ((o, r) : int * Node_row.t) ->
        if Hashtbl.mem elem_pass r.Node_row.id then sat := IdSet.add o !sat)
      elems
  end;
  !sat

and apply_pred st path_sets rows (p : A.predicate) =
  let last = List.length rows in
  let rec holds pos (r : Node_row.t) (p : A.predicate) =
    match p with
    | A.P_pos (op, k) -> cmp_op op (Stdlib.compare pos k)
    | A.P_last -> pos = last
    | A.P_exists _ | A.P_cmp _ | A.P_count _ -> begin
        match List.assq_opt (Obj.repr p) path_sets with
        | Some set -> IdSet.mem r.Node_row.id set
        | None -> false
      end
    | A.P_and (a, b) -> holds pos r a && holds pos r b
    | A.P_or (a, b) -> holds pos r a || holds pos r b
    | A.P_not a -> not (holds pos r a)
  in
  ignore st;
  List.filteri (fun i r -> holds (i + 1) r p) rows

(* ---- first step from the document root ---------------------------- *)

let initial_candidates st (step : A.step) =
  let tc = test_cond step.A.axis step.A.test in
  match step.A.axis with
  | A.Child ->
      plain_rows st
        (Printf.sprintf
           "SELECT %s FROM %s e WHERE e.parent IS NULL AND %s"
           (Node_row.select_list st.enc "e") st.tname tc)
  | A.Descendant | A.Descendant_or_self ->
      plain_rows st
        (Printf.sprintf "SELECT %s FROM %s e WHERE e.kind <> 2 AND %s"
           (Node_row.select_list st.enc "e") st.tname tc)
  | _ -> []

(* sort candidates into document order for positional predicates *)
let doc_sort st rows =
  match st.enc with
  | Encoding.Local ->
      let key = local_order_keys st rows in
      List.stable_sort (fun a b -> Stdlib.compare (key a) (key b)) rows
  | _ -> List.stable_sort Node_row.compare_ord rows

let eval_path st (path : A.path) =
  match path.A.steps with
  | [] -> []
  | first :: rest ->
      let cands = doc_sort st (initial_candidates st first) in
      let path_sets = eval_path_preds st cands first.A.preds in
      let filtered =
        List.fold_left
          (fun rows p -> apply_pred st path_sets rows p)
          cands first.A.preds
      in
      let pairs = List.map (fun (r : Node_row.t) -> (0, r)) filtered in
      let pairs =
        List.fold_left (fun ps step -> eval_one_step st ps step) pairs rest
      in
      doc_sort st (dedup_rows (List.map snd pairs))

let eval db ~doc enc path =
  let st =
    { db; enc; tname = Encoding.table_name ~doc enc; nstmt = 0; log = [] }
  in
  let rows = eval_path st path in
  { rows; statements = st.nstmt; sql_log = List.rev st.log }

let eval_ids db ~doc enc path =
  List.map (fun (r : Node_row.t) -> r.Node_row.id) (eval db ~doc enc path).rows

let eval_union db ~doc enc (u : A.union) =
  let st =
    { db; enc; tname = Encoding.table_name ~doc enc; nstmt = 0; log = [] }
  in
  let rows = List.concat_map (fun p -> eval_path st p) u in
  let rows = doc_sort st (dedup_rows rows) in
  { rows; statements = st.nstmt; sql_log = List.rev st.log }

let eval_from_ids db ~doc enc ~ids path =
  let st =
    { db; enc; tname = Encoding.table_name ~doc enc; nstmt = 0; log = [] }
  in
  let rows =
    if path.A.absolute then eval_path st path
    else begin
      let ctx = fetch_by_ids st ids in
      let pairs = eval_rel st ctx path.A.steps in
      doc_sort st (dedup_rows (List.map snd pairs))
    end
  in
  { rows; statements = st.nstmt; sql_log = List.rev st.log }

let sort_document_order db ~doc enc rows =
  let st =
    { db; enc; tname = Encoding.table_name ~doc enc; nstmt = 0; log = [] }
  in
  let sorted = doc_sort st (dedup_rows rows) in
  (sorted, st.nstmt)

let eval_string db ~doc enc s =
  match Xpath_parser.parse_union s with
  | [ p ] -> eval db ~doc enc p
  | u -> eval_union db ~doc enc u
