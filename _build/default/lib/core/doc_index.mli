(** Flattened, indexed view of a document.

    Every node (including attributes) becomes a record in {e record order}:
    preorder, with an element's attributes placed immediately after it and
    before its children — the order in which a SAX scan of the serialized
    document meets begin tags and attributes. Record ids are therefore
    preorder ranks at build time, which is also the id assignment the
    shredder uses, so oracle results and shredded-store results are directly
    comparable on a freshly shredded document.

    Sibling positions: regular children (elements, text, comments, PIs) are
    numbered 1..n; the m attributes of an element are numbered -m..-1 in
    source order, so ordering by sibling position puts attributes first and
    keeps (parent, position) unique — exactly the LOCAL encoding layout. *)

type kind = Elem | Text_node | Attr | Comment_node | Pi_node

val kind_code : kind -> int
(** Stable integer codes (0..4) used by the relational encodings. *)

val kind_of_code : int -> kind

type record = {
  id : int;
  parent : int;  (** -1 for the root *)
  kind : kind;
  tag : string;  (** element/attribute name or PI target; [""] otherwise *)
  value : string;  (** text/attr/comment content; [""] for elements *)
  pos : int;  (** sibling position (see above) *)
  size : int;  (** records in the subtree, excluding this record *)
  dewey : Dewey.t;
}

type t

val build : Xmllib.Types.document -> t

val records : t -> record array
(** In record order; [records.(i).id = i]. *)

val length : t -> int
val record : t -> int -> record

val children : t -> int -> int list
(** Non-attribute children, in document order. *)

val attributes : t -> int -> int list
(** Attribute records, in source order. *)

val parent_of : t -> int -> int option

val ancestors : t -> int -> int list
(** Strict ancestors, closest first. *)

val string_value : t -> int -> string
(** XPath string-value: text/attr records yield their value; elements yield
    the concatenation of descendant text in document order. *)

val is_descendant : t -> ancestor:int -> int -> bool

val to_node : t -> int -> Xmllib.Types.node
(** Rebuild the subtree rooted at an element/text/comment/PI record.
    @raise Invalid_argument on an attribute record. *)
