(** The three order encodings of the paper (plus the gap-based GLOBAL
    variant used by the ablation experiment).

    All encodings share the node payload columns
    [(id, parent, kind, tag, value, nval)] and differ in their order columns:

    - {b GLOBAL} adds [(g_order, g_end)]: a begin/end interval numbering in
      document order. Document order is [ORDER BY g_order]; the descendants
      of [n] are exactly the rows with [g_order] strictly inside [n]'s
      interval. (The paper stored the begin-tag position; the interval form
      carries the same order information and makes the descendant test
      closed-form. See DESIGN.md, substitutions.)
    - {b GLOBAL/gap} is the same schema loaded with gaps between interval
      endpoints so insertions can often be absorbed without renumbering.
    - {b LOCAL} adds [l_order]: the sibling position (attributes occupy
      negative positions, see {!Doc_index}).
    - {b DEWEY} adds [(depth, path)] where [path] is the binary
      order-preserving {!Dewey} key; document order is [ORDER BY path] and
      the descendant axis is a [path] prefix range.
    - {b DEWEY/caret} ("ordpath", after the SQL Server follow-up to the
      paper) shares the DEWEY schema but loads children at odd components
      (1, 3, 5, ...) and lets insertions claim even {e caret} components
      between existing siblings, so typical insertions renumber {e zero}
      rows. [depth] stores the logical depth (caret components are not
      levels). When a caret zone is exhausted the updater falls back to a
      DEWEY-style sibling renumbering that restores headroom (full ORDPATH
      avoids even that with negative components, which the unsigned binary
      codec here does not represent — see DESIGN.md).

    [nval] is the numeric shadow of [value] for text/attribute rows whose
    content parses as a number; value predicates compare against it (the
    standard shredding trick for typed comparisons inside an RDBMS). *)

type t = Global | Global_gap | Local | Dewey_enc | Dewey_caret

val all : t list
val name : t -> string
(** "global" | "global-gap" | "local" | "dewey" | "ordpath" *)

val of_name : string -> t option

val table_name : doc:string -> t -> string
(** The edge table for document [doc] under this encoding. *)

val default_gap : int
(** Interval spacing used when loading [Global_gap] (32). *)

val create_tables : Reldb.Db.t -> doc:string -> t -> unit
(** Issue the CREATE TABLE / CREATE INDEX DDL. *)

val drop_tables : Reldb.Db.t -> doc:string -> t -> unit

(** {2 Column positions} (fixed per encoding, used by bulk paths) *)

val col_id : int
val col_parent : int
val col_kind : int
val col_tag : int
val col_value : int
val col_nval : int

val col_g_order : int
val col_g_end : int
(** GLOBAL only. *)

val col_l_order : int
(** LOCAL only. *)

val col_depth : int
val col_path : int
(** DEWEY only. *)

val nval_of : kind:Doc_index.kind -> string -> Reldb.Value.t
(** Numeric shadow value for a text/attribute payload. *)
