(** Storage accounting per encoding (experiment E2). *)

type t = {
  encoding : Encoding.t;
  rows : int;
  heap_bytes : int;  (** payload bytes of live rows *)
  order_bytes : int;  (** bytes attributable to the order columns alone *)
  index_entries : int;
  index_bytes : int;  (** estimated: sum of key bytes over all indexes *)
  total_bytes : int;
  avg_key_bytes : float;  (** average order-key payload per row *)
  max_key_bytes : int;
}

val measure : Reldb.Db.t -> doc:string -> Encoding.t -> t

val pp : Format.formatter -> t -> unit

val dewey_path_length_histogram : Reldb.Db.t -> doc:string -> (int * int) list
(** Encoded-path length (bytes) -> row count, ascending. Empty unless the
    DEWEY table exists. *)
