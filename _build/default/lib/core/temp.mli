(** Temporary context tables for set-based step evaluation.

    The translator evaluates one XPath step per SQL statement by joining the
    edge table against a context table holding the current node set — the
    classic middle-tier strategy for running path queries over shredded XML
    without recursive SQL. *)

val with_ctx :
  Reldb.Db.t ->
  cols:(string * Reldb.Value.ty) list ->
  rows:Reldb.Tuple.t list ->
  (string -> 'a) ->
  'a
(** Create a uniquely named table with the given columns, bulk-load [rows],
    run the continuation with the table name, and drop the table afterwards
    (also on exceptions). *)
