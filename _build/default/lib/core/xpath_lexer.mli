(** XPath tokenizer. *)

type token =
  | Slash  (** / *)
  | Dslash  (** // *)
  | At
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Dcolon  (** :: *)
  | Dot
  | Dotdot
  | Star
  | Comma
  | Pipe  (** | *)
  | Cmp of Xpath_ast.cmp
  | Num of float
  | Str of string
  | Ident of string  (** names, axis names, and/or/not/text/node/... *)
  | Eof

exception Error of string

val tokenize : string -> token list
