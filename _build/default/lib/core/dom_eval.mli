(** Reference XPath evaluator over the in-memory {!Doc_index}.

    This is the test oracle: a direct tree-walking implementation of the
    XPath subset with full XPath 1.0 ordering semantics (forward axes in
    document order, reverse axes in reverse document order for positional
    predicates, node-set results in document order). The relational
    translations are checked against it. *)

val eval : Doc_index.t -> Xpath_ast.path -> int list
(** Evaluate an absolute path from the (virtual) document root. Results are
    record ids in document order, without duplicates. Relative paths are
    evaluated with the root element as context. *)

val eval_union : Doc_index.t -> Xpath_ast.union -> int list
(** Union of the alternatives, deduplicated, in document order. *)

val eval_from : Doc_index.t -> int list -> Xpath_ast.path -> int list
(** Evaluate from explicit context nodes (absolute paths restart from the
    document root regardless). *)

val string_value : Doc_index.t -> int -> string
(** Re-export of {!Doc_index.string_value} for result checking. *)
