(** Decoding of edge-table tuples into a typed view, shared by the
    translator, reconstruction and updates. *)

type ord =
  | Og of int * int  (** GLOBAL: (g_order, g_end) *)
  | Ol of int  (** LOCAL: l_order *)
  | Od of string  (** DEWEY: encoded path *)

type t = {
  id : int;
  parent : int option;
  kind : Doc_index.kind;
  tag : string;
  value : string;
  ord : ord;
}

val of_tuple : Encoding.t -> Reldb.Tuple.t -> t
(** Decode a full edge-table row (schema per {!Encoding}). *)

val select_list : Encoding.t -> string -> string
(** [select_list enc alias] — the projection of all edge columns (payload
    then order columns), qualified by [alias], in the column order
    {!of_tuple} expects. *)

val compare_ord : t -> t -> int
(** Document-order comparison usable within one encoding. *)

val dewey : t -> Dewey.t
(** @raise Invalid_argument unless the row is DEWEY-encoded. *)
