(** XPath evaluation over the shredded relations: the paper's translation of
    ordered queries into SQL, one strategy per encoding.

    Evaluation is step-at-a-time and set-based, in the middle-tier style the
    shredding literature used before recursive SQL was common: the current
    context node set is bound into a context table (or inlined as literals
    when small) and each location step becomes one SQL statement joining the
    edge table against it. What that statement looks like is exactly where
    the encodings differ:

    - ordered axes map to order-column ranges — [g_order]/[g_end] intervals
      for GLOBAL, [path] prefix ranges for DEWEY, [(parent, l_order)] ranges
      for LOCAL sibling axes;
    - document-order axes ([following], [preceding]) and document-order
      output sorting are closed-form for GLOBAL and DEWEY but require the
      middle tier to materialize parent chains (one SQL statement per level)
      for LOCAL — the recursion cost the paper attributes to local order;
    - positional predicates are ranked in the middle tier per context node
      over the axis-ordered candidates for every encoding (sibling positions
      stored by LOCAL/DEWEY are sibling ranks, not ranks among nodes passing
      the step's name test, so they cannot answer [bidder[2]] alone);
    - value predicates ([price > 100], [@id = 'x']) become comparisons on
      the [value]/[nval] columns. A comparison path that selects elements
      gets an implicit [/text()] appended, which equals XPath string-value
      semantics for elements whose content is a single text node (the
      data-centric case; see DESIGN.md).

    The number of SQL statements issued and the SQL text are reported for
    instrumentation; rows-read/written counters live on {!Reldb.Db}. *)

type result = {
  rows : Node_row.t list;  (** result nodes, in document order *)
  statements : int;  (** SQL statements issued *)
  sql_log : string list;  (** the statements, in order *)
}

exception Unsupported of string

val eval : Reldb.Db.t -> doc:string -> Encoding.t -> Xpath_ast.path -> result
(** Evaluate an absolute or relative (root-context) path. *)

val eval_union : Reldb.Db.t -> doc:string -> Encoding.t -> Xpath_ast.union -> result
(** Evaluate a union of paths; results are merged, deduplicated and returned
    in document order. *)

val eval_ids : Reldb.Db.t -> doc:string -> Encoding.t -> Xpath_ast.path -> int list
(** Just the node ids, in document order. *)

val eval_string : Reldb.Db.t -> doc:string -> Encoding.t -> string -> result
(** Parse then evaluate (handles top-level unions).
    @raise Xpath_parser.Parse_error on bad syntax. *)

val eval_from_ids :
  Reldb.Db.t -> doc:string -> Encoding.t -> ids:int list -> Xpath_ast.path ->
  result
(** Evaluate a path with the given nodes as context (absolute paths restart
    from the document root). Used by the FLWOR layer to resolve
    variable-relative paths. *)

val sort_document_order :
  Reldb.Db.t -> doc:string -> Encoding.t -> Node_row.t list ->
  Node_row.t list * int
(** Sort arbitrary rows into document order (deduplicating by id), fetching
    parent chains when the encoding stores no global order (LOCAL). Returns
    the sorted rows and the number of extra SQL statements issued. *)
