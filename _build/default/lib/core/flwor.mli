(** FLWOR-lite: the XQuery-style publishing layer the shredding systems of
    the paper's era (XPERANTO, SilkRoute, Niagara) put on top of the
    relational store — iterate over node sequences, filter, sort, and
    construct new XML.

    Supported grammar (whitespace-insensitive):
    {v
    query   ::= (for | let | where | order)* 'return' ctor
    for     ::= 'for' '$'name 'in' pathexpr
    let     ::= 'let' '$'name ':=' pathexpr
    where   ::= 'where' cond ('and' cond)*
    order   ::= 'order' 'by' pathexpr ('ascending' | 'descending')?
    pathexpr::= '/'path | '$'name ('/' relpath)?
    cond    ::= pathexpr cmp (literal | pathexpr) | pathexpr  (existence)
    ctor    ::= '<'tag (attr '=' '"' (text | '{'pathexpr'}')* '"')* '>'
                (ctor | text | '{'pathexpr'}')* '</'tag'>'
              | '<'tag .../>'
    v}

    Splices ([{$a/rel/path}]) inside element content insert the selected
    nodes (attributes splice as their text value); inside attribute values
    they insert the string-value of the first selected node. Variables bind
    single nodes ([for]) or whole node sequences ([let]). Conditions compare
    against literals or against another path (a value join, with XPath's
    existential any-pair semantics). [order by] compares numeric
    string-values numerically, otherwise as strings. *)

type t

exception Parse_error of string
exception Eval_error of string

val parse : string -> t
(** @raise Parse_error on malformed queries. *)

val eval : Reldb.Db.t -> doc:string -> Encoding.t -> t -> Xmllib.Types.node list
(** Evaluate over the shredded store; every path step runs as SQL through
    {!Translate}. @raise Eval_error on unbound variables and the like. *)

val run :
  Reldb.Db.t -> doc:string -> Encoding.t -> string -> Xmllib.Types.node list
(** Parse then evaluate. *)
