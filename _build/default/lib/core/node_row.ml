module V = Reldb.Value

type ord = Og of int * int | Ol of int | Od of string

type t = {
  id : int;
  parent : int option;
  kind : Doc_index.kind;
  tag : string;
  value : string;
  ord : ord;
}

let get_int = function
  | V.Int i -> i
  | v -> invalid_arg ("Node_row: expected INT, got " ^ V.to_string v)

let get_str_opt = function
  | V.Null -> ""
  | V.Str s -> s
  | v -> invalid_arg ("Node_row: expected TEXT, got " ^ V.to_string v)

let of_tuple enc (tu : Reldb.Tuple.t) =
  let id = get_int tu.(Encoding.col_id) in
  let parent =
    match tu.(Encoding.col_parent) with
    | V.Null -> None
    | V.Int p -> Some p
    | v -> invalid_arg ("Node_row: bad parent " ^ V.to_string v)
  in
  let kind = Doc_index.kind_of_code (get_int tu.(Encoding.col_kind)) in
  let tag = get_str_opt tu.(Encoding.col_tag) in
  let value = get_str_opt tu.(Encoding.col_value) in
  let ord =
    match enc with
    | Encoding.Global | Encoding.Global_gap ->
        Og (get_int tu.(Encoding.col_g_order), get_int tu.(Encoding.col_g_end))
    | Encoding.Local -> Ol (get_int tu.(Encoding.col_l_order))
    | Encoding.Dewey_enc | Encoding.Dewey_caret -> begin
        match tu.(Encoding.col_path) with
        | V.Bytes b -> Od b
        | v -> invalid_arg ("Node_row: bad path " ^ V.to_string v)
      end
  in
  { id; parent; kind; tag; value; ord }

let select_list enc alias =
  let order_cols =
    match enc with
    | Encoding.Global | Encoding.Global_gap -> [ "g_order"; "g_end" ]
    | Encoding.Local -> [ "l_order" ]
    | Encoding.Dewey_enc | Encoding.Dewey_caret -> [ "depth"; "path" ]
  in
  String.concat ", "
    (List.map
       (fun c -> alias ^ "." ^ c)
       ([ "id"; "parent"; "kind"; "tag"; "value"; "nval" ] @ order_cols))

let compare_ord a b =
  match (a.ord, b.ord) with
  | Og (x, _), Og (y, _) -> Stdlib.compare x y
  | Ol x, Ol y -> Stdlib.compare x y
  | Od x, Od y -> String.compare x y
  | _ -> invalid_arg "Node_row.compare_ord: mixed encodings"

let dewey t =
  match t.ord with
  | Od b -> Dewey.decode b
  | Og _ | Ol _ -> invalid_arg "Node_row.dewey: not a DEWEY row"
