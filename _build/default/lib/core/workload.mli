(** The experiment workloads (DESIGN.md section 6): the ordered query set
    Q1–Q8 over the XMark-style auction data, the update scenarios, and the
    dataset presets shared by the benchmarks and the experiment harness. *)

type query = {
  q_id : string;  (** "Q1".."Q8" *)
  q_label : string;  (** what the query exercises *)
  q_xpath : string option;  (** [None] for Q8, the reconstruction task *)
}

val queries : query list
(** Q1 simple path, Q2 [[1]], Q3 [[last()]], Q4 position range,
    Q5 following-sibling, Q6 descendant + value predicate, Q7 following,
    Q8 subtree reconstruction (represented with [q_xpath = None]). *)

val q8_target : string
(** XPath selecting the subtree Q8 reconstructs. *)

val dataset : scale:int -> Xmllib.Types.document
(** Deterministic XMark-style document ([seed] fixed). *)

val update_fragment : seed:int -> Xmllib.Types.node
(** A fresh [open_auction] element to insert (a few dozen records). *)

val small_fragment : Xmllib.Types.node
(** A single [bidder] element with children. *)

(** Insertion positions exercised by E4. *)
type position = Front | Middle | Back

val position_name : position -> string
val positions : position list

val insertion_pos : position -> sibling_count:int -> int
(** Translate a scenario position into a 1-based child index. *)

val container_path : string
(** XPath of the container element whose child list E4 grows
    ("/site/open_auctions"). *)
