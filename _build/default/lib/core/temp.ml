let counter = ref 0

let with_ctx db ~cols ~rows f =
  incr counter;
  let name = Printf.sprintf "ctx_%d" !counter in
  let ddl =
    Printf.sprintf "CREATE TABLE %s (%s)" name
      (String.concat ", "
         (List.map
            (fun (n, ty) -> Printf.sprintf "%s %s" n (Reldb.Value.ty_name ty))
            cols))
  in
  ignore (Reldb.Db.exec db ddl);
  let table = Reldb.Db.table db name in
  List.iter (fun row -> ignore (Reldb.Table.insert table row)) rows;
  Fun.protect
    ~finally:(fun () -> ignore (Reldb.Db.exec db (Printf.sprintf "DROP TABLE %s" name)))
    (fun () -> f name)
