module A = Xpath_ast
module T = Xmllib.Types

exception Parse_error of string
exception Eval_error of string

let pfail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt
let efail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* AST                                                                 *)
(* ------------------------------------------------------------------ *)

type pathexpr =
  | P_abs of A.path
  | P_var of string * A.path option  (* $x or $x/rel/path *)

type rhs = R_lit of A.literal | R_path of pathexpr

type cond = { c_path : pathexpr; c_cmp : (A.cmp * rhs) option }

type clause =
  | For of string * pathexpr
  | Let of string * pathexpr
  | Where of cond list
  | Order of pathexpr * [ `Asc | `Desc ]

type content =
  | K_text of string
  | K_splice of pathexpr
  | K_elem of elem

and elem = {
  e_tag : string;
  e_attrs : (string * apart list) list;
  e_children : content list;
}

and apart = AP_text of string | AP_splice of pathexpr

type t = { clauses : clause list; ctor : content list }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_pathexpr s =
  if s = "" then pfail "empty path expression";
  if s.[0] = '$' then begin
    match String.index_opt s '/' with
    | None ->
        let v = String.sub s 1 (String.length s - 1) in
        if v = "" then pfail "missing variable name";
        P_var (v, None)
    | Some i ->
        let v = String.sub s 1 (i - 1) in
        if v = "" then pfail "missing variable name";
        let rel = String.sub s (i + 1) (String.length s - i - 1) in
        (try P_var (v, Some (Xpath_parser.parse_relative rel))
         with Xpath_parser.Parse_error m -> pfail "in %s: %s" s m)
  end
  else
    try P_abs (Xpath_parser.parse s)
    with Xpath_parser.Parse_error m -> pfail "in %s: %s" s m

(* words of the clause section, gluing quoted strings back together *)
let words_of src =
  let raw =
    String.split_on_char ' ' (String.map (function '\n' | '\t' | '\r' -> ' ' | c -> c) src)
    |> List.filter (fun w -> w <> "")
  in
  let rec glue acc = function
    | [] -> List.rev acc
    | w :: rest
      when String.length w >= 1
           && w.[0] = '\''
           && not (String.length w >= 2 && w.[String.length w - 1] = '\'') ->
        (* a quoted literal containing spaces: join until the closing quote *)
        let rec take parts = function
          | [] -> pfail "unterminated string literal"
          | p :: more ->
              if String.length p >= 1 && p.[String.length p - 1] = '\'' then
                (String.concat " " (List.rev (p :: parts)), more)
              else take (p :: parts) more
        in
        let joined, more = take [ w ] rest in
        glue (joined :: acc) more
    | w :: rest -> glue (w :: acc) rest
  in
  glue [] raw

let cmp_of_word = function
  | "=" -> Some A.Eq
  | "!=" -> Some A.Ne
  | "<" -> Some A.Lt
  | "<=" -> Some A.Le
  | ">" -> Some A.Gt
  | ">=" -> Some A.Ge
  | _ -> None

let literal_of_word w =
  if String.length w >= 2 && w.[0] = '\'' && w.[String.length w - 1] = '\'' then
    A.L_str (String.sub w 1 (String.length w - 2))
  else
    match float_of_string_opt w with
    | Some f -> A.L_num f
    | None -> pfail "expected a literal, got %s" w

let rec parse_clauses words acc =
  match words with
  | "return" :: _ -> (List.rev acc, words)
  | "for" :: var :: "in" :: pe :: rest ->
      if String.length var < 2 || var.[0] <> '$' then
        pfail "for expects a $variable, got %s" var;
      parse_clauses rest
        (For (String.sub var 1 (String.length var - 1), parse_pathexpr pe) :: acc)
  | "let" :: var :: ":=" :: pe :: rest ->
      if String.length var < 2 || var.[0] <> '$' then
        pfail "let expects a $variable, got %s" var;
      parse_clauses rest
        (Let (String.sub var 1 (String.length var - 1), parse_pathexpr pe) :: acc)
  | "where" :: rest ->
      let rec conds ws acc_c =
        match ws with
        | pe :: op :: rhs :: more when cmp_of_word op <> None ->
            (* the right-hand side is a literal, or another path/variable
               (turning the condition into a value join) *)
            let r =
              if String.length rhs > 0 && (rhs.[0] = '$' || rhs.[0] = '/') then
                R_path (parse_pathexpr rhs)
              else R_lit (literal_of_word rhs)
            in
            let c =
              {
                c_path = parse_pathexpr pe;
                c_cmp = Some (Option.get (cmp_of_word op), r);
              }
            in
            continue (c :: acc_c) more
        | pe :: more -> continue ({ c_path = parse_pathexpr pe; c_cmp = None } :: acc_c) more
        | [] -> pfail "empty where clause"
      and continue acc_c = function
        | "and" :: more -> conds more acc_c
        | more -> (List.rev acc_c, more)
      in
      let cs, rest = conds rest [] in
      parse_clauses rest (Where cs :: acc)
  | "order" :: "by" :: pe :: rest ->
      let dir, rest =
        match rest with
        | "descending" :: r -> (`Desc, r)
        | "ascending" :: r -> (`Asc, r)
        | r -> (`Asc, r)
      in
      parse_clauses rest (Order (parse_pathexpr pe, dir) :: acc)
  | w :: _ -> pfail "unexpected token %s (expected for/let/where/order/return)" w
  | [] -> pfail "missing return clause"

(* --- constructor ----------------------------------------------------- *)

type cstate = { src : string; mutable pos : int }

let peekc st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expectc st c =
  match peekc st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> pfail "expected %c in constructor" c

let read_name st =
  let start = st.pos in
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then pfail "expected a name in constructor";
  String.sub st.src start (st.pos - start)

let read_until st stop =
  let start = st.pos in
  while st.pos < String.length st.src && st.src.[st.pos] <> stop do
    st.pos <- st.pos + 1
  done;
  if st.pos >= String.length st.src then pfail "missing %c in constructor" stop;
  String.sub st.src start (st.pos - start)

let read_splice st =
  (* at '{' *)
  expectc st '{';
  let body = String.trim (read_until st '}') in
  expectc st '}';
  parse_pathexpr body

let rec parse_elem st =
  expectc st '<';
  let tag = read_name st in
  let attrs = parse_attrs st [] in
  skip_ws st;
  match peekc st with
  | Some '/' ->
      st.pos <- st.pos + 1;
      expectc st '>';
      { e_tag = tag; e_attrs = attrs; e_children = [] }
  | Some '>' ->
      st.pos <- st.pos + 1;
      let children = parse_contents ~top:false st [] in
      (* at '</' *)
      expectc st '<';
      expectc st '/';
      let close = read_name st in
      if close <> tag then pfail "mismatched </%s> (expected </%s>)" close tag;
      skip_ws st;
      expectc st '>';
      { e_tag = tag; e_attrs = attrs; e_children = children }
  | _ -> pfail "malformed constructor tag <%s" tag

and parse_attrs st acc =
  skip_ws st;
  match peekc st with
  | Some c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
      let name = read_name st in
      skip_ws st;
      expectc st '=';
      skip_ws st;
      expectc st '"';
      let rec parts acc_p =
        match peekc st with
        | Some '"' ->
            st.pos <- st.pos + 1;
            List.rev acc_p
        | Some '{' -> parts (AP_splice (read_splice st) :: acc_p)
        | Some _ ->
            let start = st.pos in
            while
              st.pos < String.length st.src
              && st.src.[st.pos] <> '"'
              && st.src.[st.pos] <> '{'
            do
              st.pos <- st.pos + 1
            done;
            parts (AP_text (String.sub st.src start (st.pos - start)) :: acc_p)
        | None -> pfail "unterminated attribute value in constructor"
      in
      parse_attrs st ((name, parts []) :: acc)
  | _ -> List.rev acc

and parse_contents ~top st acc =
  match peekc st with
  | None -> if top then List.rev acc else pfail "unterminated constructor"
  | Some '<' ->
      if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' then
        if top then pfail "stray end tag in constructor" else List.rev acc
      else parse_contents ~top st (K_elem (parse_elem st) :: acc)
  | Some '{' -> parse_contents ~top st (K_splice (read_splice st) :: acc)
  | Some _ ->
      let start = st.pos in
      while
        st.pos < String.length st.src
        && st.src.[st.pos] <> '<'
        && st.src.[st.pos] <> '{'
      do
        st.pos <- st.pos + 1
      done;
      let txt = String.sub st.src start (st.pos - start) in
      let txt = Xmllib.Lexer.decode_entities txt in
      if String.trim txt = "" then parse_contents ~top st acc
      else parse_contents ~top st (K_text txt :: acc)

let parse src =
  (* split at the top-level 'return' keyword *)
  let re_pos =
    let n = String.length src in
    let rec find i =
      if i + 6 > n then pfail "missing return clause"
      else if
        String.sub src i 6 = "return"
        && (i = 0 || src.[i - 1] = ' ' || src.[i - 1] = '\n' || src.[i - 1] = '\t')
        && i + 6 < n
        && (src.[i + 6] = ' ' || src.[i + 6] = '\n' || src.[i + 6] = '<' || src.[i + 6] = '{')
      then i
      else find (i + 1)
    in
    find 0
  in
  let clause_text = String.sub src 0 re_pos in
  let ctor_text = String.sub src (re_pos + 6) (String.length src - re_pos - 6) in
  let clauses, leftover = parse_clauses (words_of clause_text @ [ "return" ]) [] in
  (match leftover with [ "return" ] -> () | _ -> pfail "malformed clause section");
  if not (List.exists (function For _ -> true | _ -> false) clauses) then
    pfail "at least one for clause is required";
  let st = { src = ctor_text; pos = 0 } in
  skip_ws st;
  let ctor = parse_contents ~top:true st [] in
  skip_ws st;
  if st.pos < String.length st.src then pfail "trailing input after constructor";
  if ctor = [] then pfail "empty constructor";
  { clauses; ctor }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type env = (string * Node_row.t list) list

type ectx = { db : Reldb.Db.t; doc : string; enc : Encoding.t }

let resolve ctx (env : env) = function
  | P_abs p ->
      (Translate.eval ctx.db ~doc:ctx.doc ctx.enc p).Translate.rows
  | P_var (v, rel) -> (
      match List.assoc_opt v env with
      | None -> efail "unbound variable $%s" v
      | Some rows -> (
          match rel with
          | None -> rows
          | Some p ->
              let ids = List.map (fun (r : Node_row.t) -> r.Node_row.id) rows in
              (Translate.eval_from_ids ctx.db ~doc:ctx.doc ctx.enc ~ids p)
                .Translate.rows))

let string_value ctx (r : Node_row.t) =
  match r.Node_row.kind with
  | Doc_index.Elem ->
      T.text_content (Reconstruct.subtree ctx.db ~doc:ctx.doc ctx.enc ~id:r.Node_row.id)
  | _ -> r.Node_row.value

let number_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let cmp_op (op : A.cmp) c =
  match op with
  | A.Eq -> c = 0
  | A.Ne -> c <> 0
  | A.Lt -> c < 0
  | A.Le -> c <= 0
  | A.Gt -> c > 0
  | A.Ge -> c >= 0

let value_matches ctx op sv rhs_value =
  match rhs_value with
  | A.L_num f ->
      let x = number_of_string sv in
      (not (Float.is_nan x)) && (not (Float.is_nan f)) && cmp_op op (compare x f)
  | A.L_str s -> (
      match op with
      | A.Eq | A.Ne -> cmp_op op (String.compare sv s)
      | _ ->
          let x = number_of_string sv and y = number_of_string s in
          (not (Float.is_nan x))
          && (not (Float.is_nan y))
          && cmp_op op (compare x y))
  [@@warning "-27"]

let cond_holds ctx env (c : cond) =
  let rows = resolve ctx env c.c_path in
  match c.c_cmp with
  | None -> rows <> []
  | Some (op, R_lit lit) ->
      List.exists (fun r -> value_matches ctx op (string_value ctx r) lit) rows
  | Some (op, R_path pe) ->
      (* existential pair semantics, as in XPath: any left/right value pair
         may satisfy the comparison *)
      let rhs = resolve ctx env pe in
      List.exists
        (fun l ->
          let sv = string_value ctx l in
          List.exists
            (fun r -> value_matches ctx op sv (A.L_str (string_value ctx r)))
            rhs)
        rows

let apply_clause ctx (envs : env list) = function
  | For (v, pe) ->
      List.concat_map
        (fun env ->
          List.map (fun row -> (v, [ row ]) :: env) (resolve ctx env pe))
        envs
  | Let (v, pe) -> List.map (fun env -> (v, resolve ctx env pe) :: env) envs
  | Where conds ->
      List.filter (fun env -> List.for_all (cond_holds ctx env) conds) envs
  | Order (pe, dir) ->
      let keyed =
        List.map
          (fun env ->
            let key =
              match resolve ctx env pe with
              | [] -> ""
              | r :: _ -> string_value ctx r
            in
            (key, env))
          envs
      in
      let numeric =
        keyed <> []
        && List.for_all (fun (k, _) -> not (Float.is_nan (number_of_string k))) keyed
      in
      let cmp (a, _) (b, _) =
        let c =
          if numeric then compare (number_of_string a) (number_of_string b)
          else String.compare a b
        in
        match dir with `Asc -> c | `Desc -> -c
      in
      List.map snd (List.stable_sort cmp keyed)

let splice_nodes ctx rows =
  List.map
    (fun (r : Node_row.t) ->
      match r.Node_row.kind with
      | Doc_index.Attr -> T.Text r.Node_row.value
      | _ -> Reconstruct.subtree ctx.db ~doc:ctx.doc ctx.enc ~id:r.Node_row.id)
    rows

let rec instantiate ctx env (c : content) : T.node list =
  match c with
  | K_text s -> [ T.Text s ]
  | K_splice pe -> splice_nodes ctx (resolve ctx env pe)
  | K_elem e ->
      let attrs =
        List.map
          (fun (name, parts) ->
            let value =
              String.concat ""
                (List.map
                   (function
                     | AP_text s -> s
                     | AP_splice pe -> (
                         match resolve ctx env pe with
                         | [] -> ""
                         | r :: _ -> string_value ctx r))
                   parts)
            in
            { T.attr_name = name; attr_value = value })
          e.e_attrs
      in
      let children = List.concat_map (instantiate ctx env) e.e_children in
      [ T.Element { T.tag = e.e_tag; attrs; children } ]

let eval db ~doc enc (q : t) =
  let ctx = { db; doc; enc } in
  let envs = List.fold_left (apply_clause ctx) [ [] ] q.clauses in
  List.concat_map
    (fun env -> List.concat_map (instantiate ctx env) q.ctor)
    envs

let run db ~doc enc src = eval db ~doc enc (parse src)
