open Xpath_ast

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : Xpath_lexer.token list }

let peek st = match st.toks with [] -> Xpath_lexer.Eof | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Xpath_lexer.Eof
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let tok_str = function
  | Xpath_lexer.Slash -> "/"
  | Xpath_lexer.Dslash -> "//"
  | Xpath_lexer.At -> "@"
  | Xpath_lexer.Lbracket -> "["
  | Xpath_lexer.Rbracket -> "]"
  | Xpath_lexer.Lparen -> "("
  | Xpath_lexer.Rparen -> ")"
  | Xpath_lexer.Dcolon -> "::"
  | Xpath_lexer.Dot -> "."
  | Xpath_lexer.Dotdot -> ".."
  | Xpath_lexer.Star -> "*"
  | Xpath_lexer.Comma -> ","
  | Xpath_lexer.Pipe -> "|"
  | Xpath_lexer.Cmp c -> cmp_name c
  | Xpath_lexer.Num f -> Printf.sprintf "%g" f
  | Xpath_lexer.Str s -> Printf.sprintf "'%s'" s
  | Xpath_lexer.Ident s -> s
  | Xpath_lexer.Eof -> "end of input"

let axis_of_name = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "self" -> Some Self
  | "parent" -> Some Parent
  | "attribute" -> Some Attribute
  | "following-sibling" -> Some Following_sibling
  | "preceding-sibling" -> Some Preceding_sibling
  | "following" -> Some Following
  | "preceding" -> Some Preceding
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | _ -> None

let parse_test st =
  match peek st with
  | Xpath_lexer.Star ->
      advance st;
      Any_name
  | Xpath_lexer.Ident name when peek2 st = Xpath_lexer.Lparen -> begin
      advance st;
      advance st;
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ) after %s(, got %s" name (tok_str t));
      match name with
      | "text" -> Text_test
      | "comment" -> Comment_test
      | "node" -> Node_test
      | _ -> fail "unknown node test %s()" name
    end
  | Xpath_lexer.Ident name ->
      advance st;
      Name name
  | t -> fail "expected a node test, got %s" (tok_str t)

let rec parse_predicate st =
  (* '[' already consumed *)
  let p = parse_or st in
  (match peek st with
  | Xpath_lexer.Rbracket -> advance st
  | t -> fail "expected ], got %s" (tok_str t));
  p

and parse_or st =
  let left = parse_and st in
  match peek st with
  | Xpath_lexer.Ident "or" ->
      advance st;
      P_or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_atom st in
  match peek st with
  | Xpath_lexer.Ident "and" ->
      advance st;
      P_and (left, parse_and st)
  | _ -> left

and parse_atom st =
  match peek st with
  | Xpath_lexer.Num f ->
      advance st;
      let k = int_of_float f in
      if float_of_int k <> f || k < 1 then fail "positions must be positive integers";
      P_pos (Eq, k)
  | Xpath_lexer.Lparen ->
      advance st;
      let p = parse_or st in
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ), got %s" (tok_str t));
      p
  | Xpath_lexer.Ident "not" when peek2 st = Xpath_lexer.Lparen ->
      advance st;
      advance st;
      let p = parse_or st in
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ), got %s" (tok_str t));
      P_not p
  | Xpath_lexer.Ident "count" when peek2 st = Xpath_lexer.Lparen ->
      advance st;
      advance st;
      let path = parse_relpath st in
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ), got %s" (tok_str t));
      let op =
        match peek st with
        | Xpath_lexer.Cmp c ->
            advance st;
            c
        | t -> fail "expected a comparison after count(), got %s" (tok_str t)
      in
      let k =
        match peek st with
        | Xpath_lexer.Num f ->
            advance st;
            int_of_float f
        | t -> fail "expected a number, got %s" (tok_str t)
      in
      P_count (path, op, k)
  | Xpath_lexer.Ident "last" when peek2 st = Xpath_lexer.Lparen ->
      advance st;
      advance st;
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ), got %s" (tok_str t));
      P_last
  | Xpath_lexer.Ident "position" when peek2 st = Xpath_lexer.Lparen ->
      advance st;
      advance st;
      (match peek st with
      | Xpath_lexer.Rparen -> advance st
      | t -> fail "expected ), got %s" (tok_str t));
      let op =
        match peek st with
        | Xpath_lexer.Cmp c ->
            advance st;
            c
        | t -> fail "expected a comparison after position(), got %s" (tok_str t)
      in
      let k =
        match peek st with
        | Xpath_lexer.Num f ->
            advance st;
            int_of_float f
        | t -> fail "expected a number, got %s" (tok_str t)
      in
      P_pos (op, k)
  | _ ->
      (* relative path, optionally compared to a literal *)
      let path = parse_relpath st in
      (match peek st with
      | Xpath_lexer.Cmp op ->
          advance st;
          let lit =
            match peek st with
            | Xpath_lexer.Num f ->
                advance st;
                L_num f
            | Xpath_lexer.Str s ->
                advance st;
                L_str s
            | t -> fail "expected a literal, got %s" (tok_str t)
          in
          P_cmp (path, op, lit)
      | _ -> P_exists path)

and parse_step st =
  match peek st with
  | Xpath_lexer.Dot ->
      advance st;
      { axis = Self; test = Node_test; preds = [] }
  | Xpath_lexer.Dotdot ->
      advance st;
      { axis = Parent; test = Node_test; preds = [] }
  | Xpath_lexer.At ->
      advance st;
      let test = parse_test st in
      { axis = Attribute; test; preds = parse_preds st }
  | Xpath_lexer.Ident name
    when peek2 st = Xpath_lexer.Dcolon && axis_of_name name <> None -> begin
      advance st;
      advance st;
      match axis_of_name name with
      | Some axis ->
          let test = parse_test st in
          { axis; test; preds = parse_preds st }
      | None -> assert false
    end
  | Xpath_lexer.Ident name when peek2 st = Xpath_lexer.Dcolon ->
      fail "unknown axis %s" name
  | _ ->
      let test = parse_test st in
      { axis = Child; test; preds = parse_preds st }

and parse_preds st =
  match peek st with
  | Xpath_lexer.Lbracket ->
      advance st;
      let p = parse_predicate st in
      p :: parse_preds st
  | _ -> []

and parse_relpath st =
  let first = parse_step st in
  let rec more acc =
    match peek st with
    | Xpath_lexer.Slash ->
        advance st;
        more (parse_step st :: acc)
    | Xpath_lexer.Dslash ->
        advance st;
        let s = parse_step st in
        more ({ s with axis = descend s.axis } :: acc)
    | _ -> List.rev acc
  in
  { absolute = false; steps = more [ first ] }

and descend = function
  | Child -> Descendant
  | axis ->
      fail "'//' cannot be combined with an explicit %s axis" (axis_name axis)

let parse_path st =
  match peek st with
  | Xpath_lexer.Slash ->
      advance st;
      let rel = parse_relpath st in
      { rel with absolute = true }
  | Xpath_lexer.Dslash ->
      advance st;
      let rel = parse_relpath st in
      let steps =
        match rel.steps with
        | s :: rest -> { s with axis = descend s.axis } :: rest
        | [] -> []
      in
      { absolute = true; steps }
  | _ -> parse_relpath st

let finish st =
  match peek st with
  | Xpath_lexer.Eof -> ()
  | t -> fail "trailing input: %s" (tok_str t)

let parse src =
  let toks =
    try Xpath_lexer.tokenize src with Xpath_lexer.Error m -> fail "%s" m
  in
  let st = { toks } in
  let p = parse_path st in
  finish st;
  if p.steps = [] then fail "empty path";
  p

let parse_union src =
  let toks =
    try Xpath_lexer.tokenize src with Xpath_lexer.Error m -> fail "%s" m
  in
  let st = { toks } in
  let rec go acc =
    let p = parse_path st in
    if p.steps = [] then fail "empty path";
    match peek st with
    | Xpath_lexer.Pipe ->
        advance st;
        go (p :: acc)
    | _ -> List.rev (p :: acc)
  in
  let paths = go [] in
  finish st;
  paths

let parse_relative src =
  let p = parse src in
  if p.absolute then fail "expected a relative path";
  p
