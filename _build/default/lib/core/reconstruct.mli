(** Rebuilding XML from the shredded relations — the ordered round-trip the
    paper treats as the correctness bar for an order encoding.

    GLOBAL and DEWEY fetch a subtree with a single ordered range query (the
    interval, resp. the path prefix range). LOCAL has no global order in the
    relation, so the subtree is fetched breadth-first, one SQL statement per
    level, and stitched together by sibling rank in the middle tier — the
    recursive-composition cost the paper attributes to local order. *)

val root_id : Reldb.Db.t -> doc:string -> Encoding.t -> int
(** Id of the document root (the row with NULL parent). *)

val subtree : Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> Xmllib.Types.node
(** Rebuild the subtree rooted at [id].
    @raise Not_found if the id does not exist.
    @raise Invalid_argument on an attribute node. *)

val document : Reldb.Db.t -> doc:string -> Encoding.t -> Xmllib.Types.document
(** Rebuild the whole document. *)

val serialize_subtree : Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> string
(** Serialize the subtree straight off the ordered row stream in a single
    pass — no intermediate DOM. For GLOBAL and DEWEY this is one ordered
    range scan feeding a tag stack (the streaming-publishing fast path those
    encodings enable); LOCAL still fetches level by level and sorts first.
    Produces exactly {!Xmllib.Printer.node_to_string} of {!subtree}. *)

val fetch_row : Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> Node_row.t
(** Fetch one node's row by id. @raise Not_found if absent. *)

val fetch_subtree_rows :
  Reldb.Db.t -> doc:string -> Encoding.t -> root:Node_row.t -> Node_row.t list
(** All rows of the subtree (including the root and attributes). For GLOBAL
    and DEWEY the list is in document order. *)
