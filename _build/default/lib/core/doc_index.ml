module T = Xmllib.Types

type kind = Elem | Text_node | Attr | Comment_node | Pi_node

let kind_code = function
  | Elem -> 0
  | Text_node -> 1
  | Attr -> 2
  | Comment_node -> 3
  | Pi_node -> 4

let kind_of_code = function
  | 0 -> Elem
  | 1 -> Text_node
  | 2 -> Attr
  | 3 -> Comment_node
  | 4 -> Pi_node
  | c -> invalid_arg (Printf.sprintf "Doc_index.kind_of_code: %d" c)

type record = {
  id : int;
  parent : int;
  kind : kind;
  tag : string;
  value : string;
  pos : int;
  size : int;
  dewey : Dewey.t;
}

type t = {
  recs : record array;
  kids : int list array;  (* non-attribute children per record *)
  atts : int list array;  (* attribute records per record *)
}

let build (doc : T.document) =
  let out = ref [] in
  let count = ref 0 in
  (* returns the number of records in the subtree including self *)
  let rec walk node ~parent ~pos ~dewey =
    let id = !count in
    incr count;
    match node with
    | T.Text s ->
        out := { id; parent; kind = Text_node; tag = ""; value = s; pos; size = 0; dewey } :: !out;
        1
    | T.Comment s ->
        out := { id; parent; kind = Comment_node; tag = ""; value = s; pos; size = 0; dewey } :: !out;
        1
    | T.Pi { target; data } ->
        out := { id; parent; kind = Pi_node; tag = target; value = data; pos; size = 0; dewey } :: !out;
        1
    | T.Element e ->
        let m = List.length e.T.attrs in
        let attr_records =
          List.mapi
            (fun j (a : T.attribute) ->
              let aid = !count in
              incr count;
              {
                id = aid;
                parent = id;
                kind = Attr;
                tag = a.T.attr_name;
                value = a.T.attr_value;
                pos = j - m;
                dewey = Dewey.child (Dewey.child dewey 0) (j + 1);
                size = 0;
              })
            e.T.attrs
        in
        let child_sizes =
          List.mapi
            (fun k c ->
              walk c ~parent:id ~pos:(k + 1) ~dewey:(Dewey.child dewey (k + 1)))
            e.T.children
        in
        let size = m + List.fold_left ( + ) 0 child_sizes in
        out :=
          List.rev_append attr_records
            ({ id; parent; kind = Elem; tag = e.T.tag; value = ""; pos; size; dewey }
            :: !out);
        size + 1
  in
  ignore (walk (T.Element doc.T.root) ~parent:(-1) ~pos:1 ~dewey:Dewey.root);
  let n = !count in
  let recs =
    Array.make n
      { id = 0; parent = -1; kind = Elem; tag = ""; value = ""; pos = 1; size = 0; dewey = Dewey.root }
  in
  List.iter (fun r -> recs.(r.id) <- r) !out;
  let kids = Array.make n [] and atts = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = recs.(i) in
    if r.parent >= 0 then
      if r.kind = Attr then atts.(r.parent) <- i :: atts.(r.parent)
      else kids.(r.parent) <- i :: kids.(r.parent)
  done;
  { recs; kids; atts }

let records t = t.recs
let length t = Array.length t.recs
let record t i = t.recs.(i)
let children t i = t.kids.(i)
let attributes t i = t.atts.(i)

let parent_of t i =
  let p = t.recs.(i).parent in
  if p < 0 then None else Some p

let ancestors t i =
  (* closest first: parent, grandparent, ..., root *)
  let rec go acc i =
    match parent_of t i with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] i

let string_value t i =
  let r = t.recs.(i) in
  match r.kind with
  | Text_node | Attr | Comment_node | Pi_node -> r.value
  | Elem ->
      let buf = Buffer.create 32 in
      (* descendants are the id range (i, i + size]; texts only *)
      for j = i + 1 to i + r.size do
        if t.recs.(j).kind = Text_node then Buffer.add_string buf t.recs.(j).value
      done;
      Buffer.contents buf

let is_descendant t ~ancestor i =
  (* valid at build time, when ids are preorder ranks *)
  i > ancestor && i <= ancestor + t.recs.(ancestor).size

let rec to_node t i =
  let r = t.recs.(i) in
  match r.kind with
  | Text_node -> T.Text r.value
  | Comment_node -> T.Comment r.value
  | Pi_node -> T.Pi { target = r.tag; data = r.value }
  | Attr -> invalid_arg "Doc_index.to_node: attribute record"
  | Elem ->
      let attrs =
        List.map
          (fun a ->
            { T.attr_name = t.recs.(a).tag; attr_value = t.recs.(a).value })
          t.atts.(i)
      in
      T.Element { T.tag = r.tag; attrs; children = List.map (to_node t) t.kids.(i) }
