module Store = struct
  type t = { db : Reldb.Db.t; name : string; enc : Encoding.t }

  let create ?gap db ~name enc doc =
    ignore (Shred.shred ?gap db ~doc:name enc doc);
    { db; name; enc }

  let open_existing db ~name enc =
    (* probe the table so a missing store fails loudly *)
    ignore (Reldb.Db.table db (Encoding.table_name ~doc:name enc));
    { db; name; enc }

  let drop t = Encoding.drop_tables t.db ~doc:t.name t.enc

  let db t = t.db
  let name t = t.name
  let encoding t = t.enc

  let query t xpath = Translate.eval_string t.db ~doc:t.name t.enc xpath

  let query_ids t xpath =
    List.map (fun (r : Node_row.t) -> r.Node_row.id) (query t xpath).Translate.rows

  let subtree t ~id = Reconstruct.subtree t.db ~doc:t.name t.enc ~id
  let serialize t ~id = Reconstruct.serialize_subtree t.db ~doc:t.name t.enc ~id

  let query_nodes t xpath =
    List.map (fun id -> subtree t ~id) (query_ids t xpath)

  let query_values t xpath =
    List.map
      (fun (r : Node_row.t) ->
        match r.Node_row.kind with
        | Doc_index.Elem ->
            Xmllib.Types.text_content (subtree t ~id:r.Node_row.id)
        | _ -> r.Node_row.value)
      (query t xpath).Translate.rows

  let count t xpath = List.length (query t xpath).Translate.rows

  let flwor t q = Flwor.run t.db ~doc:t.name t.enc q

  let insert_subtree t ~parent ~pos fragment =
    Update.insert_subtree t.db ~doc:t.name t.enc ~parent ~pos fragment

  let insert_forest t ~parent ~pos fragments =
    Update.insert_forest t.db ~doc:t.name t.enc ~parent ~pos fragments

  let append_child t ~parent fragment =
    Update.append_child t.db ~doc:t.name t.enc ~parent fragment

  let delete_subtree t ~id = Update.delete_subtree t.db ~doc:t.name t.enc ~id

  let move_subtree t ~id ~parent ~pos =
    Update.move_subtree t.db ~doc:t.name t.enc ~id ~parent ~pos

  let replace_subtree t ~id fragment =
    Update.replace_subtree t.db ~doc:t.name t.enc ~id fragment
  let set_text t ~id value = Update.set_text t.db ~doc:t.name t.enc ~id value

  let set_attribute t ~id ~name ~value =
    Update.set_attribute t.db ~doc:t.name t.enc ~id ~name ~value

  let remove_attribute t ~id ~name =
    Update.remove_attribute t.db ~doc:t.name t.enc ~id ~name

  let atomically t f = Reldb.Db.with_transaction t.db f

  let document t = Reconstruct.document t.db ~doc:t.name t.enc
  let root_id t = Reconstruct.root_id t.db ~doc:t.name t.enc
  let storage t = Storage.measure t.db ~doc:t.name t.enc
  let check t = Integrity.check t.db ~doc:t.name t.enc
end
