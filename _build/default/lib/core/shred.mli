(** Shredding: DOM → relations under a chosen order encoding.

    Bulk loading goes directly through the storage layer (as real loaders
    do); the DDL goes through SQL. Record ids equal the {!Doc_index} record
    ids of the loaded document, so a freshly shredded store and the oracle
    agree on node identity. *)

val shred :
  ?gap:int -> Reldb.Db.t -> doc:string -> Encoding.t -> Xmllib.Types.document -> Doc_index.t
(** Create tables and load the document. [gap] is the interval spacing for
    {!Encoding.Global_gap} (default {!Encoding.default_gap}; ignored by
    other encodings). Returns the document index used for loading.
    @raise Reldb.Db.Sql_error if the tables already exist. *)

val row_of_record :
  Encoding.t -> gap_orders:(int * int) array option -> Doc_index.record -> Reldb.Tuple.t
(** The tuple stored for a record. [gap_orders.(id)] supplies the
    [(g_order, g_end)] pair for GLOBAL encodings. Exposed for tests. *)

val shred_stream :
  ?gap:int -> Reldb.Db.t -> doc:string -> Encoding.t -> string -> int
(** One-pass streaming load from XML text (no DOM): every order encoding is
    computable with a stack — preorder interval counters for GLOBAL,
    sibling counters for LOCAL, a component stack for DEWEY — which is why
    the paper's encodings fit a bulk loader. Produces exactly the same
    table contents as {!shred} on the parsed document. Returns the number
    of records loaded.
    @raise Xmllib.Sax.Error on malformed input. *)

val interval_numbering : Doc_index.t -> gap:int -> (int * int) array
(** Begin/end interval numbers per record id: a DFS that advances the
    counter by [gap] at every interval endpoint ([gap = 1] is the dense
    GLOBAL numbering). Exposed for tests. *)
