(** Dewey order keys.

    A Dewey path is the vector of sibling positions on a node's root path:
    the root is [1], its second child is [1.2], that child's first child is
    [1.2.1]. Attribute nodes hang off a reserved [0] level ([1.2.0.j]) so
    they sort before all element content without consuming sibling slots.

    {!encode} serializes a path so that {e bytewise} comparison of encoded
    strings equals document-order comparison of paths — the property that
    lets a relational index over a BYTES column answer every ordered XML
    query. The codec is UTF-8-style: each component becomes 1–4 bytes whose
    first byte determines the length, with longer encodings starting at
    higher first bytes, so the encoding of a smaller component is never a
    prefix of (nor lexically above) a larger one's. *)

type t = int array
(** Components; all [>= 0], root is [[|1|]]. *)

val root : t

val compare : t -> t -> int
(** Document order: prefix (ancestor) sorts before its extensions. *)

val parent : t -> t option
(** [None] for the root (or an empty path). *)

val depth : t -> int

val child : t -> int -> t
(** [child p k] appends component [k]. *)

val last : t -> int
(** Final component. @raise Invalid_argument on the empty path. *)

val with_last : t -> int -> t
(** Replace the final component. *)

val is_strict_prefix : t -> t -> bool
(** [is_strict_prefix a d] — is [a] a proper ancestor path of [d]? *)

val to_string : t -> string
(** Dotted rendering, e.g. ["1.3.2"]. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

(** {2 Binary codec} *)

val max_component : int
(** Largest encodable component value. *)

val encode : t -> string
(** @raise Invalid_argument if a component exceeds {!max_component} or is
    negative. *)

val decode : string -> t
(** @raise Invalid_argument on malformed bytes. *)

val encode_component : int -> string

val prefix_upper_bound : string -> string
(** [prefix_upper_bound enc] is the smallest byte string greater than every
    string having [enc] as a prefix — i.e. descendants-of ranges are
    [enc < key < prefix_upper_bound enc]. *)
