open Xpath_ast

(* The virtual document root is id -1; its only child is record 0. *)
let virtual_root = -1

let kind_ok axis (k : Doc_index.kind) (test : node_test) tag =
  match (axis, test) with
  | Attribute, Name n -> k = Doc_index.Attr && tag = n
  | Attribute, Any_name -> k = Doc_index.Attr
  | Attribute, Node_test -> k = Doc_index.Attr
  | Attribute, (Text_test | Comment_test) -> false
  | _, Name n -> k = Doc_index.Elem && tag = n
  | _, Any_name -> k = Doc_index.Elem
  | _, Text_test -> k = Doc_index.Text_node
  | _, Comment_test -> k = Doc_index.Comment_node
  | _, Node_test -> k <> Doc_index.Attr

let subtree_ids idx i =
  (* non-attribute records strictly inside the subtree of i, in doc order *)
  let r = Doc_index.record idx i in
  let out = ref [] in
  for j = i + r.Doc_index.size downto i + 1 do
    if (Doc_index.record idx j).Doc_index.kind <> Doc_index.Attr then
      out := j :: !out
  done;
  !out

let all_non_attr idx =
  let out = ref [] in
  for j = Doc_index.length idx - 1 downto 0 do
    if (Doc_index.record idx j).Doc_index.kind <> Doc_index.Attr then
      out := j :: !out
  done;
  !out

(* Candidates for an axis from context node [i], in axis order (reverse axes
   yield reverse document order, per XPath positional semantics). *)
let axis_candidates idx axis i =
  if i = virtual_root then
    match axis with
    | Child -> [ 0 ]
    | Descendant -> all_non_attr idx
    | Descendant_or_self -> all_non_attr idx
    | Self -> []
    | Parent | Attribute | Following_sibling | Preceding_sibling | Following
    | Preceding | Ancestor | Ancestor_or_self ->
        []
  else
    let r = Doc_index.record idx i in
    match axis with
    | Child -> Doc_index.children idx i
    | Attribute -> Doc_index.attributes idx i
    | Descendant -> subtree_ids idx i
    | Descendant_or_self -> i :: subtree_ids idx i
    | Self -> [ i ]
    | Parent -> ( match Doc_index.parent_of idx i with None -> [] | Some p -> [ p ])
    | Following_sibling ->
        if r.Doc_index.kind = Doc_index.Attr then []
        else begin
          match Doc_index.parent_of idx i with
          | None -> []
          | Some p ->
              List.filter
                (fun j ->
                  (Doc_index.record idx j).Doc_index.pos > r.Doc_index.pos)
                (Doc_index.children idx p)
        end
    | Preceding_sibling ->
        if r.Doc_index.kind = Doc_index.Attr then []
        else begin
          match Doc_index.parent_of idx i with
          | None -> []
          | Some p ->
              List.rev
                (List.filter
                   (fun j ->
                     (Doc_index.record idx j).Doc_index.pos < r.Doc_index.pos)
                   (Doc_index.children idx p))
        end
    | Following ->
        let after = i + r.Doc_index.size in
        List.filter (fun j -> j > after) (all_non_attr idx)
    | Preceding ->
        let ancs = Doc_index.ancestors idx i in
        List.rev
          (List.filter
             (fun j -> j < i && not (List.mem j ancs))
             (all_non_attr idx))
    | Ancestor -> Doc_index.ancestors idx i
    | Ancestor_or_self -> i :: Doc_index.ancestors idx i

let number_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> Float.nan

let cmp_op op (c : int) =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let num_cmp op a b =
  (* any comparison with NaN is false *)
  if Float.is_nan a || Float.is_nan b then false
  else cmp_op op (Stdlib.compare a b)

let rec eval_steps idx ctx steps =
  match steps with
  | [] -> ctx
  | step :: rest ->
      let next =
        List.concat_map (fun i -> eval_step idx i step) ctx
        |> List.sort_uniq Stdlib.compare
      in
      eval_steps idx next rest

and eval_step idx i (step : step) =
  let candidates = axis_candidates idx step.axis i in
  let tested =
    List.filter
      (fun j ->
        let r = Doc_index.record idx j in
        kind_ok step.axis r.Doc_index.kind step.test r.Doc_index.tag)
      candidates
  in
  List.fold_left (fun nodes p -> apply_pred idx nodes p) tested step.preds

and apply_pred idx nodes p =
  let n = List.length nodes in
  List.filteri (fun k j -> pred_holds idx ~pos:(k + 1) ~last:n j p) nodes

and pred_holds idx ~pos ~last j p =
  match p with
  | P_pos (op, k) -> cmp_op op (Stdlib.compare pos k)
  | P_last -> pos = last
  | P_exists path -> eval_steps idx [ j ] path.steps <> []
  | P_cmp (path, op, lit) ->
      let selected = eval_steps idx [ j ] path.steps in
      List.exists
        (fun sel ->
          let sv = Doc_index.string_value idx sel in
          match lit with
          | L_num f -> num_cmp op (number_of_string sv) f
          | L_str s -> begin
              match op with
              | Eq | Ne -> cmp_op op (String.compare sv s)
              | Lt | Le | Gt | Ge ->
                  num_cmp op (number_of_string sv) (number_of_string s)
            end)
        selected
  | P_count (path, op, k) ->
      cmp_op op (Stdlib.compare (List.length (eval_steps idx [ j ] path.steps)) k)
  | P_and (a, b) -> pred_holds idx ~pos ~last j a && pred_holds idx ~pos ~last j b
  | P_or (a, b) -> pred_holds idx ~pos ~last j a || pred_holds idx ~pos ~last j b
  | P_not a -> not (pred_holds idx ~pos ~last j a)

let eval_from idx ctx (path : path) =
  let start = if path.absolute then [ virtual_root ] else ctx in
  eval_steps idx start path.steps

let eval idx (path : path) =
  let start = if path.absolute then [ virtual_root ] else [ 0 ] in
  eval_steps idx start path.steps

let eval_union idx (u : union) =
  List.sort_uniq Stdlib.compare (List.concat_map (eval idx) u)

let string_value = Doc_index.string_value
