type t = Global | Global_gap | Local | Dewey_enc | Dewey_caret

let all = [ Global; Global_gap; Local; Dewey_enc; Dewey_caret ]

let name = function
  | Global -> "global"
  | Global_gap -> "global-gap"
  | Local -> "local"
  | Dewey_enc -> "dewey"
  | Dewey_caret -> "ordpath"

let of_name = function
  | "global" -> Some Global
  | "global-gap" | "gap" -> Some Global_gap
  | "local" -> Some Local
  | "dewey" -> Some Dewey_enc
  | "ordpath" | "dewey-caret" -> Some Dewey_caret
  | _ -> None

let suffix = function
  | Global -> "global"
  | Global_gap -> "gapped"
  | Local -> "local"
  | Dewey_enc -> "dewey"
  | Dewey_caret -> "ordpath"

let table_name ~doc enc = doc ^ "_" ^ suffix enc

let default_gap = 32

let col_id = 0
let col_parent = 1
let col_kind = 2
let col_tag = 3
let col_value = 4
let col_nval = 5
let col_g_order = 6
let col_g_end = 7
let col_l_order = 6
let col_depth = 6
let col_path = 7

let common_cols =
  "id INT NOT NULL, parent INT, kind INT NOT NULL, tag TEXT, value TEXT, \
   nval FLOAT"

let ddl ~doc enc =
  let t = table_name ~doc enc in
  match enc with
  | Global | Global_gap ->
      [
        Printf.sprintf
          "CREATE TABLE %s (%s, g_order INT NOT NULL, g_end INT NOT NULL)" t
          common_cols;
        Printf.sprintf "CREATE UNIQUE INDEX %s_order ON %s (g_order)" t t;
        Printf.sprintf "CREATE UNIQUE INDEX %s_id ON %s (id)" t t;
        Printf.sprintf "CREATE INDEX %s_parent ON %s (parent, g_order)" t t;
        Printf.sprintf "CREATE INDEX %s_tag ON %s (tag, g_order)" t t;
      ]
  | Local ->
      [
        Printf.sprintf "CREATE TABLE %s (%s, l_order INT NOT NULL)" t
          common_cols;
        Printf.sprintf "CREATE UNIQUE INDEX %s_parent ON %s (parent, l_order)" t t;
        Printf.sprintf "CREATE UNIQUE INDEX %s_id ON %s (id)" t t;
        Printf.sprintf "CREATE INDEX %s_tag ON %s (tag)" t t;
      ]
  | Dewey_enc | Dewey_caret ->
      [
        Printf.sprintf
          "CREATE TABLE %s (%s, depth INT NOT NULL, path BYTES NOT NULL)" t
          common_cols;
        Printf.sprintf "CREATE UNIQUE INDEX %s_path ON %s (path)" t t;
        Printf.sprintf "CREATE UNIQUE INDEX %s_id ON %s (id)" t t;
        Printf.sprintf "CREATE INDEX %s_parent ON %s (parent, path)" t t;
        Printf.sprintf "CREATE INDEX %s_tag ON %s (tag, path)" t t;
      ]

let create_tables db ~doc enc = Reldb.Db.exec_script db (ddl ~doc enc)

let drop_tables db ~doc enc =
  ignore (Reldb.Db.exec db (Printf.sprintf "DROP TABLE %s" (table_name ~doc enc)))

let nval_of ~kind value =
  match kind with
  | Doc_index.Text_node | Doc_index.Attr -> begin
      match float_of_string_opt (String.trim value) with
      | Some f when Float.is_finite f -> Reldb.Value.Float f
      | Some _ | None -> Reldb.Value.Null
    end
  | Doc_index.Elem | Doc_index.Comment_node | Doc_index.Pi_node ->
      Reldb.Value.Null
