(** Order-preserving updates — where the three encodings earn their keep.

    Inserting a subtree as the [pos]-th child of a parent must make room in
    the order encoding:

    - {b GLOBAL} shifts the interval endpoints of {e every} row at or after
      the insertion point (two UPDATE statements whose cost grows with the
      amount of document after the insertion point — O(N) for insertions
      near the front);
    - {b GLOBAL/gap} first tries to place the new intervals inside the gap
      left at load time, touching {e zero} existing rows; it falls back to a
      GLOBAL-style shift when the gap is exhausted;
    - {b LOCAL} shifts only the following siblings' [l_order]
      (O(fanout));
    - {b DEWEY} shifts the following siblings {e and rewrites the stored
      path of every node in their subtrees} (the prefix of those paths
      changed) — more than LOCAL, much less than GLOBAL for typical shapes.

    Deletion removes the subtree's rows; only LOCAL renumbers (to keep
    sibling ranks dense). Gaps left in GLOBAL/DEWEY order values are
    harmless: queries never assume density. *)

type stats = {
  rows_inserted : int;
  rows_deleted : int;
  rows_renumbered : int;
      (** row versions written to existing rows to make room *)
  statements : int;  (** SQL statements issued (excluding bulk row ops) *)
}

exception Update_error of string

val insert_subtree :
  Reldb.Db.t ->
  doc:string ->
  Encoding.t ->
  parent:int ->
  pos:int ->
  Xmllib.Types.node ->
  stats
(** Insert the fragment as the [pos]-th (1-based) non-attribute child of
    [parent]; [pos = count+1] appends. Fresh node ids are allocated above
    the current maximum.
    @raise Update_error if [parent] is not an element or [pos] is out of
    range. *)

val insert_forest :
  Reldb.Db.t ->
  doc:string ->
  Encoding.t ->
  parent:int ->
  pos:int ->
  Xmllib.Types.node list ->
  stats
(** Insert several fragments as consecutive children starting at [pos],
    paying the renumbering cost {e once} for the whole forest: LOCAL shifts
    sibling ranks by the forest width, GLOBAL opens one interval window,
    DEWEY rewrites each following sibling's subtree a single time. This is
    the bulk-update amortization the paper's loading discussion relies on.
    @raise Invalid_argument on an empty list.
    @raise Update_error as {!insert_subtree}. *)

val append_child :
  Reldb.Db.t -> doc:string -> Encoding.t -> parent:int -> Xmllib.Types.node -> stats

val delete_subtree : Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> stats
(** Remove the node and its whole subtree (attributes included).
    @raise Update_error on the document root or an attribute node. *)

val move_subtree :
  Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> parent:int -> pos:int ->
  stats
(** Relocate a subtree to be the [pos]-th child of [parent] (delete +
    reinsert, so the moved nodes get fresh ids; [pos] is interpreted against
    the child list {e after} the removal, XQuery-Update style).
    @raise Update_error if [parent] lies inside the moved subtree, or on the
    root / an attribute. *)

val replace_subtree :
  Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> Xmllib.Types.node -> stats
(** Swap the subtree at [id] for [fragment], keeping its sibling position
    (delete + insert; fresh ids).
    @raise Update_error on the root or an attribute. *)

val set_text : Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> string -> stats
(** Replace the value of a text or attribute node (order untouched — cheap
    under every encoding). *)

val set_attribute :
  Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> name:string ->
  value:string -> stats
(** Set (add or overwrite) an attribute on element [id]. A new attribute is
    appended after the element's existing attributes; under LOCAL that
    shifts their (negative, dense) ranks once.
    @raise Update_error if [id] is not an element. *)

val remove_attribute :
  Reldb.Db.t -> doc:string -> Encoding.t -> id:int -> name:string -> stats
(** Remove the named attribute (no-op stats if absent). *)
