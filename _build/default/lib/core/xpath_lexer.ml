type token =
  | Slash
  | Dslash
  | At
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Dcolon
  | Dot
  | Dotdot
  | Star
  | Comma
  | Pipe
  | Cmp of Xpath_ast.cmp
  | Num of float
  | Str of string
  | Ident of string
  | Eof

exception Error of string

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = ':'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' then
      if peek 1 = '/' then begin
        emit Dslash;
        i := !i + 2
      end
      else begin
        emit Slash;
        incr i
      end
    else if c = ':' && peek 1 = ':' then begin
      emit Dcolon;
      i := !i + 2
    end
    else if is_name_start c then begin
      let start = !i in
      (* names may contain ':' for namespaces but we must not eat '::' *)
      while
        !i < n && is_name_char src.[!i]
        && not (src.[!i] = ':' && peek 1 = ':')
      do
        incr i
      done;
      emit (Ident (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      emit (Num (float_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> quote do
        incr i
      done;
      if !i >= n then raise (Error "unterminated string literal");
      emit (Str (String.sub src start (!i - start)));
      incr i
    end
    else begin
      (match c with
      | '@' -> emit At
      | '[' -> emit Lbracket
      | ']' -> emit Rbracket
      | '(' -> emit Lparen
      | ')' -> emit Rparen
      | ',' -> emit Comma
      | '|' -> emit Pipe
      | '*' -> emit Star
      | '.' ->
          if peek 1 = '.' then begin
            emit Dotdot;
            incr i
          end
          else emit Dot
      | '=' -> emit (Cmp Xpath_ast.Eq)
      | '!' ->
          if peek 1 = '=' then begin
            emit (Cmp Xpath_ast.Ne);
            incr i
          end
          else raise (Error "stray '!'")
      | '<' ->
          if peek 1 = '=' then begin
            emit (Cmp Xpath_ast.Le);
            incr i
          end
          else emit (Cmp Xpath_ast.Lt)
      | '>' ->
          if peek 1 = '=' then begin
            emit (Cmp Xpath_ast.Ge);
            incr i
          end
          else emit (Cmp Xpath_ast.Gt)
      | c -> raise (Error (Printf.sprintf "unexpected character %C" c)));
      incr i
    end
  done;
  List.rev (Eof :: !toks)
