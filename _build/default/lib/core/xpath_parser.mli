(** Parser for the XPath subset (hand-written recursive descent).

    Supported grammar (informally):
    {v
    path     ::= '/'? step (('/' | '//') step)*
    step     ::= axis? test pred*   |  '@' name pred*  |  '.'  |  '..'
    axis     ::= name '::'
    test     ::= name | '*' | 'text()' | 'comment()' | 'node()'
    pred     ::= '[' or ']'
    or       ::= and ('or' and)*
    and      ::= atom ('and' atom)*
    atom     ::= 'not' '(' or ')' | '(' or ')' | int
               | 'last()' | 'position()' cmp int
               | relpath (cmp literal)?
    v}
    ['//'] between steps is shorthand for the descendant axis. *)

exception Parse_error of string

val parse : string -> Xpath_ast.path

val parse_union : string -> Xpath_ast.union
(** Parse a top-level union expression [p1 | p2 | ...]; a single path yields
    a one-element list. *)

val parse_relative : string -> Xpath_ast.path
(** Like {!parse} but fails on absolute paths (used inside predicates). *)
