module V = Reldb.Value

let fetch_rows db ~doc enc =
  let tname = Encoding.table_name ~doc enc in
  List.map (Node_row.of_tuple enc)
    (Reldb.Db.query db
       (Printf.sprintf "SELECT %s FROM %s e" (Node_row.select_list enc "e") tname))

let check db ~doc enc =
  let errors = ref [] in
  let seen = Hashtbl.create 16 in
  let report kind fmt =
    Printf.ksprintf
      (fun msg ->
        if not (Hashtbl.mem seen kind) then begin
          Hashtbl.add seen kind ();
          errors := msg :: !errors
        end)
      fmt
  in
  let rows = fetch_rows db ~doc enc in
  let by_id = Hashtbl.create 256 in
  List.iter (fun (r : Node_row.t) -> Hashtbl.replace by_id r.Node_row.id r) rows;
  (* --- shared invariants ------------------------------------------- *)
  let roots =
    List.filter (fun (r : Node_row.t) -> r.Node_row.parent = None) rows
  in
  (match roots with
  | [ r ] ->
      if r.Node_row.kind <> Doc_index.Elem then
        report "root-kind" "root row %d is not an element" r.Node_row.id
  | [] -> report "root" "no root row (NULL parent)"
  | _ -> report "root" "%d root rows" (List.length roots));
  List.iter
    (fun (r : Node_row.t) ->
      match r.Node_row.parent with
      | None -> ()
      | Some p -> (
          match Hashtbl.find_opt by_id p with
          | None -> report "orphan" "row %d has missing parent %d" r.Node_row.id p
          | Some parent ->
              if parent.Node_row.kind <> Doc_index.Elem then
                report "parent-kind" "row %d's parent %d is not an element"
                  r.Node_row.id p))
    rows;
  (* --- per encoding -------------------------------------------------- *)
  (match enc with
  | Encoding.Global | Encoding.Global_gap ->
      let interval (r : Node_row.t) =
        match r.Node_row.ord with Node_row.Og (o, e) -> (o, e) | _ -> (0, 0)
      in
      List.iter
        (fun (r : Node_row.t) ->
          let o, e = interval r in
          if o >= e then
            report "interval" "row %d has degenerate interval (%d, %d)"
              r.Node_row.id o e;
          match r.Node_row.parent with
          | None -> ()
          | Some p -> (
              match Hashtbl.find_opt by_id p with
              | None -> ()
              | Some parent ->
                  let po, pe = interval parent in
                  if not (po < o && e < pe) then
                    report "nesting"
                      "row %d interval (%d, %d) not inside parent's (%d, %d)"
                      r.Node_row.id o e po pe))
        rows;
      (* sibling disjointness follows from nesting + unique g_order, but
         check pairwise per parent for robustness *)
      let by_parent = Hashtbl.create 64 in
      List.iter
        (fun (r : Node_row.t) ->
          match r.Node_row.parent with
          | Some p ->
              Hashtbl.replace by_parent p
                (interval r :: Option.value (Hashtbl.find_opt by_parent p) ~default:[])
          | None -> ())
        rows;
      Hashtbl.iter
        (fun p ivs ->
          let sorted = List.sort compare ivs in
          let rec overlaps = function
            | (_, e1) :: ((o2, _) :: _ as rest) ->
                if e1 > o2 then report "overlap" "children of %d overlap" p
                else overlaps rest
            | _ -> ()
          in
          overlaps sorted)
        by_parent
  | Encoding.Local ->
      let kids = Hashtbl.create 64 and atts = Hashtbl.create 64 in
      List.iter
        (fun (r : Node_row.t) ->
          let ord = match r.Node_row.ord with Node_row.Ol o -> o | _ -> 0 in
          match r.Node_row.parent with
          | None -> ()
          | Some p ->
              let tbl = if r.Node_row.kind = Doc_index.Attr then atts else kids in
              Hashtbl.replace tbl p
                (ord :: Option.value (Hashtbl.find_opt tbl p) ~default:[]))
        rows;
      Hashtbl.iter
        (fun p ranks ->
          let sorted = List.sort compare ranks in
          if sorted <> List.init (List.length sorted) (fun i -> i + 1) then
            report "ranks" "children of %d are not densely ranked 1..n" p)
        kids;
      Hashtbl.iter
        (fun p ranks ->
          let m = List.length ranks in
          let sorted = List.sort compare ranks in
          if sorted <> List.init m (fun i -> i - m) then
            report "attr-ranks" "attributes of %d are not ranked -m..-1" p)
        atts
  | Encoding.Dewey_enc | Encoding.Dewey_caret ->
      let paths = Hashtbl.create 256 in
      List.iter
        (fun (r : Node_row.t) ->
          let p = match r.Node_row.ord with Node_row.Od p -> p | _ -> "" in
          if Hashtbl.mem paths p then
            report "path-dup" "duplicate path on row %d" r.Node_row.id;
          Hashtbl.replace paths p ())
        rows;
      List.iter
        (fun (r : Node_row.t) ->
          match r.Node_row.parent with
          | None -> ()
          | Some pid -> (
              match Hashtbl.find_opt by_id pid with
              | None -> ()
              | Some parent -> (
                  match (r.Node_row.ord, parent.Node_row.ord) with
                  | Node_row.Od c, Node_row.Od pp ->
                      if
                        not
                          (String.length pp < String.length c
                          && String.sub c 0 (String.length pp) = pp)
                      then
                        report "path-prefix"
                          "row %d's path does not extend its parent's"
                          r.Node_row.id
                  | _ -> ())))
        rows;
      (* depth column: parent depth + 1 for nodes; attributes live under the
         reserved 0 level, two path components below their element *)
      let tname = Encoding.table_name ~doc enc in
      let depth_rows =
        Reldb.Db.query db
          (Printf.sprintf
             "SELECT c.id FROM %s c, %s p WHERE c.parent = p.id AND \
              c.kind <> 2 AND c.depth <> p.depth + 1 \
              UNION ALL \
              SELECT c.id FROM %s c, %s p WHERE c.parent = p.id AND \
              c.kind = 2 AND c.depth <> p.depth + 2"
             tname tname tname tname)
      in
      (match depth_rows with
      | [] -> ()
      | [| V.Int id |] :: _ ->
          report "depth" "row %d has inconsistent depth" id
      | _ -> report "depth" "inconsistent depth rows"));
  match !errors with [] -> Ok () | msgs -> Error (List.rev msgs)

let check_exn db ~doc enc =
  match check db ~doc enc with
  | Ok () -> ()
  | Error msgs ->
      failwith
        (Printf.sprintf "integrity (%s): %s" (Encoding.name enc)
           (String.concat "; " msgs))
