type query = { q_id : string; q_label : string; q_xpath : string option }

let queries =
  [
    {
      q_id = "Q1";
      q_label = "simple path (unordered baseline)";
      q_xpath = Some "/site/open_auctions/open_auction";
    };
    {
      q_id = "Q2";
      q_label = "first-position predicate";
      q_xpath = Some "/site/open_auctions/open_auction/bidder[1]";
    };
    {
      q_id = "Q3";
      q_label = "last-position predicate";
      q_xpath = Some "/site/open_auctions/open_auction/bidder[last()]";
    };
    {
      q_id = "Q4";
      q_label = "position range";
      q_xpath =
        Some
          "/site/open_auctions/open_auction/bidder[position() >= 2 and \
           position() <= 4]";
    };
    {
      q_id = "Q5";
      q_label = "following-sibling axis";
      q_xpath =
        Some
          "/site/open_auctions/open_auction/bidder[1]/following-sibling::bidder";
    };
    {
      q_id = "Q6";
      q_label = "descendant axis + value predicate";
      q_xpath = Some "//person[profile/@income > 50000]/name";
    };
    {
      q_id = "Q7";
      q_label = "following axis (document order)";
      q_xpath = Some "/site/regions/africa/item[1]/following::item";
    };
    { q_id = "Q8"; q_label = "subtree reconstruction"; q_xpath = None };
  ]

let q8_target = "/site/open_auctions/open_auction[1]"

let dataset ~scale = Xmllib.Generator.xmark ~seed:42 ~scale ()

let update_fragment ~seed =
  let doc = Xmllib.Generator.xmark ~seed ~scale:1 () in
  let idx = Doc_index.build doc in
  (* steal the first open_auction of a freshly generated document *)
  match
    Dom_eval.eval idx (Xpath_parser.parse "/site/open_auctions/open_auction[1]")
  with
  | [ id ] -> Doc_index.to_node idx id
  | _ -> assert false

let small_fragment =
  Xmllib.Types.element "bidder"
    [
      Xmllib.Types.element "date" [ Xmllib.Types.text "01/07/2001" ];
      Xmllib.Types.element "increase" [ Xmllib.Types.text "4.50" ];
    ]

type position = Front | Middle | Back

let position_name = function
  | Front -> "front"
  | Middle -> "middle"
  | Back -> "back"

let positions = [ Front; Middle; Back ]

let insertion_pos pos ~sibling_count =
  match pos with
  | Front -> 1
  | Middle -> 1 + (sibling_count / 2)
  | Back -> sibling_count + 1

let container_path = "/site/open_auctions"
