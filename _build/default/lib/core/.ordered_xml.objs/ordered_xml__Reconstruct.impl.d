lib/core/reconstruct.ml: Buffer Dewey Doc_index Encoding Hashtbl List Node_row Printf Reldb Temp Translate Xmllib
