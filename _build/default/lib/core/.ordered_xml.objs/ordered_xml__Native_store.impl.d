lib/core/native_store.ml: Doc_index Dom_eval List Xmllib Xpath_parser
