lib/core/api.ml: Doc_index Encoding Flwor Integrity List Node_row Reconstruct Reldb Shred Storage Translate Update Xmllib
