lib/core/update.ml: Array Dewey Doc_index Encoding Float Fun List Logs Node_row Option Printf Reconstruct Reldb Shred String Xmllib
