lib/core/dewey.mli:
