lib/core/encoding.ml: Doc_index Float Printf Reldb String
