lib/core/node_row.ml: Array Dewey Doc_index Encoding List Reldb Stdlib String
