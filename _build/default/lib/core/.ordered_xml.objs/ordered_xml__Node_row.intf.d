lib/core/node_row.mli: Dewey Doc_index Encoding Reldb
