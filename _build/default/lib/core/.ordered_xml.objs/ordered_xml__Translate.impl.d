lib/core/translate.ml: Array Dewey Doc_index Encoding Float Hashtbl Int List Logs Node_row Obj Option Printf Reldb Set Stdlib String Temp Xpath_ast Xpath_parser
