lib/core/translate.mli: Encoding Node_row Reldb Xpath_ast
