lib/core/dewey.ml: Array Buffer Bytes Char List Stdlib String
