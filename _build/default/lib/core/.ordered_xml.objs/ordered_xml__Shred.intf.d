lib/core/shred.mli: Doc_index Encoding Reldb Xmllib
