lib/core/xpath_parser.ml: List Printf Xpath_ast Xpath_lexer
