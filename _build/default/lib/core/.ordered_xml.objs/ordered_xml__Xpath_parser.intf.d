lib/core/xpath_parser.mli: Xpath_ast
