lib/core/dom_eval.ml: Doc_index Float List Stdlib String Xpath_ast
