lib/core/integrity.mli: Encoding Reldb
