lib/core/doc_index.ml: Array Buffer Dewey List Printf Xmllib
