lib/core/reconstruct.mli: Encoding Node_row Reldb Xmllib
