lib/core/translate_sql.ml: Encoding Float List Node_row Printf Reldb String Translate Xpath_ast
