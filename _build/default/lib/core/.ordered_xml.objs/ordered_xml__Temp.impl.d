lib/core/temp.ml: Fun List Printf Reldb String
