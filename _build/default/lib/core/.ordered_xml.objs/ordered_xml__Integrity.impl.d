lib/core/integrity.ml: Doc_index Encoding Hashtbl List Node_row Option Printf Reldb String
