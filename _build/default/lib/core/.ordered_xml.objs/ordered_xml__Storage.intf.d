lib/core/storage.mli: Encoding Format Reldb
