lib/core/storage.ml: Array Encoding Format Hashtbl List Reldb Seq String
