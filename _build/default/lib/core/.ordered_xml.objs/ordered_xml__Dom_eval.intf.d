lib/core/dom_eval.mli: Doc_index Xpath_ast
