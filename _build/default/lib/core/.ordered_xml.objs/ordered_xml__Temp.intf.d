lib/core/temp.mli: Reldb
