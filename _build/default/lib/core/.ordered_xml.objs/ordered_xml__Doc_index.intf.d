lib/core/doc_index.mli: Dewey Xmllib
