lib/core/encoding.mli: Doc_index Reldb
