lib/core/update.mli: Encoding Reldb Xmllib
