lib/core/translate_sql.mli: Encoding Reldb Translate Xpath_ast
