lib/core/xpath_lexer.ml: List Printf String Xpath_ast
