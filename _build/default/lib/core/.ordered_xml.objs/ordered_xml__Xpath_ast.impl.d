lib/core/xpath_ast.ml: List Printf String
