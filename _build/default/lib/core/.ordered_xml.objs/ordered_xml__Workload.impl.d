lib/core/workload.ml: Doc_index Dom_eval Xmllib Xpath_parser
