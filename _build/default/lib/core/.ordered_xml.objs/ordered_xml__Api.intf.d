lib/core/api.mli: Encoding Reldb Storage Translate Update Xmllib
