lib/core/flwor.mli: Encoding Reldb Xmllib
