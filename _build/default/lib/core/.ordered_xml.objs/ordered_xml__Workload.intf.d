lib/core/workload.mli: Xmllib
