lib/core/xpath_lexer.mli: Xpath_ast
