lib/core/flwor.ml: Doc_index Encoding Float List Node_row Option Printf Reconstruct Reldb String Translate Xmllib Xpath_ast Xpath_parser
