lib/core/native_store.mli: Xmllib
