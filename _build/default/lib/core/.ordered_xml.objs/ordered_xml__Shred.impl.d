lib/core/shred.ml: Array Dewey Doc_index Encoding List Option Reldb Xmllib
