module T = Xmllib.Types

type t = { mutable doc : T.document; mutable index : Doc_index.t option }

let create doc = { doc; index = None }

let index t =
  match t.index with
  | Some idx -> idx
  | None ->
      let idx = Doc_index.build t.doc in
      t.index <- Some idx;
      idx

let query t xpath =
  Dom_eval.eval_union (index t) (Xpath_parser.parse_union xpath)

let count t xpath = List.length (query t xpath)

(* rebuild the tree with [f] applied to the children of the node at
   [target]; the route is the chain of child positions from the root *)
let edit_children t ~target f =
  let idx = index t in
  (match (Doc_index.record idx target).Doc_index.kind with
  | Doc_index.Elem -> ()
  | _ -> invalid_arg "Native_store: target is not an element");
  let route = List.rev (target :: Doc_index.ancestors idx target) in
  (* route starts at the root record *)
  let rec rebuild node route =
    match route with
    | [] -> assert false
    | [ _last ] -> (
        match node with
        | T.Element e -> T.Element { e with T.children = f e.T.children }
        | _ -> invalid_arg "Native_store: route does not end at an element")
    | _ :: (next :: _ as rest) -> (
        match node with
        | T.Element e ->
            (* descend into the child subtree containing [next] *)
            let kid_ids = Doc_index.children idx (List.hd route) in
            let updated =
              List.map2
                (fun cid child ->
                  if
                    cid = next
                    || Doc_index.is_descendant idx ~ancestor:cid next
                  then rebuild child rest
                  else child)
                kid_ids e.T.children
            in
            T.Element { e with T.children = updated }
        | _ -> invalid_arg "Native_store: broken route")
  in
  let root = T.Element t.doc.T.root in
  (match rebuild root route with
  | T.Element e -> t.doc <- { t.doc with T.root = e }
  | _ -> assert false);
  t.index <- None

let insert_subtree t ~parent ~pos node =
  edit_children t ~target:parent (fun children ->
      let n = List.length children in
      if pos < 1 || pos > n + 1 then
        invalid_arg "Native_store.insert_subtree: position out of range";
      let rec go i = function
        | rest when i = pos -> node :: rest
        | [] -> [ node ]
        | c :: rest -> c :: go (i + 1) rest
      in
      go 1 children)

let delete_subtree t ~id =
  let idx = index t in
  match Doc_index.parent_of idx id with
  | None -> invalid_arg "Native_store.delete_subtree: cannot delete the root"
  | Some parent ->
      let kid_ids = Doc_index.children idx parent in
      edit_children t ~target:parent (fun children ->
          List.filter_map
            (fun (cid, child) -> if cid = id then None else Some child)
            (List.combine kid_ids children))

let document t = t.doc
