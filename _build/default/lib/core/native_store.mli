(** Native in-memory baseline: the same operations as {!Api.Store}, but
    against a plain DOM with a tree-walking evaluator — no shredding, no
    SQL. The benchmarks use it to answer the paper's implicit question: how
    close does the relational mapping get to a native main-memory store?

    Queries run over a lazily (re)built {!Doc_index}; updates edit the
    immutable DOM along the root path and invalidate the index, so the cost
    profile is: O(1)-amortized queries on a read-mostly store, and an O(N)
    index rebuild charged to the first query after an update — which is the
    trade a simple native store actually makes. Node ids are {!Doc_index}
    record ids and are only stable until the next update. *)

type t

val create : Xmllib.Types.document -> t
val query : t -> string -> int list
(** Ids in document order (see staleness note above). *)

val count : t -> string -> int

val insert_subtree : t -> parent:int -> pos:int -> Xmllib.Types.node -> unit
(** @raise Invalid_argument on a non-element parent or bad position. *)

val delete_subtree : t -> id:int -> unit
val document : t -> Xmllib.Types.document
