(* Doc_index: record order, sibling numbering, sizes, string values. *)

module O = Ordered_xml
module DI = O.Doc_index
module T = Xmllib.Types

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let doc_of s = Xmllib.Parser.parse_document s

let sample =
  doc_of
    {|<a x="1" y="2"><b>t1</b><!--c--><b p="q">t2<d/></b></a>|}

let test_record_order () =
  let idx = DI.build sample in
  let tags =
    Array.to_list
      (Array.map
         (fun (r : DI.record) ->
           match r.DI.kind with
           | DI.Elem -> r.DI.tag
           | DI.Attr -> "@" ^ r.DI.tag
           | DI.Text_node -> "#t"
           | DI.Comment_node -> "#c"
           | DI.Pi_node -> "#pi")
         (DI.records idx))
  in
  check (Alcotest.list string_t) "record order"
    [ "a"; "@x"; "@y"; "b"; "#t"; "#c"; "b"; "@p"; "#t"; "d" ]
    tags

let test_ids_are_positions () =
  let idx = DI.build sample in
  Array.iteri
    (fun i (r : DI.record) -> check int_t "id = position" i r.DI.id)
    (DI.records idx)

let test_sibling_positions () =
  let idx = DI.build sample in
  let r = DI.records idx in
  (* attrs of a: -2, -1; children of a: 1, 2, 3 *)
  check int_t "@x pos" (-2) r.(1).DI.pos;
  check int_t "@y pos" (-1) r.(2).DI.pos;
  check int_t "b1 pos" 1 r.(3).DI.pos;
  check int_t "comment pos" 2 r.(5).DI.pos;
  check int_t "b2 pos" 3 r.(6).DI.pos

let test_sizes () =
  let idx = DI.build sample in
  let r = DI.records idx in
  check int_t "root size" 9 r.(0).DI.size;
  check int_t "b2 size" 3 r.(6).DI.size;
  check int_t "leaf size" 0 r.(9).DI.size

let test_dewey_paths () =
  let idx = DI.build sample in
  let r = DI.records idx in
  check string_t "root" "1" (O.Dewey.to_string r.(0).DI.dewey);
  check string_t "@x" "1.0.1" (O.Dewey.to_string r.(1).DI.dewey);
  check string_t "b2" "1.3" (O.Dewey.to_string r.(6).DI.dewey);
  check string_t "d" "1.3.2" (O.Dewey.to_string r.(9).DI.dewey)

let test_navigation () =
  let idx = DI.build sample in
  check (Alcotest.list int_t) "children of root" [ 3; 5; 6 ] (DI.children idx 0);
  check (Alcotest.list int_t) "attrs of root" [ 1; 2 ] (DI.attributes idx 0);
  check (Alcotest.list int_t) "ancestors of d" [ 6; 0 ] (DI.ancestors idx 9);
  check bool_t "descendant" true (DI.is_descendant idx ~ancestor:0 9);
  check bool_t "not descendant" false (DI.is_descendant idx ~ancestor:3 9)

let test_string_value () =
  let idx = DI.build sample in
  check string_t "element" "t1t2" (DI.string_value idx 0);
  check string_t "attr" "1" (DI.string_value idx 1);
  check string_t "text" "t2" (DI.string_value idx 8)

let test_to_node_roundtrip () =
  let idx = DI.build sample in
  check bool_t "subtree roundtrip" true
    (T.equal_node (DI.to_node idx 0) (T.Element sample.T.root));
  (match DI.to_node idx 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attribute to_node must fail")

let prop_roundtrip =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 ())
      QCheck.Gen.(int_bound 100_000)
  in
  QCheck.Test.make ~name:"build/to_node identity" ~count:100
    (QCheck.make ~print:Xmllib.Printer.document_to_string gen) (fun doc ->
      let idx = DI.build doc in
      T.equal_node (DI.to_node idx 0) (T.Element doc.T.root))

let prop_size_consistency =
  let gen =
    QCheck.Gen.map
      (fun seed ->
        Xmllib.Generator.random_tree ~seed ~max_depth:6 ~max_fanout:5 ())
      QCheck.Gen.(int_bound 100_000)
  in
  QCheck.Test.make ~name:"sizes partition the id space" ~count:100
    (QCheck.make ~print:Xmllib.Printer.document_to_string gen) (fun doc ->
      let idx = DI.build doc in
      let n = DI.length idx in
      Array.for_all
        (fun (r : DI.record) ->
          let last = r.DI.id + r.DI.size in
          last < n
          && List.for_all
               (fun c -> c > r.DI.id && c <= last)
               (DI.children idx r.DI.id @ DI.attributes idx r.DI.id))
        (DI.records idx))

let tests =
  ( "doc_index",
    [
      Alcotest.test_case "record order" `Quick test_record_order;
      Alcotest.test_case "ids are preorder ranks" `Quick test_ids_are_positions;
      Alcotest.test_case "sibling positions" `Quick test_sibling_positions;
      Alcotest.test_case "subtree sizes" `Quick test_sizes;
      Alcotest.test_case "dewey paths" `Quick test_dewey_paths;
      Alcotest.test_case "navigation" `Quick test_navigation;
      Alcotest.test_case "string value" `Quick test_string_value;
      Alcotest.test_case "to_node roundtrip" `Quick test_to_node_roundtrip;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_size_consistency;
    ] )
