(* The user-facing facade (Api.Store) and database persistence. *)

module O = Ordered_xml
module T = Xmllib.Types
module D = Reldb.Db

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let catalog_doc () =
  Xmllib.Parser.parse_document
    {|<catalog><book y="1999"><title>A</title><price>10.5</price></book><book y="2005"><title>B</title><price>20</price></book></catalog>|}

let test_store_lifecycle () =
  let db = D.create () in
  let store = O.Api.Store.create db ~name:"c" O.Encoding.Dewey_enc (catalog_doc ()) in
  check string_t "name" "c" (O.Api.Store.name store);
  check bool_t "encoding" true (O.Api.Store.encoding store = O.Encoding.Dewey_enc);
  (* duplicate create fails *)
  (match O.Api.Store.create db ~name:"c" O.Encoding.Dewey_enc (catalog_doc ()) with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "duplicate store accepted");
  (* open_existing works, wrong encoding fails *)
  let again = O.Api.Store.open_existing db ~name:"c" O.Encoding.Dewey_enc in
  check int_t "reopened" 2 (O.Api.Store.count again "/catalog/book");
  (match O.Api.Store.open_existing db ~name:"c" O.Encoding.Local with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "open with wrong encoding accepted");
  O.Api.Store.drop store;
  match O.Api.Store.open_existing db ~name:"c" O.Encoding.Dewey_enc with
  | exception D.Sql_error _ -> ()
  | _ -> Alcotest.fail "open after drop accepted"

let test_query_surfaces () =
  let db = D.create () in
  let store = O.Api.Store.create db ~name:"c" O.Encoding.Global (catalog_doc ()) in
  check (Alcotest.list string_t) "values" [ "A"; "B" ]
    (O.Api.Store.query_values store "/catalog/book/title");
  check (Alcotest.list string_t) "attr values" [ "1999"; "2005" ]
    (O.Api.Store.query_values store "/catalog/book/@y");
  check int_t "count" 1 (O.Api.Store.count store "/catalog/book[price > 15]");
  (match O.Api.Store.query_nodes store "/catalog/book[1]/title" with
  | [ T.Element { tag = "title"; children = [ T.Text "A" ]; _ } ] -> ()
  | _ -> Alcotest.fail "query_nodes shape");
  (* element string-value via query_values *)
  check (Alcotest.list string_t) "element value" [ "A10.5" ]
    (O.Api.Store.query_values store "/catalog/book[1]");
  match O.Api.Store.query store "/catalog/book[" with
  | exception O.Xpath_parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad xpath accepted"

let test_multi_store_one_db () =
  (* several documents under different names and encodings share an engine *)
  let db = D.create () in
  let a = O.Api.Store.create db ~name:"a" O.Encoding.Local (catalog_doc ()) in
  let b =
    O.Api.Store.create db ~name:"b" O.Encoding.Dewey_caret
      (Xmllib.Generator.flat ~tag:"item" ~count:5 ())
  in
  check int_t "a books" 2 (O.Api.Store.count a "/catalog/book");
  check int_t "b items" 5 (O.Api.Store.count b "/doc/item");
  O.Api.Store.drop a;
  check int_t "b survives" 5 (O.Api.Store.count b "/doc/item")

let test_dump_restore () =
  let db = D.create () in
  let store =
    O.Api.Store.create db ~name:"c" O.Encoding.Dewey_enc (catalog_doc ())
  in
  (* exercise values with quotes and newlines *)
  let tid = List.hd (O.Api.Store.query_ids store "/catalog/book[1]/title/text()") in
  ignore (O.Api.Store.set_text store ~id:tid "it's\nmulti;line");
  let script = D.dump db in
  let db2 = D.restore script in
  let store2 = O.Api.Store.open_existing db2 ~name:"c" O.Encoding.Dewey_enc in
  check bool_t "documents equal" true
    (T.equal_document (O.Api.Store.document store) (O.Api.Store.document store2));
  (* indexes were restored: ordered query must still work *)
  check int_t "positional query" 1 (O.Api.Store.count store2 "/catalog/book[2]");
  (* double roundtrip is stable *)
  check string_t "dump stable" script (D.dump db2)

let test_dump_restore_files () =
  let db = D.create () in
  ignore (O.Api.Store.create db ~name:"c" O.Encoding.Global (catalog_doc ()));
  let path = Filename.temp_file "oxdump" ".sql" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D.dump_to_file db path;
      let db2 = D.restore_from_file path in
      let s2 = O.Api.Store.open_existing db2 ~name:"c" O.Encoding.Global in
      check int_t "restored rows" 2 (O.Api.Store.count s2 "/catalog/book"))

let test_float_values_roundtrip () =
  (* whole floats must stay floats across dump/restore *)
  let db = D.create () in
  ignore (D.exec db "CREATE TABLE f (x FLOAT)");
  ignore (D.exec db "INSERT INTO f VALUES (42.0), (0.5)");
  let db2 = D.restore (D.dump db) in
  match D.query db2 "SELECT x FROM f ORDER BY x" with
  | [ [| Reldb.Value.Float 0.5 |]; [| Reldb.Value.Float 42.0 |] ] -> ()
  | _ -> Alcotest.fail "float roundtrip"

let tests =
  ( "api",
    [
      Alcotest.test_case "store lifecycle" `Quick test_store_lifecycle;
      Alcotest.test_case "query surfaces" `Quick test_query_surfaces;
      Alcotest.test_case "multiple stores" `Quick test_multi_store_one_db;
      Alcotest.test_case "dump/restore" `Quick test_dump_restore;
      Alcotest.test_case "dump/restore files" `Quick test_dump_restore_files;
      Alcotest.test_case "float literal roundtrip" `Quick test_float_values_roundtrip;
    ] )

(* native baseline: must agree with the shredded stores *)
let test_native_store_agrees () =
  let doc = Xmllib.Generator.flat ~tag:"item" ~count:10 () in
  let native = O.Native_store.create doc in
  let db = D.create () in
  let store = O.Api.Store.create db ~name:"n" O.Encoding.Global doc in
  let frag = T.element "item" [ T.text "new" ] in
  check int_t "query agrees" (O.Api.Store.count store "/doc/item")
    (O.Native_store.count native "/doc/item");
  (* same edits on both sides *)
  O.Native_store.insert_subtree native ~parent:0 ~pos:4 frag;
  let root = O.Api.Store.root_id store in
  ignore (O.Api.Store.insert_subtree store ~parent:root ~pos:4 frag);
  check bool_t "insert agrees" true
    (T.equal_document (O.Native_store.document native) (O.Api.Store.document store));
  (let victim = List.hd (O.Native_store.query native "/doc/item[6]") in
   O.Native_store.delete_subtree native ~id:victim);
  (let victim = List.hd (O.Api.Store.query_ids store "/doc/item[6]") in
   ignore (O.Api.Store.delete_subtree store ~id:victim));
  check bool_t "delete agrees" true
    (T.equal_document (O.Native_store.document native) (O.Api.Store.document store));
  (* nested edit: insert under a non-root element *)
  let sub = List.hd (O.Native_store.query native "/doc/item[2]") in
  O.Native_store.insert_subtree native ~parent:sub ~pos:1 (T.element "extra" []);
  let sub' = List.hd (O.Api.Store.query_ids store "/doc/item[2]") in
  ignore (O.Api.Store.insert_subtree store ~parent:sub' ~pos:1 (T.element "extra" []));
  check bool_t "nested insert agrees" true
    (T.equal_document (O.Native_store.document native) (O.Api.Store.document store))

let tests =
  (fst tests, snd tests @ [ Alcotest.test_case "native baseline" `Quick test_native_store_agrees ])
