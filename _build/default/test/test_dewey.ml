(* Dewey keys: codec roundtrip, the order-isomorphism property, prefix math. *)

module Dw = Ordered_xml.Dewey

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let test_to_of_string () =
  let p = [| 1; 3; 2 |] in
  check string_t "render" "1.3.2" (Dw.to_string p);
  check bool_t "parse" true (Dw.of_string "1.3.2" = p);
  (match Dw.of_string "1.x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad component accepted")

let test_navigation () =
  let p = Dw.of_string "1.2.3" in
  check bool_t "parent" true (Dw.parent p = Some [| 1; 2 |]);
  check bool_t "root parent" true (Dw.parent Dw.root = None);
  check int_t "depth" 3 (Dw.depth p);
  check int_t "last" 3 (Dw.last p);
  check bool_t "child" true (Dw.child p 7 = [| 1; 2; 3; 7 |]);
  check bool_t "with_last" true (Dw.with_last p 9 = [| 1; 2; 9 |]);
  check bool_t "prefix yes" true (Dw.is_strict_prefix [| 1; 2 |] p);
  check bool_t "prefix self" false (Dw.is_strict_prefix p p);
  check bool_t "prefix no" false (Dw.is_strict_prefix [| 1; 3 |] p)

let test_codec_classes () =
  (* one component per encoding-length class, plus boundaries *)
  let cases = [ 0; 1; 127; 128; 129; 16511; 16512; 100000; 2113663; 2113664; 10_000_000 ] in
  List.iter
    (fun c ->
      let enc = Dw.encode [| c |] in
      check bool_t (Printf.sprintf "roundtrip %d" c) true (Dw.decode enc = [| c |]))
    cases;
  check int_t "1-byte" 1 (String.length (Dw.encode_component 127));
  check int_t "2-byte" 2 (String.length (Dw.encode_component 128));
  check int_t "3-byte" 3 (String.length (Dw.encode_component 16512));
  check int_t "4-byte" 4 (String.length (Dw.encode_component 2113664));
  match Dw.encode [| Dw.max_component + 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overflow accepted"

let test_order_cases () =
  (* the classic traps: multi-byte vs single-byte, prefix vs extension *)
  let le a b = String.compare (Dw.encode a) (Dw.encode b) < 0 in
  check bool_t "1.2 < 1.10" true (le [| 1; 2 |] [| 1; 10 |]);
  check bool_t "1.2 < 1.200" true (le [| 1; 2 |] [| 1; 200 |]);
  check bool_t "1.2.3 < 1.200" true (le [| 1; 2; 3 |] [| 1; 200 |]);
  check bool_t "prefix first" true (le [| 1 |] [| 1; 1 |]);
  check bool_t "0 level first" true (le [| 1; 0; 1 |] [| 1; 1 |]);
  check bool_t "128 boundary" true (le [| 127 |] [| 128 |]);
  check bool_t "16512 boundary" true (le [| 16511 |] [| 16512 |])

let test_prefix_upper_bound () =
  let p = Dw.encode [| 1; 3 |] in
  let ub = Dw.prefix_upper_bound p in
  check bool_t "ub above prefix" true (String.compare ub p > 0);
  check bool_t "descendant below ub" true
    (String.compare (Dw.encode [| 1; 3; 99; 4 |]) ub < 0);
  check bool_t "next sibling above ub" true
    (String.compare (Dw.encode [| 1; 4 |]) ub >= 0);
  (* carry case: last byte 0xFF *)
  let s = "\x01\xff" in
  check string_t "carry" "\x02" (Dw.prefix_upper_bound s)

let gen_path =
  QCheck.Gen.(
    map Array.of_list
      (list_size (int_range 1 8)
         (frequency
            [ (8, int_bound 300); (2, int_bound 20000); (1, int_bound 3_000_000) ])))

let arb_path = QCheck.make ~print:Dw.to_string gen_path

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 arb_path
    (fun p -> Dw.decode (Dw.encode p) = p)

let prop_order_isomorphism =
  QCheck.Test.make ~name:"bytewise order = document order" ~count:1000
    (QCheck.pair arb_path arb_path) (fun (a, b) ->
      let c1 = compare (Dw.compare a b) 0 in
      let c2 = compare (String.compare (Dw.encode a) (Dw.encode b)) 0 in
      c1 = c2)

let prop_prefix_range =
  QCheck.Test.make ~name:"descendant iff inside prefix range" ~count:1000
    (QCheck.pair arb_path arb_path) (fun (a, d) ->
      let ea = Dw.encode a and ed = Dw.encode d in
      let inside =
        String.compare ed ea > 0
        && String.compare ed (Dw.prefix_upper_bound ea) < 0
      in
      inside = Dw.is_strict_prefix a d)

let prop_parent_prefix =
  QCheck.Test.make ~name:"parent is the immediate prefix" ~count:300 arb_path
    (fun p ->
      match Dw.parent p with
      | None -> Dw.depth p <= 1
      | Some par ->
          Dw.is_strict_prefix par p
          && Dw.depth par = Dw.depth p - 1
          && Dw.child par (Dw.last p) = p)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:300 arb_path
    (fun p -> Dw.of_string (Dw.to_string p) = p)

let tests =
  ( "dewey",
    [
      Alcotest.test_case "string form" `Quick test_to_of_string;
      Alcotest.test_case "navigation" `Quick test_navigation;
      Alcotest.test_case "codec classes" `Quick test_codec_classes;
      Alcotest.test_case "ordering traps" `Quick test_order_cases;
      Alcotest.test_case "prefix upper bound" `Quick test_prefix_upper_bound;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_order_isomorphism;
      QCheck_alcotest.to_alcotest prop_prefix_range;
      QCheck_alcotest.to_alcotest prop_parent_prefix;
      QCheck_alcotest.to_alcotest prop_string_roundtrip;
    ] )
