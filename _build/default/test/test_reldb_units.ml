(* Unit coverage of the relational-engine building blocks that the
   end-to-end SQL tests exercise only indirectly: values, schemas, tuples,
   the growable vector, the executor's physical operators, and the
   planner's access-path selection. *)

module V = Reldb.Value
module S = Reldb.Schema
module Tu = Reldb.Tuple

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* --- values ------------------------------------------------------------ *)

let test_value_order () =
  let le a b = V.compare a b < 0 in
  check bool_t "null first" true (le V.Null (V.Int (-100)));
  check bool_t "int/float mix" true (le (V.Int 1) (V.Float 1.5));
  check bool_t "float/int mix" true (le (V.Float 0.5) (V.Int 1));
  check bool_t "int = float" true (V.equal (V.Int 2) (V.Float 2.0));
  check bool_t "numeric < text" true (le (V.Int 999) (V.Str "0"));
  check bool_t "text < bytes" true (le (V.Str "\xff") (V.Bytes "\x00"));
  check bool_t "bytes bytewise" true (le (V.Bytes "a") (V.Bytes "ab"))

let test_value_hash_consistent () =
  (* equal values must hash equally (Int 2 = Float 2.0) *)
  check int_t "hash agreement" (V.hash (V.Int 2)) (V.hash (V.Float 2.0))

let test_value_literals () =
  check string_t "string escape" "'it''s'" (V.to_sql_literal (V.Str "it's"));
  check string_t "bytes hex" "X'00ff'" (V.to_sql_literal (V.Bytes "\x00\xff"));
  check string_t "null" "NULL" (V.to_sql_literal V.Null);
  (* literals must parse back to the same value *)
  List.iter
    (fun v ->
      match Reldb.Sql_parser.parse_expr (V.to_sql_literal v) with
      | Reldb.Sql_ast.E_const v' when V.equal v v' -> ()
      | Reldb.Sql_ast.E_neg (Reldb.Sql_ast.E_const (V.Int i)) when V.equal v (V.Int (-i)) -> ()
      | _ -> Alcotest.failf "literal roundtrip failed for %s" (V.to_string v))
    [ V.Null; V.Int 42; V.Int (-7); V.Str "a'b"; V.Bytes "\x01\xfe" ]

let test_ty_names () =
  List.iter
    (fun ty ->
      match V.ty_of_name (V.ty_name ty) with
      | Some ty' when ty = ty' -> ()
      | _ -> Alcotest.fail "type name roundtrip")
    [ V.Tint; V.Tfloat; V.Ttext; V.Tbytes ]

(* --- schema / tuple ----------------------------------------------------- *)

let test_schema_lookup () =
  let s = S.make [ ("id", V.Tint); ("Name", V.Ttext) ] in
  check int_t "case-insensitive" 1 (S.find s "name");
  check bool_t "missing" true (S.find_opt s "nope" = None);
  let q = S.rename_prefix "t" s in
  check int_t "qualified" 0 (S.find q "t.id")

let test_schema_check () =
  let s =
    [| S.column ~nullable:false "id" V.Tint; S.column "v" V.Ttext |]
  in
  check bool_t "ok" true (S.check_tuple s [| V.Int 1; V.Null |] = Ok ());
  check bool_t "not null" true
    (match S.check_tuple s [| V.Null; V.Null |] with Error _ -> true | Ok () -> false);
  check bool_t "type" true
    (match S.check_tuple s [| V.Str "x"; V.Null |] with Error _ -> true | Ok () -> false);
  check bool_t "arity" true
    (match S.check_tuple s [| V.Int 1 |] with Error _ -> true | Ok () -> false)

let test_tuple_key_order () =
  let a = [| V.Int 1 |] and ab = [| V.Int 1; V.Int 0 |] in
  check bool_t "prefix smaller" true (Tu.compare_key a ab < 0);
  check bool_t "projection" true
    (Tu.key [| 2; 0 |] [| V.Int 1; V.Int 2; V.Int 3 |] = [| V.Int 3; V.Int 1 |])

(* --- vec ---------------------------------------------------------------- *)

let test_vec () =
  let v = Reldb.Vec.create () in
  for i = 0 to 99 do
    ignore (Reldb.Vec.push v i)
  done;
  check int_t "length" 100 (Reldb.Vec.length v);
  Reldb.Vec.set v 50 999;
  check int_t "set/get" 999 (Reldb.Vec.get v 50);
  check int_t "fold" (4950 - 50 + 999) (Reldb.Vec.fold ( + ) 0 v);
  (match Reldb.Vec.get v 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oob get");
  check int_t "to_seq" 100 (Seq.length (Reldb.Vec.to_seq v))

(* --- physical operators -------------------------------------------------- *)

let mk_table name rows =
  let t = Reldb.Table.create name (S.make [ ("k", V.Tint); ("v", V.Ttext) ]) in
  List.iter
    (fun (k, s) -> ignore (Reldb.Table.insert t [| V.Int k; V.Str s |]))
    rows;
  t

let test_merge_join_operator () =
  (* the planner does not emit merge joins by default; test it directly on
     sorted inputs, including duplicate key groups *)
  let l = mk_table "l" [ (1, "a"); (2, "b"); (2, "c"); (4, "d") ] in
  let r = mk_table "r" [ (2, "x"); (2, "y"); (3, "z"); (4, "w") ] in
  let sorted t =
    Reldb.Plan.Sort
      { input = Reldb.Plan.Seq_scan t; keys = [ (Reldb.Expr.Col 0, Reldb.Plan.Asc) ] }
  in
  let join =
    Reldb.Plan.Merge_join
      {
        left = sorted l;
        right = sorted r;
        left_key = [| 0 |];
        right_key = [| 0 |];
        residual = None;
      }
  in
  (* 2x2 for key 2 plus 1 for key 4 *)
  check int_t "merge join rows" 5 (Reldb.Exec.row_count join);
  let schema = Reldb.Plan.schema_of join in
  check int_t "merged arity" 4 (S.arity schema)

let test_nl_join_cross () =
  let l = mk_table "l2" [ (1, "a"); (2, "b") ] in
  let r = mk_table "r2" [ (10, "x"); (20, "y"); (30, "z") ] in
  let join =
    Reldb.Plan.Nl_join
      { outer = Reldb.Plan.Seq_scan l; inner = Reldb.Plan.Seq_scan r; pred = None }
  in
  check int_t "cross product" 6 (Reldb.Exec.row_count join)

let test_limit_offset_operator () =
  let t = mk_table "t3" (List.init 10 (fun i -> (i, string_of_int i))) in
  let plan limit offset =
    Reldb.Plan.Limit { input = Reldb.Plan.Seq_scan t; limit; offset }
  in
  check int_t "limit" 3 (Reldb.Exec.row_count (plan (Some 3) 0));
  check int_t "offset" 4 (Reldb.Exec.row_count (plan None 6));
  check int_t "beyond end" 0 (Reldb.Exec.row_count (plan (Some 5) 99))

let test_distinct_operator () =
  let t = mk_table "t4" [ (1, "a"); (1, "a"); (2, "b"); (1, "a") ] in
  check int_t "distinct" 2
    (Reldb.Exec.row_count (Reldb.Plan.Distinct (Reldb.Plan.Seq_scan t)))

let test_project_expressions () =
  let t = mk_table "t5" [ (3, "x") ] in
  let plan =
    Reldb.Plan.Project
      ( [|
          (Reldb.Expr.Arith (Reldb.Expr.Mul, Reldb.Expr.Col 0, Reldb.Expr.Const (V.Int 2)), "dbl");
          (Reldb.Expr.Func (Reldb.Expr.Upper, [ Reldb.Expr.Col 1 ]), "up");
        |],
        Reldb.Plan.Seq_scan t )
  in
  match Reldb.Exec.run_list plan with
  | [ [| V.Int 6; V.Str "X" |] ] -> ()
  | _ -> Alcotest.fail "projection values"

let test_union_all_operator () =
  let t = mk_table "t6" [ (1, "a") ] in
  let u = Reldb.Plan.Union_all [ Reldb.Plan.Seq_scan t; Reldb.Plan.Seq_scan t ] in
  check int_t "union all" 2 (Reldb.Exec.row_count u)

let test_hash_join_residual () =
  let l = mk_table "hl" [ (1, "a"); (1, "b"); (2, "c") ] in
  let r = mk_table "hr" [ (1, "b"); (1, "z"); (2, "c") ] in
  (* equi on k, residual: values must also match (cols 1 and 3 joined) *)
  let join residual =
    Reldb.Plan.Hash_join
      {
        left = Reldb.Plan.Seq_scan l;
        right = Reldb.Plan.Seq_scan r;
        left_key = [| 0 |];
        right_key = [| 0 |];
        residual;
      }
  in
  check int_t "no residual" 5 (Reldb.Exec.row_count (join None));
  check int_t "with residual" 2
    (Reldb.Exec.row_count
       (join (Some (Reldb.Expr.Cmp (Reldb.Expr.Eq, Reldb.Expr.Col 1, Reldb.Expr.Col 3)))))

let test_sort_stability () =
  (* equal keys keep input order (stable sort) *)
  let t = mk_table "ss" [ (1, "first"); (1, "second"); (0, "zero"); (1, "third") ] in
  let plan =
    Reldb.Plan.Sort
      { input = Reldb.Plan.Seq_scan t; keys = [ (Reldb.Expr.Col 0, Reldb.Plan.Asc) ] }
  in
  match Reldb.Exec.run_list plan with
  | [ [| _; V.Str "zero" |]; [| _; V.Str "first" |]; [| _; V.Str "second" |];
      [| _; V.Str "third" |] ] ->
      ()
  | _ -> Alcotest.fail "sort not stable"

let test_string_aggregates () =
  let db = Reldb.Db.create () in
  ignore (Reldb.Db.exec db "CREATE TABLE w (s TEXT)");
  ignore (Reldb.Db.exec db "INSERT INTO w VALUES ('pear'), ('apple'), ('plum')");
  match Reldb.Db.query db "SELECT MIN(s), MAX(s), COUNT(s) FROM w" with
  | [ [| V.Str "apple"; V.Str "plum"; V.Int 3 |] ] -> ()
  | _ -> Alcotest.fail "string min/max"

(* --- planner access paths ------------------------------------------------ *)

let test_access_path_choice () =
  let t =
    Reldb.Table.create "ap"
      (S.make [ ("a", V.Tint); ("b", V.Tint); ("c", V.Ttext) ])
  in
  ignore (Reldb.Table.create_index t ~name:"ap_ab" ~cols:[| 0; 1 |] ~unique:false);
  for i = 0 to 49 do
    ignore (Reldb.Table.insert t [| V.Int (i mod 5); V.Int i; V.Str "x" |])
  done;
  let pred s = Some (Reldb.Planner.resolve_expr_for_table t (Reldb.Sql_parser.parse_expr s)) in
  let descr s = Reldb.Planner.access_path_description t (pred s) in
  check bool_t "eq prefix uses index" true
    (Astring_contains.contains (descr "a = 3") "IndexScan");
  check bool_t "eq+range uses index" true
    (Astring_contains.contains (descr "a = 3 AND b > 10") "IndexScan");
  check bool_t "non-prefix falls back" true
    (Astring_contains.contains (descr "b = 10") "SeqScan");
  check bool_t "null eq not indexed" true
    (Astring_contains.contains (descr "a = NULL") "SeqScan");
  (* candidates agree with a full scan + filter *)
  let naive s =
    let p = Option.get (pred s) in
    Seq.filter (fun (_, tu) -> Reldb.Expr.eval_bool p tu) (Reldb.Table.scan t)
    |> List.of_seq |> List.map fst |> List.sort compare
  in
  let via_planner s =
    Reldb.Planner.table_candidates t (pred s)
    |> List.of_seq |> List.map fst |> List.sort compare
  in
  List.iter
    (fun s -> check (Alcotest.list int_t) s (naive s) (via_planner s))
    [ "a = 3"; "a = 3 AND b > 10"; "a = 3 AND b <= 20"; "b = 10"; "a >= 4" ]

let test_table_rollback_on_unique () =
  let t = Reldb.Table.create "u" (S.make [ ("k", V.Tint) ]) in
  ignore (Reldb.Table.create_index t ~name:"u_k" ~cols:[| 0 |] ~unique:true);
  ignore (Reldb.Table.insert t [| V.Int 1 |]);
  (match Reldb.Table.insert t [| V.Int 1 |] with
  | exception Reldb.Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "dup accepted");
  check int_t "row count intact" 1 (Reldb.Table.row_count t);
  (* update that would violate restores the original *)
  let rowid, _ = List.hd (List.of_seq (Reldb.Table.scan t)) in
  ignore (Reldb.Table.insert t [| V.Int 2 |]);
  (match Reldb.Table.update t rowid [| V.Int 2 |] with
  | exception Reldb.Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "violating update accepted");
  check int_t "both rows" 2 (Reldb.Table.row_count t);
  check bool_t "old value restored" true
    (List.exists
       (fun (_, tu) -> tu.(0) = V.Int 1)
       (List.of_seq (Reldb.Table.scan t)))

let test_truncate () =
  let t = mk_table "tr" [ (1, "a"); (2, "b") ] in
  ignore (Reldb.Table.create_index t ~name:"tr_k" ~cols:[| 0 |] ~unique:true);
  Reldb.Table.truncate t;
  check int_t "empty" 0 (Reldb.Table.row_count t);
  (* indexes emptied too: reinserting old keys must work *)
  ignore (Reldb.Table.insert t [| V.Int 1; V.Str "z" |]);
  check int_t "reuse" 1 (Reldb.Table.row_count t)

let test_render () =
  let db = Reldb.Db.create () in
  ignore (Reldb.Db.exec db "CREATE TABLE r (a INT, b TEXT)");
  ignore (Reldb.Db.exec db "INSERT INTO r VALUES (1, 'x')");
  let s = Reldb.Db.render (Reldb.Db.exec db "SELECT a, b FROM r") in
  check bool_t "has header" true (Astring_contains.contains s "| a ");
  check bool_t "has row" true (Astring_contains.contains s "| 1 ");
  check bool_t "row count" true (Astring_contains.contains s "(1 rows)")

let test_catalog () =
  let c = Reldb.Catalog.create () in
  let _ = Reldb.Catalog.create_table c "T1" (S.make [ ("a", V.Tint) ]) in
  check bool_t "case-insensitive lookup" true
    (Reldb.Catalog.find_table c "t1" <> None);
  (match Reldb.Catalog.create_table c "t1" (S.make []) with
  | exception Reldb.Catalog.Catalog_error _ -> ()
  | _ -> Alcotest.fail "dup table accepted");
  Reldb.Catalog.drop_table c "T1";
  check bool_t "dropped" true (Reldb.Catalog.find_table c "t1" = None)

let test_expr_columns_shift () =
  let e =
    Reldb.Sql_parser.parse_expr "x" |> fun _ ->
    Reldb.Expr.And
      ( Reldb.Expr.Cmp (Reldb.Expr.Eq, Reldb.Expr.Col 0, Reldb.Expr.Col 3),
        Reldb.Expr.Is_null (Reldb.Expr.Col 1) )
  in
  check (Alcotest.list int_t) "columns" [ 0; 1; 3 ] (Reldb.Expr.columns e);
  check (Alcotest.list int_t) "shifted" [ 5; 6; 8 ]
    (Reldb.Expr.columns (Reldb.Expr.shift_columns 5 e));
  check (Alcotest.list int_t) "conjuncts" [ 2 ]
    (List.map (fun _ -> 2) (Reldb.Expr.conjuncts e) |> List.sort_uniq compare)

let tests =
  ( "reldb-units",
    [
      Alcotest.test_case "value ordering" `Quick test_value_order;
      Alcotest.test_case "value hashing" `Quick test_value_hash_consistent;
      Alcotest.test_case "value literals" `Quick test_value_literals;
      Alcotest.test_case "type names" `Quick test_ty_names;
      Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
      Alcotest.test_case "schema checking" `Quick test_schema_check;
      Alcotest.test_case "tuple keys" `Quick test_tuple_key_order;
      Alcotest.test_case "vec" `Quick test_vec;
      Alcotest.test_case "merge join operator" `Quick test_merge_join_operator;
      Alcotest.test_case "nested-loop cross join" `Quick test_nl_join_cross;
      Alcotest.test_case "limit/offset operator" `Quick test_limit_offset_operator;
      Alcotest.test_case "distinct operator" `Quick test_distinct_operator;
      Alcotest.test_case "project expressions" `Quick test_project_expressions;
      Alcotest.test_case "union-all operator" `Quick test_union_all_operator;
      Alcotest.test_case "hash join residual" `Quick test_hash_join_residual;
      Alcotest.test_case "sort stability" `Quick test_sort_stability;
      Alcotest.test_case "string aggregates" `Quick test_string_aggregates;
      Alcotest.test_case "access-path choice" `Quick test_access_path_choice;
      Alcotest.test_case "constraint rollback" `Quick test_table_rollback_on_unique;
      Alcotest.test_case "truncate" `Quick test_truncate;
      Alcotest.test_case "result rendering" `Quick test_render;
      Alcotest.test_case "catalog" `Quick test_catalog;
      Alcotest.test_case "expr columns/shift" `Quick test_expr_columns_shift;
    ] )
