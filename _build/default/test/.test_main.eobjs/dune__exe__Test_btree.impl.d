test/test_btree.ml: Alcotest Gen Hashtbl Int List Map QCheck QCheck_alcotest Reldb Test Xmllib
