test/test_xml.ml: Alcotest List Printf QCheck QCheck_alcotest String Xmllib
