test/test_xpath.ml: Alcotest Lazy List Ordered_xml Xmllib
