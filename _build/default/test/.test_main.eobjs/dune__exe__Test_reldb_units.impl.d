test/test_reldb_units.ml: Alcotest Array Astring_contains List Option Reldb Seq
