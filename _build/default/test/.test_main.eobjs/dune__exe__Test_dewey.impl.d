test/test_dewey.ml: Alcotest Array List Ordered_xml Printf QCheck QCheck_alcotest String
