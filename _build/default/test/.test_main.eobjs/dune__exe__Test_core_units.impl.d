test/test_core_units.ml: Alcotest Array List Ordered_xml Printf Reldb Xmllib
