test/test_fuzz.ml: Ordered_xml QCheck QCheck_alcotest Reldb String Xmllib Xpath_gen
