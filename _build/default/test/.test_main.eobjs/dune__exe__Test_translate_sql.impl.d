test/test_translate_sql.ml: Alcotest Lazy List Ordered_xml Printf QCheck QCheck_alcotest Reldb Xmllib Xpath_gen
