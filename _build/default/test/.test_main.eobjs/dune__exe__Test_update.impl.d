test/test_update.ml: Alcotest List Ordered_xml Printf QCheck QCheck_alcotest Reldb String Xmllib
