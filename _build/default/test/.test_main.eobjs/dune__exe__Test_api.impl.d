test/test_api.ml: Alcotest Filename Fun List Ordered_xml Reldb Sys Xmllib
