test/test_doc_index.ml: Alcotest Array List Ordered_xml QCheck QCheck_alcotest Xmllib
