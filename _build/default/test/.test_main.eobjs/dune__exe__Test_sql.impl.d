test/test_sql.ml: Alcotest Array Astring_contains List Printf Reldb String
