test/test_shred.ml: Alcotest Array Hashtbl List Ordered_xml Printf QCheck QCheck_alcotest Reldb Seq Xmllib
