test/xpath_gen.ml: List Ordered_xml QCheck
