test/test_translate.ml: Alcotest Lazy List Ordered_xml Printf QCheck QCheck_alcotest Reldb String Xmllib Xpath_gen
