test/test_dtd.ml: Alcotest Astring_contains Lazy List QCheck QCheck_alcotest String Xmllib
