test/test_flwor.ml: Alcotest Hashtbl Lazy List Option Ordered_xml Printf QCheck QCheck_alcotest Reldb String Xmllib
