(* Single-statement translation (the paper's SQL-generation mode): one
   N-way self-join per path query, checked against the oracle and the
   step-at-a-time evaluator. *)

module O = Ordered_xml
module TS = O.Translate_sql

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let env =
  lazy
    (let doc = O.Workload.dataset ~scale:1 in
     let db = Reldb.Db.create () in
     let idx = O.Doc_index.build doc in
     let stores =
       List.map
         (fun enc -> (enc, O.Api.Store.create db ~name:"q" enc doc))
         O.Encoding.all
     in
     (db, idx, stores))

let assert_equiv enc xpath =
  let db, idx, _ = Lazy.force env in
  let path = O.Xpath_parser.parse xpath in
  let expected = O.Dom_eval.eval idx path in
  let r = TS.eval db ~doc:"q" enc path in
  check int_t (xpath ^ " single statement") 1 (List.length r.O.Translate.sql_log);
  let got = List.map (fun (x : O.Node_row.t) -> x.O.Node_row.id) r.O.Translate.rows in
  if got <> expected then
    Alcotest.failf "%s: %s: oracle %d nodes, single-sql %d nodes"
      (O.Encoding.name enc) xpath (List.length expected) (List.length got)

let global_queries =
  [
    "/site/open_auctions/open_auction";
    "//bidder";
    "//bidder/increase";
    "/site/people/person/@id";
    "//person[address]/name";
    "//person[profile/@income > 50000]/name";
    "/site/closed_auctions/closed_auction[price > 500][type = 'Regular']";
    "//open_auction/bidder/following-sibling::bidder";
    "//increase/ancestor::open_auction";
    "/site/regions/africa/item/following::item";
    "//profile/..";
    "//annotation/descendant-or-self::*";
  ]

let shared_queries =
  (* no descendant/document-order axes: expressible under every encoding *)
  [
    "/site/open_auctions/open_auction";
    "/site/people/person/@id";
    "/site/people/person[address]/name";
    "/site/open_auctions/open_auction/bidder/following-sibling::bidder";
    "/site/closed_auctions/closed_auction[price > 500]/seller";
    "/site/open_auctions/open_auction/bidder/personref/..";
  ]

let test_global_fragment () =
  List.iter (assert_equiv O.Encoding.Global) global_queries

let test_all_encodings_shared () =
  List.iter
    (fun enc -> List.iter (assert_equiv enc) shared_queries)
    O.Encoding.all

let test_eligibility () =
  let p s = O.Xpath_parser.parse s in
  check bool_t "descendant needs intervals" false
    (TS.eligible O.Encoding.Local (p "//bidder"));
  check bool_t "descendant ok for global" true
    (TS.eligible O.Encoding.Global (p "//bidder"));
  check bool_t "positional predicate ineligible" false
    (TS.eligible O.Encoding.Global (p "/site/open_auctions/open_auction[1]"));
  check bool_t "or-predicate ineligible" false
    (TS.eligible O.Encoding.Global (p "//person[address or phone]"));
  check bool_t "conjunctive predicates eligible" true
    (TS.eligible O.Encoding.Global (p "//person[address][phone]"));
  let db, _, _ = Lazy.force env in
  match TS.eval db ~doc:"q" O.Encoding.Local (p "//bidder") with
  | exception TS.Not_single_statement _ -> ()
  | _ -> Alcotest.fail "ineligible path accepted"

let test_agrees_with_step_mode () =
  let db, _, _ = Lazy.force env in
  List.iter
    (fun xpath ->
      let path = O.Xpath_parser.parse xpath in
      let a = TS.eval db ~doc:"q" O.Encoding.Global path in
      let b = O.Translate.eval db ~doc:"q" O.Encoding.Global path in
      let ids r =
        List.map (fun (x : O.Node_row.t) -> x.O.Node_row.id) r.O.Translate.rows
      in
      check (Alcotest.list int_t) xpath (ids b) (ids a);
      check bool_t "fewer statements" true
        (a.O.Translate.statements <= b.O.Translate.statements))
    global_queries

let test_sibling_from_attribute_is_empty () =
  (* regression (caught by fuzzing): attribute nodes have no siblings, so a
     sibling axis from an attribute context must yield nothing — in both
     translation modes *)
  let db, idx, stores = Lazy.force env in
  ignore idx;
  let xp = "/site/people/person/@id/following-sibling::name" in
  let path = O.Xpath_parser.parse xp in
  List.iter
    (fun (enc, store) ->
      check int_t
        (O.Encoding.name enc ^ " step mode")
        0
        (List.length (O.Api.Store.query_ids store xp));
      if TS.eligible enc path then
        check int_t
          (O.Encoding.name enc ^ " single mode")
          0
          (List.length (TS.eval db ~doc:"q" enc path).O.Translate.rows))
    stores

let test_local_sorted () =
  let db, idx, _ = Lazy.force env in
  let xpath = "/site/open_auctions/open_auction/bidder/following-sibling::bidder" in
  let path = O.Xpath_parser.parse xpath in
  let r = TS.eval db ~doc:"q" O.Encoding.Local path in
  let got = List.map (fun (x : O.Node_row.t) -> x.O.Node_row.id) r.O.Translate.rows in
  check (Alcotest.list int_t) "sorted into doc order"
    (O.Dom_eval.eval idx path) got;
  check bool_t "extra statements for the sort" true (r.O.Translate.statements > 1)

(* randomized equivalence on the eligible fragment *)
let prop_single_statement =
  let gen = QCheck.Gen.(pair (int_bound 5_000) Xpath_gen.gen_path) in
  let print (seed, path) =
    Printf.sprintf "seed=%d path=%s" seed (O.Xpath_ast.to_string path)
  in
  QCheck.Test.make ~name:"single-sql = oracle on eligible random paths"
    ~count:150 (QCheck.make ~print gen) (fun (seed, path) ->
      let doc = Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 () in
      let db = Reldb.Db.create () in
      let idx = O.Doc_index.build doc in
      List.for_all
        (fun enc ->
          if not (TS.eligible enc path) then true
          else begin
            ignore (O.Api.Store.create db ~name:(O.Encoding.name enc) enc doc);
            let expected = O.Dom_eval.eval idx path in
            let r = TS.eval db ~doc:(O.Encoding.name enc) enc path in
            List.map (fun (x : O.Node_row.t) -> x.O.Node_row.id) r.O.Translate.rows
            = expected
          end)
        [ O.Encoding.Global; O.Encoding.Local; O.Encoding.Dewey_enc ])

let tests =
  ( "translate-sql",
    [
      Alcotest.test_case "global fragment" `Quick test_global_fragment;
      Alcotest.test_case "shared fragment, all encodings" `Quick
        test_all_encodings_shared;
      Alcotest.test_case "eligibility" `Quick test_eligibility;
      Alcotest.test_case "agrees with step mode" `Quick test_agrees_with_step_mode;
      Alcotest.test_case "local sorted in middle tier" `Quick test_local_sorted;
      Alcotest.test_case "sibling-from-attribute empty" `Quick
        test_sibling_from_attribute_is_empty;
      QCheck_alcotest.to_alcotest prop_single_statement;
    ] )
