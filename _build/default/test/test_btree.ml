(* B+-tree: unit semantics, truncated-prefix bounds, model-based qcheck. *)

module B = Reldb.Btree
module V = Reldb.Value

let key1 i = [| V.Int i |]
let key2 a b = [| V.Int a; V.Int b |]

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let entries_ids seq = List.map snd (List.of_seq seq)

let test_insert_find () =
  let t = B.create ~branching:4 () in
  for i = 0 to 99 do
    B.insert t (key1 ((i * 37) mod 100)) i
  done;
  check int_t "length" 100 (B.length t);
  for i = 0 to 99 do
    match B.find t (key1 ((i * 37) mod 100)) with
    | Some v -> check int_t "payload" i v
    | None -> Alcotest.fail "missing key"
  done;
  check bool_t "absent" true (B.find t (key1 1000) = None)

let test_duplicate () =
  let t = B.create () in
  B.insert t (key1 1) 10;
  (match B.insert t (key1 1) 11 with
  | exception B.Duplicate_key -> ()
  | () -> Alcotest.fail "expected Duplicate_key");
  B.replace t (key1 1) 12;
  check bool_t "replaced" true (B.find t (key1 1) = Some 12)

let test_delete () =
  let t = B.create ~branching:4 () in
  for i = 0 to 49 do
    B.insert t (key1 i) i
  done;
  for i = 0 to 49 do
    if i mod 2 = 0 then check bool_t "deleted" true (B.delete t (key1 i))
  done;
  check bool_t "gone" true (B.find t (key1 0) = None);
  check bool_t "remains" true (B.find t (key1 1) = Some 1);
  check int_t "length" 25 (B.length t);
  check bool_t "delete absent" false (B.delete t (key1 0))

let test_range_basic () =
  let t = B.create ~branching:4 () in
  List.iter (fun i -> B.insert t (key1 i) i) [ 5; 1; 9; 3; 7 ];
  check (Alcotest.list int_t) "all" [ 1; 3; 5; 7; 9 ]
    (entries_ids (B.to_seq t));
  check (Alcotest.list int_t) "incl/incl" [ 3; 5; 7 ]
    (entries_ids (B.range t ~lo:(B.Incl (key1 3)) ~hi:(B.Incl (key1 7))));
  check (Alcotest.list int_t) "excl/excl" [ 5 ]
    (entries_ids (B.range t ~lo:(B.Excl (key1 3)) ~hi:(B.Excl (key1 7))));
  check (Alcotest.list int_t) "desc" [ 7; 5; 3 ]
    (entries_ids (B.range_desc t ~lo:(B.Incl (key1 3)) ~hi:(B.Incl (key1 7))))

let test_truncated_bounds () =
  (* composite keys (a, b): bounds on the first component only *)
  let t = B.create ~branching:4 () in
  List.iter
    (fun (a, b) -> B.insert t (key2 a b) ((a * 100) + b))
    [ (1, 1); (1, 2); (2, 1); (2, 2); (2, 3); (3, 1) ];
  (* prefix scan a = 2 *)
  check (Alcotest.list int_t) "prefix" [ 201; 202; 203 ]
    (entries_ids (B.prefix t [| V.Int 2 |]));
  (* lo = Incl [2] keeps all a >= 2 including extensions of [2] *)
  check (Alcotest.list int_t) "trunc lo incl" [ 201; 202; 203; 301 ]
    (entries_ids (B.range t ~lo:(B.Incl [| V.Int 2 |]) ~hi:B.Unbounded));
  (* lo = Excl [2] skips every key whose first component is 2 *)
  check (Alcotest.list int_t) "trunc lo excl" [ 301 ]
    (entries_ids (B.range t ~lo:(B.Excl [| V.Int 2 |]) ~hi:B.Unbounded));
  (* hi = Incl [2] keeps extensions of [2]; hi = Excl [2] drops them *)
  check (Alcotest.list int_t) "trunc hi incl" [ 101; 102; 201; 202; 203 ]
    (entries_ids (B.range t ~lo:B.Unbounded ~hi:(B.Incl [| V.Int 2 |])));
  check (Alcotest.list int_t) "trunc hi excl" [ 101; 102 ]
    (entries_ids (B.range t ~lo:B.Unbounded ~hi:(B.Excl [| V.Int 2 |])));
  (* two-component range on (2, b >= 2) *)
  check (Alcotest.list int_t) "two-comp" [ 202; 203 ]
    (entries_ids (B.range t ~lo:(B.Incl (key2 2 2)) ~hi:(B.Incl [| V.Int 2 |])))

let test_mixed_types_order () =
  let t = B.create () in
  B.insert t [| V.Null |] 0;
  B.insert t [| V.Int 5 |] 1;
  B.insert t [| V.Float 5.5 |] 2;
  B.insert t [| V.Str "a" |] 3;
  B.insert t [| V.Bytes "a" |] 4;
  check (Alcotest.list int_t) "type order" [ 0; 1; 2; 3; 4 ]
    (entries_ids (B.to_seq t))

let test_invariants_after_churn () =
  let t = B.create ~branching:4 () in
  let rng = Xmllib.Rng.create 5 in
  let model = Hashtbl.create 64 in
  for step = 0 to 2000 do
    let k = Xmllib.Rng.int rng 300 in
    if Xmllib.Rng.bool rng then begin
      if not (Hashtbl.mem model k) then begin
        B.insert t (key1 k) step;
        Hashtbl.replace model k step
      end
    end
    else begin
      let was = Hashtbl.mem model k in
      let deleted = B.delete t (key1 k) in
      if was <> deleted then Alcotest.fail "delete disagrees with model";
      Hashtbl.remove model k
    end
  done;
  (match B.check_invariants t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariants: %s" m);
  check int_t "length vs model" (Hashtbl.length model) (B.length t)

let test_stats () =
  let t = B.create ~branching:8 () in
  for i = 0 to 999 do
    B.insert t (key1 i) i
  done;
  let s = B.stats t in
  check int_t "entries" 1000 s.B.entries;
  check bool_t "depth sane" true (s.B.depth >= 2 && s.B.depth <= 6);
  check bool_t "occupancy" true (s.B.occupancy > 0.3)

(* model-based property: a random operation sequence agrees with a Map *)
let prop_model =
  let open QCheck in
  let op_gen =
    Gen.(
      oneof
        [
          map (fun k -> `Insert k) (int_bound 100);
          map (fun k -> `Delete k) (int_bound 100);
          map2 (fun a b -> `Range (min a b, max a b)) (int_bound 100) (int_bound 100);
        ])
  in
  Test.make ~name:"btree agrees with Map model" ~count:200
    (make Gen.(list_size (int_bound 400) op_gen))
    (fun ops ->
      let t = B.create ~branching:4 () in
      let module M = Map.Make (Int) in
      let model = ref M.empty in
      let ok = ref true in
      List.iteri
        (fun step op ->
          match op with
          | `Insert k ->
              if not (M.mem k !model) then begin
                B.insert t (key1 k) step;
                model := M.add k step !model
              end
          | `Delete k ->
              let was = M.mem k !model in
              if B.delete t (key1 k) <> was then ok := false;
              model := M.remove k !model
          | `Range (lo, hi) ->
              let got =
                entries_ids (B.range t ~lo:(B.Incl (key1 lo)) ~hi:(B.Incl (key1 hi)))
              in
              let expect =
                M.bindings !model
                |> List.filter (fun (k, _) -> k >= lo && k <= hi)
                |> List.map snd
              in
              if got <> expect then ok := false)
        ops;
      !ok && B.check_invariants t = Ok ())

let prop_desc_is_reverse =
  let open QCheck in
  Test.make ~name:"range_desc reverses range" ~count:200
    (make Gen.(list_size (int_bound 200) (int_bound 300)))
    (fun keys ->
      let t = B.create ~branching:4 () in
      List.iteri (fun i k -> B.replace t (key1 k) i) keys;
      let lo = B.Incl (key1 50) and hi = B.Incl (key1 250) in
      List.rev (entries_ids (B.range t ~lo ~hi))
      = entries_ids (B.range_desc t ~lo ~hi))

let tests =
  ( "btree",
    [
      Alcotest.test_case "insert/find" `Quick test_insert_find;
      Alcotest.test_case "duplicates" `Quick test_duplicate;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "range basics" `Quick test_range_basic;
      Alcotest.test_case "truncated-prefix bounds" `Quick test_truncated_bounds;
      Alcotest.test_case "cross-type ordering" `Quick test_mixed_types_order;
      Alcotest.test_case "invariants after churn" `Quick test_invariants_after_churn;
      Alcotest.test_case "stats" `Quick test_stats;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_desc_is_reverse;
    ] )
