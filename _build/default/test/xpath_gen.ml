(* Random XPath generator for the oracle-equivalence property tests.

   Paths are generated over the tag alphabet of the random-tree generator so
   that queries actually hit nodes. Value-comparison predicates stay within
   the translator's exactly-equivalent territory (@attr / text()). *)

module A = Ordered_xml.Xpath_ast

let tags = [| "a"; "b"; "c"; "d"; "e"; "item"; "list"; "entry" |]

let gen_test =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> A.Name t) (oneofa tags));
        (2, return A.Any_name);
        (1, return A.Text_test);
        (1, return A.Node_test);
      ])

let gen_axis =
  QCheck.Gen.(
    frequency
      [
        (6, return A.Child);
        (3, return A.Descendant);
        (1, return A.Descendant_or_self);
        (1, return A.Self);
        (1, return A.Parent);
        (2, return A.Attribute);
        (2, return A.Following_sibling);
        (2, return A.Preceding_sibling);
        (1, return A.Following);
        (1, return A.Preceding);
        (1, return A.Ancestor);
        (1, return A.Ancestor_or_self);
      ])

let rec gen_pred depth =
  QCheck.Gen.(
    if depth <= 0 then gen_leaf_pred
    else
      frequency
        [
          (5, gen_leaf_pred);
          (1, map2 (fun a b -> A.P_and (a, b)) (gen_pred (depth - 1)) (gen_pred (depth - 1)));
          (1, map2 (fun a b -> A.P_or (a, b)) (gen_pred (depth - 1)) (gen_pred (depth - 1)));
          (1, map (fun a -> A.P_not a) (gen_pred (depth - 1)));
        ])

and gen_leaf_pred =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> A.P_pos (A.Eq, 1 + k)) (int_bound 3));
        ( 1,
          map2
            (fun op k -> A.P_pos (op, 1 + k))
            (oneofl [ A.Le; A.Ge; A.Lt; A.Gt; A.Ne ])
            (int_bound 3) );
        (1, return A.P_last);
        ( 1,
          map2
            (fun t k ->
              A.P_count
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Child; test = t; preds = [] } ] },
                  A.Ge,
                  k ))
            gen_test (int_bound 3) );
        ( 3,
          map
            (fun t ->
              A.P_exists
                { A.absolute = false; steps = [ { A.axis = A.Child; test = t; preds = [] } ] })
            gen_test );
        ( 2,
          (* compare an attribute against a word from the generator pool *)
          map2
            (fun t lit ->
              A.P_cmp
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Attribute; test = A.Name t; preds = [] } ] },
                  A.Eq,
                  A.L_str lit ))
            (oneofl [ "k0"; "k1"; "k2" ])
            (oneofl [ "auction"; "bid"; "gold"; "market" ]) );
        ( 1,
          (* text comparison *)
          map
            (fun op ->
              A.P_cmp
                ( { A.absolute = false;
                    steps = [ { A.axis = A.Child; test = A.Text_test; preds = [] } ] },
                  op,
                  A.L_str "gold" ))
            (oneofl [ A.Eq; A.Ne ]) );
        ( 2,
          (* numeric comparisons on text and attributes *)
          map3
            (fun axis_attr op k ->
              let step =
                if axis_attr then
                  { A.axis = A.Attribute; test = A.Name "k0"; preds = [] }
                else { A.axis = A.Child; test = A.Text_test; preds = [] }
              in
              A.P_cmp
                ( { A.absolute = false; steps = [ step ] },
                  op,
                  A.L_num (float_of_int k) ))
            bool
            (oneofl [ A.Lt; A.Le; A.Gt; A.Ge; A.Eq ])
            (int_bound 60) );
      ])

let gen_step =
  QCheck.Gen.(
    map3
      (fun axis test preds ->
        (* attribute tests only make sense on the attribute axis; fix up *)
        let test =
          match (axis, test) with
          | A.Attribute, (A.Text_test | A.Node_test) -> A.Any_name
          | _ -> test
        in
        { A.axis; test; preds })
      gen_axis gen_test
      (frequency [ (5, return []); (3, list_size (int_range 1 2) (gen_pred 1)) ]))

let gen_path =
  QCheck.Gen.(
    map
      (fun steps ->
        (* first step from the document root: child or descendant only *)
        let steps =
          match steps with
          | ({ A.axis = A.Child | A.Descendant; _ } as s) :: _ -> s :: List.tl steps
          | s :: rest -> { s with A.axis = A.Descendant } :: rest
          | [] -> [ { A.axis = A.Descendant; test = A.Any_name; preds = [] } ]
        in
        { A.absolute = true; steps })
      (list_size (int_range 1 4) gen_step))

let arb_path = QCheck.make ~print:A.to_string gen_path
