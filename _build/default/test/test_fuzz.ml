(* Robustness fuzzing: every parser must either succeed or raise its own
   documented exception — never crash, loop, or leak an internal error. *)

module O = Ordered_xml

let no_crash name count gen f =
  QCheck.Test.make ~name ~count gen (fun input ->
      match f input with
      | _ -> true
      | exception Xmllib.Parser.Parse_error _
      | exception Xmllib.Lexer.Error _
      | exception Xmllib.Sax.Error _
      | exception O.Xpath_parser.Parse_error _
      | exception O.Flwor.Parse_error _
      | exception Reldb.Db.Sql_error _
      | exception Invalid_argument _ ->
          true)

(* strings biased towards each grammar's own alphabet *)
let biased alphabet =
  QCheck.make ~print:(fun s -> s)
    QCheck.Gen.(
      map (String.concat "")
        (list_size (int_bound 30)
           (oneof [ oneofl alphabet; map (String.make 1) printable ])))

let xmlish =
  biased
    [ "<"; ">"; "</"; "/>"; "a"; "b"; "="; "\""; "'"; "&"; "&amp;"; "<!--";
      "-->"; "<?"; "?>"; "<![CDATA["; "]]>"; " "; "x" ]

let xpathish =
  biased
    [ "/"; "//"; "["; "]"; "("; ")"; "@"; "*"; "."; ".."; "::"; "text()";
      "node()"; "and"; "or"; "not"; "position()"; "last()"; "count"; "a";
      "b"; "1"; "'s'"; "="; "<"; ">"; "|"; " " ]

let sqlish =
  biased
    [ "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
      "DELETE"; "CREATE"; "TABLE"; "INDEX"; "GROUP"; "BY"; "ORDER"; "("; ")";
      ","; "*"; "="; "'"; "t"; "a"; "1"; "X'00'"; " "; ";"; "--" ]

let flworish =
  biased
    [ "for"; "let"; "where"; "order"; "by"; "return"; "$x"; "in"; ":=";
      "/a"; "$x/b"; "<r>"; "</r>"; "{"; "}"; "'s'"; ">"; "1"; " " ]

let prop_xml_parser =
  no_crash "xml parser never crashes" 500 xmlish (fun s ->
      ignore (Xmllib.Parser.parse_document s))

let prop_sax =
  no_crash "sax never crashes" 500 xmlish (fun s ->
      ignore (Xmllib.Sax.count_events s))

let prop_xpath_parser =
  no_crash "xpath parser never crashes" 500 xpathish (fun s ->
      ignore (O.Xpath_parser.parse_union s))

let prop_sql =
  let db = Reldb.Db.create () in
  ignore (Reldb.Db.exec db "CREATE TABLE t (a INT, b TEXT)");
  ignore (Reldb.Db.exec db "INSERT INTO t VALUES (1, 'x')");
  no_crash "sql engine never crashes" 500 sqlish (fun s ->
      ignore (Reldb.Db.exec db s))

let prop_flwor_parser =
  no_crash "flwor parser never crashes" 500 flworish (fun s ->
      ignore (O.Flwor.parse s))

let prop_dewey_decode =
  no_crash "dewey decode never crashes" 500
    (QCheck.string_gen QCheck.Gen.char)
    (fun s -> ignore (O.Dewey.decode s))

let prop_entities =
  no_crash "entity decoder never crashes" 300
    (biased [ "&"; ";"; "#"; "x"; "amp"; "lt"; "a"; "1" ])
    (fun s -> ignore (Xmllib.Lexer.decode_entities s))

(* parsed XPath renders back to something the parser accepts, and both parse
   to the same evaluation result *)
let prop_xpath_render_roundtrip =
  QCheck.Test.make ~name:"xpath render/parse roundtrip" ~count:300
    Xpath_gen.arb_path (fun path ->
      let rendered = O.Xpath_ast.to_string path in
      let reparsed = O.Xpath_parser.parse rendered in
      O.Xpath_ast.to_string reparsed = rendered)

let tests =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_xml_parser;
      QCheck_alcotest.to_alcotest prop_sax;
      QCheck_alcotest.to_alcotest prop_xpath_parser;
      QCheck_alcotest.to_alcotest prop_sql;
      QCheck_alcotest.to_alcotest prop_flwor_parser;
      QCheck_alcotest.to_alcotest prop_dewey_decode;
      QCheck_alcotest.to_alcotest prop_entities;
      QCheck_alcotest.to_alcotest prop_xpath_render_roundtrip;
    ] )
