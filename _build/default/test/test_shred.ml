(* Shredding, reconstruction, storage: invariants per encoding. *)

module O = Ordered_xml
module T = Xmllib.Types
module V = Reldb.Value

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let sample =
  Xmllib.Parser.parse_document
    {|<a x="1"><b>t1</b><b p="q">t2<d/>t3</b><!--c--><?pi data?></a>|}

let shred_all doc =
  let db = Reldb.Db.create () in
  (db, List.map (fun enc -> (enc, O.Shred.shred db ~doc:"t" enc doc)) O.Encoding.all)

let test_row_counts () =
  let db, loaded = shred_all sample in
  let idx = snd (List.hd loaded) in
  List.iter
    (fun (enc, _) ->
      let table = Reldb.Db.table db (O.Encoding.table_name ~doc:"t" enc) in
      check int_t
        (O.Encoding.name enc ^ " rows")
        (O.Doc_index.length idx)
        (Reldb.Table.row_count table))
    loaded

let test_interval_nesting () =
  let db, _ = shred_all sample in
  List.iter
    (fun enc ->
      let rows =
        Reldb.Db.query db
          (Printf.sprintf "SELECT id, parent, g_order, g_end FROM %s"
             (O.Encoding.table_name ~doc:"t" enc))
      in
      let by_id = Hashtbl.create 16 in
      List.iter
        (fun r ->
          match r with
          | [| V.Int id; _; V.Int o; V.Int e |] -> Hashtbl.add by_id id (o, e)
          | _ -> Alcotest.fail "row shape")
        rows;
      List.iter
        (fun r ->
          match r with
          | [| V.Int _; V.Int p; V.Int o; V.Int e |] ->
              let po, pe = Hashtbl.find by_id p in
              if not (po < o && e < pe) then
                Alcotest.failf "%s: child interval (%d,%d) not inside (%d,%d)"
                  (O.Encoding.name enc) o e po pe
          | [| V.Int _; V.Null; V.Int o; V.Int e |] ->
              if not (o < e) then Alcotest.fail "root interval"
          | _ -> Alcotest.fail "row shape")
        rows)
    [ O.Encoding.Global; O.Encoding.Global_gap ]

let test_gap_numbering_spacing () =
  let idx = O.Doc_index.build sample in
  let dense = O.Shred.interval_numbering idx ~gap:1 in
  let gapped = O.Shred.interval_numbering idx ~gap:32 in
  let n = O.Doc_index.length idx in
  (* dense uses exactly 2n values *)
  let all_dense =
    Array.to_list dense |> List.concat_map (fun (a, b) -> [ a; b ])
  in
  check int_t "dense max" (2 * n) (List.fold_left max 0 all_dense);
  (* gapped preserves relative order *)
  Array.iteri
    (fun i (o, _) ->
      Array.iteri
        (fun j (o', _) ->
          if compare dense.(i) dense.(j) < 0 && not (o < o' || i = j) then
            Alcotest.fail "gapped order differs from dense")
        gapped
      |> ignore)
    gapped
  |> ignore;
  (* endpoints spaced by the gap *)
  let sorted = List.sort compare (Array.to_list gapped |> List.concat_map (fun (a, b) -> [ a; b ])) in
  let rec spaced = function
    | a :: (b :: _ as rest) ->
        if b - a <> 32 then Alcotest.failf "spacing %d" (b - a);
        spaced rest
    | _ -> ()
  in
  spaced sorted

let test_local_unique_sibling_ranks () =
  let db, _ = shred_all sample in
  let rows =
    Reldb.Db.query db "SELECT parent, l_order, COUNT(*) AS n FROM t_local \
                       GROUP BY parent, l_order"
  in
  List.iter
    (fun r ->
      match r.(2) with
      | V.Int 1 -> ()
      | _ -> Alcotest.fail "duplicate (parent, l_order)")
    rows;
  (* children are 1..n dense, attrs negative *)
  let kid_orders =
    Reldb.Db.query db
      "SELECT l_order FROM t_local WHERE parent = 0 AND l_order > 0 ORDER BY l_order"
  in
  check
    (Alcotest.list int_t)
    "dense ranks" [ 1; 2; 3; 4 ]
    (List.map (fun r -> match r.(0) with V.Int i -> i | _ -> 0) kid_orders)

let test_dewey_paths_sorted () =
  let db, loaded = shred_all sample in
  let idx = snd (List.hd loaded) in
  let rows =
    Reldb.Db.query db "SELECT id, path FROM t_dewey ORDER BY path"
  in
  (* ordering by path must equal ordering by id (= record order) *)
  let ids = List.map (fun r -> match r.(0) with V.Int i -> i | _ -> -1) rows in
  check (Alcotest.list int_t) "path order = doc order"
    (List.init (O.Doc_index.length idx) (fun i -> i))
    ids

let test_nval_population () =
  let db = Reldb.Db.create () in
  let doc =
    Xmllib.Parser.parse_document {|<a n="42"><b>3.5</b><c>abc</c></a>|}
  in
  ignore (O.Shred.shred db ~doc:"n" O.Encoding.Global doc);
  check int_t "numeric rows" 2
    (List.length (Reldb.Db.query db "SELECT id FROM n_global WHERE nval IS NOT NULL"));
  match Reldb.Db.query db "SELECT nval FROM n_global WHERE value = '3.5'" with
  | [ [| V.Float 3.5 |] ] -> ()
  | _ -> Alcotest.fail "nval value"

let test_reconstruct_roundtrip () =
  let _, loadedcheck = shred_all sample in
  ignore loadedcheck;
  let db, _ = shred_all (Xmllib.Generator.xmark ~seed:3 ~scale:1 ()) in
  ignore db;
  (* roundtrip on the small sample, all encodings *)
  let db2, _ = shred_all sample in
  List.iter
    (fun enc ->
      let doc2 = O.Reconstruct.document db2 ~doc:"t" enc in
      check bool_t
        (O.Encoding.name enc ^ " roundtrip")
        true
        (T.equal_document sample doc2))
    O.Encoding.all

let test_reconstruct_subtree () =
  let db, _ = shred_all sample in
  List.iter
    (fun enc ->
      (* record 4 is <b p="q">t2<d/>t3</b> in record order? verify by tag *)
      let rows =
        Reldb.Db.query db
          (Printf.sprintf
             "SELECT id FROM %s WHERE tag = 'b' AND kind = 0"
             (O.Encoding.table_name ~doc:"t" enc))
      in
      let ids = List.map (fun r -> match r.(0) with V.Int i -> i | _ -> -1) rows in
      let second_b = List.nth (List.sort compare ids) 1 in
      match O.Reconstruct.subtree db ~doc:"t" enc ~id:second_b with
      | T.Element e ->
          check int_t
            (O.Encoding.name enc ^ " subtree children")
            3
            (List.length e.T.children)
      | _ -> Alcotest.fail "expected element")
    O.Encoding.all

let test_storage_measures () =
  let db, _ = shred_all (Xmllib.Generator.xmark ~seed:5 ~scale:1 ()) in
  let by_enc =
    List.map (fun enc -> (enc, O.Storage.measure db ~doc:"t" enc)) O.Encoding.all
  in
  let get enc = List.assoc enc by_enc in
  let g = get O.Encoding.Global
  and l = get O.Encoding.Local
  and d = get O.Encoding.Dewey_enc in
  check bool_t "same row count" true (g.O.Storage.rows = l.O.Storage.rows);
  (* the paper's storage shape: dewey keys biggest, local smallest *)
  check bool_t "dewey order keys > global" true
    (d.O.Storage.order_bytes > g.O.Storage.order_bytes);
  check bool_t "global order keys > local" true
    (g.O.Storage.order_bytes > l.O.Storage.order_bytes);
  check bool_t "dewey histogram non-empty" true
    (O.Storage.dewey_path_length_histogram db ~doc:"t" <> [])

let test_stream_shred_equals_dom_shred () =
  let doc = Xmllib.Generator.xmark ~seed:9 ~scale:1 () in
  let src = Xmllib.Printer.document_to_string doc in
  List.iter
    (fun enc ->
      let db1 = Reldb.Db.create () in
      ignore (O.Shred.shred db1 ~doc:"d" enc doc);
      let db2 = Reldb.Db.create () in
      let n = O.Shred.shred_stream db2 ~doc:"d" enc src in
      let dump db =
        let t = Reldb.Db.table db (O.Encoding.table_name ~doc:"d" enc) in
        List.of_seq (Seq.map snd (Reldb.Table.scan t))
        |> List.sort compare |> List.map Reldb.Tuple.to_string
      in
      check int_t (O.Encoding.name enc ^ " record count")
        (List.length (dump db1)) n;
      if dump db1 <> dump db2 then
        Alcotest.failf "%s: streaming shred differs from DOM shred"
          (O.Encoding.name enc))
    O.Encoding.all

let test_streaming_serialization () =
  let doc = Xmllib.Generator.xmark ~seed:4 ~scale:1 () in
  let db, _ = shred_all doc |> fun (db, l) -> (db, l) in
  List.iter
    (fun enc ->
      let root = O.Reconstruct.root_id db ~doc:"t" enc in
      let direct = O.Reconstruct.serialize_subtree db ~doc:"t" enc ~id:root in
      let via_dom =
        Xmllib.Printer.node_to_string (O.Reconstruct.subtree db ~doc:"t" enc ~id:root)
      in
      if direct <> via_dom then
        Alcotest.failf "%s: streaming serialization diverges" (O.Encoding.name enc);
      (* also a nested subtree with attributes and mixed content *)
      let sub =
        List.hd (O.Translate.eval_ids db ~doc:"t" enc
                   (O.Xpath_parser.parse "/site/open_auctions/open_auction[2]"))
      in
      let d2 = O.Reconstruct.serialize_subtree db ~doc:"t" enc ~id:sub in
      let v2 =
        Xmllib.Printer.node_to_string (O.Reconstruct.subtree db ~doc:"t" enc ~id:sub)
      in
      if d2 <> v2 then
        Alcotest.failf "%s: nested streaming serialization diverges"
          (O.Encoding.name enc))
    O.Encoding.all

let prop_streaming_serialization_random =
  let gen =
    QCheck.Gen.map
      (fun (seed, enc_i) ->
        ( Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 (),
          List.nth O.Encoding.all (enc_i mod List.length O.Encoding.all) ))
      QCheck.Gen.(pair (int_bound 100_000) (int_bound 19))
  in
  let print (doc, enc) =
    O.Encoding.name enc ^ ": " ^ Xmllib.Printer.document_to_string doc
  in
  QCheck.Test.make ~name:"streaming serialization = DOM serialization"
    ~count:60 (QCheck.make ~print gen) (fun (doc, enc) ->
      let db = Reldb.Db.create () in
      ignore (O.Shred.shred db ~doc:"z" enc doc);
      let root = O.Reconstruct.root_id db ~doc:"z" enc in
      O.Reconstruct.serialize_subtree db ~doc:"z" enc ~id:root
      = Xmllib.Printer.node_to_string (Xmllib.Types.Element doc.T.root))

let prop_roundtrip_random =
  let gen =
    QCheck.Gen.map
      (fun (seed, enc_i) ->
        ( Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 (),
          List.nth O.Encoding.all (enc_i mod List.length O.Encoding.all) ))
      QCheck.Gen.(pair (int_bound 100_000) (int_bound 19))
  in
  let print (doc, enc) =
    O.Encoding.name enc ^ ": " ^ Xmllib.Printer.document_to_string doc
  in
  QCheck.Test.make ~name:"shred/reconstruct identity (random docs)" ~count:60
    (QCheck.make ~print gen) (fun (doc, enc) ->
      let db = Reldb.Db.create () in
      ignore (O.Shred.shred db ~doc:"r" enc doc);
      T.equal_document doc (O.Reconstruct.document db ~doc:"r" enc))

let tests =
  ( "shred",
    [
      Alcotest.test_case "row counts" `Quick test_row_counts;
      Alcotest.test_case "interval nesting" `Quick test_interval_nesting;
      Alcotest.test_case "gap numbering" `Quick test_gap_numbering_spacing;
      Alcotest.test_case "local sibling ranks" `Quick test_local_unique_sibling_ranks;
      Alcotest.test_case "dewey path order" `Quick test_dewey_paths_sorted;
      Alcotest.test_case "nval population" `Quick test_nval_population;
      Alcotest.test_case "reconstruct roundtrip" `Quick test_reconstruct_roundtrip;
      Alcotest.test_case "reconstruct subtree" `Quick test_reconstruct_subtree;
      Alcotest.test_case "storage measures" `Quick test_storage_measures;
      Alcotest.test_case "streaming = DOM shredding" `Quick test_stream_shred_equals_dom_shred;
      Alcotest.test_case "streaming serialization" `Quick test_streaming_serialization;
      QCheck_alcotest.to_alcotest prop_streaming_serialization_random;
      QCheck_alcotest.to_alcotest prop_roundtrip_random;
    ] )
