(* FLWOR-lite: iterate / filter / sort / construct over the shredded store. *)

module O = Ordered_xml
module T = Xmllib.Types
module F = O.Flwor

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let doc =
  Xmllib.Parser.parse_document
    {|<shop><item n="apple"><price>3</price><qty>10</qty></item><item n="plum"><price>7</price><qty>2</qty></item><item n="pear"><price>5</price><qty>4</qty></item></shop>|}

let env =
  lazy
    (let db = Reldb.Db.create () in
     let stores =
       List.map (fun enc -> (enc, O.Api.Store.create db ~name:"s" enc doc)) O.Encoding.all
     in
     (db, stores))

let render nodes = String.concat "" (List.map Xmllib.Printer.node_to_string nodes)

let run_all q =
  let db, stores = Lazy.force env in
  let results =
    List.map (fun (enc, _) -> (enc, F.run db ~doc:"s" enc q)) stores
  in
  (* all encodings must agree *)
  (match results with
  | (_, first) :: rest ->
      List.iter
        (fun (enc, r) ->
          if render r <> render first then
            Alcotest.failf "%s disagrees: %s vs %s" (O.Encoding.name enc)
              (render r) (render first))
        rest
  | [] -> ());
  snd (List.hd results)

let test_basic_loop () =
  let out = run_all "for $i in /shop/item return <n>{$i/@n}</n>" in
  check string_t "names" "<n>apple</n><n>plum</n><n>pear</n>" (render out)

let test_where_numeric () =
  let out =
    run_all
      "for $i in /shop/item where $i/price > 4 return <x>{$i/@n}</x>"
  in
  check string_t "filtered" "<x>plum</x><x>pear</x>" (render out)

let test_order_by () =
  let out =
    run_all
      "for $i in /shop/item order by $i/price descending return <p>{$i/price/text()}</p>"
  in
  check string_t "sorted" "<p>7</p><p>5</p><p>3</p>" (render out)

let test_let_and_attr_splice () =
  let out =
    run_all
      "for $i in /shop/item let $p := $i/price where $p > 2 order by $i/@n \
       return <item name=\"{$i/@n}\" price=\"{$p}\"/>"
  in
  check string_t "constructed"
    "<item name=\"apple\" price=\"3\"/><item name=\"pear\" price=\"5\"/><item name=\"plum\" price=\"7\"/>"
    (render out)

let test_nested_for () =
  let out =
    run_all
      "for $i in /shop/item for $q in $i/qty where $q < 5 return <low>{$i/@n}</low>"
  in
  check string_t "joined" "<low>plum</low><low>pear</low>" (render out)

let test_node_splice () =
  let out = run_all "for $i in /shop/item where $i/@n = 'plum' return <keep>{$i/price}</keep>" in
  check string_t "subtree splice" "<keep><price>7</price></keep>" (render out)

let test_nested_constructor () =
  let out =
    run_all
      "for $i in /shop/item where $i/price >= 5 order by $i/price \
       return <row><name>{$i/@n}</name><value>{$i/price/text()}</value></row>"
  in
  check string_t "nested"
    "<row><name>pear</name><value>5</value></row><row><name>plum</name><value>7</value></row>"
    (render out)

let test_existence_where () =
  let out = run_all "for $i in /shop/item where $i/qty return <y>{$i/@n}</y>" in
  check int_t "all have qty" 3 (List.length out)

let test_on_xmark () =
  (* the publishing workload on the auction data *)
  let db = Reldb.Db.create () in
  let d = O.Workload.dataset ~scale:1 in
  ignore (O.Api.Store.create db ~name:"x" O.Encoding.Dewey_enc d);
  let out =
    F.run db ~doc:"x" O.Encoding.Dewey_enc
      "for $a in /site/closed_auctions/closed_auction where $a/price > 500 \
       order by $a/price descending \
       return <sale price=\"{$a/price/text()}\" buyer=\"{$a/buyer/@person}\"/>"
  in
  let idx = O.Doc_index.build d in
  let expected =
    O.Dom_eval.eval idx
      (O.Xpath_parser.parse "/site/closed_auctions/closed_auction[price > 500]")
  in
  check int_t "result count" (List.length expected) (List.length out);
  (* descending prices *)
  let prices =
    List.filter_map
      (fun n -> Option.map float_of_string (T.attribute_value n "price"))
      out
  in
  check bool_t "sorted desc" true
    (List.sort (fun a b -> compare b a) prices = prices)

let test_parse_errors () =
  let bad q =
    match F.parse q with
    | exception F.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" q
  in
  bad "";
  bad "return <a/>";
  bad "for $x in /a";
  bad "for x in /a return <b/>";
  bad "for $x in /a return <b>";
  bad "for $x in /a return <b></c>";
  bad "for $x in /a return <b>{$x</b>";
  bad "for $x in /a where return <b/>"

let test_unbound_variable () =
  let db, _ = Lazy.force env in
  match F.run db ~doc:"s" O.Encoding.Global "for $i in /shop/item return <x>{$nope}</x>" with
  | exception F.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound variable accepted"

let test_value_join () =
  (* var-to-var comparison: items cheaper than apple *)
  let out =
    run_all
      "for $i in /shop/item for $j in /shop/item where $j/@n = 'apple' and \
       $i/price < $j/price return <cheap>{$i/@n}</cheap>"
  in
  check string_t "nothing cheaper than apple" "" (render out);
  let out2 =
    run_all
      "for $i in /shop/item for $j in /shop/item where $j/@n = 'pear' and \
       $i/price < $j/price return <cheap>{$i/@n}</cheap>"
  in
  check string_t "apple cheaper than pear" "<cheap>apple</cheap>" (render out2);
  (* string equality join: self-join on names *)
  let out3 =
    run_all
      "for $i in /shop/item for $j in /shop/item where $i/@n = $j/@n \
       return <m>{$i/@n}</m>"
  in
  check int_t "self equi-join" 3 (List.length out3)

(* randomized: a fixed publishing query agrees across encodings on random
   documents *)
let prop_flwor_cross_encoding =
  QCheck.Test.make ~name:"flwor agrees across encodings (random docs)"
    ~count:40
    QCheck.(int_bound 50_000)
    (fun seed ->
      let doc = Xmllib.Generator.random_tree ~seed ~max_depth:4 ~max_fanout:4 () in
      let db = Reldb.Db.create () in
      let q =
        "for $x in //item where $x/@k0 order by $x/@k0 return <r k=\"{$x/@k0}\">{$x/text()}</r>"
      in
      let render enc =
        let name = Printf.sprintf "r%d" (Hashtbl.hash (O.Encoding.name enc)) in
        ignore (O.Api.Store.create db ~name enc doc);
        String.concat ""
          (List.map Xmllib.Printer.node_to_string (F.run db ~doc:name enc q))
      in
      let outs = List.map render O.Encoding.all in
      match outs with
      | first :: rest -> List.for_all (String.equal first) rest
      | [] -> true)

let tests =
  ( "flwor",
    [
      Alcotest.test_case "basic loop" `Quick test_basic_loop;
      Alcotest.test_case "where (numeric)" `Quick test_where_numeric;
      Alcotest.test_case "order by" `Quick test_order_by;
      Alcotest.test_case "let + attribute splice" `Quick test_let_and_attr_splice;
      Alcotest.test_case "nested for" `Quick test_nested_for;
      Alcotest.test_case "node splice" `Quick test_node_splice;
      Alcotest.test_case "nested constructor" `Quick test_nested_constructor;
      Alcotest.test_case "existence where" `Quick test_existence_where;
      Alcotest.test_case "auction publishing" `Quick test_on_xmark;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
      Alcotest.test_case "value joins" `Quick test_value_join;
      QCheck_alcotest.to_alcotest prop_flwor_cross_encoding;
    ] )
