(* XPath: parser shapes and oracle (Dom_eval) semantics. *)

module O = Ordered_xml
module A = O.Xpath_ast
module P = O.Xpath_parser
module DI = O.Doc_index

let check = Alcotest.check
let int_t = Alcotest.int
let string_t = Alcotest.string

let parse = P.parse

let parse_fails s =
  match parse s with
  | exception P.Parse_error _ -> ()
  | _ -> Alcotest.failf "expected parse error: %s" s

(* --- parser ----------------------------------------------------------- *)

let test_parse_simple () =
  let p = parse "/a/b/c" in
  check Alcotest.bool "absolute" true p.A.absolute;
  check int_t "steps" 3 (List.length p.A.steps);
  check string_t "rendered" "/a/b/c" (A.to_string p)

let test_parse_axes () =
  let p = parse "a/following-sibling::b/../@id/descendant-or-self::node()" in
  match List.map (fun (s : A.step) -> s.A.axis) p.A.steps with
  | [ A.Child; A.Following_sibling; A.Parent; A.Attribute; A.Descendant_or_self ] -> ()
  | _ -> Alcotest.fail "axis chain"

let test_parse_dslash () =
  let p = parse "//b" in
  (match p.A.steps with
  | [ { A.axis = A.Descendant; test = A.Name "b"; _ } ] -> ()
  | _ -> Alcotest.fail "// at start");
  let p2 = parse "/a//b" in
  match p2.A.steps with
  | [ _; { A.axis = A.Descendant; _ } ] -> ()
  | _ -> Alcotest.fail "// between"

let test_parse_predicates () =
  let p = parse "/a/b[2][last()]/c[position() >= 3]" in
  (match p.A.steps with
  | [ _; { A.preds = [ A.P_pos (A.Eq, 2); A.P_last ]; _ };
      { A.preds = [ A.P_pos (A.Ge, 3) ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "positional predicates");
  let p2 = parse "/a[b/c and not(@x = 'v') or price > 9.5]" in
  match p2.A.steps with
  | [ { A.preds = [ A.P_or (A.P_and (A.P_exists _, A.P_not (A.P_cmp (_, A.Eq, A.L_str "v"))),
                      A.P_cmp (_, A.Gt, A.L_num 9.5)) ]; _ } ] ->
      ()
  | _ -> Alcotest.fail "boolean predicate tree"

let test_parse_tests () =
  let p = parse "/a/text()/comment()/node()/*" in
  match List.map (fun (s : A.step) -> s.A.test) p.A.steps with
  | [ A.Name "a"; A.Text_test; A.Comment_test; A.Node_test; A.Any_name ] -> ()
  | _ -> Alcotest.fail "node tests"

let test_parse_errors () =
  parse_fails "";
  parse_fails "/";
  parse_fails "/a[";
  parse_fails "/a[]";
  parse_fails "/a[position()]";
  parse_fails "/a/unknown::b";
  parse_fails "/a//following-sibling::b";
  parse_fails "/a[0]"

(* --- oracle semantics -------------------------------------------------- *)

let doc =
  Xmllib.Parser.parse_document
    {|<lib><shelf id="s1"><book y="1990">a</book><note/><book y="2005">b</book><book y="2010">c</book></shelf><shelf id="s2"><book y="2001">d</book></shelf></lib>|}

let idx = lazy (DI.build doc)

let eval s = O.Dom_eval.eval (Lazy.force idx) (parse s)

let values s =
  List.map (DI.string_value (Lazy.force idx)) (eval s)

let test_child_position () =
  (* [2] counts only nodes passing the name test, skipping <note/> *)
  check (Alcotest.list string_t) "book[2]" [ "b"; ] (values "/lib/shelf[1]/book[2]");
  check (Alcotest.list string_t) "book[last()]" [ "c"; "d" ]
    (values "/lib/shelf/book[last()]")

let test_position_range () =
  check (Alcotest.list string_t) "range" [ "b"; "c" ]
    (values "/lib/shelf[1]/book[position() >= 2 and position() <= 3]")

let test_reverse_axis_positions () =
  (* preceding-sibling positions count from the context leftwards *)
  check (Alcotest.list string_t) "prec-sib [1]" [ "b" ]
    (values "/lib/shelf[1]/book[3]/preceding-sibling::book[1]");
  check (Alcotest.list string_t) "prec-sib all in doc order" [ "a"; "b" ]
    (values "/lib/shelf[1]/book[3]/preceding-sibling::book")

let test_following () =
  check (Alcotest.list string_t) "following books" [ "b"; "c"; "d" ]
    (values "/lib/shelf[1]/book[1]/following::book");
  check (Alcotest.list string_t) "preceding books" [ "a"; "b"; "c" ]
    (values "/lib/shelf[2]/book[1]/preceding::book")

let test_descendant () =
  check int_t "//book" 4 (List.length (eval "//book"));
  check int_t "desc-or-self" 4
    (List.length (eval "/lib/shelf/descendant-or-self::book"))

let test_attribute_axis () =
  check (Alcotest.list string_t) "@id" [ "s1"; "s2" ] (values "/lib/shelf/@id");
  check int_t "@*" 2 (List.length (eval "/lib/shelf/@*"))

let test_value_predicates () =
  check (Alcotest.list string_t) "numeric attr" [ "c" ]
    (values "/lib/shelf/book[@y > 2005]");
  check (Alcotest.list string_t) "string eq" [ "b" ]
    (values "/lib/shelf/book[@y = '2005']");
  check (Alcotest.list string_t) "text cmp" [ "a" ]
    (values "/lib/shelf/book[text() = 'a']");
  check (Alcotest.list string_t) "exists" [ "s1"; "s2" ]
    (values "/lib/shelf[book]/@id");
  check int_t "not exists" 0 (List.length (eval "/lib/shelf[not(book)]"))

let test_parent_self () =
  check int_t "parent" 2 (List.length (eval "/lib/shelf/book[1]/.."));
  check int_t "self" 4 (List.length (eval "//book/."))

let test_union_docorder_dedup () =
  (* two shelves' books, via a path that visits each book twice *)
  let ids = eval "/lib/shelf/book/../book" in
  check int_t "dedup" 4 (List.length ids);
  check Alcotest.bool "sorted" true (List.sort compare ids = ids)

let test_text_nodes () =
  check int_t "text()" 4 (List.length (eval "//book/text()"))

let test_ancestor_axes () =
  (* closest-first positional semantics *)
  check (Alcotest.list string_t) "ancestor[1] is the shelf" [ "s1" ]
    (values "/lib/shelf[1]/book[1]/ancestor::*[1]/@id");
  check int_t "ancestors of a book" 2
    (List.length (eval "/lib/shelf[1]/book[1]/ancestor::*"));
  check int_t "ancestor-or-self includes self" 3
    (List.length (eval "/lib/shelf[1]/book[1]/ancestor-or-self::*"));
  check int_t "named ancestor" 1
    (List.length (eval "//book[1]/ancestor::lib"))

let test_count_predicate () =
  check (Alcotest.list string_t) "count >= 3" [ "s1" ]
    (values "/lib/shelf[count(book) >= 3]/@id");
  check (Alcotest.list string_t) "count = 1" [ "s2" ]
    (values "/lib/shelf[count(book) = 1]/@id");
  check int_t "count = 0 matches none" 0
    (List.length (eval "/lib/shelf[count(book) = 0]"));
  check int_t "count over attrs" 2
    (List.length (eval "/lib/shelf[count(@id) = 1]"))

let test_union_oracle () =
  let u = O.Xpath_parser.parse_union "/lib/shelf[1]/book[1] | //book[@y > 2004] | /lib/shelf[2]/book" in
  let ids = O.Dom_eval.eval_union (Lazy.force idx) u in
  check Alcotest.bool "sorted, deduped" true
    (List.sort_uniq compare ids = ids);
  check int_t "union size" 4 (List.length ids)

let test_union_parse () =
  (match O.Xpath_parser.parse_union "/a | /b | //c" with
  | [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "three alternatives");
  match O.Xpath_parser.parse_union "/a" with
  | [ _ ] -> ()
  | _ -> Alcotest.fail "single path union"

let tests =
  ( "xpath",
    [
      Alcotest.test_case "parse simple" `Quick test_parse_simple;
      Alcotest.test_case "parse axes" `Quick test_parse_axes;
      Alcotest.test_case "parse //" `Quick test_parse_dslash;
      Alcotest.test_case "parse predicates" `Quick test_parse_predicates;
      Alcotest.test_case "parse node tests" `Quick test_parse_tests;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "child position" `Quick test_child_position;
      Alcotest.test_case "position range" `Quick test_position_range;
      Alcotest.test_case "reverse-axis positions" `Quick test_reverse_axis_positions;
      Alcotest.test_case "following/preceding" `Quick test_following;
      Alcotest.test_case "descendant" `Quick test_descendant;
      Alcotest.test_case "attribute axis" `Quick test_attribute_axis;
      Alcotest.test_case "value predicates" `Quick test_value_predicates;
      Alcotest.test_case "parent/self" `Quick test_parent_self;
      Alcotest.test_case "dedup + doc order" `Quick test_union_docorder_dedup;
      Alcotest.test_case "text nodes" `Quick test_text_nodes;
      Alcotest.test_case "ancestor axes" `Quick test_ancestor_axes;
      Alcotest.test_case "count() predicate" `Quick test_count_predicate;
      Alcotest.test_case "union (oracle)" `Quick test_union_oracle;
      Alcotest.test_case "union (parser)" `Quick test_union_parse;
    ] )
