(* Unit coverage of the smaller core/xml building blocks: the PRNG, edge-row
   decoding, context tables, encoding descriptors, workload presets. *)

module O = Ordered_xml
module V = Reldb.Value

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* --- rng -------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Xmllib.Rng.create 99 and b = Xmllib.Rng.create 99 in
  let sa = List.init 50 (fun _ -> Xmllib.Rng.int a 1000) in
  let sb = List.init 50 (fun _ -> Xmllib.Rng.int b 1000) in
  check (Alcotest.list int_t) "same seed, same stream" sa sb;
  let c = Xmllib.Rng.create 100 in
  let sc = List.init 50 (fun _ -> Xmllib.Rng.int c 1000) in
  check bool_t "different seed differs" true (sa <> sc)

let test_rng_ranges () =
  let rng = Xmllib.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Xmllib.Rng.int_in rng 5 9 in
    if v < 5 || v > 9 then Alcotest.fail "int_in out of range";
    let f = Xmllib.Rng.float rng 2.0 in
    if f < 0.0 || f >= 2.0 then Alcotest.fail "float out of range"
  done;
  (match Xmllib.Rng.int rng 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bound accepted");
  let arr = [| 1; 2; 3; 4; 5 |] in
  Xmllib.Rng.shuffle rng arr;
  check (Alcotest.list int_t) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list arr))

let test_rng_copy () =
  let a = Xmllib.Rng.create 7 in
  ignore (Xmllib.Rng.int a 10);
  let b = Xmllib.Rng.copy a in
  check int_t "copy continues identically" (Xmllib.Rng.int a 1_000_000)
    (Xmllib.Rng.int b 1_000_000)

(* --- encoding descriptors --------------------------------------------- *)

let test_encoding_names () =
  List.iter
    (fun enc ->
      match O.Encoding.of_name (O.Encoding.name enc) with
      | Some e when e = enc -> ()
      | _ -> Alcotest.failf "name roundtrip for %s" (O.Encoding.name enc))
    O.Encoding.all;
  check bool_t "unknown name" true (O.Encoding.of_name "nope" = None);
  (* table names are distinct per encoding *)
  let names = List.map (fun e -> O.Encoding.table_name ~doc:"d" e) O.Encoding.all in
  check int_t "distinct table names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- node rows --------------------------------------------------------- *)

let test_node_row_decode () =
  let tu =
    [|
      V.Int 7; V.Int 3; V.Int 1; V.Null; V.Str "hello"; V.Null; V.Int 4;
    |]
  in
  let r = O.Node_row.of_tuple O.Encoding.Local tu in
  check int_t "id" 7 r.O.Node_row.id;
  check bool_t "parent" true (r.O.Node_row.parent = Some 3);
  check bool_t "kind" true (r.O.Node_row.kind = O.Doc_index.Text_node);
  check string_t "value" "hello" r.O.Node_row.value;
  (match r.O.Node_row.ord with
  | O.Node_row.Ol 4 -> ()
  | _ -> Alcotest.fail "ord");
  (* ordering comparators *)
  let mk o = { r with O.Node_row.ord = O.Node_row.Ol o } in
  check bool_t "compare_ord" true (O.Node_row.compare_ord (mk 1) (mk 2) < 0);
  (* dewey accessor on the wrong encoding *)
  match O.Node_row.dewey r with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "dewey on local row"

(* --- temp context tables ----------------------------------------------- *)

let test_temp_tables () =
  let db = Reldb.Db.create () in
  let result =
    O.Temp.with_ctx db
      ~cols:[ ("id", V.Tint); ("v", V.Ttext) ]
      ~rows:[ [| V.Int 1; V.Str "a" |]; [| V.Int 2; V.Str "b" |] ]
      (fun name -> Reldb.Db.query db (Printf.sprintf "SELECT id FROM %s" name))
  in
  check int_t "rows visible inside" 2 (List.length result);
  (* the table is dropped afterwards, even on exceptions *)
  (match
     O.Temp.with_ctx db ~cols:[ ("id", V.Tint) ] ~rows:[] (fun _ ->
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check int_t "no leftover tables" 0
    (List.length (Reldb.Catalog.tables (Reldb.Db.catalog db)))

(* --- workload presets --------------------------------------------------- *)

let test_workload () =
  check int_t "eight queries" 8 (List.length O.Workload.queries);
  let with_paths =
    List.filter (fun (q : O.Workload.query) -> q.O.Workload.q_xpath <> None)
      O.Workload.queries
  in
  (* every query parses *)
  List.iter
    (fun (q : O.Workload.query) ->
      match q.O.Workload.q_xpath with
      | Some xp -> ignore (O.Xpath_parser.parse xp)
      | None -> ())
    with_paths;
  ignore (O.Xpath_parser.parse O.Workload.q8_target);
  ignore (O.Xpath_parser.parse O.Workload.container_path);
  check int_t "positions" 3 (List.length O.Workload.positions);
  check int_t "front" 1 (O.Workload.insertion_pos O.Workload.Front ~sibling_count:10);
  check int_t "middle" 6 (O.Workload.insertion_pos O.Workload.Middle ~sibling_count:10);
  check int_t "back" 11 (O.Workload.insertion_pos O.Workload.Back ~sibling_count:10)

let test_deep_generator () =
  let doc = Xmllib.Generator.deep ~depth:50 ~branch:3 () in
  let stats = Xmllib.Stats.compute doc in
  check bool_t "deep enough" true (stats.Xmllib.Stats.max_depth >= 50);
  (* roundtrips through shredding like everything else *)
  let db = Reldb.Db.create () in
  ignore (O.Shred.shred db ~doc:"deep" O.Encoding.Dewey_enc doc);
  check bool_t "deep roundtrip" true
    (Xmllib.Types.equal_document doc
       (O.Reconstruct.document db ~doc:"deep" O.Encoding.Dewey_enc))

let tests =
  ( "core-units",
    [
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "encoding descriptors" `Quick test_encoding_names;
      Alcotest.test_case "node row decoding" `Quick test_node_row_decode;
      Alcotest.test_case "temp context tables" `Quick test_temp_tables;
      Alcotest.test_case "workload presets" `Quick test_workload;
      Alcotest.test_case "deep generator" `Quick test_deep_generator;
    ] )
