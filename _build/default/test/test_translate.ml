(* The central correctness claim: XPath evaluated through SQL over every
   order encoding agrees with the direct DOM oracle — on the paper's query
   set and on randomized documents x randomized paths. *)

module O = Ordered_xml
module T = Xmllib.Types

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let xmark = lazy (O.Workload.dataset ~scale:1)

let stores_and_oracle doc =
  let db = Reldb.Db.create () in
  let idx = O.Doc_index.build doc in
  let stores =
    List.map (fun enc -> (enc, O.Api.Store.create db ~name:"q" enc doc)) O.Encoding.all
  in
  (idx, stores)

let xmark_env = lazy (stores_and_oracle (Lazy.force xmark))

let assert_equivalent ?(env = Lazy.force xmark_env) xpath =
  let idx, stores = env in
  let path = O.Xpath_parser.parse xpath in
  let expected = O.Dom_eval.eval idx path in
  List.iter
    (fun (enc, store) ->
      let got = O.Api.Store.query_ids store xpath in
      if got <> expected then
        Alcotest.failf "%s: %s: oracle %d nodes %s, sql %d nodes %s"
          (O.Encoding.name enc) xpath (List.length expected)
          (String.concat "," (List.map string_of_int expected))
          (List.length got)
          (String.concat "," (List.map string_of_int got)))
    stores

let test_workload_queries () =
  List.iter
    (fun (q : O.Workload.query) ->
      match q.O.Workload.q_xpath with
      | Some xp -> assert_equivalent xp
      | None -> ())
    O.Workload.queries

let test_axis_zoo () =
  List.iter assert_equivalent
    [
      "/site";
      "/site/*";
      "//bidder";
      "//bidder/increase/text()";
      "/site/open_auctions/open_auction[2]/bidder[2]/following-sibling::bidder";
      "/site/open_auctions/open_auction[2]/bidder[2]/preceding-sibling::bidder";
      "/site/open_auctions/open_auction[3]/preceding::bidder";
      "/site/people/person[5]/following::person";
      "//person/@id";
      "//person[address]/name";
      "//open_auction[bidder]/seller";
      "/site/people/person/profile/..";
      "//profile/descendant-or-self::*";
      "//annotation/description/text/text()";
      "/site/closed_auctions/closed_auction[price > 500]";
      "/site/closed_auctions/closed_auction[price > 500.0][type = 'Regular']";
      "//person[profile/@income >= 80000]/name";
      "//person[not(homepage) and address]/name";
      "/site/regions/*/item[2]";
      "/site/regions/africa/item[1]/following::item[position() <= 5]";
      "//open_auction[bidder[2]]/bidder[last()]";
      "//bidder[1]/ancestor::open_auction";
      "//open_auction[count(bidder) >= 4]/seller";
      "//person[count(address) = 0]/name";
      "//profile/ancestor::*";
      "//personref/ancestor-or-self::*[2]";
      "//increase/ancestor::site";
      "/site/open_auctions/open_auction/bidder[position() > 1 and position() < 4]";
    ]

let test_comments_and_pis () =
  let doc =
    Xmllib.Parser.parse_document
      "<a><!--x--><b>t</b><?p d?><!--y--><b/></a>"
  in
  let env = stores_and_oracle doc in
  List.iter
    (fun xp -> assert_equivalent ~env xp)
    [ "/a/comment()"; "/a/node()"; "/a/b[1]/following-sibling::node()"; "//b" ]

let test_axis_expressibility_matrix () =
  (* which axes are closed-form SQL per encoding: GLOBAL/DEWEY answer every
     ordered axis in O(steps) statements; LOCAL pays middle-tier rounds on
     document-order axes. This pins the SQL-expressibility table of the
     paper down as a regression test. *)
  let _, stores = Lazy.force xmark_env in
  let stmts enc xp =
    (O.Api.Store.query (List.assoc enc stores) xp).O.Translate.statements
  in
  let closed_form =
    [
      ("/site/open_auctions/open_auction/bidder", 4);  (* child chain *)
      ("//bidder", 1);  (* descendant *)
      ("/site/people/person/@id", 4);  (* attribute *)
    ]
  in
  List.iter
    (fun (xp, k) ->
      List.iter
        (fun enc ->
          if stmts enc xp > k then
            Alcotest.failf "%s: %s took %d statements (expected <= %d)"
              (O.Encoding.name enc) xp (stmts enc xp) k)
        [ O.Encoding.Global; O.Encoding.Dewey_enc; O.Encoding.Dewey_caret ])
    closed_form;
  (* document-order axes stay closed-form only with global order *)
  let q7 = "/site/regions/africa/item[1]/following::item" in
  List.iter
    (fun enc ->
      if stmts enc q7 > 6 then
        Alcotest.failf "%s: following axis took %d statements"
          (O.Encoding.name enc) (stmts enc q7))
    [ O.Encoding.Global; O.Encoding.Dewey_enc; O.Encoding.Dewey_caret ];
  check bool_t "local pays middle-tier rounds on following" true
    (stmts O.Encoding.Local q7 > 6);
  (* LOCAL descendant needs one round per level *)
  check bool_t "local descendant pays per level" true
    (stmts O.Encoding.Local "//bidder" > 3)

let test_statement_counts () =
  (* LOCAL pays middle-tier statements for document-order work; GLOBAL and
     DEWEY answer Q7 with O(1) statements *)
  let _, stores = Lazy.force xmark_env in
  let q7 = "/site/regions/africa/item[1]/following::item" in
  let stmts enc =
    (O.Api.Store.query (List.assoc enc stores) q7).O.Translate.statements
  in
  check bool_t "local issues more statements" true
    (stmts O.Encoding.Local > stmts O.Encoding.Global);
  check bool_t "dewey ~ global" true
    (abs (stmts O.Encoding.Dewey_enc - stmts O.Encoding.Global) <= 2)

let test_empty_results () =
  List.iter assert_equivalent
    [
      "/nosuchroot";
      "//nosuchtag";
      "/site/open_auctions/open_auction[99]";
      "//person[@id = 'nonexistent']";
      "/site/text()";
    ]

let test_union_translation () =
  let idx, stores = Lazy.force xmark_env in
  let u = "/site/people/person[1] | //closed_auction/price | /site/regions" in
  let expected = O.Dom_eval.eval_union idx (O.Xpath_parser.parse_union u) in
  List.iter
    (fun (enc, store) ->
      let got = O.Api.Store.query_ids store u in
      if got <> expected then
        Alcotest.failf "%s: union mismatch (%d vs %d nodes)"
          (O.Encoding.name enc) (List.length got) (List.length expected))
    stores

let test_doc_order_of_results () =
  let idx, stores = Lazy.force xmark_env in
  ignore idx;
  (* a query whose matches interleave across subtrees *)
  let xp = "//text" in
  List.iter
    (fun (enc, store) ->
      let ids = O.Api.Store.query_ids store xp in
      check bool_t
        (O.Encoding.name enc ^ " sorted")
        true
        (List.sort compare ids = ids))
    stores

(* randomized: random documents x random paths, all encodings *)
let prop_oracle_equivalence =
  let gen =
    QCheck.Gen.(
      pair (int_bound 10_000) Xpath_gen.gen_path)
  in
  let print (seed, path) =
    Printf.sprintf "seed=%d path=%s" seed (O.Xpath_ast.to_string path)
  in
  QCheck.Test.make ~name:"sql = oracle on random docs/paths" ~count:200
    (QCheck.make ~print gen) (fun (seed, path) ->
      let doc = Xmllib.Generator.random_tree ~seed ~max_depth:5 ~max_fanout:4 () in
      let idx, stores = stores_and_oracle doc in
      let expected = O.Dom_eval.eval idx path in
      List.for_all
        (fun (_, store) ->
          let got =
            List.map
              (fun (r : O.Node_row.t) -> r.O.Node_row.id)
              (O.Api.Store.query store (O.Xpath_ast.to_string path)).O.Translate.rows
          in
          got = expected)
        stores)

let tests =
  ( "translate",
    [
      Alcotest.test_case "workload query set" `Slow test_workload_queries;
      Alcotest.test_case "axis zoo" `Slow test_axis_zoo;
      Alcotest.test_case "comments and PIs" `Quick test_comments_and_pis;
      Alcotest.test_case "statement counts" `Quick test_statement_counts;
      Alcotest.test_case "axis expressibility matrix" `Quick
        test_axis_expressibility_matrix;
      Alcotest.test_case "empty results" `Quick test_empty_results;
      Alcotest.test_case "union translation" `Quick test_union_translation;
      Alcotest.test_case "results in document order" `Quick test_doc_order_of_results;
      QCheck_alcotest.to_alcotest prop_oracle_equivalence;
    ] )
