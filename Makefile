OXQ = dune exec --no-print-directory bin/oxq.exe --

.PHONY: all build test check bench experiments clean

all: build

build:
	dune build @all

test:
	dune runtest

# build + tier-1 tests + CLI smoke test over the quickstart catalog.
# Run this before recording a change in CHANGES.md.
check: build test
	$(OXQ) stats examples/catalog.xml -e dewey
	$(OXQ) query examples/catalog.xml '/catalog/book[1]/title' --trace
	@echo "check: OK"

bench:
	dune exec bench/main.exe

experiments:
	dune exec bin/experiments.exe -- all

clean:
	dune clean
