OXQ = dune exec --no-print-directory bin/oxq.exe --

.PHONY: all build test lint check crash-test bench bench-smoke experiments clean

all: build

build:
	dune build @all

test:
	dune runtest

# static analysis smoke test: translated queries must lint clean, a
# hand-written SQL statement goes through the same rules, and every example
# query lints without error findings both blind and schema-aware.
lint:
	$(OXQ) lint '/catalog/book[author]/title'
	$(OXQ) lint --sql 'SELECT a.id FROM doc_global a, doc_global b WHERE a.parent = b.id'
	@set -e; while IFS= read -r q; do \
	  case "$$q" in ''|\#*) continue;; esac; \
	  echo "lint: $$q"; \
	  $(OXQ) lint "$$q" >/dev/null; \
	  $(OXQ) lint --dtd examples/catalog.dtd "$$q" >/dev/null; \
	done < examples/queries.txt

# fault injection: truncate the WAL at every byte offset and kill at every
# commit / checkpoint step, asserting recovery is always prefix-consistent
crash-test:
	dune exec --no-print-directory test/test_main.exe -- test wal-crash

# build + tier-1 tests + fault injection + CLI smoke test over the
# quickstart catalog. Run this before recording a change in CHANGES.md.
check: build test lint crash-test bench-smoke
	$(OXQ) stats examples/catalog.xml -e dewey
	$(OXQ) query examples/catalog.xml '/catalog/book[1]/title' --trace
	@echo "check: OK"

bench:
	dune exec bench/main.exe

# regression guard: Q1/global latency must stay within 3x of the checked-in
# baseline (bench/baseline.json)
bench-smoke:
	dune exec --no-print-directory bench/smoke.exe -- bench/baseline.json

experiments:
	dune exec bin/experiments.exe -- all

clean:
	dune clean
